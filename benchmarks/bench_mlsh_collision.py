"""E3 — MLSH collision-probability bracketing (Lemmas 2.3, 2.4, 2.5).

Claim (Definition 2.2): for each family with parameters ``(r, p, α)``,
``p^{f(x,y)} <= Pr[h(x) = h(y)] <= p^{α·f(x,y)}`` for ``f(x,y) <= r``.
We sweep pair distances and report the empirical collision rate next to
both bounds for the bit-sampling, grid (ℓ1) and p-stable (ℓ2) families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH, GridMLSH, PStableMLSH
from repro.metric import GridSpace, HammingSpace

from conftest import record_table

SAMPLES = 6000
DISTANCES = (1, 2, 4, 8, 12)


def _rate(family, x, y) -> float:
    batch = family.sample_batch(PublicCoins(7), "e3", SAMPLES)
    values = batch.evaluate([x, y])
    return float((values[0] == values[1]).mean())


@pytest.fixture(scope="module")
def sweep():
    rows = []
    data = []

    hamming = HammingSpace(64)
    bit_family = BitSamplingMLSH(hamming, w=96)
    zero = tuple([0] * 64)
    for distance in DISTANCES:
        y = tuple([1] * distance + [0] * (64 - distance))
        rate = _rate(bit_family, zero, y)
        low = bit_family.collision_lower_bound(distance)
        high = bit_family.collision_upper_bound(distance)
        rows.append(("bit-sampling (L2.3)", distance, low, rate, high))
        data.append((low, rate, high))

    l1 = GridSpace(side=512, dim=3, p=1.0)
    grid_family = GridMLSH(l1, w=24.0)
    base = (256, 256, 256)
    for distance in DISTANCES:
        y = (256 + distance, 256, 256)
        rate = _rate(grid_family, base, y)
        low = grid_family.collision_lower_bound(distance)
        high = grid_family.collision_upper_bound(distance)
        rows.append(("grid l1 (L2.4)", distance, low, rate, high))
        data.append((low, rate, high))

    l2 = GridSpace(side=512, dim=3, p=2.0)
    pstable_family = PStableMLSH(l2, w=24.0)
    for distance in DISTANCES:
        y = (256 + distance, 256, 256)
        rate = _rate(pstable_family, base, y)
        low = pstable_family.collision_lower_bound(distance)
        high = pstable_family.collision_upper_bound(distance)
        rows.append(("p-stable l2 (L2.5)", distance, low, rate, high))
        data.append((low, rate, high))

    record_table(
        "E3 (Lemmas 2.3-2.5) — empirical collision rate vs MLSH bounds "
        f"(lower = p^f, upper = p^(a*f); {SAMPLES} functions per pair)",
        ["family", "distance", "lower bound", "measured", "upper bound"],
        rows,
    )
    return data


def test_all_rates_bracketed(sweep):
    slack = 0.02  # Monte-Carlo noise at 6000 samples
    for low, rate, high in sweep:
        assert rate >= low - slack, (low, rate, high)
        assert rate <= high + slack, (low, rate, high)


def test_rates_decay_with_distance(sweep):
    # Within each family the measured rates decrease along the sweep.
    per_family = [sweep[i : i + len(DISTANCES)] for i in range(0, len(sweep), len(DISTANCES))]
    for family_rows in per_family:
        rates = [rate for _, rate, _ in family_rows]
        assert rates[0] > rates[-1]


def test_batch_evaluation_speed(benchmark, sweep):
    space = GridSpace(side=512, dim=8, p=2.0)
    family = PStableMLSH(space, w=16.0)
    rng = np.random.default_rng(0)
    points = space.sample(rng, 256)
    batch = family.sample_batch(PublicCoins(1), "speed", 512)

    values = benchmark(batch.evaluate, points)
    assert values.shape == (256, 512)
