"""E1 — IBLT decoding threshold (Theorem 2.6).

Claim: an IBLT with ``m`` cells decodes ``cm`` keys w.h.p. for ``c``
below a constant threshold (``c*_3 ≈ 0.818`` for q = 3) and fails sharply
above it.  We sweep the load factor across the threshold and report
empirical decode rates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.iblt import IBLT, molloy_threshold

from conftest import record_table

M_CELLS = 300
Q = 3
TRIALS = 25
LOADS = (0.3, 0.5, 0.7, 0.8, 0.9, 1.0, 1.1)


def _decode_rate(load: float, trials: int = TRIALS) -> float:
    successes = 0
    for seed in range(trials):
        coins = PublicCoins(hash((load, seed)) & 0xFFFFFFFF)
        table = IBLT(coins, "e1", cells=M_CELLS, q=Q, key_bits=40)
        rng = np.random.default_rng(seed)
        keys = rng.choice(1 << 39, size=round(load * M_CELLS), replace=False)
        table.insert_all(int(key) for key in keys)
        if table.decode().success:
            successes += 1
    return successes / trials


@pytest.fixture(scope="module")
def sweep():
    threshold = molloy_threshold(Q)
    rows = []
    for load in LOADS:
        rate = _decode_rate(load)
        rows.append((load, rate, "below" if load < threshold else "above"))
    record_table(
        f"E1 (Theorem 2.6) — IBLT decode rate vs load, m={M_CELLS}, q={Q}, "
        f"threshold c*_3 = {threshold:.3f}",
        ["load c", "decode rate", "vs threshold"],
        rows,
    )
    return {load: rate for load, rate, _ in rows}


def test_below_threshold_decodes(sweep):
    assert sweep[0.3] >= 0.95
    assert sweep[0.5] >= 0.9
    assert sweep[0.7] >= 0.85


def test_above_threshold_fails(sweep):
    assert sweep[1.0] <= 0.3
    assert sweep[1.1] <= 0.1


def test_transition_is_monotone(sweep):
    rates = [sweep[load] for load in LOADS]
    # Allow small non-monotonic noise but require the overall cliff.
    assert rates[0] - rates[-1] >= 0.9


def test_decode_speed(benchmark, sweep):
    """Time one insert+decode cycle at a healthy load."""

    def run():
        coins = PublicCoins(1)
        table = IBLT(coins, "bench", cells=M_CELLS, q=Q, key_bits=40)
        table.insert_all(range(10_000, 10_150))
        return table.decode().success

    assert benchmark(run)
