"""E4 — EMD protocol on Hamming space (Corollary 3.5).

Claims: with probability at least 5/8 the protocol succeeds and
``EMD(S_A, S'_B) <= O(log n) · EMD_k(S_A, S_B)``, using
``O(k·d·log n·log(dn))`` bits — flat in ``n`` up to log factors, versus
the naive ``n·d``.  We sweep ``n`` on noisy-replica workloads with ``k``
planted outliers, and ablate Bob's repair matching (Hungarian vs greedy).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EMDProtocol
from repro.hashing import PublicCoins
from repro.metric import HammingSpace, emd, emd_k
from repro.workloads import noisy_replica_pair

from conftest import record_table

D = 64
K = 2
NS = (16, 32, 64)
TRIALS = 3


def _run_one(n: int, seed: int, matcher: str = "hungarian"):
    rng = np.random.default_rng(seed)
    space = HammingSpace(D)
    workload = noisy_replica_pair(
        space, n=n, k=K, close_radius=1, far_radius=20, rng=rng
    )
    protocol = EMDProtocol.for_instance(space, n=n, k=K)
    result = protocol.run(workload.alice, workload.bob, PublicCoins(seed), matcher=matcher)
    if not result.success:
        return {"success": False, "bits": result.total_bits}
    reference = max(emd_k(space, workload.alice, workload.bob, K), 1.0)
    achieved = emd(space, workload.alice, result.bob_final)
    before = emd(space, workload.alice, workload.bob)
    return {
        "success": True,
        "ratio": achieved / reference,
        "before": before,
        "after": achieved,
        "bits": result.total_bits,
    }


@pytest.fixture(scope="module")
def sweep():
    rows = []
    data = {}
    for n in NS:
        outcomes = [_run_one(n, 100 * n + t) for t in range(TRIALS)]
        successes = [o for o in outcomes if o["success"]]
        rate = len(successes) / len(outcomes)
        ratios = [o["ratio"] for o in successes]
        bits = float(np.mean([o["bits"] for o in outcomes]))
        naive = n * D
        rows.append(
            (
                n,
                rate,
                float(np.median(ratios)) if ratios else float("nan"),
                float(np.log2(n)),
                round(bits),
                naive,
            )
        )
        data[n] = {"rate": rate, "ratios": ratios, "bits": bits}
    record_table(
        f"E4 (Corollary 3.5) — EMD protocol on ({{0,1}}^{D}, Hamming), "
        f"k={K}, {TRIALS} trials per n; claim: ratio = O(log n), success >= 5/8",
        ["n", "success rate", "median EMD/EMD_k", "log2(n)", "measured bits", "naive bits (n*d)"],
        rows,
    )
    return data


def test_success_rate_at_least_paper_bound(sweep):
    """Theorem 3.4 promises failure probability <= 1/8 + 1/4; empirically
    the protocol almost always succeeds on these workloads."""
    total = sum(len(sweep[n]["ratios"]) for n in NS)
    assert total / (len(NS) * TRIALS) >= 5 / 8


def test_approximation_is_logarithmic(sweep):
    for n in NS:
        for ratio in sweep[n]["ratios"]:
            # O(log n) with a generous constant.
            assert ratio <= 6 * np.log2(n), (n, ratio)


def test_communication_flat_in_n(sweep):
    """Bits grow at most polylogarithmically in n (vs naive's linear)."""
    growth = sweep[64]["bits"] / sweep[16]["bits"]
    assert growth < 2.5  # naive grows 4x over the same range


def test_repair_ablation_hungarian_no_worse():
    """Greedy repair should not beat the exact Hungarian repair."""
    hungarian_ratios = []
    greedy_ratios = []
    for seed in range(3):
        exact = _run_one(24, 999 + seed, matcher="hungarian")
        greedy = _run_one(24, 999 + seed, matcher="greedy")
        if exact["success"] and greedy["success"]:
            hungarian_ratios.append(exact["ratio"])
            greedy_ratios.append(greedy["ratio"])
    assert hungarian_ratios, "no paired successes"
    assert np.mean(hungarian_ratios) <= np.mean(greedy_ratios) + 0.5


def test_protocol_speed(benchmark, sweep):
    rng = np.random.default_rng(5)
    space = HammingSpace(D)
    workload = noisy_replica_pair(
        space, n=16, k=K, close_radius=1, far_radius=20, rng=rng
    )
    protocol = EMDProtocol.for_instance(space, n=16, k=K)

    result = benchmark.pedantic(
        protocol.run,
        args=(workload.alice, workload.bob, PublicCoins(1)),
        rounds=1,
        iterations=1,
    )
    assert result.rounds == 1
