"""Benchmark-suite plumbing.

Each experiment module computes its paper-shaped table (the rows a reader
would compare against the paper's claims) and registers it here;
``pytest_terminal_summary`` prints every registered table after the
pytest-benchmark timing output, so ``pytest benchmarks/ --benchmark-only``
shows both machine timings and the reproduction tables.  The same rows
are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis import format_table

_TABLES: list[str] = []


def record_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Register an experiment table for the end-of-run summary."""
    _TABLES.append(format_table(headers, rows, title=title))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduction tables")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
