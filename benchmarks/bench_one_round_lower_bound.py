"""E9 — the one-round lower bound (Theorem 4.6).

Claim: on the index-problem instances (``r1 = 1``, ``k = 1``,
``d = Ω(log n + r2)``), no one-round ``O(n)``-bit protocol succeeds with
probability 2/3, while the 4-round Gap protocol solves the instance.  We
sweep the one-round strawman's bit budget to exhibit the ``Ω(n)`` wall,
and run the full reduction through the real Gap protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    make_index_instance,
    one_round_subset_protocol,
    solve_index_via_gap,
)
from repro.hashing import PublicCoins

from conftest import record_table

N = 60
R2 = 10
ONE_ROUND_TRIALS = 300
BUDGET_FRACTIONS = (0.0, 0.1, 1 / 3, 0.6, 1.0)


@pytest.fixture(scope="module")
def strawman_sweep():
    rng = np.random.default_rng(1)
    x = [int(b) for b in rng.integers(0, 2, size=N)]
    coins = PublicCoins(11)
    rows = []
    data = {}
    for fraction in BUDGET_FRACTIONS:
        budget = round(fraction * N)
        outcomes = [
            one_round_subset_protocol(
                x, int(rng.integers(0, N)), budget, coins, trial=trial
            )
            for trial in range(ONE_ROUND_TRIALS)
        ]
        rate = float(np.mean(outcomes))
        predicted = fraction + (1 - fraction) / 2
        rows.append((budget, f"{fraction:.2f}n", rate, predicted))
        data[fraction] = rate
    record_table(
        f"E9a (Theorem 4.6) — one-round subset protocol on the index instance, "
        f"n={N}; success 2/3 requires budget >= n/3",
        ["budget bits", "fraction of n", "measured success", "predicted b/n + (1-b/n)/2"],
        rows,
    )
    return data


@pytest.fixture(scope="module")
def reduction_runs():
    rows = []
    outcomes = []
    for seed in range(3):
        rng = np.random.default_rng(100 + seed)
        x = [int(b) for b in rng.integers(0, 2, size=8)]
        i = int(rng.integers(0, 8))
        instance = make_index_instance(x, i=i, r2=R2, rng=rng)
        answer, bits, rounds = solve_index_via_gap(instance, PublicCoins(seed))
        correct = answer == instance.answer
        outcomes.append((answer is not None, correct))
        rows.append((seed, instance.space.dim, rounds, bits, answer, instance.answer, correct))
    record_table(
        "E9b (Theorem 4.6) — solving the index problem via the 4-round Gap "
        "protocol (the separation: multi-round succeeds where one-round cannot)",
        ["seed", "dim", "rounds", "bits", "recovered x_i", "true x_i", "correct"],
        rows,
    )
    return outcomes


def test_strawman_matches_prediction(strawman_sweep):
    for fraction, rate in strawman_sweep.items():
        predicted = fraction + (1 - fraction) / 2
        assert rate == pytest.approx(predicted, abs=0.08)


def test_two_thirds_needs_linear_budget(strawman_sweep):
    assert strawman_sweep[0.1] < 2 / 3
    assert strawman_sweep[0.6] > 2 / 3


def test_gap_reduction_correct(reduction_runs):
    answered = [c for a, c in reduction_runs if a]
    assert len(answered) >= 2
    assert all(answered)


def test_reduction_speed(benchmark, strawman_sweep, reduction_runs):
    rng = np.random.default_rng(55)
    x = [int(b) for b in rng.integers(0, 2, size=8)]
    instance = make_index_instance(x, i=3, r2=R2, rng=rng)
    answer, _, _ = benchmark.pedantic(
        solve_index_via_gap,
        args=(instance, PublicCoins(9)),
        rounds=1,
        iterations=1,
    )
    assert answer in (0, 1, None)
