"""E7 — the Gap Guarantee protocol (Theorem 4.2, Corollaries 4.3 / 4.4).

Claims: 4 rounds; every point of ``S_A`` ends within ``r2`` of Bob's
final set; communication ``O((k + ρn)·polylog n + k·log|U|)``, beating
the naive ``n·log|U|`` transfer when ``ρ`` is small and ``d`` is large.
We sweep ``n`` and ``k`` on Hamming workloads (Cor. 4.3 regime) and run
an ℓ1 configuration (Cor. 4.4 regime).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GapProtocol, verify_gap_guarantee
from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH, GridMLSH
from repro.metric import GridSpace, HammingSpace
from repro.workloads import noisy_replica_pair

from conftest import record_table

D = 128
R1, R2 = 2.0, 32.0
TRIALS = 3
SETTINGS = ((32, 2), (64, 2), (64, 4))


def _run_hamming(n: int, k: int, seed: int):
    rng = np.random.default_rng(seed)
    space = HammingSpace(D)
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=int(R1), far_radius=R2 + 8, rng=rng
    )
    family = BitSamplingMLSH(space, w=float(D))
    params = family.derived_lsh_params(r1=R1, r2=R2)
    protocol = GapProtocol(space, family, params, n=n, k=k)
    result = protocol.run(workload.alice, workload.bob, PublicCoins(seed))
    if not result.success:
        return {"success": False}
    return {
        "success": True,
        "holds": verify_gap_guarantee(space, workload.alice, result.bob_final, R2),
        "transmitted": len(result.transmitted),
        "bits": result.total_bits,
        "rho": protocol.rho,
    }


@pytest.fixture(scope="module")
def sweep():
    rows = []
    data = {}
    for n, k in SETTINGS:
        outcomes = [_run_hamming(n, k, 7 * n + 13 * k + t) for t in range(TRIALS)]
        successes = [o for o in outcomes if o["success"]]
        holds = [o for o in successes if o["holds"]]
        bits = float(np.mean([o["bits"] for o in successes])) if successes else 0.0
        transmitted = (
            float(np.mean([o["transmitted"] for o in successes])) if successes else 0.0
        )
        naive = n * D
        rows.append(
            (
                n,
                k,
                len(successes) / TRIALS,
                len(holds) / max(1, len(successes)),
                transmitted,
                round(bits),
                naive,
            )
        )
        data[(n, k)] = {
            "successes": len(successes),
            "holds": len(holds),
            "bits": bits,
            "transmitted": transmitted,
        }
    record_table(
        f"E7 (Theorem 4.2 / Cor 4.3) — Gap protocol on ({{0,1}}^{D}, Hamming), "
        f"r1={R1}, r2={R2}; claim: guarantee always holds on success, 4 rounds",
        ["n", "k", "success rate", "guarantee rate", "mean transmitted", "bits", "naive bits"],
        rows,
    )
    return data


def test_guarantee_always_holds_on_success(sweep):
    for setting, stats in sweep.items():
        assert stats["holds"] == stats["successes"], setting


def test_mostly_successful(sweep):
    total = sum(stats["successes"] for stats in sweep.values())
    assert total >= 0.8 * len(SETTINGS) * TRIALS


def test_transmission_near_k(sweep):
    """T_A must cover the k far points; extra close points are allowed
    but should stay a small multiple of k + unresolved noise."""
    for (n, k), stats in sweep.items():
        assert stats["transmitted"] >= k
        assert stats["transmitted"] <= k + 0.5 * n


def test_l1_configuration_cor44():
    """Corollary 4.4's regime: ℓ1 grid with a constant r2/r1 gap."""
    rng = np.random.default_rng(0)
    space = GridSpace(side=4096, dim=2, p=1.0)
    n, k = 32, 2
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=4, far_radius=700.0, rng=rng
    )
    family = GridMLSH(space, w=512.0)
    params = family.derived_lsh_params(r1=4.0, r2=512.0)
    protocol = GapProtocol(space, family, params, n=n, k=k)
    result = protocol.run(workload.alice, workload.bob, PublicCoins(4))
    assert result.success
    assert verify_gap_guarantee(space, workload.alice, result.bob_final, 512.0)


def test_gap_speed(benchmark, sweep):
    rng = np.random.default_rng(9)
    space = HammingSpace(D)
    workload = noisy_replica_pair(
        space, n=32, k=2, close_radius=int(R1), far_radius=R2 + 8, rng=rng
    )
    family = BitSamplingMLSH(space, w=float(D))
    params = family.derived_lsh_params(r1=R1, r2=R2)
    protocol = GapProtocol(space, family, params, n=32, k=2)
    result = benchmark.pedantic(
        protocol.run,
        args=(workload.alice, workload.bob, PublicCoins(5)),
        rounds=1,
        iterations=1,
    )
    assert result.rounds == 4
