"""E11 — ablations of the design choices DESIGN.md calls out.

(a) RIBLT hash count ``q``: the paper fixes ``q >= 3`` and sizes tables
    at ``m = 4q²k``; sweeping ``q`` shows the cells-vs-robustness
    tradeoff (bigger q = more cells for the same pair budget but deeper
    sub-threshold margin).
(b) Gap far-key threshold ``τ``: the paper's ``h(1/2 + ε/6)`` balances
    false positives (extra transmission) against false negatives
    (guarantee violations); the sweep shows the safe plateau.
(c) Exact-reconciliation baselines head-to-head: IBLT [10] vs
    characteristic polynomials [21] vs strata-auto-sized IBLT — bits and
    decode behaviour for the same instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GapProtocol, verify_gap_guarantee
from repro.hashing import PublicCoins
from repro.iblt import RIBLT, riblt_cells_for_pairs
from repro.lsh import BitSamplingMLSH
from repro.metric import HammingSpace
from repro.reconcile import (
    cpi_reconcile,
    exact_iblt_reconcile,
    exact_iblt_reconcile_auto,
)
from repro.workloads import noisy_replica_pair

from conftest import record_table


# ---------------------------------------------------------------------------
# (a) RIBLT q sweep
# ---------------------------------------------------------------------------

def _riblt_decode_rate(q: int, pairs: int, trials: int = 20) -> tuple[int, float]:
    cells = riblt_cells_for_pairs(pairs, q=q)
    successes = 0
    for seed in range(trials):
        coins = PublicCoins(1000 * q + seed)
        table = RIBLT(coins, "abl", cells=cells, q=q, key_bits=40, dim=2, side=64)
        rng = np.random.default_rng(seed)
        for key in rng.choice(1 << 39, size=pairs, replace=False):
            table.insert(int(key), tuple(int(v) for v in rng.integers(0, 64, 2)))
        if table.decode().success:
            successes += 1
    return cells, successes / trials


@pytest.fixture(scope="module")
def riblt_q_sweep():
    pairs = 40
    rows = []
    data = {}
    for q in (3, 4, 5):
        cells, rate = _riblt_decode_rate(q, pairs)
        rows.append((q, cells, pairs / cells, f"{1/(q*(q-1)):.4f}", rate))
        data[q] = (cells, rate)
    record_table(
        "E11a — RIBLT q ablation at the paper's m = q^2 * (4k) sizing, "
        f"{pairs} pairs",
        ["q", "cells", "load", "tree threshold 1/(q(q-1))", "decode rate"],
        rows,
    )
    return data


def test_all_q_decode_reliably(riblt_q_sweep):
    for q, (_, rate) in riblt_q_sweep.items():
        assert rate >= 0.95, q


def test_larger_q_costs_cells(riblt_q_sweep):
    assert riblt_q_sweep[3][0] < riblt_q_sweep[4][0] < riblt_q_sweep[5][0]


# ---------------------------------------------------------------------------
# (b) Gap threshold sweep
# ---------------------------------------------------------------------------

def _gap_with_threshold(threshold_fraction: float, seed: int):
    rng = np.random.default_rng(seed)
    space = HammingSpace(128)
    n, k, r2 = 32, 2, 32.0
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=2, far_radius=r2 + 8, rng=rng
    )
    family = BitSamplingMLSH(space, w=128.0)
    params = family.derived_lsh_params(r1=2.0, r2=r2)
    probe = GapProtocol(space, family, params, n=n, k=k)
    threshold = max(1, round(threshold_fraction * probe.entries))
    protocol = GapProtocol(
        space, family, params, n=n, k=k, match_threshold=threshold
    )
    result = protocol.run(workload.alice, workload.bob, PublicCoins(seed))
    if not result.success:
        return None
    return {
        "holds": verify_gap_guarantee(space, workload.alice, result.bob_final, r2),
        "transmitted": len(result.transmitted),
    }


@pytest.fixture(scope="module")
def threshold_sweep():
    rows = []
    data = {}
    for fraction in (0.3, 0.5, 0.66, 0.8, 0.95):
        outcomes = [
            o
            for o in (_gap_with_threshold(fraction, 10 + t) for t in range(3))
            if o is not None
        ]
        holds = sum(o["holds"] for o in outcomes)
        transmitted = float(np.mean([o["transmitted"] for o in outcomes]))
        rows.append((fraction, f"{holds}/{len(outcomes)}", transmitted))
        data[fraction] = (holds, len(outcomes), transmitted)
    record_table(
        "E11b — Gap far-key threshold ablation (paper: tau = h(1/2 + eps/6) "
        "~ 0.64h here); low tau risks missed far points, high tau ships more",
        ["tau / h", "guarantee holds", "mean transmitted (k=2)"],
        rows,
    )
    return data


def test_paper_threshold_region_safe(threshold_sweep):
    for fraction in (0.5, 0.66, 0.8):
        holds, runs, _ = threshold_sweep[fraction]
        assert holds == runs, fraction


def test_transmission_grows_with_threshold(threshold_sweep):
    low = threshold_sweep[0.3][2]
    high = threshold_sweep[0.95][2]
    assert high >= low


# ---------------------------------------------------------------------------
# (c) Exact baselines head-to-head
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def exact_baselines():
    rng = np.random.default_rng(0)
    space = HammingSpace(40)
    shared = space.sample(rng, 150)
    alice = shared + space.sample(rng, 4)
    bob = shared + space.sample(rng, 4)
    delta = 8

    iblt = exact_iblt_reconcile(space, alice, bob, delta_bound=delta, coins=PublicCoins(1))
    cpi = cpi_reconcile(space, alice, bob, delta_bound=delta, coins=PublicCoins(1))
    auto = exact_iblt_reconcile_auto(space, alice, bob, coins=PublicCoins(1))

    rows = [
        ("IBLT [10], known bound", iblt.success, iblt.rounds, iblt.total_bits),
        ("char. polynomial [21]", cpi.success, cpi.rounds, cpi.total_bits),
        ("IBLT + strata auto-size [10]", auto.success, auto.rounds, auto.total_bits),
    ]
    record_table(
        "E11c — exact set reconciliation baselines, n=154, true difference 8",
        ["method", "success", "rounds", "measured bits"],
        rows,
    )
    return {"iblt": iblt, "cpi": cpi, "auto": auto, "alice": alice, "bob": bob}


def test_all_baselines_reconcile(exact_baselines):
    union = set(exact_baselines["alice"]) | set(exact_baselines["bob"])
    for name in ("iblt", "cpi", "auto"):
        result = exact_baselines[name]
        assert result.success, name
        assert set(result.bob_final) == union, name


def test_cpi_is_most_communication_efficient(exact_baselines):
    assert (
        exact_baselines["cpi"].total_bits
        < exact_baselines["iblt"].total_bits
        < exact_baselines["auto"].total_bits
    )


def test_ablation_speed(benchmark, riblt_q_sweep, threshold_sweep, exact_baselines):
    cells, _ = _riblt_decode_rate(3, 20, trials=2)
    assert benchmark(lambda: _riblt_decode_rate(3, 20, trials=2)[1]) >= 0.0
