"""E10 — Poisson branching process behaviour (Appendix B, [15]).

Claims: below the sparsity threshold ``1/(q(q-1))`` the survival
probability ``λ_t`` of the idealized deletion procedure decays *doubly
exponentially* while the unconditioned neighbourhood grows only singly
exponentially — the combination that makes the error-propagation sum
``O(1)`` (Lemma 3.10).  We tabulate ``λ_t`` below and above the
threshold and check the Monte-Carlo estimate against the recurrence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.branching import (
    expected_unconditioned_size,
    simulate_survival,
    survival_recurrence,
)
from repro.iblt import molloy_threshold, riblt_sparsity_threshold

from conftest import record_table

Q = 3
ROUNDS = 10


@pytest.fixture(scope="module")
def curves():
    threshold = riblt_sparsity_threshold(Q)
    peel_threshold = molloy_threshold(Q)
    below = survival_recurrence(0.8 * threshold, Q, ROUNDS)
    above = survival_recurrence(1.2 * peel_threshold, Q, ROUNDS)
    rows = []
    for t in range(ROUNDS):
        rows.append(
            (
                t + 1,
                below.lam[t],
                above.lam[t],
                expected_unconditioned_size(0.8 * threshold, Q, t + 1),
            )
        )
    record_table(
        f"E10 (Appendix B) — survival probability lambda_t, q={Q}, "
        f"RIBLT threshold 1/(q(q-1)) = {threshold:.4f}, "
        f"peelability threshold c*_q = {peel_threshold:.4f}; "
        "claim: doubly-exponential decay below, persistence above c*_q",
        [
            "round t",
            f"lambda_t at c=0.8/(q(q-1))",
            "lambda_t at c=1.2*c*_q",
            "E[tree size] below",
        ],
        rows,
    )
    return below, above


def test_below_threshold_extinct(curves):
    below, _ = curves
    assert below.lam[-1] < 1e-6


def test_above_threshold_survives(curves):
    _, above = curves
    assert above.lam[-1] > 0.05


def test_decay_is_super_geometric(curves):
    below, _ = curves
    lam = [v for v in below.lam if v > 1e-200]
    logs = [-np.log(v) for v in lam[1:]]
    ratios = [b / a for a, b in zip(logs, logs[1:])]
    assert ratios[-1] > 1.4  # accelerating decay (approaching squaring)


def test_tree_growth_is_single_exponential(curves):
    threshold = riblt_sparsity_threshold(Q)
    sizes = [expected_unconditioned_size(0.8 * threshold, Q, t) for t in range(1, 8)]
    growth = [b / a for a, b in zip(sizes, sizes[1:])]
    # Growth factor bounded by q-1 = 2 per level.
    assert all(g < Q - 1 + 0.1 for g in growth)


def test_monte_carlo_matches_recurrence(curves):
    below, _ = curves
    rng = np.random.default_rng(3)
    estimate = simulate_survival(below.c, Q, 3, trials=6000, rng=rng)
    assert estimate == pytest.approx(below.lam[2], abs=0.02)


def test_recurrence_speed(benchmark, curves):
    threshold = riblt_sparsity_threshold(Q)
    curve = benchmark(survival_recurrence, 0.8 * threshold, Q, 50)
    assert curve.rounds == 50
