"""E5 — scaled EMD protocol on (ℓ2) grids (Corollary 3.6).

Claims: dividing ``[D1, D2]`` into geometric intervals and running
Algorithm 1 per interval yields ``EMD(S_A, S'_B) <= O(log n) · EMD_k``
with communication ``O(k·d·log(nΔ)·log(D2/D1))`` — again flat in ``n``.
The interval machinery also keeps per-point hashing cheap (each interval
needs only ``O(1)`` levels).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ScaledEMDProtocol
from repro.hashing import PublicCoins
from repro.metric import GridSpace, emd, emd_k
from repro.workloads import noisy_replica_pair

from conftest import record_table

SIDE = 4096
DIM = 2
K = 2
NS = (16, 32)
TRIALS = 3


def _run_one(n: int, seed: int):
    rng = np.random.default_rng(seed)
    space = GridSpace(side=SIDE, dim=DIM, p=2.0)
    workload = noisy_replica_pair(
        space, n=n, k=K, close_radius=3, far_radius=500, rng=rng
    )
    protocol = ScaledEMDProtocol(
        space, n=n, k=K, d1=4.0, d2=n * space.diameter, ratio=8.0
    )
    result = protocol.run(workload.alice, workload.bob, PublicCoins(seed))
    if not result.success:
        return {"success": False, "bits": result.total_bits}
    reference = max(emd_k(space, workload.alice, workload.bob, K), 1.0)
    achieved = emd(space, workload.alice, result.bob_final)
    return {
        "success": True,
        "ratio": achieved / reference,
        "bits": result.total_bits,
        "interval": result.chosen_interval,
        "intervals": protocol.intervals,
    }


@pytest.fixture(scope="module")
def sweep():
    rows = []
    data = {}
    for n in NS:
        outcomes = [_run_one(n, 31 * n + t) for t in range(TRIALS)]
        successes = [o for o in outcomes if o["success"]]
        rate = len(successes) / len(outcomes)
        ratios = [o["ratio"] for o in successes]
        bits = float(np.mean([o["bits"] for o in outcomes]))
        naive = n * DIM * int(np.ceil(np.log2(SIDE)))
        rows.append(
            (
                n,
                rate,
                float(np.median(ratios)) if ratios else float("nan"),
                round(bits),
                naive,
            )
        )
        data[n] = {"rate": rate, "ratios": ratios, "bits": bits}
    record_table(
        f"E5 (Corollary 3.6) — scaled EMD protocol on ([{SIDE}]^{DIM}, l2), "
        f"k={K}, interval ratio 8; claim: ratio = O(log n)",
        ["n", "success rate", "median EMD/EMD_k", "measured bits", "naive bits"],
        rows,
    )
    return data


def test_success_rate(sweep):
    total_success = sum(len(sweep[n]["ratios"]) for n in NS)
    assert total_success / (len(NS) * TRIALS) >= 5 / 8


def test_approximation_logarithmic(sweep):
    for n in NS:
        for ratio in sweep[n]["ratios"]:
            assert ratio <= 6 * np.log2(n), (n, ratio)


def test_communication_subquadratic_growth(sweep):
    growth = sweep[32]["bits"] / sweep[16]["bits"]
    assert growth < 2.0  # naive doubles; protocol grows only in log n


def test_protocol_speed(benchmark, sweep):
    rng = np.random.default_rng(31 * 16)  # the sweep's first (feasible) seed
    space = GridSpace(side=SIDE, dim=DIM, p=2.0)
    workload = noisy_replica_pair(
        space, n=16, k=K, close_radius=3, far_radius=500, rng=rng
    )
    protocol = ScaledEMDProtocol(
        space, n=16, k=K, d1=4.0, d2=16 * space.diameter, ratio=8.0
    )
    result = benchmark.pedantic(
        protocol.run,
        args=(workload.alice, workload.bob, PublicCoins(2)),
        rounds=1,
        iterations=1,
    )
    assert result.rounds == 1
