"""E8 — the low-dimensional Gap protocol (Theorem 4.5).

Claim: in constant-dimensional ``ℓ_p`` spaces the one-sided grid LSH
(``p2 = 0``, ``m = 1``, ``h = Θ(log n / log(1/ρ̂))``) improves over the
general protocol by roughly a ``log(r2/r1)`` factor in communication
while keeping the same guarantee.  We run both protocols on identical
ℓ1 workloads in d = 2 and 3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GapProtocol,
    low_dimensional_gap_protocol,
    verify_gap_guarantee,
)
from repro.hashing import PublicCoins
from repro.lsh import GridMLSH
from repro.metric import GridSpace
from repro.workloads import noisy_replica_pair

from conftest import record_table

N, K = 32, 2
TRIALS = 3
#: (dim, side, r1, r2, far_radius)
CONFIGS = ((2, 4096, 4.0, 512.0, 700.0), (3, 1024, 4.0, 384.0, 500.0))


def _run_pair(dim: int, side: int, r1: float, r2: float, far: float, seed: int):
    rng = np.random.default_rng(seed)
    space = GridSpace(side=side, dim=dim, p=1.0)
    workload = noisy_replica_pair(
        space, n=N, k=K, close_radius=int(r1), far_radius=far, rng=rng
    )
    coins = PublicCoins(seed)

    general_family = GridMLSH(space, w=r2)
    general_params = general_family.derived_lsh_params(r1=r1, r2=r2)
    general = GapProtocol(space, general_family, general_params, n=N, k=K)
    general_result = general.run(workload.alice, workload.bob, coins.child("gen"))

    lowdim = low_dimensional_gap_protocol(space, n=N, k=K, r1=r1, r2=r2)
    lowdim_result = lowdim.run(workload.alice, workload.bob, coins.child("low"))

    def stats(result):
        if not result.success:
            return None
        return {
            "holds": verify_gap_guarantee(space, workload.alice, result.bob_final, r2),
            "bits": result.total_bits,
        }

    return stats(general_result), stats(lowdim_result), general, lowdim


@pytest.fixture(scope="module")
def sweep():
    rows = []
    data = {}
    for dim, side, r1, r2, far in CONFIGS:
        general_bits, lowdim_bits = [], []
        general_holds = lowdim_holds = general_runs = lowdim_runs = 0
        entries = (None, None)
        for trial in range(TRIALS):
            general, lowdim, gp, lp = _run_pair(dim, side, r1, r2, far, 17 * dim + trial)
            entries = (gp.entries * gp.per_entry, lp.entries)
            if general is not None:
                general_runs += 1
                general_holds += general["holds"]
                general_bits.append(general["bits"])
            if lowdim is not None:
                lowdim_runs += 1
                lowdim_holds += lowdim["holds"]
                lowdim_bits.append(lowdim["bits"])
        rows.append(
            (
                dim,
                f"{general_holds}/{general_runs}",
                f"{lowdim_holds}/{lowdim_runs}",
                round(float(np.mean(general_bits))) if general_bits else 0,
                round(float(np.mean(lowdim_bits))) if lowdim_bits else 0,
                entries[0],
                entries[1],
            )
        )
        data[dim] = {
            "general_bits": general_bits,
            "lowdim_bits": lowdim_bits,
            "general_holds": general_holds,
            "lowdim_holds": lowdim_holds,
            "general_runs": general_runs,
            "lowdim_runs": lowdim_runs,
        }
    record_table(
        f"E8 (Theorem 4.5) — general vs one-sided low-dim Gap protocol on l1 grids, "
        f"n={N}, k={K}; claim: fewer LSH evaluations and bits in low dimension",
        [
            "dim",
            "general guarantee",
            "lowdim guarantee",
            "general bits",
            "lowdim bits",
            "general LSH/point",
            "lowdim LSH/point",
        ],
        rows,
    )
    return data


def test_guarantees_hold(sweep):
    for dim, stats in sweep.items():
        assert stats["general_holds"] == stats["general_runs"], dim
        assert stats["lowdim_holds"] == stats["lowdim_runs"], dim
        assert stats["lowdim_runs"] >= TRIALS - 1


def test_lowdim_cheaper(sweep):
    """The headline of Theorem 4.5: the one-sided construction reduces
    communication in low dimension."""
    for dim, stats in sweep.items():
        if stats["general_bits"] and stats["lowdim_bits"]:
            assert np.mean(stats["lowdim_bits"]) < np.mean(stats["general_bits"]), dim


def test_lowdim_speed(benchmark, sweep):
    rng = np.random.default_rng(10)
    space = GridSpace(side=4096, dim=2, p=1.0)
    workload = noisy_replica_pair(
        space, n=N, k=K, close_radius=4, far_radius=700.0, rng=rng
    )
    protocol = low_dimensional_gap_protocol(space, n=N, k=K, r1=4.0, r2=512.0)
    result = benchmark.pedantic(
        protocol.run,
        args=(workload.alice, workload.bob, PublicCoins(6)),
        rounds=1,
        iterations=1,
    )
    assert result.rounds == 4
