"""E2 — RIBLT error propagation (Figure 1, Lemma 3.10).

Claim: with breadth-first peeling of ``G^q_{m,cm}`` and a single seeded
unit error, the final total error ``Σ_v C_v`` is ``O(1)`` whenever
``c < 1/(q(q-1))`` and blows up as ``c`` approaches the peelability
threshold.  We sweep ``c`` across ``1/(q(q-1))`` for q = 3 and 4, and
ablate the breadth-first order against depth-first (LIFO) peeling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.branching import error_propagation_trials
from repro.iblt import molloy_threshold, riblt_sparsity_threshold

from conftest import record_table

M_VERTICES = 800
TRIALS = 30


def _mean_error(c: float, q: int, order: str, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    results = error_propagation_trials(
        M_VERTICES, c, q, trials=TRIALS, rng=rng, order=order
    )
    return float(np.mean([result.total_error for result in results]))


@pytest.fixture(scope="module")
def sweep():
    rows = []
    data = {}
    for q in (3, 4):
        threshold = riblt_sparsity_threshold(q)
        densities = [
            ("0.5x", 0.5 * threshold),
            ("0.8x", 0.8 * threshold),
            ("1.0x", 1.0 * threshold),
            ("2.0x", 2.0 * threshold),
            ("0.9c*", 0.9 * molloy_threshold(q)),
        ]
        for label, c in densities:
            bfs = _mean_error(c, q, "bfs")
            dfs = _mean_error(c, q, "dfs")
            rows.append((q, round(c, 4), label, bfs, dfs))
            data[(q, label)] = (bfs, dfs)
    record_table(
        "E2 (Fig. 1 / Lemma 3.10) — mean total error sum(C_v) after peeling, "
        f"m={M_VERTICES}, one seeded unit error; threshold = 1/(q(q-1))",
        ["q", "c", "c vs 1/(q(q-1))", "BFS mean error", "DFS mean error"],
        rows,
    )
    return data


def test_subthreshold_error_constant(sweep):
    """Lemma 3.10: below the threshold the expected error sum is O(1)."""
    for q in (3, 4):
        assert sweep[(q, "0.5x")][0] < 3.0
        assert sweep[(q, "0.8x")][0] < 4.0


def test_error_grows_near_peeling_threshold(sweep):
    for q in (3, 4):
        below = sweep[(q, "0.5x")][0]
        near_core = sweep[(q, "0.9c*")][0]
        assert near_core > 2 * below


def test_bfs_comparable_or_better_in_tail(sweep):
    """The ablation: at sub-threshold densities both orders give small
    error (the paper requires BFS for the *analysis*; empirically the
    orders are close in the tree regime)."""
    for q in (3, 4):
        bfs, dfs = sweep[(q, "0.8x")]
        assert bfs < 4.0 and dfs < 8.0


def test_propagation_speed(benchmark, sweep):
    rng = np.random.default_rng(42)

    def run():
        return error_propagation_trials(
            M_VERTICES, 0.8 * riblt_sparsity_threshold(3), 3, trials=5, rng=rng
        )

    results = benchmark(run)
    assert len(results) == 5
