#!/usr/bin/env python
"""Tracked performance baseline for the vectorised hot path.

Measures the numpy backend against the pure-Python reference on the
kernels every protocol in this repo funnels through — batch key hashing
over the Mersenne field, prefix-key construction, and IBLT build /
subtract+decode — and writes the timings to ``BENCH_core.json`` so later
PRs have a trajectory to beat.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py            # full (n = 10^5)
    PYTHONPATH=src python benchmarks/run_perf.py --quick    # CI smoke (n = 2·10^4)
    PYTHONPATH=src python benchmarks/run_perf.py --quick \
        --compare benchmarks/BENCH_core.json                # regression gate

The regression gate compares *speedups* (numpy vs python on the same
machine in the same run), not absolute times, so it is robust to slow CI
hosts: it fails when any kernel's measured speedup drops below half of
the committed baseline's.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.params import derive_emd_parameters
from repro.experiments.sweeps import SweepRunner, SweepSpec, render_sweep_report
from repro.hashing import Checksum, PairwiseHash, PrefixHasher, PublicCoins
from repro.iblt import IBLT, RIBLT, cells_for_differences, riblt_cells_for_pairs
from repro.lsh.keys import PrefixKeyBuilder
from repro.metric import HammingSpace

FULL_N = 100_000
QUICK_N = 20_000
#: Differences decoded in the IBLT kernel (table sized for this, so the
#: decode load sits at the realistic ~0.5 of cells_for_differences).
DIFF_FRACTION = 0.01

REGRESSION_FACTOR = 2.0

#: Kernels tracked in the report but excluded from the regression floor.
#: ``sweep_trials`` compares serial vs. a 2-worker pool, so its "speedup"
#: is parallel efficiency — a function of the *host's* core count, unlike
#: the python-vs-numpy ratios the same-machine gate was designed around
#: (a baseline recorded on a many-core box would fail spuriously on a
#: small CI runner).  ``store_warm_serve`` compares a cold rebuild
#: against a sub-microsecond cache hit: the ratio is enormous and
#: dominated by timer noise on the warm side, so the gate would flap;
#: the >= 5x floor the store must clear is asserted inside the kernel
#: instead.
#: ``stream_replay`` compares whole-stack replays on the two backends:
#: the workload is tiny and store-bookkeeping-dominated, so its ratio is
#: near 1x and host-sensitive; the kernel's real gate is the in-kernel
#: assertion that both backends render byte-identical replay reports.
#: ``riblt_decode_compiled`` compares the cached interpreter engine to
#: the compiled FIFO peel kernel, which only exists when numba is
#: installed — on a fallback host both columns time the same engine and
#: the ratio pins at ~1.0x, so gating it would make the gate's verdict
#: depend on the *environment* rather than the code.  The row's real
#: contract is the in-kernel byte-equality assertion plus the compiled
#: CI leg, which checks the >= 5x floor where numba is present.
UNGATED_KERNELS = frozenset(
    {"sweep_trials", "store_warm_serve", "stream_replay", "riblt_decode_compiled"}
)


def _best(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def bench_pairwise_hash(coins: PublicCoins, n: int, repeats: int) -> tuple[float, float]:
    """One pairwise hash + one checksum per key — the per-key IBLT hash cost."""
    rng = np.random.default_rng(0xA11CE)
    keys = rng.integers(0, 1 << 61, size=n, dtype=np.int64).astype(np.uint64)
    pairwise = PairwiseHash(coins, "bench-pairwise", bits=61)
    checksum = Checksum(coins, "bench-checksum", bits=61)
    key_list = keys.tolist()

    def python_path():
        return [pairwise(key) for key in key_list], [checksum(key) for key in key_list]

    def numpy_path():
        return pairwise.hash_array(keys), checksum.hash_array(keys)

    numpy_path()  # warm up
    return _best(python_path, max(2, repeats // 2)), _best(numpy_path, repeats)


def bench_prefix_keys(coins: PublicCoins, n: int, repeats: int) -> tuple[float, float]:
    """Multi-resolution prefix keys (Algorithm 1's key builder) per point."""
    rng = np.random.default_rng(0xB0B)
    rows = max(1, n // 10)
    values = rng.integers(0, 1 << 60, size=(rows, 32), dtype=np.int64)
    lengths = [1, 2, 4, 8, 16, 32]
    hasher = PrefixHasher(coins, "bench-prefix", bits=60)
    value_lists = values.tolist()

    def python_path():
        return [hasher.prefix_digests(row, lengths) for row in value_lists]

    def numpy_path():
        return hasher.prefix_digests_many(values, lengths)

    numpy_path()
    return _best(python_path, max(2, repeats // 2)), _best(numpy_path, repeats)


def bench_emd_keys(coins: PublicCoins, n: int, repeats: int) -> tuple[float, float]:
    """Algorithm 1's unified key stream: the Mersenne-61 PrefixKeyBuilder's
    per-level digests over a real derived prefix schedule, vectorised
    (``prefix_digests_many``) vs the scalar per-point reference."""
    space = HammingSpace(64)
    rows = max(1, n // 10)
    params = derive_emd_parameters(space, n=rows, k=4, max_total_hashes=32)
    batch = params.family.sample_batch(coins, "bench-emd-mlsh", params.total_hashes)
    builder = PrefixKeyBuilder(
        batch, params.hash_counts, coins, "bench-emd-keys", key_bits=params.key_bits
    )
    points = space.sample(np.random.default_rng(0xE3D), rows)
    values = batch.evaluate(points)
    lengths = list(params.hash_counts)
    value_lists = [[int(v) for v in row] for row in values]

    def python_path():
        return [builder.hasher.prefix_digests(row, lengths) for row in value_lists]

    def numpy_path():
        return builder.hasher.prefix_digests_many(values, lengths)

    numpy_path()
    return _best(python_path, max(2, repeats // 2)), _best(numpy_path, repeats)


def bench_emd_round(coins: PublicCoins, n: int, repeats: int) -> tuple[float, float]:
    """One EMD level round: RIBLT insert (Alice) + delete (Bob) + decode,
    per-pair scalar updates vs the array-native batch path."""
    rng = np.random.default_rng(0xE3D2)
    rows = max(32, n // 50)
    dim, side, k, q = 4, 256, 5, 3
    cells = 4 * q * q * k
    keys = rng.choice(1 << 55, size=rows, replace=False).astype(np.uint64)
    values = rng.integers(0, side, size=(rows, dim), dtype=np.int64)
    differences = 2 * k
    bob_keys = keys.copy()
    bob_keys[:differences] = rng.choice(1 << 54, size=differences, replace=False).astype(
        np.uint64
    ) + np.uint64(1 << 54)
    bob_values = values.copy()
    bob_values[:differences] = rng.integers(0, side, size=(differences, dim))
    key_list = keys.tolist()
    value_list = [tuple(row) for row in values.tolist()]
    bob_key_list = bob_keys.tolist()
    bob_value_list = [tuple(row) for row in bob_values.tolist()]

    def make_table() -> RIBLT:
        return RIBLT(
            coins, "bench-emd-round", cells=cells, q=q, key_bits=55, dim=dim, side=side
        )

    def python_path():
        table = make_table()
        for key, value in zip(key_list, value_list):
            table.insert(key, value)
        for key, value in zip(bob_key_list, bob_value_list):
            table.delete(key, value)
        result = table.decode()
        assert result.success and result.pair_count == 2 * differences

    def numpy_path():
        table = make_table()
        table.insert_batch(keys, values)
        table.delete_batch(bob_keys, bob_values)
        result = table.decode()
        assert result.success and result.pair_count == 2 * differences

    numpy_path()
    return _best(python_path, max(2, repeats // 2)), _best(numpy_path, repeats)


def bench_riblt_decode(coins: PublicCoins, n: int, repeats: int) -> tuple[float, float]:
    """RIBLT peel of a wide difference table: the pre-engine scalar-per-step
    decode (``engine="scalar"``) vs the batch-primed hash-cache engine
    (``engine="cached"``).  Both peel the identical FIFO sequence and
    produce bit-identical pairs (asserted); the speedup is the shared
    peel engine's hash-batching win, which every EMD level decode rides."""
    rng = np.random.default_rng(0x51B17)
    rows = max(256, n // 100)
    differences = max(32, n // 800)
    dim, side, q = 4, 256, 3
    cells = riblt_cells_for_pairs(2 * differences + 8, q=q)
    keys = rng.choice(1 << 55, size=rows, replace=False).astype(np.uint64)
    values = rng.integers(0, side, size=(rows, dim), dtype=np.int64)
    bob_keys = keys.copy()
    bob_keys[:differences] = rng.choice(1 << 54, size=differences, replace=False).astype(
        np.uint64
    ) + np.uint64(1 << 54)
    bob_values = values.copy()
    bob_values[:differences] = rng.integers(0, side, size=(differences, dim))

    table = RIBLT(
        coins, "bench-riblt-decode", cells=cells, q=q, key_bits=55, dim=dim, side=side
    )
    table.insert_batch(keys, values)
    table.delete_batch(bob_keys, bob_values)

    outcomes = {}

    def decode(engine: str):
        result = table.copy().decode(engine=engine)
        assert result.success and result.pair_count == 2 * differences
        outcomes[engine] = (result.inserted, result.deleted)

    decode("cached")  # warm up (and prime the shared clone cache)
    decode("scalar")
    assert outcomes["cached"] == outcomes["scalar"], "engines diverged"
    # Both engines are interpreter paths, so this ratio is a property of
    # the code alone (no optional dependency can change it) and the row
    # stays regression-gated.  The compiled kernel gets its own ungated
    # row below (``riblt_decode_compiled``).
    return (
        _best(lambda: decode("scalar"), max(2, repeats // 2)),
        _best(lambda: decode("cached"), repeats),
    )


def bench_riblt_decode_compiled(
    coins: PublicCoins, n: int, repeats: int
) -> tuple[float, float]:
    """RIBLT peel: the cached interpreter engine vs the compiled FIFO
    kernel (``engine="compiled"``).  When numba is missing the second
    column falls back to timing the cached engine again, so the row is
    always present but only meaningful on compiled hosts — the CI
    compiled-kernels leg asserts the >= 5x floor there; locally the row
    just tracks (see ``UNGATED_KERNELS``).  Either way the two engines'
    decoded pairs are asserted identical."""
    from repro.iblt import _kernels

    rng = np.random.default_rng(0x51B18)
    rows = max(256, n // 100)
    differences = max(32, n // 800)
    dim, side, q = 4, 256, 3
    cells = riblt_cells_for_pairs(2 * differences + 8, q=q)
    keys = rng.choice(1 << 55, size=rows, replace=False).astype(np.uint64)
    values = rng.integers(0, side, size=(rows, dim), dtype=np.int64)
    bob_keys = keys.copy()
    bob_keys[:differences] = rng.choice(1 << 54, size=differences, replace=False).astype(
        np.uint64
    ) + np.uint64(1 << 54)
    bob_values = values.copy()
    bob_values[:differences] = rng.integers(0, side, size=(differences, dim))

    table = RIBLT(
        coins, "bench-riblt-compiled", cells=cells, q=q, key_bits=55, dim=dim, side=side
    )
    table.insert_batch(keys, values)
    table.delete_batch(bob_keys, bob_values)

    compiled_available = _kernels.active() is not None
    fast_engine = "compiled" if compiled_available else "cached"
    outcomes = {}

    def decode(engine: str):
        result = table.copy().decode(engine=engine)
        assert result.success and result.pair_count == 2 * differences
        outcomes[engine] = (result.inserted, result.deleted)

    decode("cached")  # warm up (and, when compiling, pay the JIT once)
    decode(fast_engine)
    assert outcomes["cached"] == outcomes[fast_engine], "compiled engine diverged"
    return (
        _best(lambda: decode("cached"), max(2, repeats // 2)),
        _best(lambda: decode(fast_engine), repeats),
    )


def bench_iblt_decode_tail(
    coins: PublicCoins, n: int, repeats: int
) -> tuple[float, float]:
    """Sparse-regime IBLT decode: a small difference set whose peel is
    dominated by the geometric *tail* of the frontier, where the adaptive
    engine drops to scalar rounds.  Python backend vs numpy frontier on
    subtract+decode only (tables prebuilt), so the adaptive switch is what
    the tracked speedup measures."""
    alice, bob, differences = _iblt_inputs(n, fraction=0.00025)
    # 3x headroom: this kernel measures the tail regime, not the peeling
    # threshold, and a tiny table at load ~0.5 can draw a 2-core at a
    # fixed seed (the threshold curve is the sweep campaign's job).
    cells = cells_for_differences(2 * differences, headroom=3.0)

    tables = {}
    for backend in ("python", "numpy"):
        table_a = IBLT(
            coins, "bench-iblt-tail", cells=cells, q=3, key_bits=55, backend=backend
        )
        table_b = IBLT(
            coins, "bench-iblt-tail", cells=cells, q=3, key_bits=55, backend=backend
        )
        if backend == "numpy":
            table_a.insert_batch(alice)
            table_b.insert_batch(bob)
        else:
            table_a.insert_all(alice.tolist())
            table_b.insert_all(bob.tolist())
        tables[backend] = (table_a, table_b)

    def decode(backend: str):
        table_a, table_b = tables[backend]
        result = table_b.subtract(table_a).decode()
        assert result.success and result.difference_count == 2 * differences

    decode("numpy")  # warm up
    return (
        _best(lambda: decode("python"), max(2, repeats // 2)),
        _best(lambda: decode("numpy"), repeats),
    )


def bench_sweep_trials(n: int, repeats: int) -> tuple[float, float]:
    """Sweep-campaign trial throughput: serial vs a 2-worker thread pool.

    Unlike the other kernels this row is not python-vs-numpy: the first
    column is ``--jobs 1`` (serial, in-process) and the second a
    ``--jobs 2 --pool thread`` dispatch over the *same* numpy-backend
    trials, so ``speedup`` is the pool's parallel efficiency.  Threads
    pay no fork and no pickle, but they only overlap where the hot loops
    release the GIL — i.e. when the compiled kernel layer is active —
    so on a fallback host the ratio hovers near 1.0x while a compiled
    host approaches the core count; both are host facts the tracked
    baseline records, not code properties (see ``UNGATED_KERNELS``).
    The serial and threaded reports are asserted byte-identical, so the
    perf row doubles as a determinism check.
    """
    sweep = SweepSpec(
        name="bench-sweep",
        protocol="iblt-load",
        axes={"cells": (128, 192)},
        base_params={"n": max(512, n // 2), "differences": 48, "q": 3},
        trials=4,
    )
    serial = SweepRunner(backend="numpy", jobs=1)
    # The parallel runner's pool is *persistent*: the first run pays the
    # worker spin-up and every later campaign reuses the warm pool, which
    # is exactly how the CLI drives multi-campaign sweeps.  Best-of
    # timing therefore measures the steady state, not the cold start.
    parallel = SweepRunner(backend="numpy", jobs=2, pool="thread")

    def serial_path():
        return render_sweep_report(sweep, serial.run(sweep, seed=7), seed=7)

    def parallel_path():
        return render_sweep_report(sweep, parallel.run(sweep, seed=7), seed=7)

    try:
        assert serial_path() == parallel_path(), "parallelism leaked into the report"
        return (
            _best(serial_path, max(2, repeats // 2)),
            _best(parallel_path, max(2, repeats // 2)),
        )
    finally:
        parallel.close()


def bench_store_warm_serve(
    coins: PublicCoins, n: int, repeats: int
) -> tuple[float, float]:
    """Store-backed warm sketch serving vs a cold rebuild of the same set.

    The first column is the cold path: a fresh IBLT over the n-key set
    plus serialisation — what a stateless server pays on *every* repeat
    request.  The second is :meth:`SketchStore.serve_iblt` on a resident
    entry: a warm hit returning the cached payload without touching the
    Mersenne field.  The payloads are asserted byte-identical and the
    warm path is asserted to hash zero keys, so the ratio measures the
    cost of statelessness, not a shortcut — and the kernel itself
    asserts the >= 5x floor (the report row is not regression-gated;
    see ``UNGATED_KERNELS``).
    """
    from repro.store import SketchStore, StoreConfig

    keys, _, differences = _iblt_inputs(n)
    cells = cells_for_differences(2 * differences)
    store = SketchStore(StoreConfig(seed=2019, shards=4, capacity=8))
    store.put_set(1, keys.tolist(), key_bits=55)

    def cold() -> tuple[bytes, int]:
        table = IBLT(coins, "bench-store", cells=cells, q=3, key_bits=55)
        table.insert_batch(keys)
        return table.to_payload()

    def warm() -> tuple[bytes, int]:
        return store.serve_iblt(1, coins, "bench-store", cells=cells, q=3)

    cold_payload = cold()
    assert warm() == cold_payload, "warm serve must be byte-identical to cold"
    hashed_before = store.stats.keys_hashed
    assert warm() == cold_payload
    assert store.stats.keys_hashed == hashed_before, "warm serve hashed keys"
    cold_s = _best(cold, max(2, repeats // 2))
    warm_s = _best(warm, repeats)
    assert cold_s >= 5 * warm_s, (
        f"warm serve must be >= 5x a cold rebuild, got {cold_s / warm_s:.1f}x"
    )
    return cold_s, warm_s


def bench_stream_replay(n: int, repeats: int) -> tuple[float, float]:
    """Full streaming replay — churn stream through per-party stores over a
    ring, every window reconciled by ID-sketch gossip — on the python
    backend vs the numpy backend.  The two rendered ``repro.stream/v1``
    reports are asserted byte-identical (the report embeds no backend
    name precisely so this comparison is meaningful), so the row doubles
    as the cross-backend determinism check for the whole streaming
    stack.  The workload is small and sketch-dominated, so the ratio is
    modest and host-sensitive — tracked, not gated (``UNGATED_KERNELS``).
    """
    import os

    from repro.core import Topology
    from repro.stream import StreamReplayer, render_replay_report
    from repro.workloads import ChurnGenerator

    coins = PublicCoins(2019).child("bench-stream")
    workload = ChurnGenerator(coins.child("workload"), key_bits=55).generate(
        n=max(64, n // 250),
        windows=4,
        rate=max(8, n // 2500),
        skew=1.2,
        sources=4,
    )
    topology = Topology.ring(4)

    def replay(backend: str) -> str:
        previous = os.environ.get("REPRO_BACKEND")
        os.environ["REPRO_BACKEND"] = backend
        try:
            replayer = StreamReplayer(
                topology, coins.child("replay"), key_bits=55, delta_bound=8
            )
            report = replayer.replay(workload.events)
        finally:
            if previous is None:
                os.environ.pop("REPRO_BACKEND", None)
            else:
                os.environ["REPRO_BACKEND"] = previous
        assert report.converged and report.matches_cold_rebuild
        return render_replay_report(report, seed=2019)

    assert replay("python") == replay("numpy"), "stream replay diverged across backends"
    return (
        _best(lambda: replay("python"), max(2, repeats // 2)),
        _best(lambda: replay("numpy"), repeats),
    )


def _iblt_inputs(
    n: int, fraction: float = DIFF_FRACTION
) -> tuple[np.ndarray, np.ndarray, int]:
    rng = np.random.default_rng(0x5EED)
    differences = max(16, int(n * fraction))
    universe = rng.choice(1 << 55, size=n + differences, replace=False)
    alice = universe[:n]
    bob = np.concatenate([universe[differences:n], universe[n:]])
    return alice.astype(np.uint64), bob.astype(np.uint64), differences


def bench_iblt(
    coins: PublicCoins, n: int, repeats: int
) -> tuple[tuple[float, float], tuple[float, float]]:
    """IBLT build (two tables of n keys) and subtract+decode, per backend."""
    alice, bob, differences = _iblt_inputs(n)
    cells = cells_for_differences(2 * differences)

    def build(backend: str) -> tuple[IBLT, IBLT]:
        table_a = IBLT(coins, "bench-iblt", cells=cells, q=3, key_bits=55, backend=backend)
        table_b = IBLT(coins, "bench-iblt", cells=cells, q=3, key_bits=55, backend=backend)
        if backend == "numpy":
            table_a.insert_batch(alice)
            table_b.insert_batch(bob)
        else:
            table_a.insert_all(alice.tolist())
            table_b.insert_all(bob.tolist())
        return table_a, table_b

    def decode(tables: tuple[IBLT, IBLT]) -> None:
        table_a, table_b = tables
        result = table_b.subtract(table_a).decode()
        assert result.success and result.difference_count == 2 * differences

    build_times = {}
    decode_times = {}
    for backend, backend_repeats in (("python", max(2, repeats // 2)), ("numpy", repeats)):
        build(backend)  # warm up
        build_times[backend] = _best(lambda: build(backend), backend_repeats)
        tables = build(backend)
        decode_times[backend] = _best(lambda: decode(tables), backend_repeats)
    return (
        (build_times["python"], build_times["numpy"]),
        (decode_times["python"], decode_times["numpy"]),
    )


def run(n: int, repeats: int, quick: bool) -> dict:
    coins = PublicCoins(2019)
    results: dict[str, dict[str, float]] = {}

    def record(name: str, python_s: float, numpy_s: float) -> None:
        results[name] = {
            "python_s": round(python_s, 6),
            "numpy_s": round(numpy_s, 6),
            "speedup": round(python_s / numpy_s, 2),
        }

    record("sweep_trials", *bench_sweep_trials(n, repeats))
    record("pairwise_hash", *bench_pairwise_hash(coins, n, repeats))
    record("prefix_keys", *bench_prefix_keys(coins, n, repeats))
    record("emd_keys", *bench_emd_keys(coins, n, repeats))
    record("emd_round", *bench_emd_round(coins, n, repeats))
    record("riblt_decode", *bench_riblt_decode(coins, n, repeats))
    record("riblt_decode_compiled", *bench_riblt_decode_compiled(coins, n, repeats))
    record("iblt_decode_tail", *bench_iblt_decode_tail(coins, n, repeats))
    record("store_warm_serve", *bench_store_warm_serve(coins, n, repeats))
    record("stream_replay", *bench_stream_replay(n, repeats))
    (build_py, build_np), (decode_py, decode_np) = bench_iblt(coins, n, repeats)
    record("iblt_build", build_py, build_np)
    record("iblt_decode", decode_py, decode_np)
    record("iblt_build_decode", build_py + decode_py, build_np + decode_np)

    from repro.iblt import _kernels

    status = _kernels.kernel_status()
    return {
        "meta": {
            "n": n,
            "quick": quick,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            # The *resolved* kernel mode ("compiled"/"numpy") this run
            # actually executed under — speedups from a compiled host and
            # a fallback host are different experiments, and the baseline
            # must say which one it recorded.
            "kernels": status["resolved"],
            "numba": status["numba"],
        },
        "results": results,
    }


def kernel_status(name: str, measured: float, baseline_entry: dict | None) -> tuple[bool, str]:
    """The regression verdict for one kernel: ``(passed, label)``.

    Single source of the gating rule — :func:`compare` (the CI gate)
    and :func:`render_step_summary` (the markdown table) must never
    disagree about what counts as a regression.
    """
    if name in UNGATED_KERNELS:
        return True, "host-dependent (not gated)"
    if baseline_entry is None:
        return True, "new kernel (no baseline)"
    if measured >= baseline_entry["speedup"] / REGRESSION_FACTOR:
        return True, "ok"
    return False, "REGRESSION"


def render_step_summary(report: dict, baseline: dict | None) -> str:
    """A GitHub-flavoured markdown speedup table for the CI step summary.

    One row per kernel: measured timings and speedup, the committed
    baseline's speedup when available, and the :func:`kernel_status`
    verdict the regression gate itself uses.
    """
    baseline_results = (baseline or {}).get("results", {})
    lines = [
        f"### Benchmark speedups (n={report['meta']['n']})",
        "",
        "| kernel | python/serial | numpy/engine | speedup | baseline | status |",
        "| --- | ---: | ---: | ---: | ---: | :-- |",
    ]
    for name, entry in report["results"].items():
        base = baseline_results.get(name)
        passed, status = kernel_status(name, entry["speedup"], base)
        baseline_cell = f"{base['speedup']:.1f}x" if base is not None else "—"
        lines.append(
            f"| {name} | {entry['python_s'] * 1e3:.2f} ms "
            f"| {entry['numpy_s'] * 1e3:.2f} ms "
            f"| {entry['speedup']:.1f}x | {baseline_cell} "
            f"| {status if passed else f'**{status}**'} |"
        )
    return "\n".join(lines) + "\n"


def compare(report: dict, baseline_path: Path) -> int:
    if not baseline_path.is_file():
        print(
            f"FAIL: baseline {baseline_path} does not exist. The regression "
            "gate must compare against the *committed* baseline — refusing "
            "to continue (CI must never self-baseline). Run without "
            "--compare locally to record a new baseline, then commit it."
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    baseline_n = baseline.get("meta", {}).get("n")
    if baseline_n != report["meta"]["n"]:
        print(
            f"FAIL: baseline was measured at n={baseline_n} but this run used "
            f"n={report['meta']['n']}; speedups are only comparable at equal n "
            f"(rerun with --n {baseline_n})"
        )
        return 1
    failures = []
    for name, entry in baseline.get("results", {}).items():
        if name not in report["results"]:
            continue
        measured = report["results"][name]["speedup"]
        passed, status = kernel_status(name, measured, entry)
        if name in UNGATED_KERNELS:
            print(f"  {name:18s} speedup {measured:7.1f}x  (baseline {entry['speedup']:.1f}x, {status})")
            continue
        floor = entry["speedup"] / REGRESSION_FACTOR
        print(f"  {name:18s} speedup {measured:7.1f}x  (baseline {entry['speedup']:.1f}x, floor {floor:.1f}x)  {status}")
        if not passed:
            failures.append(name)
    if failures:
        print(f"FAIL: speedup regressed >={REGRESSION_FACTOR}x on: {', '.join(failures)}")
        return 1
    print("benchmark regression gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help=f"CI smoke run (n={QUICK_N})")
    parser.add_argument("--n", type=int, default=None, help="override the key count")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument("--output", type=Path, default=Path("BENCH_core.json"))
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        help="baseline BENCH_core.json; exit 1 if any speedup fell below half of it",
    )
    parser.add_argument(
        "--step-summary",
        type=Path,
        default=None,
        help="append a per-kernel markdown speedup table to this file "
        "(pass \"$GITHUB_STEP_SUMMARY\" in CI)",
    )
    args = parser.parse_args(argv)

    # Fail fast on a missing baseline *before* burning benchmark time;
    # compare() repeats the check for callers that invoke it directly.
    if args.compare is not None and not args.compare.is_file():
        print(
            f"FAIL: baseline {args.compare} does not exist; refusing to run "
            "the regression gate without a committed baseline (CI must "
            "never self-baseline)."
        )
        return 1

    n = args.n if args.n is not None else (QUICK_N if args.quick else FULL_N)
    report = run(n=n, repeats=args.repeats, quick=args.quick)

    print(f"n={n} (quick={args.quick}):")
    for name, entry in report["results"].items():
        print(
            f"  {name:18s} python {entry['python_s']*1e3:9.1f} ms   "
            f"numpy {entry['numpy_s']*1e3:8.2f} ms   {entry['speedup']:7.1f}x"
        )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.step_summary is not None:
        baseline = None
        if args.compare is not None and args.compare.is_file():
            baseline = json.loads(args.compare.read_text())
            if baseline.get("meta", {}).get("n") != report["meta"]["n"]:
                # Speedups at different n are incomparable; compare()
                # rejects such a baseline, so the table must not render
                # verdicts the gate never issued.
                baseline = None
        with args.step_summary.open("a") as handle:
            handle.write(render_step_summary(report, baseline))
        print(f"appended speedup table to {args.step_summary}")

    if args.compare is not None:
        return compare(report, args.compare)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
