"""E6 — LSH-keyed protocol vs the quadtree baseline of Chen et al. [7].

Claim (Section 1): the paper's approximation is ``O(log n)`` while [7]'s
is ``O(d)``, so as the dimension grows the LSH protocol's recovered sets
should stay close to ``EMD_k`` while the quadtree's degrade.  We run
both one-round protocols on identical ``ℓ1`` workloads across dimensions
(``ℓ1`` is where the O(d)-vs-O(log n) gap is sharpest — it admits no
general dimension reduction [1]) and report achieved ``EMD/EMD_k``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ScaledEMDProtocol
from repro.hashing import PublicCoins
from repro.metric import GridSpace, emd, emd_k
from repro.reconcile import QuadtreeEMDProtocol
from repro.workloads import noisy_replica_pair

from conftest import record_table

K = 2
N = 16
TRIALS = 3
#: (dimension, side, far_radius) — side shrinks as d grows so the far
#: placement stays feasible while the workload difficulty is comparable.
CONFIGS = ((2, 2048, 800.0), (4, 256, 200.0), (8, 64, 90.0))


def _run_pair(dim: int, side: int, far: float, seed: int):
    rng = np.random.default_rng(seed)
    space = GridSpace(side=side, dim=dim, p=1.0)
    workload = noisy_replica_pair(
        space, n=N, k=K, close_radius=2, far_radius=far, rng=rng
    )
    reference = max(emd_k(space, workload.alice, workload.bob, K), 1.0)

    lsh_protocol = ScaledEMDProtocol(
        space, n=N, k=K, d1=4.0, d2=N * space.diameter, ratio=8.0
    )
    lsh = lsh_protocol.run(workload.alice, workload.bob, PublicCoins(seed))
    quadtree = QuadtreeEMDProtocol(space, n=N, k=K).run(
        workload.alice, workload.bob, PublicCoins(seed)
    )

    def ratio(result):
        if not result.success:
            return None
        return emd(space, workload.alice, result.bob_final) / reference

    return ratio(lsh), ratio(quadtree), lsh.total_bits, quadtree.total_bits


@pytest.fixture(scope="module")
def sweep():
    rows = []
    data = {}
    for dim, side, far in CONFIGS:
        lsh_ratios, quadtree_ratios = [], []
        lsh_bits, quadtree_bits = [], []
        for trial in range(TRIALS):
            lsh_ratio, quadtree_ratio, lb, qb = _run_pair(
                dim, side, far, 1000 * dim + trial
            )
            if lsh_ratio is not None:
                lsh_ratios.append(lsh_ratio)
                lsh_bits.append(lb)
            if quadtree_ratio is not None:
                quadtree_ratios.append(quadtree_ratio)
                quadtree_bits.append(qb)
        rows.append(
            (
                dim,
                float(np.median(lsh_ratios)) if lsh_ratios else float("nan"),
                float(np.median(quadtree_ratios)) if quadtree_ratios else float("nan"),
                round(float(np.mean(lsh_bits))) if lsh_bits else 0,
                round(float(np.mean(quadtree_bits))) if quadtree_bits else 0,
            )
        )
        data[dim] = {"lsh": lsh_ratios, "quadtree": quadtree_ratios}
    record_table(
        f"E6 (Section 1 vs [7]) — EMD/EMD_k achieved by this paper's protocol "
        f"vs the quadtree baseline, l1 grids, n={N}, k={K}; "
        "claim: LSH = O(log n), quadtree = O(d)",
        ["dim d", "LSH median ratio", "quadtree median ratio", "LSH bits", "quadtree bits"],
        rows,
    )
    return data


def test_both_protocols_complete(sweep):
    for dim in (2, 4, 8):
        assert sweep[dim]["lsh"], f"LSH protocol never succeeded at d={dim}"
        assert sweep[dim]["quadtree"], f"quadtree never succeeded at d={dim}"


def test_lsh_ratio_bounded_by_log_n(sweep):
    for dim in (2, 4, 8):
        assert np.median(sweep[dim]["lsh"]) <= 6 * np.log2(N)


def test_lsh_wins_at_high_dimension(sweep):
    """The headline comparison: under l1 the quadtree's rounding error
    grows with d (cell diameter = d * width) while the LSH protocol
    carries exact points in its RIBLT values and stays O(log n)."""
    high = 8
    lsh = float(np.median(sweep[high]["lsh"]))
    quadtree = float(np.median(sweep[high]["quadtree"]))
    assert lsh < quadtree


def test_quadtree_degrades_with_dimension(sweep):
    """[7]'s O(d): the quadtree ratio should grow along the d sweep."""
    assert np.median(sweep[8]["quadtree"]) > 2 * np.median(sweep[2]["quadtree"])


def test_quadtree_speed(benchmark, sweep):
    rng = np.random.default_rng(8)
    space = GridSpace(side=256, dim=4, p=1.0)
    workload = noisy_replica_pair(
        space, n=N, k=K, close_radius=2, far_radius=200.0, rng=rng
    )
    protocol = QuadtreeEMDProtocol(space, n=N, k=K)
    result = benchmark.pedantic(
        protocol.run,
        args=(workload.alice, workload.bob, PublicCoins(3)),
        rounds=1,
        iterations=1,
    )
    assert result.rounds == 1
