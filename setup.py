from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    extras_require={
        # Optional compiled kernel layer (repro.iblt._kernels): numba
        # @njit(nogil=True) peel/hash loops.  Everything works without it
        # on the pure-numpy fallback, bit-identically.
        "fast": ["numba"],
    },
)
