"""Multi-party fleet synchronisation (extension; cf. [23]).

Three sensors observe the same scene with noise; each also saw one
object the others missed.  A star of two-party Gap-protocol runs through
a coordinator leaves *every* sensor with a point within 2*r2 of every
observation anyone made — the natural multi-party lift the paper's
related work ([23]) gestures at.

Run:  python examples/fleet_sync_multiparty.py
"""

from __future__ import annotations

import numpy as np

from repro import BitSamplingMLSH, GapProtocol, HammingSpace, PublicCoins
from repro.core.multiparty import multi_party_gap, verify_multi_party_guarantee
from repro.workloads import perturb_point, random_far_point


def main() -> None:
    space = HammingSpace(96)
    r1, r2 = 2.0, 32.0
    n, parties = 20, 3
    rng = np.random.default_rng(11)

    base = space.sample(rng, n)
    party_sets = []
    anchors = list(base)
    for index in range(parties):
        observations = [perturb_point(space, point, int(r1), rng) for point in base]
        private = random_far_point(space, anchors, r2 + 8, rng)
        observations.append(private)
        anchors.append(private)
        party_sets.append(observations)
        print(f"sensor {index}: {len(observations)} observations "
              f"(1 object only it saw)")

    family = BitSamplingMLSH(space, w=96.0)
    params = family.derived_lsh_params(r1=r1, r2=r2)
    protocol = GapProtocol(
        space, family, params, n=n + parties, k=parties,
        sos_size_multiplier=6.0,
    )

    result = multi_party_gap(protocol, party_sets, PublicCoins(2024))
    print(f"\nstar reconciliation: {result.protocol_runs} two-party runs, "
          f"{result.total_bits} bits total")
    ok = verify_multi_party_guarantee(space, party_sets, result, r2)
    print(f"multi-party guarantee (everything within r2 of the hub, "
          f"2*r2 of everyone): {'HOLDS' if ok else 'VIOLATED'}")

    for index in range(parties):
        final = result.final_sets[index]
        gained = len(final) - len(party_sets[index])
        print(f"sensor {index} final set: {len(final)} points (+{gained})")


if __name__ == "__main__":
    main()
