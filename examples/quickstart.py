"""Quickstart: robust set reconciliation in the EMD model.

Alice and Bob hold noisy replicas of the same 64-bit fingerprints, except
for two genuinely new items on Alice's side.  One message from Alice lets
Bob repair his set so it is close to hers in earth mover's distance —
with communication that does not grow with n (Corollary 3.5).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EMDProtocol,
    HammingSpace,
    PublicCoins,
    emd,
    emd_k,
    naive_full_transfer,
    noisy_replica_pair,
)


def main() -> None:
    n, k, d = 32, 2, 64
    space = HammingSpace(d)
    rng = np.random.default_rng(2019)

    # Bob holds a base set; Alice holds a noisy replica (each point moved
    # by at most 1 bit) plus k brand-new far points.
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=1, far_radius=20, rng=rng
    )

    print(f"instance: n={n} points in {{0,1}}^{d}, k={k} outliers")
    print(f"EMD(S_A, S_B) before reconciliation: {emd(space, workload.alice, workload.bob):.0f}")
    print(f"EMD_k(S_A, S_B) (best achievable reference): "
          f"{emd_k(space, workload.alice, workload.bob, k):.0f}")

    # The protocol needs only public inputs: the space, n, and k.  Both
    # parties derive everything else from shared coins.
    protocol = EMDProtocol.for_instance(space, n=n, k=k)
    coins = PublicCoins(42)
    result = protocol.run(workload.alice, workload.bob, coins)

    if not result.success:
        print("protocol reported failure (probability <= 1/8); rerun with new coins")
        return

    after = emd(space, workload.alice, result.bob_final)
    print(f"\none round, {result.total_bits} bits "
          f"({result.total_bits / 8 / 1024:.1f} KiB) from Alice to Bob")
    print(f"decoded at resolution level {result.decoded_level} "
          f"({result.decoded_pairs} pairs recovered)")
    print(f"EMD(S_A, S'_B) after reconciliation: {after:.0f}")

    naive = naive_full_transfer(space, workload.alice)
    print(f"\nnaive full transfer would use {naive.total_bits} bits and achieve EMD 0;")
    print("the protocol's bits are independent of n — rerun with n=1024 to see")
    print("the naive cost grow while the protocol's stays put.")


if __name__ == "__main__":
    main()
