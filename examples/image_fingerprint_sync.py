"""Reconciling image-fingerprint databases (Hamming EMD model).

Section 1's database scenario: two mirrors hold perceptual hashes of the
same image collection, but each mirror re-compressed its images, so
fingerprints of the same image differ in a few bits.  A handful of images
exist on only one mirror.  Algorithm 1 lets mirror B approximate mirror
A's fingerprint set in one message, and we compare against the quadtree
baseline's natural habitat (it needs a grid, so Hamming data is exactly
where the LSH approach is the only game in town).

Run:  python examples/image_fingerprint_sync.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EMDProtocol,
    HammingSpace,
    PublicCoins,
    emd,
    emd_k,
    exact_iblt_reconcile,
    noisy_replica_pair,
)


def main() -> None:
    d = 128  # 128-bit perceptual hashes
    n, k = 48, 3
    space = HammingSpace(d)
    rng = np.random.default_rng(1234)

    # Re-compression flips up to 2 bits of each shared image's hash; k
    # images are unique to mirror A.
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=2, far_radius=40, rng=rng
    )
    before = emd(space, workload.alice, workload.bob)
    reference = emd_k(space, workload.alice, workload.bob, k)
    print(f"{n} fingerprints of {d} bits; {k} unique to mirror A")
    print(f"EMD before: {before:.0f}   EMD_k reference: {reference:.0f}")

    # --- exact reconciliation treats noisy twins as distinct: useless ----
    exact = exact_iblt_reconcile(
        space, workload.alice, workload.bob, delta_bound=2 * k,
        coins=PublicCoins(5),
    )
    print("\nclassic exact set reconciliation sized for the k true differences:")
    print(f"  success={exact.success} — noisy twins inflate the symmetric "
          "difference past any o(n) budget, exactly the failure mode robust "
          "reconciliation fixes")

    # --- the robust protocol ---------------------------------------------
    protocol = EMDProtocol.for_instance(space, n=n, k=k)
    result = protocol.run(workload.alice, workload.bob, PublicCoins(5))
    if not result.success:
        print("protocol failure (<= 1/8 probability); rerun with other coins")
        return
    after = emd(space, workload.alice, result.bob_final)
    print(f"\nrobust EMD protocol: one message, {result.total_bits} bits")
    print(f"  EMD after: {after:.0f}  "
          f"(= {after / max(reference, 1):.1f}x EMD_k; paper promises O(log n)x)")

    # The EMD model recovers *approximations*: decoded values can carry
    # averaged noise from colliding buckets (Section 2.2 item 5).
    final = result.bob_final
    gaps = [
        min(space.distance(outlier, point) for point in final)
        for outlier in workload.alice_far_points
    ]
    print(f"  mirror-A-only fingerprints now represented at Hamming "
          f"distances {sorted(int(g) for g in gaps)} (were >= 40 before)")
    print("\n(the quadtree baseline of Chen et al. [7] needs a [Delta]^d grid —")
    print(" on Hamming data its O(d) approximation would be vacuous: d = diameter)")


if __name__ == "__main__":
    main()
