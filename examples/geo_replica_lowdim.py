"""Low-dimensional replica repair with the one-sided LSH (Theorem 4.5).

A geo-distributed database stores 2-D coordinates (point-of-interest
locations).  Replicas drift: GPS refinements move shared entries a few
metres; some entries exist on one replica only.  In constant dimension
the one-sided grid LSH (far points *never* collide) needs only
``h = Θ(log n / log(1/ρ̂))`` hash evaluations per point and beats the
general Gap protocol's communication — this example runs both.

Run:  python examples/geo_replica_lowdim.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GapProtocol,
    GridMLSH,
    GridSpace,
    PublicCoins,
    low_dimensional_gap_protocol,
    noisy_replica_pair,
    verify_gap_guarantee,
)


def main() -> None:
    space = GridSpace(side=4096, dim=2, p=1.0)
    n, k = 64, 4
    r1, r2 = 4.0, 512.0
    rng = np.random.default_rng(77)
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=int(r1), far_radius=700.0, rng=rng
    )
    print(f"geo replicas: {n} points on a {space.side}^2 grid, {k} replica-A-only")

    # --- Theorem 4.5: one-sided grid LSH ---------------------------------
    lowdim = low_dimensional_gap_protocol(space, n=n, k=k, r1=r1, r2=r2)
    print(f"\none-sided protocol: rho_hat = r1*d/r2 = "
          f"{lowdim.lsh.rho_hat:.4f}, h = {lowdim.entries} grids/point, "
          f"match threshold {lowdim.match_threshold}")
    low_result = lowdim.run(workload.alice, workload.bob, PublicCoins(3))
    assert low_result.success
    low_ok = verify_gap_guarantee(space, workload.alice, low_result.bob_final, r2)
    print(f"  {low_result.total_bits} bits over {low_result.rounds} rounds; "
          f"guarantee {'HOLDS' if low_ok else 'VIOLATED'}; "
          f"{len(low_result.transmitted)} points shipped")

    # --- Theorem 4.2: the general protocol on the same instance ----------
    family = GridMLSH(space, w=r2)
    params = family.derived_lsh_params(r1=r1, r2=r2)
    general = GapProtocol(space, family, params, n=n, k=k)
    print(f"\ngeneral protocol: h x m = {general.entries} x {general.per_entry} "
          f"= {general.entries * general.per_entry} LSH evaluations/point")
    general_result = general.run(workload.alice, workload.bob, PublicCoins(3))
    assert general_result.success
    general_ok = verify_gap_guarantee(
        space, workload.alice, general_result.bob_final, r2
    )
    print(f"  {general_result.total_bits} bits over {general_result.rounds} rounds; "
          f"guarantee {'HOLDS' if general_ok else 'VIOLATED'}; "
          f"{len(general_result.transmitted)} points shipped")

    saving = general_result.total_bits / max(low_result.total_bits, 1)
    print(f"\none-sided construction is {saving:.1f}x cheaper here — "
          "Theorem 4.5's ~log(r2/r1) factor in constant dimension")


if __name__ == "__main__":
    main()
