"""Figure 1, live: how value noise propagates through a peeling RIBLT.

The paper's key technical worry is that a cancelled-but-noisy pair leaves
a residue in its cells, and every later peel through those cells drags
the residue along (Figure 1).  Lemma 3.10 says that in the sparse regime
``c < 1/(q(q-1))`` the residue touches only O(1) extracted values.  This
demo (a) reproduces the effect on a real RIBLT and (b) shows the phase
transition on the abstract hypergraph model, including why the density
threshold matters.

Run:  python examples/error_propagation_demo.py
"""

from __future__ import annotations

import random

import numpy as np

from repro import RIBLT, PublicCoins
from repro.analysis import format_table
from repro.branching import error_propagation_trials, survival_recurrence
from repro.iblt import molloy_threshold, riblt_sparsity_threshold


def riblt_demo() -> None:
    print("--- a cancelled noisy pair perturbs later extractions ---")
    coins = PublicCoins(2024)
    table = RIBLT(coins, "demo", cells=90, q=3, key_bits=32, dim=1, side=1000)
    pairs = [(key, (100 + 7 * key,)) for key in range(8)]
    table.insert_pairs(pairs)
    # Alice's (999, 500) cancels Bob's (999, 510): same key, values 10 apart.
    table.insert(999, (500,))
    table.delete(999, (510,))
    result = table.decode(random.Random(0))
    print(f"decode success: {result.success}")
    rows = []
    recovered = dict(result.inserted)
    for key, original in pairs:
        got = recovered[key]
        rows.append((key, original[0], got[0], got[0] - original[0]))
    print(format_table(
        ["key", "true value", "extracted", "absorbed error"], rows))
    total = sum(abs(r[3]) for r in rows)
    print(f"total absorbed error {total} (the seeded residue was 10; "
          "Lemma 3.10: O(1) items touched)\n")


def phase_transition_demo() -> None:
    print("--- the density threshold 1/(q(q-1)) (Lemma 3.10) ---")
    q = 3
    threshold = riblt_sparsity_threshold(q)
    rng = np.random.default_rng(1)
    rows = []
    for multiple in (0.5, 1.0, 2.0, 4.0, 4.8):
        c = multiple * threshold
        trials = error_propagation_trials(800, c, q, trials=20, rng=rng)
        mean_error = float(np.mean([t.total_error for t in trials]))
        rows.append((f"{multiple} x 1/(q(q-1))", round(c, 3), mean_error))
    print(format_table(["density", "c", "mean total error"], rows))
    print(f"(peeling itself only fails past c*_3 = {molloy_threshold(3):.3f}, "
          "but error control needs the stricter tree/unicyclic regime)\n")


def branching_demo() -> None:
    print("--- why: survival of the idealized branching process ---")
    q = 3
    below = survival_recurrence(0.8 * riblt_sparsity_threshold(q), q, 8)
    rows = [(t + 1, f"{value:.3g}") for t, value in enumerate(below.lam)]
    print(format_table(["round t", "lambda_t (root survives)"], rows))
    print("doubly-exponential decay beats the 2^t neighbourhood growth —")
    print("that race is the whole proof of Lemma 3.10.")


if __name__ == "__main__":
    riblt_demo()
    phase_transition_demo()
    branching_demo()
