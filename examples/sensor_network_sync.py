"""Sensor-network synchronisation in the Gap Guarantee model.

The paper's motivating scenario (Section 1): two sensors observe the same
objects with measurement noise.  Readings of the same object differ by at
most r1; distinct objects are at least r2 apart.  After the 4-round Gap
protocol, *every* object either sensor saw is represented within r2 in
Bob's final database — including objects only Alice observed — at a
fraction of the cost of shipping Alice's readings wholesale.

Run:  python examples/sensor_network_sync.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GapProtocol,
    GridMLSH,
    GridSpace,
    PublicCoins,
    naive_union_transfer,
    noisy_replica_pair,
    verify_gap_guarantee,
)


def main() -> None:
    # 2-D positions on a 4096 x 4096 grid under l1 ("taxicab") distance.
    space = GridSpace(side=4096, dim=2, p=1.0)
    n, k = 48, 3
    r1, r2 = 4.0, 512.0
    rng = np.random.default_rng(7)

    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=int(r1), far_radius=700.0, rng=rng
    )
    print(f"two sensors, {n} readings each; {k} objects only sensor A saw")
    print(f"noise radius r1={r1}, object separation r2={r2} (l1)")

    # An l1 MLSH family doubles as the LSH the protocol needs
    # (Corollary 4.4's regime: constant r2/r1 gap, large universe).
    family = GridMLSH(space, w=r2)
    params = family.derived_lsh_params(r1=r1, r2=r2)
    protocol = GapProtocol(space, family, params, n=n, k=k)
    print(f"LSH quality rho = {protocol.rho:.3f}; key vectors: "
          f"h={protocol.entries} entries x m={protocol.per_entry} hashes, "
          f"match threshold tau={protocol.match_threshold}")

    result = protocol.run(workload.alice, workload.bob, PublicCoins(99))
    if not result.success:
        print("reconciliation failed (undersized sketch) — rerun with new coins")
        return

    ok = verify_gap_guarantee(space, workload.alice, result.bob_final, r2)
    print(f"\n4 rounds, {result.total_bits} bits total")
    print(f"sensor A transmitted {len(result.transmitted)} full readings "
          f"(the {k} new objects plus {len(result.transmitted) - k} safety extras)")
    print(f"gap guarantee (every reading within r2 of B's final set): "
          f"{'HOLDS' if ok else 'VIOLATED'}")

    recovered = [p for p in workload.alice_far_points if p in set(result.bob_final)]
    print(f"all {len(recovered)}/{k} new objects delivered exactly")

    naive = naive_union_transfer(space, workload.alice, workload.bob)
    print(f"\nnaive transfer of all readings: {naive.total_bits} bits")
    print(f"protocol / naive = {result.total_bits / naive.total_bits:.1f}x — "
          "at this demo scale the naive transfer wins on bits; the")
    print("protocol's cost is O((k + rho*n) polylog n + k log|U|), so its")
    print("advantage appears once log|U| (here 24 bits/point) dwarfs the")
    print("polylog-n sketch overhead — e.g. high-dimensional readings.")


if __name__ == "__main__":
    main()
