"""Poisson (Galton–Watson) branching processes from Appendices B and D.

The RIBLT peeling analysis models the breadth-first neighbourhood of a
cell as an idealized branching process: every vertex has
``Poisson(c·q)`` child *edges*, each connecting to ``q-1`` child vertices.
Two recurrences drive Lemma 3.10:

* ``ρ_j`` — the probability a vertex at distance ``t-j`` from the root
  survives ``j`` rounds of the deletion procedure:
  ``ρ_0 = 1``, ``ρ_j = Pr[Poisson(ρ_{j-1}^{q-1}·c·q) >= 1]``;
* ``λ_j`` — the probability the *root* survives ``j`` rounds:
  ``λ_j = Pr[Poisson(ρ_{j-1}^{q-1}·c·q) >= 2]``.

Below the sparsity threshold ``c < 1/(q(q-1))`` these vanish, and [15]
shows ``λ_{I+t} <= τ^{2^{(q-1)t}}`` for constants ``I, τ`` -- doubly
exponential decay, which is the engine of the error-propagation bound.
The neighbourhood growth is only singly exponential:
``E[V_{v,t}] = Σ_{j<=t} (cq(q-1))^j`` (Wald), and conditioned on survival
``E[V_{v,j} | K_{v,j-1}] = O((q-1)^j)`` (Lemma D.3).

This module computes the recurrences exactly and also *simulates* the
idealized process, for experiment E10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "poisson_tail",
    "survival_recurrence",
    "SurvivalCurve",
    "expected_unconditioned_size",
    "branching_factor",
    "simulate_tree_size",
    "simulate_survival",
]


def poisson_tail(mean: float, at_least: int) -> float:
    """``Pr[Poisson(mean) >= at_least]`` for small ``at_least`` (1 or 2)."""
    if mean < 0:
        raise ValueError(f"mean must be >= 0, got {mean}")
    if at_least <= 0:
        return 1.0
    if at_least == 1:
        return -math.expm1(-mean)
    if at_least == 2:
        return -math.expm1(-mean) - mean * math.exp(-mean)
    # General fall-back via the complement of the CDF.
    cumulative = 0.0
    term = math.exp(-mean)
    for k in range(at_least):
        cumulative += term
        term *= mean / (k + 1)
    return max(0.0, 1.0 - cumulative)


@dataclass(frozen=True)
class SurvivalCurve:
    """The ``(ρ_j, λ_j)`` sequences of the idealized deletion procedure."""

    c: float
    q: int
    rho: tuple[float, ...]
    lam: tuple[float, ...]

    @property
    def rounds(self) -> int:
        return len(self.lam)

    def extinct_by(self, tolerance: float = 1e-12) -> int | None:
        """First round at which ``λ_j`` drops below ``tolerance``."""
        for j, value in enumerate(self.lam):
            if value < tolerance:
                return j
        return None


def survival_recurrence(c: float, q: int, rounds: int) -> SurvivalCurve:
    """Compute ``ρ_j`` and ``λ_j`` for ``j = 1..rounds`` (Appendix B).

    ``ρ_0 = 1``; ``ρ_j = Pr[Poisson(ρ_{j-1}^{q-1} c q) >= 1]``;
    ``λ_j = Pr[Poisson(ρ_{j-1}^{q-1} c q) >= 2]``.
    """
    if c <= 0:
        raise ValueError(f"c must be > 0, got {c}")
    if q < 3:
        raise ValueError(f"q must be >= 3, got {q}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    rho = [1.0]
    lam = []
    for _ in range(rounds):
        mean = rho[-1] ** (q - 1) * c * q
        rho.append(poisson_tail(mean, 1))
        lam.append(poisson_tail(mean, 2))
    return SurvivalCurve(c=c, q=q, rho=tuple(rho[1:]), lam=tuple(lam))


def branching_factor(c: float, q: int) -> float:
    """Mean offspring per vertex, ``c·q·(q-1)``; < 1 is subcritical."""
    return c * q * (q - 1)


def expected_unconditioned_size(c: float, q: int, depth: int) -> float:
    """``E[Σ_{j<=depth} Z_j] = Σ_j (cq(q-1))^j`` (Wald, Appendix B)."""
    factor = branching_factor(c, q)
    if math.isclose(factor, 1.0):
        return float(depth + 1)
    return (factor ** (depth + 1) - 1.0) / (factor - 1.0)


def simulate_tree_size(
    c: float, q: int, depth: int, rng: np.random.Generator, max_vertices: int = 500_000
) -> int:
    """Sample the vertex count of one idealized branching tree to ``depth``.

    Each vertex draws ``Poisson(c·q)`` child edges; each edge contributes
    ``q-1`` child vertices.  Truncated at ``max_vertices`` (supercritical
    trees can explode).
    """
    total = 1
    frontier = 1
    mean = c * q
    for _ in range(depth):
        if frontier == 0:
            break
        child_edges = int(rng.poisson(mean * frontier))
        frontier = child_edges * (q - 1)
        total += frontier
        if total > max_vertices:
            return max_vertices
    return total


def simulate_survival(
    c: float, q: int, rounds: int, trials: int, rng: np.random.Generator
) -> float:
    """Empirical ``λ_rounds``: fraction of roots surviving the procedure.

    Simulates the deletion procedure bottom-up by sampling, per trial,
    whether the root retains >= 2 surviving child edges after ``rounds``
    rounds, using the exact recurrence for subtree survival (each subtree
    is i.i.d., so only the top level needs sampling; this keeps the
    estimator cheap while still being a true Monte-Carlo check of the
    recurrence's top step).
    """
    curve = survival_recurrence(c, q, max(1, rounds - 1))
    subtree_survival = curve.rho[-1] if rounds > 1 else 1.0
    mean = subtree_survival ** (q - 1) * c * q
    survived = 0
    for _ in range(trials):
        if rng.poisson(mean) >= 2:
            survived += 1
    return survived / trials
