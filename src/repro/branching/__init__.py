"""Branching-process analysis tools (Appendices B and D)."""

from .error_propagation import (
    ErrorPropagationResult,
    error_propagation_trials,
    propagate_error,
)
from .poisson import (
    SurvivalCurve,
    branching_factor,
    expected_unconditioned_size,
    poisson_tail,
    simulate_survival,
    simulate_tree_size,
    survival_recurrence,
)

__all__ = [
    "ErrorPropagationResult",
    "error_propagation_trials",
    "propagate_error",
    "SurvivalCurve",
    "branching_factor",
    "expected_unconditioned_size",
    "poisson_tail",
    "simulate_survival",
    "simulate_tree_size",
    "survival_recurrence",
]
