"""Error propagation during breadth-first peeling (Lemma 3.10 / Figure 1).

The paper models RIBLT value noise as follows: one random vertex of
``G^q_{m,cm}`` starts with an error count of 1; peeling proceeds breadth
first (a vertex whose degree reaches 1 earlier is peeled earlier); when a
vertex ``v`` is peeled, its error count ``C_v`` is *added to every
adjacent vertex* (the cells of the peeled key absorb the residue, exactly
as :meth:`repro.iblt.riblt.RIBLT.decode` does with value snapshots).

Lemma 3.10: for ``c < 1/(q(q-1))``, after peeling, ``Σ_v C_v = O(1)``
with probability at least 7/8.  Above the tree/unicyclic threshold the
sum blows up -- experiment E2 sweeps ``c`` across ``1/(q(q-1))`` to show
the transition, and ablates the breadth-first order against LIFO
(depth-first) peeling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..iblt.hypergraph import random_hypergraph

__all__ = ["ErrorPropagationResult", "propagate_error", "error_propagation_trials"]


@dataclass(frozen=True)
class ErrorPropagationResult:
    """Outcome of one error-propagation experiment.

    Attributes
    ----------
    total_error:
        ``Σ_v C_v`` over all vertices after peeling completes (the
        quantity Lemma 3.10 bounds).
    touched_vertices:
        Number of vertices that ended with a non-zero error count.
    peeled_edges:
        How many hyperedges were peeled (un-peeled 2-core edges stop
        propagation).
    fully_peeled:
        Whether every edge was peeled (empty 2-core).
    """

    total_error: int
    touched_vertices: int
    peeled_edges: int
    fully_peeled: bool


def propagate_error(
    m: int,
    edges: list[tuple[int, ...]],
    seed_vertex: int,
    order: str = "bfs",
) -> ErrorPropagationResult:
    """Run the Lemma 3.10 process on a given hypergraph.

    Parameters
    ----------
    m, edges:
        The hypergraph (vertices ``0..m-1``).
    seed_vertex:
        The vertex initially carrying error count 1.
    order:
        ``"bfs"`` for the paper's first-come-first-served order (deque
        popleft), ``"dfs"`` for the LIFO ablation.
    """
    if order not in ("bfs", "dfs"):
        raise ValueError(f"order must be 'bfs' or 'dfs', got {order!r}")
    incident: list[list[int]] = [[] for _ in range(m)]
    for edge_index, edge in enumerate(edges):
        for vertex in edge:
            incident[vertex].append(edge_index)
    degree = [len(edge_list) for edge_list in incident]
    alive = [True] * len(edges)
    error = [0] * m
    error[seed_vertex] = 1

    queue: deque[int] = deque(v for v in range(m) if degree[v] == 1)
    peeled = 0
    while queue:
        vertex = queue.popleft() if order == "bfs" else queue.pop()
        if degree[vertex] != 1:
            continue
        edge_index = next(
            (candidate for candidate in incident[vertex] if alive[candidate]), None
        )
        if edge_index is None:
            continue
        alive[edge_index] = False
        peeled += 1
        for other in edges[edge_index]:
            if other != vertex:
                error[other] += error[vertex]
            degree[other] -= 1
            if degree[other] == 1:
                queue.append(other)

    return ErrorPropagationResult(
        total_error=sum(error),
        touched_vertices=sum(1 for count in error if count != 0),
        peeled_edges=peeled,
        fully_peeled=peeled == len(edges),
    )


def error_propagation_trials(
    m: int,
    c: float,
    q: int,
    trials: int,
    rng: np.random.Generator,
    order: str = "bfs",
) -> list[ErrorPropagationResult]:
    """Repeat :func:`propagate_error` on fresh ``G^q_{m, round(c·m)}`` draws."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    edge_count = max(1, round(c * m))
    results = []
    for _ in range(trials):
        edges = random_hypergraph(m, edge_count, q, rng)
        seed_vertex = int(rng.integers(0, m))
        results.append(propagate_error(m, edges, seed_vertex, order=order))
    return results
