"""Parameter-sweep campaigns: seeded trial grids over the scenario harness.

The scenario harness (:mod:`repro.experiments.runner`) runs each protocol
family once at a fixed seed; the paper's claims, however, are *threshold
and trade-off curves* — decode success against IBLT load (the XORSAT-core
threshold), communication cost against the gap ratio ``r2/r1``, EMD cost
against the resolution-level count.  This module sweeps a parameter grid
with many independently seeded trials per grid point and aggregates the
outcomes into curves.

Layers
------
:class:`SweepSpec`
    A campaign definition: a protocol driver, fixed base parameters, a
    grid of swept axes, and a trial count per grid point.  Grid points
    expand in *canonical* order (axis names sorted, values in the given
    order) and every trial's seed derives deterministically from
    ``(sweep seed, grid point, trial index)`` — reordering the axes of
    the grid mapping changes nothing, and distinct points or trial
    indices never share :class:`~repro.hashing.PublicCoins`.

:class:`SweepRunner`
    Executes the expanded trials serially, on a *persistent*
    ``concurrent.futures`` process pool, or — when the compiled kernel
    layer makes the hot loops release the GIL — on a thread pool that
    dispatches the very same chunks with zero pickle cost.  Pools are
    created on first use and reused across every campaign the runner
    executes, so worker startup (fork + import) is paid once per runner
    instead of once per campaign.  Trials are dispatched in contiguous
    *chunks* — one pickle round-trip per chunk instead of one per trial
    (threads skip even that) — and are embarrassingly parallel and
    fully determined by their :class:`ScenarioSpec`; results are
    re-assembled in expansion order, so a parallel run's report is
    byte-identical to the serial run's — the invariant CI's
    ``sweep-smoke`` job enforces across all three pool modes.  Close
    the pools with :meth:`SweepRunner.close` or use the runner as a
    context manager.

:func:`render_sweep_report`
    Aggregates per-point success rates (Wilson intervals) and numeric
    metrics (mean/std/min/max via :mod:`repro.analysis.stats`) into the
    canonical ``repro.sweeps/v1`` JSON document.  Worker counts and wall
    times never enter the document.

:func:`builtin_campaigns`
    Seven paper-style curves: ``iblt-threshold``, ``gap-ratio``,
    ``emd-levels``, ``emd-branching``, ``fault-rate``,
    ``multiparty-parties`` and ``store-churn``, exposed as
    ``python -m repro.cli sweep``.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..analysis.stats import success_rate, summarize
from ..hashing import derive_seed
from ..iblt.backend import resolve_backend, resolve_decode_mode
from .runner import ScenarioRunner, _scoped_env
from .scenarios import DRIVERS, ScenarioResult, ScenarioSpec

__all__ = [
    "POOL_MODES",
    "SweepSpec",
    "SweepTrial",
    "SweepPointResult",
    "SweepRunner",
    "builtin_campaigns",
    "render_sweep_report",
]

SWEEP_SCHEMA = "repro.sweeps/v1"

#: Dispatch strategies for parallel runs (``SweepRunner(pool=...)``).
POOL_MODES = ("auto", "thread", "process", "serial")

#: ``pool="auto"`` prefers threads for campaigns this small even without
#: compiled kernels: below this many trials, process-pool startup and
#: pickle round-trips cost more than the GIL does.
AUTO_THREAD_TASKS = 32


@dataclass(frozen=True)
class SweepSpec:
    """A campaign: one protocol swept over a parameter grid.

    Parameters
    ----------
    name:
        Campaign name; part of every trial's seed-derivation path.
    protocol:
        A :data:`~repro.experiments.scenarios.DRIVERS` key.
    axes:
        Mapping of axis name to the sequence of values it sweeps.  The
        cross product of all axes is the grid; axis *names* are sorted
        before expansion so the mapping's insertion order is irrelevant
        (to both trial order and trial seeds), while each axis's *value*
        order is preserved.
    base_params:
        Parameters shared by every grid point; a grid point's axis
        values override clashing keys.
    trials:
        Independently seeded runs per grid point (>= 1).
    derive:
        Optional hook mapping the merged ``base + point`` params to the
        final driver params — for axes that are *ratios* or otherwise
        feed several dependent parameters.  Seed derivation always uses
        the raw grid point, never the derived params.
    """

    name: str
    protocol: str
    axes: Mapping[str, Sequence[Any]]
    base_params: Mapping[str, Any] = field(default_factory=dict)
    trials: int = 5
    derive: Callable[[dict], dict] | None = None

    def __post_init__(self) -> None:
        if self.protocol not in DRIVERS:
            raise KeyError(f"unknown protocol {self.protocol!r}")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        for axis, values in self.axes.items():
            if not len(values):
                raise ValueError(f"axis {axis!r} has no values")

    def grid_points(self) -> list[dict]:
        """The grid in canonical order (axis names sorted)."""
        names = sorted(self.axes)
        return [
            dict(zip(names, values))
            for values in itertools.product(*(self.axes[name] for name in names))
        ]

    def point_params(self, point: Mapping[str, Any]) -> dict:
        """Final driver params for one grid point (base ∪ point, derived)."""
        params = {**self.base_params, **point}
        return self.derive(params) if self.derive is not None else params

    def trial_seed(self, sweep_seed: int, point: Mapping[str, Any], trial: int) -> int:
        """The trial's 64-bit seed from (sweep seed, grid point, index).

        The grid point enters as its *sorted* item tuple, so two grids
        that differ only in axis ordering derive identical seeds.
        """
        canonical_point = tuple(sorted(point.items()))
        return derive_seed(sweep_seed, "sweep", self.name, canonical_point, trial)

    def trial_specs(self, sweep_seed: int) -> list["SweepTrial"]:
        """Expand every (grid point, trial index) into a runnable trial."""
        expanded: list[SweepTrial] = []
        for point_index, point in enumerate(self.grid_points()):
            params = self.point_params(point)
            label = ",".join(f"{axis}={point[axis]}" for axis in sorted(point))
            for trial in range(self.trials):
                expanded.append(
                    SweepTrial(
                        point_index=point_index,
                        trial_index=trial,
                        point=point,
                        spec=ScenarioSpec(
                            name=f"{self.name}/{label}/t{trial}",
                            protocol=self.protocol,
                            seed=self.trial_seed(sweep_seed, point, trial),
                            params=params,
                        ),
                    )
                )
        return expanded


@dataclass(frozen=True)
class SweepTrial:
    """One expanded trial: its grid coordinates and runnable spec."""

    point_index: int
    trial_index: int
    point: Mapping[str, Any]
    spec: ScenarioSpec


@dataclass(frozen=True)
class SweepPointResult:
    """All of one grid point's finished trials, in trial order."""

    point: Mapping[str, Any]
    params: Mapping[str, Any]
    results: tuple[ScenarioResult, ...]

    @property
    def successes(self) -> int:
        return sum(1 for result in self.results if result.success)


def _execute_trial(task: tuple[str | None, str | None, ScenarioSpec]) -> ScenarioResult:
    """Worker entry point: run one spec on the requested backend knobs.

    Module-level (not a closure) so process-pool workers can unpickle it;
    everything a trial does is determined by the task tuple, which is what
    makes parallel runs bit-identical to serial ones.
    """
    backend, decode_mode, spec = task
    return ScenarioRunner(backend=backend, decode_mode=decode_mode).run(spec)


def _execute_trial_chunk(
    tasks: "list[tuple[str | None, str | None, ScenarioSpec]]",
) -> "list[ScenarioResult]":
    """Worker entry point for a contiguous chunk of trials.

    One submission carries a whole chunk, so the pickle/IPC round-trip —
    which dominated small campaigns when every trial travelled alone —
    is paid once per chunk.  Trials run in list order and results come
    back in the same order, preserving the expansion-order reassembly
    the byte-identical-reports guarantee rests on.
    """
    return [_execute_trial(task) for task in tasks]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork workers (cheap start, inherit sys.path); else default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class SweepRunner:
    """Run sweep campaigns serially or on a persistent worker pool.

    Parameters
    ----------
    backend, decode_mode:
        Forced execution knobs, as in :class:`ScenarioRunner` (None means
        the process-wide default; resolved per-worker, so pools behave
        exactly like the parent process).
    jobs:
        Worker count.  ``jobs=1`` runs in-process with no pool at all;
        any larger count lazily creates one persistent executor that is
        *kept alive across campaigns* (worker startup was the dominant
        cost of small sweeps) until :meth:`close`.  Chunked futures are
        collected in submission order, so the rendered report is
        byte-identical either way.
    pool:
        Dispatch strategy for ``jobs > 1`` (:data:`POOL_MODES`):

        ``"process"``
            The ``ProcessPoolExecutor`` path: true multi-core scaling,
            one pickle round-trip per chunk.
        ``"thread"``
            A ``ThreadPoolExecutor`` over the *same* chunks with zero
            pickle cost.  Scales across cores only while the hot loops
            hold no GIL — i.e. when the compiled kernel layer
            (:mod:`repro.iblt._kernels`) is active; without it threads
            still win on small campaigns by skipping pool startup.
            The backend/decode-mode knobs are pinned *once* around the
            whole dispatch (threads share ``os.environ``, so the
            per-trial scoping the process path uses would race).
        ``"serial"``
            Force the in-process loop regardless of ``jobs``.
        ``"auto"`` (default)
            ``jobs=1`` → serial; compiled kernels active → thread;
            fewer than :data:`AUTO_THREAD_TASKS` trials → thread;
            otherwise process.

        All strategies run identical trial chunks in identical order,
        so reports are byte-identical across every mode — asserted by
        ``tests/test_kernels.py`` and CI's ``sweep-smoke``.
    chunk_trials:
        Trials per worker submission.  The default splits every campaign
        into ``4 × jobs`` chunks (balance between pickle round-trips and
        work stealing); pass an explicit count to override.  Chunking is
        pure transport — it cannot affect report bytes.
    """

    def __init__(
        self,
        backend: str | None = None,
        decode_mode: str | None = None,
        jobs: int = 1,
        chunk_trials: int | None = None,
        pool: str = "auto",
    ):
        self.backend = None if backend is None else resolve_backend(backend)
        self.decode_mode = (
            None if decode_mode is None else resolve_decode_mode(decode_mode)
        )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_trials is not None and chunk_trials < 1:
            raise ValueError(f"chunk_trials must be >= 1, got {chunk_trials}")
        if pool not in POOL_MODES:
            raise ValueError(f"pool must be one of {POOL_MODES}, got {pool!r}")
        self.jobs = jobs
        self.chunk_trials = chunk_trials
        self.pool = pool
        self._pool: ProcessPoolExecutor | None = None
        self._thread_pool: ThreadPoolExecutor | None = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent process pool, created on first parallel run."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=_pool_context())
        return self._pool

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        """The persistent thread pool, created on first threaded run."""
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(max_workers=self.jobs)
        return self._thread_pool

    def close(self) -> None:
        """Shut down the persistent pools (idempotent).

        Runners used as context managers close on exit; otherwise the
        pools live until closed or the interpreter exits.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown()
            self._thread_pool = None

    def _resolve_pool_mode(self, task_count: int) -> str:
        """The dispatch strategy for one campaign of ``task_count`` trials."""
        if self.jobs == 1:
            return "serial"
        if self.pool != "auto":
            return self.pool
        from ..iblt import _kernels

        if _kernels.active() is not None:
            # GIL-free hot loops: threads scale like processes without
            # the fork or the pickling.
            return "thread"
        if task_count <= AUTO_THREAD_TASKS:
            return "thread"
        return "process"

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _chunk_size(self, task_count: int) -> int:
        if self.chunk_trials is not None:
            return self.chunk_trials
        # 4 chunks per worker: few enough that pickling stays amortised,
        # enough that an unlucky slow chunk does not idle the pool.
        return max(1, -(-task_count // (self.jobs * 4)))

    def run(self, sweep: SweepSpec, seed: int = 0) -> list[SweepPointResult]:
        """Execute every trial of ``sweep`` and group results by grid point."""
        trials = sweep.trial_specs(seed)
        tasks = [(self.backend, self.decode_mode, trial.spec) for trial in trials]
        mode = self._resolve_pool_mode(len(tasks))
        if mode == "serial":
            results = [_execute_trial(task) for task in tasks]
        elif mode == "thread":
            # Threads share os.environ, so the per-trial env scoping the
            # process path relies on would race.  Pin the knobs once, in
            # this thread, around the whole dispatch; workers then run
            # bare specs against the pinned process-wide defaults —
            # exactly what a per-trial scope resolves to.
            bare = [(None, None, spec) for _backend, _decode, spec in tasks]
            chunk = self._chunk_size(len(bare))
            chunks = [bare[i : i + chunk] for i in range(0, len(bare), chunk)]
            pool = self._ensure_thread_pool()
            with _scoped_env("REPRO_BACKEND", self.backend):
                with _scoped_env("REPRO_DECODE", self.decode_mode):
                    futures = [pool.submit(_execute_trial_chunk, c) for c in chunks]
                    results = [r for future in futures for r in future.result()]
        else:
            chunk = self._chunk_size(len(tasks))
            chunks = [tasks[i : i + chunk] for i in range(0, len(tasks), chunk)]
            pool = self._ensure_pool()
            futures = [pool.submit(_execute_trial_chunk, c) for c in chunks]
            # Futures are drained in submission order regardless of which
            # worker finishes first — completion order never leaks into
            # the report.
            results = [result for future in futures for result in future.result()]

        points = sweep.grid_points()
        grouped: list[list[ScenarioResult]] = [[] for _ in points]
        for trial, result in zip(trials, results):
            grouped[trial.point_index].append(result)
        return [
            SweepPointResult(
                point=point,
                params=sweep.point_params(point),
                results=tuple(group),
            )
            for point, group in zip(points, grouped)
        ]


def _round6(value: float) -> float:
    return round(float(value), 6)


def _aggregate_metrics(results: Sequence[ScenarioResult]) -> dict:
    """Mean/std/min/max for every numeric metric shared by all trials."""
    shared = set(results[0].metrics)
    for result in results[1:]:
        shared &= set(result.metrics)
    aggregated = {}
    for key in sorted(shared):
        values = [result.metrics[key] for result in results]
        if not all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in values
        ):
            continue
        summary = summarize(values)
        aggregated[key] = {
            "mean": _round6(summary.mean),
            "std": _round6(summary.std),
            "min": _round6(summary.minimum),
            "max": _round6(summary.maximum),
        }
    return aggregated


def render_sweep_report(
    sweep: SweepSpec,
    point_results: Sequence[SweepPointResult],
    seed: int,
) -> str:
    """The canonical ``repro.sweeps/v1`` JSON document (ends with a newline).

    Byte-deterministic for a fixed campaign/seed/backend/decode-mode:
    keys sorted, points in canonical grid order, floats rounded, and
    nothing execution-dependent (worker count, timings) included.
    """
    all_results = [result for point in point_results for result in point.results]
    points = []
    for point_result in point_results:
        outcomes = [result.success for result in point_result.results]
        rate, (low, high) = success_rate(outcomes)
        points.append(
            {
                "point": dict(point_result.point),
                "params": dict(point_result.params),
                "trials": len(outcomes),
                "successes": point_result.successes,
                "success_rate": _round6(rate),
                "success_ci": [_round6(low), _round6(high)],
                "metrics": _aggregate_metrics(point_result.results),
            }
        )
    document = {
        "schema": SWEEP_SCHEMA,
        "campaign": sweep.name,
        "protocol": sweep.protocol,
        "seed": seed,
        "trials_per_point": sweep.trials,
        "axes": {axis: list(values) for axis, values in sorted(sweep.axes.items())},
        "base_params": dict(sweep.base_params),
        "backends": sorted({result.backend for result in all_results}),
        "decode_modes": sorted({result.decode_mode for result in all_results}),
        "point_count": len(points),
        "points": points,
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def with_trials(sweep: SweepSpec, trials: int) -> SweepSpec:
    """A copy of ``sweep`` with its per-point trial count replaced."""
    return dataclasses.replace(sweep, trials=trials)


# -- built-in campaigns -----------------------------------------------------


def _derive_fault_rate(params: dict) -> dict:
    """Split the swept ``fault_rate`` axis into the component fault rates.

    One scalar axis traces the whole damage spectrum: 40% of the rate
    goes to drops, 30% to truncations, 20% to duplications and 10% to
    bit flips, so the curve mixes fully detectable faults (drop,
    truncate — typed decode errors) with silent ones (flips on the
    unchecksummed point list), which is what makes the measured
    success-rate-vs-corruption curve honest.
    """
    params = dict(params)
    rate = params.pop("fault_rate")
    params["drop_rate"] = round(0.4 * rate, 6)
    params["truncate_rate"] = round(0.3 * rate, 6)
    params["duplicate_rate"] = round(0.2 * rate, 6)
    params["flip_rate"] = round(0.1 * rate, 6)
    return params


def _derive_gap_ratio(params: dict) -> dict:
    """Turn the swept ``ratio`` axis into the dependent gap parameters.

    ``r2 = r1 * ratio`` and the planted far points sit safely beyond
    ``r2`` so the workload stays valid across the whole axis.
    """
    params = dict(params)
    ratio = params.pop("ratio")
    params["r2"] = params["r1"] * ratio
    params["far_radius"] = params["r2"] * 1.25
    return params


def builtin_campaigns() -> dict[str, SweepSpec]:
    """The paper-style curves ``python -m repro.cli sweep`` ships with.

    ``iblt-threshold``
        Decode success against IBLT load (2·differences/cells) for two
        branching factors ``q`` — the XORSAT-core peeling threshold
        (~0.82 of cells at q=3, ~0.77 at q=4).
    ``gap-ratio``
        Communication cost of the Gap Guarantee protocol against the
        distance ratio ``r2/r1`` (smaller gaps need more LSH rounds).
    ``emd-levels``
        Algorithm 1's cost against its resolution-level count, driven by
        tightening the prior distance bound ``D2`` (t = ceil(log2 D2)+1
        levels at D1 = 1).
    ``emd-branching``
        The interval-scaled protocol's cost against its branching factor
        ``b`` (Corollary 3.5's geometric interval ratio): smaller ``b``
        means more parallel Algorithm 1 instances, each cheaper —
        ``[D1, D2]`` splits into ``ceil(log_b(D2/D1))`` intervals.
    ``fault-rate``
        Success rate and total recovery bits of the resilient
        reconciliation controller against the per-message fault
        probability (split across drop/truncate/duplicate/flip by
        :func:`_derive_fault_rate`): the measured cost of self-healing
        as the channel degrades.
    ``multiparty-parties``
        Total star-topology cost against the party count: the
        multi-party lift runs one two-party Gap reconciliation per
        non-centre party, so cost should scale near-linearly.
    ``store-churn``
        The sketch store's recompute cost against churn rate × LRU
        capacity: warm hit rate and keys hashed per run as mutation
        pressure rises and residency shrinks — the trade-off curve the
        store's incremental-maintenance path exists to bend.
    ``churn-topology``
        Streaming gossip cost against churn rate × topology × Zipf
        skew: the same event stream replayed over star, ring, tree and
        random regular graphs, itemised per edge.
    """
    campaigns = [
        SweepSpec(
            name="iblt-threshold",
            protocol="iblt-load",
            axes={
                # Loads 2·32/cells from ~0.53 up through ~0.89: both well
                # below and above the peeling thresholds.
                "cells": (72, 84, 96, 120),
                "q": (3, 4),
            },
            base_params={"n": 256, "differences": 32},
            trials=8,
        ),
        SweepSpec(
            name="gap-ratio",
            protocol="gap",
            # dim 96: far points at r2·1.25 = 40 (the ratio-16 end) stay
            # placeable — a random Hamming point sits ~dim/2 from
            # everything, so dim 64 starves the far-point sampler there.
            axes={"ratio": (4, 8, 12, 16)},
            base_params={
                "dim": 96,
                "n": 16,
                "k": 1,
                "r1": 2.0,
                "close_radius": 2.0,
            },
            trials=3,
            derive=_derive_gap_ratio,
        ),
        SweepSpec(
            name="emd-levels",
            protocol="emd",
            axes={"d2": (8, 16, 32, 64, 128)},
            base_params={
                "space": "hamming",
                "dim": 48,
                "n": 16,
                "k": 1,
                "d1": 1,
                "close_radius": 1.0,
                "far_radius": 16.0,
            },
            trials=3,
        ),
        SweepSpec(
            name="emd-branching",
            protocol="emd",
            # b from 2 to 8 over [1, 64]: 6 intervals down to 2, so the
            # curve spans the many-cheap-instances and few-wide-instances
            # regimes of Corollary 3.5.
            axes={"ratio": (2, 3, 4, 8)},
            base_params={
                "scaled": True,
                "space": "hamming",
                "dim": 48,
                "n": 16,
                "k": 1,
                "d1": 1,
                "d2": 64,
                "close_radius": 1.0,
                "far_radius": 16.0,
            },
            trials=3,
        ),
        SweepSpec(
            name="fault-rate",
            protocol="resilient-recon",
            # 0 is the no-fault control point (recovery engages only on
            # the rare small-table 2-core); the top of the axis damages
            # roughly every other message, where recovery is exercised
            # hard but the retry budget still usually lands the union.
            axes={"fault_rate": (0.0, 0.15, 0.3, 0.45)},
            base_params={
                "dim": 40,
                "n": 48,
                "delta": 8,
                "delta_bound": 16,
                "max_attempts": 10,
                "max_escalations": 2,
            },
            trials=6,
            derive=_derive_fault_rate,
        ),
        SweepSpec(
            name="multiparty-parties",
            protocol="multiparty",
            axes={"parties": (2, 3, 4, 5)},
            # dim 96 keeps far points at r2 + 8 placeable for every party
            # count (see the multiparty-star builtin scenario note).
            base_params={"dim": 96, "n": 12, "r1": 2.0, "r2": 32.0},
            trials=3,
        ),
        SweepSpec(
            name="store-churn",
            protocol="store-churn",
            # churn spans gentle (half the base bound decodes first try)
            # to violent (every window escalates); capacity spans
            # thrashing (2 slots per shard for 2 hot sets plus guests)
            # to fully resident.
            axes={"churn": (4, 8, 16), "capacity": (2, 4, 8)},
            base_params={
                "sets": 6,
                "n": 48,
                "windows": 4,
                "guests": 2,
                "shards": 3,
                "delta_bound": 2,
                "max_escalations": 3,
                "max_attempts": 6,
                "key_bits": 55,
            },
            trials=3,
        ),
        SweepSpec(
            name="churn-topology",
            protocol="stream-churn",
            # Gossip cost against churn pressure × graph shape × key
            # skew: the star pays its whole transcript through the hub,
            # ring/tree/random spread it across edges at the price of
            # gossip depth; higher skew concentrates deletes on hot
            # recent keys without changing the per-window delta size.
            axes={
                "topology": ("star", "ring", "tree", "random"),
                "rate": (4, 12),
                "skew": (0.0, 1.5),
            },
            base_params={
                "parties": 5,
                "n": 24,
                "windows": 3,
                "delta_bound": 8,
                "key_bits": 55,
                "k_regular": 2,
            },
            trials=2,
        ),
    ]
    return {campaign.name: campaign for campaign in campaigns}
