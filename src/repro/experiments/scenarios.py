"""Scenario specifications and per-protocol drivers.

A *scenario* is a fully seeded, self-contained protocol run: generate a
workload from the spec's seed, execute one protocol, and report a flat
dict of JSON-safe metrics (bits exchanged, rounds, decode success, and
protocol-specific outcomes).  Every protocol family in the repo has a
driver here — the Gap Guarantee protocol (general and low-dimensional),
Algorithm 1 (EMD), sets-of-sets reconciliation, the strata estimator,
exact IBLT reconciliation (fixed-bound and strata-sized), and the
multi-party star — so CI and experiments exercise them all through one
API instead of one ad-hoc script each.

Determinism contract: for a fixed spec (including its seed) a driver
must return identical metrics on every run and on every backend — the
backends are bit-identical, workload randomness comes only from the
spec-derived generator, and floats are rounded before reporting so the
canonical JSON is byte-stable.  Wall-clock time is measured by the
runner, *outside* the metrics dict.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..core import (
    EMDProtocol,
    GapProtocol,
    ScaledEMDProtocol,
    low_dimensional_gap_protocol,
    verify_gap_guarantee,
)
from ..core.multiparty import Topology, multi_party_gap, verify_multi_party_guarantee
from ..hashing import PublicCoins, derive_seed
from ..iblt import IBLT
from ..lsh import BitSamplingMLSH
from ..metric import GridSpace, HammingSpace, MetricSpace, emd
from ..protocol import Channel, FaultSpec, FaultyChannel
from ..reconcile import exact_iblt_reconcile, outcome_metrics
from ..reconcile.exact_iblt import exact_iblt_reconcile_auto
from ..reconcile.resilient import ResilienceConfig, resilient_reconcile
from ..reconcile.strata import StrataEstimator
from ..setsofsets import SetsOfSetsReconciler
from ..workloads import noisy_replica_pair, perturb_point, random_far_point

__all__ = ["DRIVERS", "ScenarioResult", "ScenarioSpec", "builtin_scenarios"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One seeded protocol run: workload + protocol + params + seed."""

    name: str
    protocol: str
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def rng(self) -> np.random.Generator:
        """The workload generator: derived from the seed *and* the name
        (stable across runs and platforms via crc32, unlike ``hash``)."""
        return np.random.default_rng([self.seed, zlib.crc32(self.name.encode())])

    def coins(self) -> PublicCoins:
        """The protocol's shared randomness, likewise name-scoped."""
        return PublicCoins(self.seed).child("scenario", self.name)


@dataclass(frozen=True)
class ScenarioResult:
    """A finished scenario: the spec, its metrics, and the wall time.

    ``backend`` and ``decode_mode`` record the *resolved* execution knobs
    (after env defaults), so a report distinguishes a frontier run from a
    rescan run; only the numpy backend's decoder consults the decode
    mode.  ``metrics`` is flat and JSON-safe; ``wall_time_s`` lives
    outside it so the canonical report can stay byte-deterministic.
    """

    spec: ScenarioSpec
    backend: str
    decode_mode: str
    metrics: Mapping[str, Any]
    wall_time_s: float

    @property
    def success(self) -> bool:
        return bool(self.metrics.get("success", False))

    def to_dict(self, include_timings: bool = False) -> dict:
        entry = {
            "name": self.spec.name,
            "protocol": self.spec.protocol,
            "seed": self.spec.seed,
            "backend": self.backend,
            "decode_mode": self.decode_mode,
            "params": dict(self.spec.params),
            "metrics": dict(self.metrics),
        }
        if include_timings:
            entry["wall_time_s"] = round(self.wall_time_s, 6)
        return entry


def _space(params: Mapping[str, Any]) -> MetricSpace:
    kind = params.get("space", "hamming")
    if kind == "hamming":
        return HammingSpace(params["dim"])
    if kind in ("l1", "l2"):
        return GridSpace(
            side=params["side"], dim=params["dim"], p=1.0 if kind == "l1" else 2.0
        )
    raise ValueError(f"unknown space {kind!r}")


def _round6(value: float) -> float:
    return round(float(value), 6)


# -- drivers ----------------------------------------------------------------


def _drive_gap(spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins) -> dict:
    """The general Gap Guarantee protocol (Theorem 4.2) on Hamming data."""
    p = spec.params
    space = HammingSpace(p["dim"])
    family = BitSamplingMLSH(space, w=float(p["dim"]))
    lsh_params = family.derived_lsh_params(r1=p["r1"], r2=p["r2"])
    protocol = GapProtocol(space, family, lsh_params, n=p["n"], k=p["k"])
    workload = noisy_replica_pair(
        space,
        n=p["n"],
        k=p["k"],
        close_radius=p["close_radius"],
        far_radius=p["far_radius"],
        rng=rng,
    )
    result = protocol.run(workload.alice, workload.bob, coins)
    holds = result.success and verify_gap_guarantee(
        space, workload.alice, result.bob_final, p["r2"]
    )
    return {
        "success": bool(result.success),
        "rounds": result.rounds,
        "bits": result.total_bits,
        "transmitted_points": len(result.transmitted),
        "gap_guarantee_holds": bool(holds),
    }


def _drive_gap_lowdim(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Theorem 4.5's one-sided low-dimensional variant on an L1 grid."""
    p = spec.params
    space = GridSpace(side=p["side"], dim=p["dim"], p=1.0)
    protocol = low_dimensional_gap_protocol(
        space, n=p["n"], k=p["k"], r1=p["r1"], r2=p["r2"]
    )
    workload = noisy_replica_pair(
        space,
        n=p["n"],
        k=p["k"],
        close_radius=p["close_radius"],
        far_radius=p["far_radius"],
        rng=rng,
    )
    result = protocol.run(workload.alice, workload.bob, coins)
    holds = result.success and verify_gap_guarantee(
        space, workload.alice, result.bob_final, p["r2"]
    )
    return {
        "success": bool(result.success),
        "rounds": result.rounds,
        "bits": result.total_bits,
        "transmitted_points": len(result.transmitted),
        "gap_guarantee_holds": bool(holds),
    }


def _drive_emd(spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins) -> dict:
    """Algorithm 1: reconciliation under an earth-mover's-distance bound.

    With ``scaled: true`` the run goes through the interval-scaled
    wrapper (Corollaries 3.5/3.6) instead: ``[D1, D2]`` is split into
    geometric intervals of ratio ``ratio`` (the scaled protocol's
    branching factor) and Algorithm 1 runs once per interval in a single
    round — the knob the ``emd-branching`` sweep campaign traces
    communication cost against.
    """
    p = spec.params
    space = _space(p)
    workload = noisy_replica_pair(
        space,
        n=p["n"],
        k=p["k"],
        close_radius=p["close_radius"],
        far_radius=p["far_radius"],
        rng=rng,
    )
    if p.get("scaled", False):
        scaled = ScaledEMDProtocol(
            space,
            n=p["n"],
            k=p["k"],
            d1=p.get("d1"),
            d2=p.get("d2"),
            m_bound=p.get("m_bound"),
            ratio=p.get("ratio", 8.0),
            q=p.get("q", 3),
            max_total_hashes=p.get("max_total_hashes"),
        )
        scaled_result = scaled.run(workload.alice, workload.bob, coins)
        metrics = {
            "success": bool(scaled_result.success),
            "rounds": scaled_result.rounds,
            "bits": scaled_result.total_bits,
            "decoded_level": scaled_result.decoded_level,
            "intervals": scaled.intervals,
            "emd_before": _round6(emd(space, workload.alice, workload.bob)),
        }
        if scaled_result.chosen_interval is not None:
            metrics["chosen_interval"] = scaled_result.chosen_interval
        if scaled_result.success:
            metrics["emd_after"] = _round6(emd(space, workload.alice, scaled_result.bob_final))
        return metrics
    # Optional prior knowledge (Corollary 3.5-style tighter bounds): d1/d2
    # shrink the level schedule, which the emd-levels sweep campaign uses
    # to trace communication cost against the level count.
    protocol = EMDProtocol.for_instance(
        space,
        n=p["n"],
        k=p["k"],
        d1=p.get("d1"),
        d2=p.get("d2"),
        m_bound=p.get("m_bound"),
        q=p.get("q", 3),
        max_total_hashes=p.get("max_total_hashes"),
    )
    result = protocol.run(workload.alice, workload.bob, coins)
    metrics = {
        "success": bool(result.success),
        "rounds": result.rounds,
        "bits": result.total_bits,
        "decoded_level": result.decoded_level,
        "levels": protocol.parameters.levels,
        "emd_before": _round6(emd(space, workload.alice, workload.bob)),
    }
    if result.success:
        metrics["emd_after"] = _round6(emd(space, workload.alice, result.bob_final))
    return metrics


def _drive_setsofsets(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Multiset-of-keys reconciliation (the Gap protocol's middle layer)."""
    p = spec.params
    entries, entry_bits = p["entries"], p["entry_bits"]
    alice = [
        tuple(int(v) for v in rng.integers(0, 1 << entry_bits, size=entries))
        for _ in range(p["keys"])
    ]
    bob = list(alice)
    for index in range(p["modified"]):
        mutated = list(bob[index])
        mutated[index % entries] ^= int(rng.integers(1, 1 << entry_bits))
        bob[index] = tuple(mutated)
    for _ in range(p["extra"]):
        bob.append(tuple(int(v) for v in rng.integers(0, 1 << entry_bits, size=entries)))
    reconciler = SetsOfSetsReconciler(
        coins,
        "scenario-sos",
        entries=entries,
        entry_bits=entry_bits,
        expected_differences=(p["modified"] + p["extra"] + 1) * (entries + 1),
    )
    result = reconciler.run(alice, bob, Channel())
    return {
        "success": bool(result.success),
        "rounds": result.rounds,
        "bits": result.total_bits,
        "recovered_keys": len(result.recovered),
        "unresolved": result.unresolved,
    }


def _drive_strata(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Strata estimation of an unknown symmetric-difference size."""
    p = spec.params
    n, differences = p["n"], p["differences"]
    universe = rng.choice(1 << 55, size=n + differences, replace=False).astype(np.uint64)
    alice = universe[:n]
    bob = np.concatenate([universe[differences:n], universe[n:]])
    alice_sketch = StrataEstimator(coins, "scenario-strata", key_bits=55)
    bob_sketch = StrataEstimator(coins, "scenario-strata", key_bits=55)
    alice_sketch.insert_batch(alice)
    bob_sketch.insert_batch(bob)
    _, sketch_bits = alice_sketch.to_payload()
    estimate = alice_sketch.subtract(bob_sketch).estimate()
    true_difference = 2 * differences
    return {
        # "success" for an estimator: it returned a usable (covering)
        # upper bound, which is what exact reconciliation sizes from.
        "success": bool(estimate >= true_difference),
        "rounds": 1,
        "bits": sketch_bits,
        "estimate": int(estimate),
        "true_difference": true_difference,
    }


def _drive_exact_iblt(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Exact IBLT reconciliation with a fixed difference bound."""
    p = spec.params
    space = HammingSpace(p["dim"])
    shared = space.sample(rng, p["n"])
    delta = p["delta"]
    alice = shared + space.sample(rng, delta // 2)
    bob = shared + space.sample(rng, delta - delta // 2)
    # 4x headroom on the bound: tiny tables draw occasional 2-cores and,
    # unlike exact-auto, this driver has no estimate/retry loop to absorb
    # an unlucky seed.
    result = exact_iblt_reconcile(space, alice, bob, 4 * delta, coins)
    return outcome_metrics(result, alice, bob)


def _drive_exact_auto(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Exact reconciliation with *no* prior bound (strata-sized IBLT)."""
    p = spec.params
    space = HammingSpace(p["dim"])
    shared = space.sample(rng, p["n"])
    delta = p["delta"]
    alice = shared + space.sample(rng, delta // 2)
    bob = shared + space.sample(rng, delta - delta // 2)
    result = exact_iblt_reconcile_auto(space, alice, bob, coins)
    return outcome_metrics(result, alice, bob)


def _drive_iblt_load(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Raw IBLT peeling at a controlled load (the XORSAT-core threshold).

    Two tables share ``n`` keys and differ in ``2 * differences`` of them,
    so after subtraction the peeler faces exactly ``2 * differences`` keys
    spread over ``cells`` cells with ``q`` hashes each — the load
    ``2 * differences / cells`` is the quantity whose decode-success
    threshold the iblt-threshold sweep campaign traces.  Decode failure is
    a *measured outcome* here (the curve's upper branch), not an error.
    """
    p = spec.params
    n, differences, q = p["n"], p["differences"], p.get("q", 3)
    universe = rng.choice(1 << 55, size=n + differences, replace=False).astype(np.uint64)
    alice = universe[:n]
    bob = np.concatenate([universe[differences:n], universe[n:]])
    table_a = IBLT(coins, "scenario-iblt-load", cells=p["cells"], q=q, key_bits=55)
    table_b = IBLT(coins, "scenario-iblt-load", cells=p["cells"], q=q, key_bits=55)
    table_a.insert_batch(alice)
    table_b.insert_batch(bob)
    _, table_bits = table_b.to_payload()
    decoded = table_b.subtract(table_a).decode()
    true_differences = 2 * differences
    return {
        "success": bool(decoded.success),
        "rounds": 1,
        "bits": table_bits,
        "cells": table_a.m,
        "decoded_differences": decoded.difference_count,
        "true_differences": true_differences,
        "load": _round6(true_differences / table_a.m),
    }


def _drive_resilient(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Self-healing reconciliation over a (possibly faulty) channel.

    Runs :func:`~repro.reconcile.resilient.resilient_reconcile` on a
    Hamming workload; with any fault rate set the channel is wrapped in a
    :class:`~repro.protocol.faults.FaultyChannel` whose fault stream is
    derived from the scenario coins, so every metric — including the
    recovery path — is deterministic for a fixed spec.  ``success`` is
    the controller's end-to-end verdict (Bob reached the union despite
    faults/overload); the recovery-path metrics are what the fault-rate
    sweep campaign aggregates.
    """
    p = spec.params
    space = HammingSpace(p["dim"])
    shared = space.sample(rng, p["n"])
    delta = p["delta"]
    alice = shared + space.sample(rng, delta // 2)
    bob = shared + space.sample(rng, delta - delta // 2)
    fault_spec = FaultSpec(
        drop_rate=p.get("drop_rate", 0.0),
        truncate_rate=p.get("truncate_rate", 0.0),
        flip_rate=p.get("flip_rate", 0.0),
        duplicate_rate=p.get("duplicate_rate", 0.0),
    )
    channel: Channel | FaultyChannel = Channel()
    if fault_spec.any_faults:
        channel = FaultyChannel(channel, fault_spec, coins.child("scenario-faults"))
    config = ResilienceConfig(
        max_attempts=p.get("max_attempts", 8),
        max_escalations=p.get("max_escalations", 2),
    )
    result = resilient_reconcile(
        space,
        alice,
        bob,
        delta_bound=p["delta_bound"],
        coins=coins.child("resilient"),
        channel=channel,
        config=config,
    )
    report = result.report
    metrics = outcome_metrics(result, alice, bob)
    metrics.update(
        {
            "attempts": len(report.attempts),
            "escalations": report.escalations,
            "rerequests": report.rerequests,
            "breaker_tripped": bool(report.breaker_tripped),
            "recovery_bits": report.recovery_bits,
        }
    )
    if report.faults:
        metrics["fault_events"] = report.faults["faulted"]
        metrics["faults_dropped"] = report.faults["dropped"]
        metrics["faults_truncated"] = report.faults["truncated"]
        metrics["faults_flipped"] = report.faults["flipped"]
        metrics["faults_duplicated"] = report.faults["duplicated"]
        metrics["fault_bits_lost"] = report.faults["bits_lost"]
    return metrics


def _drive_recon_service(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """The full reconciliation service over a seeded simulated network.

    Boots the asyncio :class:`~repro.server.server.ReconcileServer` and a
    :class:`~repro.server.client.ReconcileClient` on an in-memory framed
    transport, multiplexes ``sessions`` concurrent reconciliations over
    one connection, and damages traffic with a
    :class:`~repro.server.network.SimulatedNetwork` whose fault/latency
    streams are keyed only on ``(session, direction, seq)`` — so the
    metrics are byte-deterministic regardless of asyncio scheduling.
    ``success`` requires every session to reconcile *and* the server to
    verify each union against its derived ground truth.  Wire bytes are
    *measured* off the transport (duplicates included) with framing
    overhead itemised apart from payload bytes.
    """
    from ..server import (
        NetworkConfig,
        ReconcileClient,
        ReconcileServer,
        SessionConfig,
        SessionWireStats,
        SimulatedNetwork,
        memory_pipe,
    )

    p = spec.params
    configs = [
        SessionConfig(
            session_id=session_id,
            seed=spec.seed,
            protocol=p.get("protocol", "resilient"),
            dim=p["dim"],
            n_shared=p["n"],
            delta=p["delta"],
            delta_bound=p["delta_bound"],
            q=p.get("q", 3),
            max_attempts=p.get("max_attempts", 8),
            max_escalations=p.get("max_escalations", 2),
        )
        for session_id in range(1, p["sessions"] + 1)
    ]
    network = SimulatedNetwork(
        NetworkConfig(
            seed=derive_seed(spec.seed, "recon-service", spec.name),
            loss_rate=p.get("loss_rate", 0.0),
            corrupt_rate=p.get("corrupt_rate", 0.0),
            duplicate_rate=p.get("duplicate_rate", 0.0),
            reorder_rate=p.get("reorder_rate", 0.0),
            base_latency_ms=p.get("base_latency_ms", 0.2),
            jitter_ms=p.get("jitter_ms", 0.0),
        )
    )

    async def run():
        client_conn, server_conn = memory_pipe()
        server = ReconcileServer()
        server_task = asyncio.ensure_future(server.serve_connection(server_conn))
        client = ReconcileClient(client_conn, network=network, timeout=30.0)
        client.start()
        try:
            return await client.run_sessions(configs)
        finally:
            await client.aclose()
            server_task.cancel()
            try:
                await server_task
            except asyncio.CancelledError:
                pass

    reports = sorted(asyncio.run(run()), key=lambda report: report.session_id)
    transcript_bits = sum(r.transcript_bits for r in reports)
    wire_bytes = sum(r.wire.wire_bytes for r in reports)
    payload_bytes = sum(r.wire.payload_bytes for r in reports)
    # Percentiles over the *pooled* per-frame latency draws, not a mean
    # of per-session percentiles (which would weight sessions equally
    # regardless of how many frames each carried).
    pooled = SessionWireStats()
    for r in reports:
        pooled.sim_latency_samples.extend(r.wire.sim_latency_samples)
    return {
        "success": bool(all(r.success and r.union_ok for r in reports)),
        "rounds": sum(r.transcript_rounds for r in reports),
        "bits": transcript_bits,
        "sessions": len(reports),
        "sessions_reconciled": sum(1 for r in reports if r.success and r.union_ok),
        "attempts": sum(r.attempts for r in reports),
        "escalations": sum(r.escalations for r in reports),
        "rerequests": sum(r.rerequests for r in reports),
        "breakers_tripped": sum(1 for r in reports if r.breaker_tripped),
        "wire_bytes": wire_bytes,
        "payload_bytes": payload_bytes,
        "framing_bytes": wire_bytes - payload_bytes,
        "frames_lost": sum(r.wire.frames_lost for r in reports),
        "frames_corrupted": sum(r.wire.frames_corrupted for r in reports),
        "frames_duplicated": sum(r.wire.frames_duplicated for r in reports),
        "frames_reordered": sum(r.wire.frames_reordered for r in reports),
        "sim_latency_ms": _round6(sum(r.wire.sim_latency_ms for r in reports)),
        "sim_latency_p50_ms": _round6(pooled.latency_percentile(0.50)),
        "sim_latency_p99_ms": _round6(pooled.latency_percentile(0.99)),
        # The physical wire must carry at least the analytical transcript.
        "wire_covers_transcript": bool(8 * wire_bytes >= transcript_bits),
    }


def _drive_store_churn(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Windowed reconciliation against the sharded sketch store under churn.

    ``sets`` hot keyed sets live in a :class:`~repro.store.SketchStore`
    whose per-shard LRU capacity is deliberately tight.  Each window
    (1) applies a seeded insert/delete delta to every hot set through
    ``apply_mutations`` — incrementally refreshing warm sketches instead
    of rebuilding them, (2) registers throwaway *guest* sets to pressure
    the LRU (an evicted hot set must be re-registered from its
    membership, which the report counts), and (3) reconciles each hot
    set against a lagging replica: the store serves the sketch (warm
    where resident), the replica deletes its stale view and peels.  An
    undecodable table escalates the bound through a
    :class:`~repro.reconcile.resilient.BreakerState`; a tripped breaker
    falls back to a store-served strata measurement, and the final state
    is persisted per replica in the store — so a set whose churn
    outruns its bound starts *later windows* at the escalated bound.
    ``success`` requires every recovered difference to match ground
    truth exactly and every replica to end the run converged.  Cache
    accounting (hits, rebuilds avoided, incremental refreshes,
    evictions) is reported but never affects served bytes.
    """
    from ..iblt.iblt import cells_for_differences
    from ..reconcile.resilient import BreakerState
    from ..store import SketchStore, StoreConfig

    p = spec.params
    n, churn, windows = p["n"], p["churn"], p["windows"]
    key_bits = p.get("key_bits", 55)
    guests = p.get("guests", 2)
    q = p.get("q", 3)
    policy = ResilienceConfig(
        max_attempts=p.get("max_attempts", 6),
        max_escalations=p.get("max_escalations", 3),
        q=q,
    )
    store = SketchStore(
        StoreConfig(
            seed=spec.seed,
            shards=p.get("shards", 2),
            capacity=p.get("capacity", 4),
        )
    )
    mask = (1 << 61) - 1
    taken: "set[int]" = set()

    def fresh_keys(count: int) -> "list[int]":
        """``count`` universe-unique keys, in draw order (seeded)."""
        out: "list[int]" = []
        while len(out) < count:
            drawn = rng.integers(0, 1 << key_bits, size=max(8, 2 * count))
            for key in (int(k) for k in drawn):
                if key not in taken:
                    taken.add(key)
                    out.append(key)
                    if len(out) == count:
                        break
        return out

    truths: "list[set[int]]" = []
    replicas: "list[set[int]]" = []
    store_keys: "list[int]" = []
    set_coins: "list[PublicCoins]" = []
    for index in range(p["sets"]):
        keys = fresh_keys(n)
        truths.append(set(keys))
        replicas.append(set(keys))
        store_keys.append(derive_seed(spec.seed, "store-churn-set", index) & mask)
        store.put_set(store_keys[index], keys, key_bits=key_bits)
        # Coins are per *set*, not per window: the slot survives churn
        # (refreshed in place), which is what makes repeat serves warm.
        set_coins.append(coins.child("store-set", index))

    serves = decode_failures = escalations = 0
    strata_fallbacks = reregistrations = 0
    bits_total = 0
    all_exact = True
    for window in range(windows):
        # -- churn phase: mutate every hot set, incrementally when warm.
        for index in range(p["sets"]):
            truth = truths[index]
            dels = [int(k) for k in rng.choice(sorted(truth), size=churn // 2, replace=False)]
            ins = fresh_keys(churn - churn // 2)
            truth.difference_update(dels)
            truth.update(ins)
            if store.contains(store_keys[index]):
                store.apply_mutations(store_keys[index], inserts=ins, deletes=dels)
            else:
                store.put_set(store_keys[index], sorted(truth), key_bits=key_bits)
                reregistrations += 1
        # -- guest phase: one-shot registrations pressure the LRU.
        for guest in range(guests):
            gkey = derive_seed(spec.seed, "store-churn-guest", window, guest) & mask
            store.put_set(gkey, fresh_keys(n), key_bits=key_bits)
        # -- reconcile phase: each replica catches up through the store.
        for index in range(p["sets"]):
            skey, truth, replica = store_keys[index], truths[index], replicas[index]
            if not store.contains(skey):
                store.put_set(skey, sorted(truth), key_bits=key_bits)
                reregistrations += 1
            peer = ("replica", index)
            state = store.load_breaker(peer) or BreakerState(bound=p["delta_bound"])
            stale_view = np.asarray(sorted(replica), dtype=np.uint64)
            decoded = None
            for _attempt in range(policy.max_attempts):
                cells = cells_for_differences(state.bound, q=q)
                payload, bits = store.serve_iblt(
                    skey, set_coins[index], "store-churn", cells=cells, q=q
                )
                serves += 1
                bits_total += bits
                view = IBLT(
                    set_coins[index], "store-churn", cells=cells, q=q, key_bits=key_bits
                ).from_payload(payload)
                view.delete_batch(stale_view)
                result = view.decode()
                if result.success:
                    decoded = result
                    break
                decode_failures += 1
                advanced = state.after_undecodable(policy)
                if advanced.escalations > state.escalations:
                    escalations += 1
                state = advanced
                if state.breaker_open and state.fallback_bound is None:
                    # Escalation budget exhausted: measure the difference
                    # with the store-served strata estimator (read-only;
                    # ``subtract`` returns a fresh result).
                    served = store.serve_strata(
                        skey, set_coins[index].child("strata"), "store-churn-strata"
                    )
                    local = StrataEstimator(
                        set_coins[index].child("strata"),
                        "store-churn-strata",
                        key_bits=key_bits,
                    )
                    local.insert_batch(stale_view)
                    bits_total += served.to_payload()[1]
                    state = state.with_fallback(max(4, served.subtract(local).estimate()))
                    strata_fallbacks += 1
            store.save_breaker(peer, state)
            if decoded is None:
                all_exact = False  # replica stays stale; churn compounds
                continue
            missing = {int(key) for key in decoded.inserted}
            stale = {int(key) for key in decoded.deleted}
            if missing != truth - replica or stale != replica - truth:
                all_exact = False
            replica -= stale
            replica |= missing

    converged = all(replicas[i] == truths[i] for i in range(p["sets"]))
    stats = store.stats
    return {
        "success": bool(all_exact and converged),
        "rounds": windows,
        "bits": bits_total,
        "sets": p["sets"],
        "serves": serves,
        "decode_failures": decode_failures,
        "escalations": escalations,
        "strata_fallbacks": strata_fallbacks,
        "reregistrations": reregistrations,
        "store_hits": stats.hits,
        "store_misses": stats.misses,
        "store_hit_rate": _round6(stats.hit_rate),
        "rebuilds_avoided": stats.rebuilds_avoided,
        "incremental_refreshes": stats.incremental_refreshes,
        "keys_hashed": stats.keys_hashed,
        "evictions": stats.evictions,
        "sketch_evictions": stats.sketch_evictions,
    }


def _drive_multiparty(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """The multi-party lift of the Gap protocol over a gossip topology.

    ``topology`` defaults to the star, whose report keeps every
    pre-redesign key at the pre-redesign value (pinned by goldens); the
    topology, gossip depth and per-edge transcript bits are additive.
    """
    p = spec.params
    space = HammingSpace(p["dim"])
    r1, r2 = p["r1"], p["r2"]
    base = space.sample(rng, p["n"])
    party_sets = []
    anchors = list(base)
    for _party in range(p["parties"]):
        observations = [perturb_point(space, point, int(r1), rng) for point in base]
        private = random_far_point(space, anchors, r2 + 8, rng)
        observations.append(private)
        anchors.append(private)
        party_sets.append(observations)
    family = BitSamplingMLSH(space, w=float(p["dim"]))
    lsh_params = family.derived_lsh_params(r1=r1, r2=r2)
    protocol = GapProtocol(
        space,
        family,
        lsh_params,
        n=p["n"] + p["parties"],
        k=p["parties"],
        sos_size_multiplier=6.0,
    )
    topology = Topology.build(
        p.get("topology", "star"),
        p["parties"],
        coins=coins.child("topology"),
        branching=p.get("branching", 2),
        k=p.get("k_regular", 2),
    )
    result = multi_party_gap(protocol, party_sets, coins, topology=topology)
    holds = result.success and verify_multi_party_guarantee(
        space, party_sets, result, r2
    )
    metrics = {
        "success": bool(result.success),
        "rounds": result.protocol_runs,
        "bits": result.total_bits,
        "parties": p["parties"],
        "multi_party_guarantee_holds": bool(holds),
        "topology": result.topology,
        "gossip_depth": result.depth,
    }
    for u, v, bits in result.edge_bits:
        metrics[f"edge_bits_{u}_{v}"] = bits
    return metrics


def _drive_stream_churn(
    spec: ScenarioSpec, rng: np.random.Generator, coins: PublicCoins
) -> dict:
    """Replay a churn event stream over gossip topologies.

    A seeded :class:`~repro.workloads.ChurnGenerator` stream (Zipf
    delete skew, multi-source) is replayed through per-party
    :class:`~repro.store.SketchStore`\\ s by
    :class:`~repro.stream.StreamReplayer`, reconciling event IDs across
    the topology each window.  ``topology`` may name one kind or
    ``"all"`` (the default), which replays the *same* stream over every
    kind and reports each under a ``_<kind>`` suffix — the scenario's
    gate is that all of them converge *and* every party's warm
    membership sketch ends byte-identical to a cold rebuild.
    """
    from ..stream import StreamReplayer
    from ..workloads import ChurnGenerator

    p = spec.params
    key_bits = p.get("key_bits", 55)
    parties = p.get("parties", 4)
    workload = ChurnGenerator(coins.child("churn"), key_bits=key_bits).generate(
        n=p["n"],
        windows=p.get("windows", 3),
        rate=p.get("rate", 6),
        skew=p.get("skew", 1.0),
        insert_fraction=p.get("insert_fraction", 0.5),
        sources=parties,
    )
    kinds = (
        ("star", "ring", "tree", "random")
        if p.get("topology", "all") == "all"
        else (p["topology"],)
    )
    metrics: dict = {
        "parties": parties,
        "windows": workload.windows,
        "events": len(workload.events),
        "final_size": len(workload.final_membership),
    }
    overall = True
    bits_total = 0
    for kind in kinds:
        topology = Topology.build(
            kind,
            parties,
            coins=coins.child("topology"),
            branching=p.get("branching", 2),
            k=p.get("k_regular", 2),
        )
        replayer = StreamReplayer(
            topology,
            coins.child("replay"),
            key_bits=key_bits,
            delta_bound=p.get("delta_bound", 8),
            q=p.get("q", 3),
            max_attempts=p.get("max_attempts", 6),
        )
        report = replayer.replay(workload.events)
        overall = overall and report.success
        bits_total += report.total_bits
        suffix = f"_{kind}" if len(kinds) > 1 else ""
        metrics.update(report.to_metrics(suffix))
        if len(kinds) == 1:
            metrics["topology"] = kind
    # Every scenario reports unsuffixed totals: "bits" across all
    # replayed topologies, "rounds" as the gossip waves (one per window).
    metrics["bits"] = bits_total
    metrics["rounds"] = max(1, workload.windows)
    metrics["success"] = bool(overall)
    return metrics


DRIVERS: dict[str, Callable[[ScenarioSpec, np.random.Generator, PublicCoins], dict]] = {
    "gap": _drive_gap,
    "gap-lowdim": _drive_gap_lowdim,
    "emd": _drive_emd,
    "setsofsets": _drive_setsofsets,
    "strata": _drive_strata,
    "exact-iblt": _drive_exact_iblt,
    "exact-auto": _drive_exact_auto,
    "iblt-load": _drive_iblt_load,
    "multiparty": _drive_multiparty,
    "resilient-recon": _drive_resilient,
    "recon-service": _drive_recon_service,
    "store-churn": _drive_store_churn,
    "stream-churn": _drive_stream_churn,
}


def builtin_scenarios(seed: int = 0) -> list[ScenarioSpec]:
    """The fixed scenario matrix CI smoke-tests (small, seconds-fast).

    One spec per protocol family, sized so the whole matrix runs in a
    few seconds on either backend while still exercising the real
    end-to-end paths (sketch serialization, channel accounting, decode).
    """
    return [
        ScenarioSpec(
            "gap-hamming",
            "gap",
            seed,
            {"dim": 64, "n": 24, "k": 2, "r1": 2.0, "r2": 24.0,
             "close_radius": 2.0, "far_radius": 30.0},
        ),
        ScenarioSpec(
            "gap-lowdim-l1",
            "gap-lowdim",
            seed,
            {"side": 4096, "dim": 2, "n": 24, "k": 2, "r1": 4.0, "r2": 512.0,
             "close_radius": 4.0, "far_radius": 700.0},
        ),
        ScenarioSpec(
            "emd-hamming",
            "emd",
            seed,
            {"space": "hamming", "dim": 48, "n": 16, "k": 1,
             "close_radius": 1.0, "far_radius": 16.0},
        ),
        ScenarioSpec(
            "emd-grid-l1",
            "emd",
            seed,
            # far_radius 64: an L1 ball of radius 64 covers ~12.5% of the
            # 256x256 grid, so rejection sampling against 16 anchors
            # converges at any seed (96 starves on crowded draws).
            {"space": "l1", "side": 256, "dim": 2, "n": 16, "k": 1,
             "close_radius": 2.0, "far_radius": 64.0},
        ),
        ScenarioSpec(
            "setsofsets-patch",
            "setsofsets",
            seed,
            {"keys": 12, "entries": 8, "entry_bits": 20, "modified": 2, "extra": 1},
        ),
        ScenarioSpec(
            "strata-estimate",
            "strata",
            seed,
            {"n": 600, "differences": 40},
        ),
        ScenarioSpec(
            "exact-iblt-hamming",
            "exact-iblt",
            seed,
            {"dim": 40, "n": 80, "delta": 8},
        ),
        ScenarioSpec(
            "exact-auto-hamming",
            "exact-auto",
            seed,
            {"dim": 40, "n": 80, "delta": 8},
        ),
        # load 40/96 ≈ 0.42, far below the q=3 peeling threshold (~0.82),
        # so this smoke point decodes at any seed; the sweep campaign is
        # what walks the load up through the threshold.
        ScenarioSpec(
            "iblt-load-peel",
            "iblt-load",
            seed,
            {"n": 128, "differences": 20, "cells": 96, "q": 3},
        ),
        # dim 96: a random Hamming point sits ~dim/2 from everything, so
        # far points at r2 + 8 = 40 are easy to place; at dim 64 the
        # far-point sampler starves (distance >= 32 is the median).
        ScenarioSpec(
            "multiparty-star",
            "multiparty",
            seed,
            {"dim": 96, "n": 12, "parties": 3, "r1": 2.0, "r2": 32.0},
        ),
        # delta_bound 1 against 12 true differences forces the primary
        # attempt (and the single allowed escalation) to fail, tripping
        # the breaker into the strata-sized fallback; drop/truncate
        # faults on top force re-requests.  The smoke point must *still*
        # recover — that is the gate CI's fault-smoke job enforces.
        ScenarioSpec(
            "resilient-recon-faulty",
            "resilient-recon",
            seed,
            {"dim": 40, "n": 64, "delta": 12, "delta_bound": 1,
             "max_escalations": 1, "max_attempts": 10,
             "drop_rate": 0.25, "truncate_rate": 0.25, "duplicate_rate": 0.1},
        ),
        # The whole service stack: asyncio server + multiplexed client
        # sessions over an in-memory framed transport, with seeded
        # loss/corruption/duplication on the link.  delta_bound 4 against
        # ~12 true differences forces escalations (and, on unlucky
        # sessions, the strata fallback) to happen *over the wire*; the
        # gate is that every session still reconciles and the measured
        # wire bytes cover the analytical transcript.
        ScenarioSpec(
            "recon-service-network",
            "recon-service",
            seed,
            {"sessions": 6, "dim": 48, "n": 96, "delta": 12, "delta_bound": 4,
             "max_escalations": 1, "max_attempts": 10,
             "loss_rate": 0.15, "corrupt_rate": 0.1, "duplicate_rate": 0.1,
             "reorder_rate": 0.1, "jitter_ms": 0.4},
        ),
        # The sketch store under churn: 6 hot sets across 3 shards of LRU
        # capacity 4, with per-window guest registrations forcing real
        # evictions while the hot sets stay warm (hit rate > 0 is the CI
        # store-smoke gate).  delta_bound 2 against 8 differences per
        # window forces escalations whose BreakerState persists in the
        # store, so later windows open at the escalated bound — which is
        # exactly what keeps their sketch shape stable and warm.
        ScenarioSpec(
            "store-churn-lru",
            "store-churn",
            seed,
            {"sets": 6, "n": 64, "windows": 5, "churn": 8, "guests": 2,
             "shards": 3, "capacity": 4, "delta_bound": 2,
             "max_escalations": 3, "max_attempts": 6, "key_bits": 55},
        ),
        # One Zipf-skewed churn stream replayed over all four gossip
        # topologies (topology "all"): 5 parties each observe ~1/5 of
        # the events, gossip converges every window, and the gate is
        # convergence plus warm-equals-cold bit-identity on every
        # party's membership sketch — per topology, under suffixed
        # metrics.  delta_bound 8 sizes the ID sketches for the ~6
        # events a window spreads across an edge.
        ScenarioSpec(
            "stream-churn-gossip",
            "stream-churn",
            seed,
            {"parties": 5, "n": 32, "windows": 3, "rate": 6, "skew": 1.2,
             "delta_bound": 8, "key_bits": 55, "k_regular": 2,
             "branching": 2},
        ),
    ]
