"""The scenario runner and its canonical JSON report.

:class:`ScenarioRunner` executes :class:`~repro.experiments.scenarios.ScenarioSpec`
objects on a chosen backend/decode-mode (by scoping the ``REPRO_BACKEND``
and ``REPRO_DECODE`` process defaults around each run, exactly the knobs
CI's matrix sets globally) and times each run.  :func:`render_report`
turns the results into the canonical JSON document: keys sorted, floats
pre-rounded by the drivers, timings excluded unless asked for — so two
runs with the same seed and backend produce byte-identical reports,
which is the invariant CI's ``scenarios-smoke`` job enforces.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Iterable, Sequence

from ..iblt.backend import (
    default_backend,
    default_decode_mode,
    resolve_backend,
    resolve_decode_mode,
)
from .scenarios import DRIVERS, ScenarioResult, ScenarioSpec

__all__ = ["ScenarioRunner", "render_report"]

SCHEMA = "repro.scenarios/v1"


@contextmanager
def _scoped_env(name: str, value: str | None):
    """Temporarily pin an environment variable (None leaves it alone)."""
    if value is None:
        yield
        return
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            del os.environ[name]
        else:
            os.environ[name] = previous


class ScenarioRunner:
    """Run scenario specs against one backend and decode mode.

    Parameters
    ----------
    backend:
        ``"numpy"``/``"python"`` to force, or None for the process-wide
        default (``REPRO_BACKEND`` or numpy).
    decode_mode:
        ``"frontier"``/``"rescan"`` to force, or None for the default.
    """

    def __init__(self, backend: str | None = None, decode_mode: str | None = None):
        # Validate eagerly so a typo fails before any scenario runs.
        self.backend = None if backend is None else resolve_backend(backend)
        self.decode_mode = (
            None if decode_mode is None else resolve_decode_mode(decode_mode)
        )

    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        """Execute one spec; raises ``KeyError`` for an unknown protocol."""
        driver = DRIVERS[spec.protocol]
        with _scoped_env("REPRO_BACKEND", self.backend):
            with _scoped_env("REPRO_DECODE", self.decode_mode):
                backend = default_backend()
                # Resolve (and fail fast on) the decode-mode knob so the
                # report records it; only the numpy backend's decoder
                # consults it (the python reference has a single peeler).
                decode_mode = default_decode_mode()
                start = time.perf_counter()
                metrics = driver(spec, spec.rng(), spec.coins())
                elapsed = time.perf_counter() - start
        return ScenarioResult(
            spec=spec,
            backend=backend,
            decode_mode=decode_mode,
            metrics=metrics,
            wall_time_s=elapsed,
        )

    def run_all(self, specs: Iterable[ScenarioSpec]) -> list[ScenarioResult]:
        return [self.run(spec) for spec in specs]


def render_report(
    results: Sequence[ScenarioResult],
    seed: int,
    include_timings: bool = False,
) -> str:
    """The canonical JSON report (ends with a newline).

    Byte-deterministic for a fixed seed/backend/decode-mode unless
    ``include_timings`` is set: keys are sorted, scenario order follows
    the input order, and all metric floats were rounded by the drivers.
    Every result records both its resolved ``backend`` and
    ``decode_mode`` (additively, next to the document-level ``backends``
    and ``decode_modes`` sets), so a frontier report is distinguishable
    from a rescan report.
    """
    document = {
        "schema": SCHEMA,
        "seed": seed,
        "backends": sorted({result.backend for result in results}),
        "decode_modes": sorted({result.decode_mode for result in results}),
        "scenario_count": len(results),
        "failures": sorted(
            result.spec.name for result in results if not result.success
        ),
        "scenarios": [result.to_dict(include_timings) for result in results],
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
