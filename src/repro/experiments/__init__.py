"""Seeded scenario harness: one API over every protocol in the repo.

A :class:`ScenarioSpec` names a workload generator, a protocol driver,
its parameters, and a seed; a :class:`ScenarioRunner` executes specs on
a chosen backend and returns :class:`ScenarioResult` objects whose
canonical JSON rendering is byte-identical across runs with the same
seed (wall-clock timings are carried separately and excluded from the
canonical form).  ``python -m repro.cli scenarios`` exposes the built-in
matrix on the command line; CI smoke-tests it on both backends and diffs
it against the golden reports pinned in ``tests/goldens/``.

On top of single runs, :mod:`repro.experiments.sweeps` expands parameter
*grids* into many independently seeded trials per grid point, executes
them serially or on a process pool (bit-identically either way), and
aggregates success-rate and cost curves into ``repro.sweeps/v1`` reports
— ``python -m repro.cli sweep`` ships six paper-style campaigns.
"""

from .runner import ScenarioRunner, render_report
from .scenarios import (
    DRIVERS,
    ScenarioResult,
    ScenarioSpec,
    builtin_scenarios,
)
from .sweeps import (
    SweepPointResult,
    SweepRunner,
    SweepSpec,
    SweepTrial,
    builtin_campaigns,
    render_sweep_report,
)

__all__ = [
    "DRIVERS",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "SweepPointResult",
    "SweepRunner",
    "SweepSpec",
    "SweepTrial",
    "builtin_campaigns",
    "builtin_scenarios",
    "render_report",
    "render_sweep_report",
]
