"""Seeded scenario harness: one API over every protocol in the repo.

A :class:`ScenarioSpec` names a workload generator, a protocol driver,
its parameters, and a seed; a :class:`ScenarioRunner` executes specs on
a chosen backend and returns :class:`ScenarioResult` objects whose
canonical JSON rendering is byte-identical across runs with the same
seed (wall-clock timings are carried separately and excluded from the
canonical form).  ``python -m repro.cli scenarios`` exposes the built-in
matrix on the command line; CI smoke-tests it on both backends.
"""

from .runner import ScenarioRunner, render_report
from .scenarios import (
    DRIVERS,
    ScenarioResult,
    ScenarioSpec,
    builtin_scenarios,
)

__all__ = [
    "DRIVERS",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "builtin_scenarios",
    "render_report",
]
