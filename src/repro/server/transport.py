"""Frame transport: stream connection, per-session mux, async channel.

Three layers sit between a session coroutine and the byte stream:

* :class:`FrameConnection` — reads/writes whole frames on an asyncio
  ``(StreamReader, StreamWriter)`` pair (or the in-memory equivalent
  from :func:`memory_pipe`), counting physical wire bytes as it goes.
* :class:`FrameMux` — owns the connection's single read loop and routes
  incoming frames to per-session inboxes by the session id carried in
  every frame header; outgoing frames are serialised through one lock.
  A client-side :class:`~repro.server.network.SessionLink` may be
  registered per session, in which case frames in *both* directions pass
  through its deterministic fault plan.
* :class:`AsyncChannel` — one session's endpoint.  It implements the
  :class:`~repro.protocol.channel.BaseChannel` measurement contract, so
  a session reconciling over the wire produces the same kind of
  transcript (:class:`~repro.protocol.channel.TranscriptSummary`) as the
  in-process protocols: data frames are recorded as
  :class:`~repro.protocol.channel.Message` entries; control frames
  (HELLO, REQ_SKETCH, ...) ride the wire but stay out of the analytical
  transcript, appearing only in the physical byte counters.

Receivers deduplicate by sequence number (the link may duplicate
frames) and every await is bounded by a timeout, so a damaged or
malicious peer can make a session *fail*, never *hang*.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field

from ..errors import DecodeError, TruncatedPayloadError
from ..protocol.channel import BaseChannel, Message
from ..protocol.wire import (
    HEADER_LEN,
    Frame,
    FrameHeader,
    MessageType,
    decode_body,
    decode_header,
    encode_frame,
)

__all__ = [
    "ConnectionClosedError",
    "FrameConnection",
    "FrameMux",
    "AsyncChannel",
    "SessionWireStats",
    "memory_pipe",
]

#: Default bound on every network await; generous for CI, finite so a
#: stalled peer can never hang a session.
DEFAULT_TIMEOUT = 30.0


class ConnectionClosedError(TruncatedPayloadError):
    """The underlying stream ended (EOF) mid-conversation."""


@dataclass
class SessionWireStats:
    """Physical wire accounting for one session (client side).

    ``wire_bytes_*`` count every byte of every physical frame, including
    duplicated deliveries; ``payload_bytes_*`` count only the payload
    region of those frames, so ``wire - payload`` is the framing
    overhead the service reports itemise.  ``sim_latency_ms`` sums the
    link's *drawn* per-frame latencies (not wall clock), keeping reports
    deterministic.
    """

    frames_out: int = 0
    frames_in: int = 0
    wire_bytes_out: int = 0
    wire_bytes_in: int = 0
    payload_bytes_out: int = 0
    payload_bytes_in: int = 0
    frames_lost: int = 0
    frames_corrupted: int = 0
    frames_duplicated: int = 0
    frames_reordered: int = 0
    sim_latency_ms: float = 0.0
    #: Every drawn per-frame latency, for percentile reporting.
    sim_latency_samples: "list[float]" = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return self.wire_bytes_out + self.wire_bytes_in

    @property
    def payload_bytes(self) -> int:
        return self.payload_bytes_out + self.payload_bytes_in

    @property
    def framing_bytes(self) -> int:
        return self.wire_bytes - self.payload_bytes

    def record_latency(self, latency_ms: float) -> None:
        self.sim_latency_ms += latency_ms
        self.sim_latency_samples.append(latency_ms)

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the drawn per-frame latencies.

        Deterministic (no interpolation) and 0.0 with no samples, so the
        field is safe to emit in byte-pinned reports.
        """
        if not self.sim_latency_samples:
            return 0.0
        ordered = sorted(self.sim_latency_samples)
        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def to_dict(self) -> dict:
        return {
            "frames_out": self.frames_out,
            "frames_in": self.frames_in,
            "wire_bytes": self.wire_bytes,
            "payload_bytes": self.payload_bytes,
            "framing_bytes": self.framing_bytes,
            "frames_lost": self.frames_lost,
            "frames_corrupted": self.frames_corrupted,
            "frames_duplicated": self.frames_duplicated,
            "frames_reordered": self.frames_reordered,
            "sim_latency_ms": round(self.sim_latency_ms, 6),
            "sim_latency_p50_ms": round(self.latency_percentile(0.50), 6),
            "sim_latency_p99_ms": round(self.latency_percentile(0.99), 6),
        }


class FrameConnection:
    """Whole-frame I/O over a stream pair, with byte counters."""

    def __init__(self, reader: asyncio.StreamReader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self.bytes_out = 0
        self.bytes_in = 0

    async def write_raw(self, raw: bytes) -> None:
        """Put one already-encoded frame on the wire."""
        async with self._write_lock:
            self._writer.write(raw)
            await self._writer.drain()
        self.bytes_out += len(raw)

    async def read_raw(self) -> "tuple[FrameHeader, bytes]":
        """Read exactly one frame; returns its validated header and raw bytes.

        Raises :class:`ConnectionClosedError` on EOF and lets header
        :class:`~repro.errors.DecodeError`\\ s from a garbled stream
        propagate (the stream can no longer be reframed).
        """
        try:
            prelude = await self._reader.readexactly(HEADER_LEN)
        except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
            raise ConnectionClosedError("connection closed while reading frame header") from exc
        header = decode_header(prelude)
        try:
            body = await self._reader.readexactly(header.body_len)
        except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
            raise ConnectionClosedError("connection closed mid-frame") from exc
        raw = prelude + body
        self.bytes_in += len(raw)
        return header, raw

    def close(self) -> None:
        try:
            self._writer.close()
        except RuntimeError:  # event loop already gone
            pass


class FrameMux:
    """One connection's read loop + session routing (+ optional links)."""

    def __init__(self, connection: FrameConnection) -> None:
        self.connection = connection
        self._inboxes: "dict[int, asyncio.Queue]" = {}
        self._links: dict = {}
        self.stats: "dict[int, SessionWireStats]" = {}
        self._reader_task: "asyncio.Task | None" = None
        self.closed = False
        # Reordered (late-duplicate) copies waiting for the next frame in
        # their (session, direction) stream; see NetworkConfig.reorder_rate.
        self._deferred: "dict[tuple[int, str], list[tuple[FrameHeader, bytes]]]" = {}

    # -- session registry --------------------------------------------------

    def open_session(self, session_id: int, link=None) -> "asyncio.Queue":
        """Register a session inbox (and optionally its fault link)."""
        if session_id in self._inboxes:
            raise ValueError(f"session {session_id} already open on this connection")
        inbox: asyncio.Queue = asyncio.Queue()
        self._inboxes[session_id] = inbox
        self.stats[session_id] = SessionWireStats()
        if link is not None:
            self._links[session_id] = link
        return inbox

    def close_session(self, session_id: int) -> None:
        self._inboxes.pop(session_id, None)
        self._links.pop(session_id, None)

    def _stats(self, session_id: int) -> SessionWireStats:
        if session_id not in self.stats:
            self.stats[session_id] = SessionWireStats()
        return self.stats[session_id]

    # -- outgoing ----------------------------------------------------------

    async def send_frame(self, frame: Frame) -> None:
        """Encode, pass through the session's link (if any), transmit."""
        raw = encode_frame(frame)
        stats = self._stats(frame.session_id)
        link = self._links.get(frame.session_id)
        header = decode_header(raw[:HEADER_LEN])
        deliveries = [raw]
        deferred: "tuple[bytes, ...]" = ()
        if link is not None:
            decision = link.apply("c2s", frame.seq, header, raw)
            deliveries = decision.deliveries
            deferred = decision.deferred
            stats.record_latency(decision.latency_ms)
            stats.frames_lost += int(decision.lost)
            stats.frames_corrupted += int(decision.corrupted)
            stats.frames_duplicated += int(decision.duplicated)
            stats.frames_reordered += int(decision.reordered)
            if link.config.latency_scale:
                await asyncio.sleep(decision.latency_ms * link.config.latency_scale / 1000.0)
        for raw_copy in deliveries:
            await self.connection.write_raw(raw_copy)
            stats.frames_out += 1
            stats.wire_bytes_out += len(raw_copy)
            stats.payload_bytes_out += len(frame.payload)
        # This frame is on the wire: any stale copy held back from an
        # earlier frame now goes out *behind* it (out-of-order arrival),
        # then this frame's own deferred copies start waiting.
        for old_header, old_raw in self._deferred.pop((frame.session_id, "c2s"), ()):
            await self.connection.write_raw(old_raw)
            stats.frames_out += 1
            stats.wire_bytes_out += len(old_raw)
            stats.payload_bytes_out += old_header.payload_len
        if deferred:
            self._deferred[(frame.session_id, "c2s")] = [
                (header, raw_copy) for raw_copy in deferred
            ]

    # -- incoming ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the background read loop (client side)."""
        if self._reader_task is None:
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                header, raw = await self.connection.read_raw()
                self._dispatch(header, raw)
        except ConnectionClosedError:
            pass
        except TruncatedPayloadError:
            pass
        except ValueError:
            # Header-level damage: the stream cannot be reframed.
            pass
        finally:
            self._shutdown()

    def _dispatch(self, header: FrameHeader, raw: bytes) -> None:
        stats = self._stats(header.session_id)
        link = self._links.get(header.session_id)
        deliveries = [raw]
        deferred: "tuple[bytes, ...]" = ()
        if link is not None:
            decision = link.apply("s2c", header.seq, header, raw)
            deliveries = decision.deliveries
            deferred = decision.deferred
            stats.record_latency(decision.latency_ms)
            stats.frames_lost += int(decision.lost)
            stats.frames_corrupted += int(decision.corrupted)
            stats.frames_duplicated += int(decision.duplicated)
            stats.frames_reordered += int(decision.reordered)
        for raw_copy in deliveries:
            self._deliver(header, raw_copy, stats)
        # Flush stale copies behind this frame (out-of-order arrival),
        # then park this frame's own deferred copies.
        for old_header, old_raw in self._deferred.pop((header.session_id, "s2c"), ()):
            self._deliver(old_header, old_raw, stats)
        if deferred:
            self._deferred[(header.session_id, "s2c")] = [
                (header, raw_copy) for raw_copy in deferred
            ]

    def _deliver(self, header: FrameHeader, raw: bytes, stats: SessionWireStats) -> None:
        stats.frames_in += 1
        stats.wire_bytes_in += len(raw)
        stats.payload_bytes_in += header.payload_len
        inbox = self._inboxes.get(header.session_id)
        if inbox is not None:
            try:
                frame = decode_body(header, raw[HEADER_LEN:])
            except DecodeError:
                return  # unusable body from a hostile peer: drop
            inbox.put_nowait(frame)

    def _shutdown(self) -> None:
        self.closed = True
        for inbox in self._inboxes.values():
            inbox.put_nowait(None)  # sentinel: wake blocked receivers

    async def aclose(self) -> None:
        self.connection.close()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._shutdown()


class AsyncChannel(BaseChannel):
    """One session's endpoint on a framed wire, with measured transcript.

    The :class:`~repro.protocol.channel.BaseChannel` contract is the
    *analytical* transcript: ``send`` records a
    :class:`~repro.protocol.channel.Message` exactly like the in-process
    :class:`~repro.protocol.channel.Channel` (the coroutine
    :meth:`send_frame` does the actual transmission and calls ``send``
    for data frames); :meth:`record_receive` books a received data frame
    under its original sender, so sender-pays accounting matches the
    in-process transcripts message for message.  Physical bytes live in
    the mux's :class:`SessionWireStats`, not here.
    """

    def __init__(
        self,
        mux: FrameMux,
        session_id: int,
        link=None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        super().__init__()
        self.mux = mux
        self.session_id = session_id
        self.timeout = timeout
        self._inbox = mux.open_session(session_id, link=link)
        self._next_seq = 0
        self._seen_seqs: "set[int]" = set()

    # -- BaseChannel -------------------------------------------------------

    def send(self, sender: str, label: str, payload: bytes, payload_bits: "int | None" = None) -> bytes:
        """Record a message in the analytical transcript (no I/O)."""
        bits = self.validate_send(sender, label, payload, payload_bits)
        self.messages.append(
            Message(sender=sender, label=label, payload=payload, payload_bits=bits)
        )
        return payload

    def record_receive(self, frame: Frame) -> None:
        """Book a received data frame under its wire-declared sender/bits."""
        self.messages.append(
            Message(
                sender=frame.sender,
                label=frame.label,
                payload=frame.payload,
                payload_bits=frame.payload_bits,
            )
        )

    # -- wire I/O ----------------------------------------------------------

    @property
    def wire_stats(self) -> SessionWireStats:
        return self.mux.stats[self.session_id]

    async def send_frame(
        self,
        msg_type: MessageType,
        sender: str,
        label: str,
        payload: bytes,
        payload_bits: "int | None" = None,
        record: bool = False,
    ) -> Frame:
        """Transmit one frame; ``record=True`` also books it via ``send``."""
        bits = self.validate_send(sender, label, payload, payload_bits)
        if record:
            self.send(sender, label, payload, bits)
        frame = Frame(
            msg_type=msg_type,
            session_id=self.session_id,
            seq=self._next_seq,
            sender=sender,
            label=label,
            payload=payload,
            payload_bits=bits,
        )
        self._next_seq += 1
        await self.mux.send_frame(frame)
        return frame

    async def recv_frame(self) -> Frame:
        """Next non-duplicate frame for this session (timeout-bounded).

        Raises :class:`ConnectionClosedError` when the connection died
        and :class:`asyncio.TimeoutError` when the peer goes silent.
        """
        while True:
            frame = await asyncio.wait_for(self._inbox.get(), self.timeout)
            if frame is None:
                raise ConnectionClosedError(
                    f"connection closed while session {self.session_id} awaited a frame"
                )
            if frame.seq in self._seen_seqs:
                continue  # duplicated delivery
            self._seen_seqs.add(frame.seq)
            return frame

    def close(self) -> None:
        self.mux.close_session(self.session_id)


class _PipeWriter:
    """Minimal ``StreamWriter`` stand-in feeding a peer's ``StreamReader``."""

    def __init__(self, peer: asyncio.StreamReader) -> None:
        self._peer = peer
        self._closed = False

    def write(self, data: bytes) -> None:
        if not self._closed:
            self._peer.feed_data(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None


def memory_pipe() -> "tuple[FrameConnection, FrameConnection]":
    """Two connected in-memory :class:`FrameConnection`\\ s (client, server).

    Bytes written on one side appear on the other side's reader, exactly
    as over a socket but with no OS involvement — the transport the
    scenario driver and tests run the full client/server stack on.
    """
    a_reader = asyncio.StreamReader()
    b_reader = asyncio.StreamReader()
    a_conn = FrameConnection(a_reader, _PipeWriter(b_reader))
    b_conn = FrameConnection(b_reader, _PipeWriter(a_reader))
    return a_conn, b_conn
