"""The reconciliation client: Alice driving sessions over the wire.

:class:`ReconcileClient` multiplexes any number of concurrent sessions
over one framed connection.  Each session re-enacts the in-process
resilient controller (:mod:`repro.reconcile.resilient`) with the roles
split across the wire: the client is **Alice** — she requests Bob's
sketch, peels it, decides what the failure means, and owns the whole
recovery policy —

* a *damaged* sketch (payload CRC or sketch parse failure) is
  re-requested at the same bound with the next attempt's coins;
* an *undecodable* sketch escalates the bound geometrically until
  ``max_escalations`` steps have failed, which trips the circuit
  breaker into the strata fallback: Alice ships her strata sketch, the
  server answers with the measured difference bound, and the remaining
  attempts run from that measurement;
* damaged **control** traffic (a chewed HELLO_ACK, ESTIMATE, RESULT, or
  a server ``ERROR {code: decode}`` about our own damaged request) is
  handled below the policy by transparent re-requests, each counted in
  the session report.

Every session carries an :class:`~repro.server.transport.AsyncChannel`,
so the analytical transcript (bits, rounds, per-label) is measured with
the same contract as the in-process protocols, while the mux's
:class:`~repro.server.transport.SessionWireStats` separately counts
physical wire bytes and framing overhead.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from ..errors import DecodeError, MalformedPayloadError
from ..iblt.iblt import IBLT, cells_for_differences
from ..protocol.channel import ALICE
from ..protocol.serialize import BitWriter, write_points
from ..protocol.wire import Frame, MessageType
from ..reconcile.exact_iblt import decode_point, encode_point, encode_points
from ..reconcile.resilient import BreakerState, ResilienceConfig
from ..reconcile.strata import StrataEstimator
from .network import SimulatedNetwork
from .session import SessionConfig, insert_all, json_payload, parse_json_payload
from .transport import (
    DEFAULT_TIMEOUT,
    AsyncChannel,
    FrameConnection,
    FrameMux,
    SessionWireStats,
)

__all__ = [
    "ProtocolError",
    "SessionReport",
    "ReconcileClient",
    "render_session_reports",
]

#: Hard cap on transparent re-requests of one message, so even an
#: absurd fault rate terminates with a typed failure instead of a loop.
MAX_RESENDS = 32


class ProtocolError(RuntimeError):
    """The peer answered outside the protocol (or retries ran out)."""


@dataclass
class SessionReport:
    """Everything one finished session measured."""

    session_id: int
    protocol: str
    success: bool
    union_ok: bool
    bob_size: int
    attempts: int
    escalations: int
    rerequests: int
    breaker_tripped: bool
    fallback_bound: "int | None"
    transcript_bits: int
    transcript_rounds: int
    by_label: "dict[str, int]" = field(default_factory=dict)
    wire: SessionWireStats = field(default_factory=SessionWireStats)

    def to_dict(self) -> dict:
        """Flat, JSON-safe, byte-deterministic rendering."""
        entry = {
            "session_id": self.session_id,
            "protocol": self.protocol,
            "success": self.success,
            "union_ok": self.union_ok,
            "bob_size": self.bob_size,
            "attempts": self.attempts,
            "escalations": self.escalations,
            "rerequests": self.rerequests,
            "breaker_tripped": self.breaker_tripped,
            "fallback_bound": self.fallback_bound,
            "transcript_bits": self.transcript_bits,
            "transcript_rounds": self.transcript_rounds,
            "by_label": dict(sorted(self.by_label.items())),
        }
        entry.update(self.wire.to_dict())
        return entry


class ReconcileClient:
    """Runs sessions against a :class:`~repro.server.server.ReconcileServer`."""

    def __init__(
        self,
        connection: FrameConnection,
        network: "SimulatedNetwork | None" = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.mux = FrameMux(connection)
        self.network = network
        self.timeout = timeout

    def start(self) -> None:
        self.mux.start()

    async def aclose(self) -> None:
        await self.mux.aclose()

    async def run_sessions(self, configs: "list[SessionConfig]") -> "list[SessionReport]":
        """Run all sessions concurrently over the shared connection."""
        return list(await asyncio.gather(*(self.run_session(c) for c in configs)))

    # -- one session -------------------------------------------------------

    async def run_session(self, config: SessionConfig) -> SessionReport:
        link = self.network.link(config.session_id) if self.network else None
        channel = AsyncChannel(
            self.mux, config.session_id, link=link, timeout=self.timeout
        )
        state = _SessionState()
        try:
            return await self._drive(config, channel, state)
        finally:
            channel.close()

    async def _drive(
        self, config: SessionConfig, channel: AsyncChannel, state: "_SessionState"
    ) -> SessionReport:
        await self._request(
            channel,
            state,
            MessageType.HELLO,
            "hello",
            config.to_json(),
            expect=MessageType.HELLO_ACK,
        )

        alice, _ = config.workload()
        space = config.space()
        key_bits = config.key_bits

        resilient = config.protocol == "resilient"
        max_attempts = config.max_attempts if resilient else 1
        # The wire controller runs the same escalation policy as the
        # in-process resilient loop, through the same state machine.
        policy = ResilienceConfig(
            max_attempts=max_attempts,
            max_escalations=config.max_escalations if resilient else 0,
        )
        breaker = BreakerState(bound=config.delta_bound)
        success = False
        alice_only: "list | None" = None

        for attempt in range(1, max_attempts + 1):
            state.attempts = attempt
            attempt_coins = config.attempt_coins(attempt)
            if breaker.breaker_open and breaker.fallback_bound is None:
                measured = await self._strata_fallback(
                    config, channel, state, space, alice, key_bits
                )
                breaker = breaker.with_fallback(measured)
            bound = breaker.bound
            outcome = "corrupted"
            try:
                frame = await self._request(
                    channel,
                    state,
                    MessageType.REQ_SKETCH,
                    "req-sketch",
                    json_payload({"attempt": attempt, "bound": bound}),
                    expect=MessageType.SKETCH,
                    resend_on_damaged_response=False,
                )
                # Bob paid for this sketch whether or not it survived the
                # link; book it before checking integrity.
                channel.record_receive(frame)
                frame.verify_payload()
                cells = cells_for_differences(bound, q=config.q)
                view = IBLT(
                    attempt_coins,
                    "exact-reconcile",
                    cells=cells,
                    q=config.q,
                    key_bits=key_bits,
                ).from_payload(frame.payload)
                if key_bits <= 61:
                    view.delete_batch(encode_points(space, alice))
                else:
                    for point in alice:
                        view.delete(encode_point(space, point))
                decoded = view.decode()
                if decoded.success:
                    outcome = "decoded"
                    alice_only = [decode_point(space, key) for key in decoded.deleted]
                    success = True
                else:
                    outcome = "undecodable"
            except DecodeError:
                outcome = "corrupted"

            if outcome == "decoded":
                break
            if outcome == "corrupted":
                # Damage in flight says nothing about sizing: re-request.
                state.rerequests += 1
            elif not resilient:
                pass  # exact: one attempt, no recovery policy
            else:
                advanced = breaker.after_undecodable(policy)
                if advanced.escalations > breaker.escalations:
                    state.escalations += 1
                elif advanced.breaker_open and not breaker.breaker_open:
                    state.breaker_tripped = True
                breaker = advanced

        union_ok = False
        bob_size = -1
        if success and alice_only is not None:
            writer = BitWriter()
            write_points(writer, space, alice_only)
            result = await self._request(
                channel,
                state,
                MessageType.PUSH_POINTS,
                "alice-only-points",
                writer.getvalue(),
                payload_bits=writer.bit_length,
                record=True,
                expect=MessageType.RESULT,
            )
            verdict = parse_json_payload(result.payload)
            union_ok = bool(verdict.get("union_ok", False))
            bob_size = int(verdict.get("bob_size", -1))

        await channel.send_frame(MessageType.BYE, ALICE, "bye", b"")

        summary = channel.summary()
        return SessionReport(
            session_id=config.session_id,
            protocol=config.protocol,
            success=success,
            union_ok=union_ok,
            bob_size=bob_size,
            attempts=state.attempts,
            escalations=state.escalations,
            rerequests=state.rerequests,
            breaker_tripped=state.breaker_tripped,
            fallback_bound=breaker.fallback_bound,
            transcript_bits=summary.total_bits,
            transcript_rounds=summary.rounds,
            by_label=summary.by_label,
            wire=channel.wire_stats,
        )

    async def _strata_fallback(
        self, config, channel, state, space, alice, key_bits: int
    ) -> int:
        """Ship Alice's strata sketch; return Bob's measured bound."""
        sketch = StrataEstimator(
            config.strata_coins(), "service-strata", key_bits=key_bits
        )
        insert_all(sketch, space, alice, key_bits)
        payload, bits = sketch.to_payload()
        frame = await self._request(
            channel,
            state,
            MessageType.REQ_STRATA,
            "strata-sketch",
            payload,
            payload_bits=bits,
            record=True,
            expect=MessageType.ESTIMATE,
        )
        channel.record_receive(frame)
        estimate = parse_json_payload(frame.payload)
        bound = estimate.get("bound")
        if not isinstance(bound, int) or isinstance(bound, bool) or bound < 1:
            raise ProtocolError(f"ESTIMATE carried no usable bound: {estimate!r}")
        return bound

    async def _request(
        self,
        channel: AsyncChannel,
        state: "_SessionState",
        msg_type: MessageType,
        label: str,
        payload: bytes,
        payload_bits: "int | None" = None,
        record: bool = False,
        expect: "MessageType | None" = None,
        resend_on_damaged_response: bool = True,
    ) -> Frame:
        """Send one request and await its response, retrying below the
        recovery policy: our damaged outbound (server says ``decode``)
        and damaged *control* responses are transparently re-sent;
        a damaged *data* response is returned to the caller's policy
        (``resend_on_damaged_response=False``)."""
        for _ in range(MAX_RESENDS):
            await channel.send_frame(
                msg_type, ALICE, label, payload, payload_bits, record=record
            )
            frame = await channel.recv_frame()
            if frame.msg_type == MessageType.ERROR:
                try:
                    frame.verify_payload()
                except MalformedPayloadError:
                    state.rerequests += 1
                    continue  # even the error was chewed; ask again
                detail = parse_json_payload(frame.payload)
                if detail.get("code") == "decode":
                    state.rerequests += 1
                    continue  # our outbound frame was damaged in flight
                raise ProtocolError(
                    f"server error in session {channel.session_id}: {detail!r}"
                )
            if expect is not None and frame.msg_type != expect:
                raise ProtocolError(
                    f"expected {expect.name}, got {frame.msg_type.name} "
                    f"in session {channel.session_id}"
                )
            if resend_on_damaged_response:
                try:
                    frame.verify_payload()
                except MalformedPayloadError:
                    state.rerequests += 1
                    continue
            return frame
        raise ProtocolError(
            f"message {label!r} in session {channel.session_id} still failing "
            f"after {MAX_RESENDS} sends"
        )


class _SessionState:
    """Mutable recovery counters threaded through one session."""

    def __init__(self) -> None:
        self.attempts = 0
        self.escalations = 0
        self.rerequests = 0
        self.breaker_tripped = False


def render_session_reports(reports: "list[SessionReport]", seed: int) -> str:
    """Canonical ``repro.recon-service/v1`` JSON for a finished client run.

    Sessions are sorted by id and every value is deterministic for a
    fixed seed (drawn sim latency, not wall clock), so two same-seed
    runs render byte-identical documents — the invariant CI's
    server-smoke gate compares with ``cmp``.
    """
    ordered = sorted(reports, key=lambda report: report.session_id)
    wire_bytes = sum(r.wire.wire_bytes for r in ordered)
    payload_bytes = sum(r.wire.payload_bytes for r in ordered)
    transcript_bits = sum(r.transcript_bits for r in ordered)
    # Run-wide latency percentiles pool every session's drawn samples.
    pooled = SessionWireStats()
    for report in ordered:
        pooled.sim_latency_samples.extend(report.wire.sim_latency_samples)
    document = {
        "schema": "repro.recon-service/v1",
        "seed": seed,
        "session_count": len(ordered),
        "sessions": [report.to_dict() for report in ordered],
        "aggregate": {
            "all_reconciled": bool(all(r.success and r.union_ok for r in ordered)),
            "transcript_bits": transcript_bits,
            "wire_bytes": wire_bytes,
            "payload_bytes": payload_bytes,
            "framing_bytes": wire_bytes - payload_bytes,
            "rerequests": sum(r.rerequests for r in ordered),
            "escalations": sum(r.escalations for r in ordered),
            "breakers_tripped": sum(1 for r in ordered if r.breaker_tripped),
            "frames_reordered": sum(r.wire.frames_reordered for r in ordered),
            "sim_latency_ms": round(sum(r.wire.sim_latency_ms for r in ordered), 6),
            "sim_latency_p50_ms": round(pooled.latency_percentile(0.50), 6),
            "sim_latency_p99_ms": round(pooled.latency_percentile(0.99), 6),
            "wire_covers_transcript": bool(8 * wire_bytes >= transcript_bits),
        },
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
