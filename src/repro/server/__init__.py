"""Reconciliation as a service: framed wire protocol + asyncio server.

The in-process protocols in :mod:`repro.reconcile` exchange payloads
through a recorded :class:`~repro.protocol.channel.Channel`; this
package puts the same payloads on an actual byte stream.  Frames
(:mod:`repro.protocol.wire`) carry a session id, so one connection
multiplexes many concurrent reconciliations; the server plays Bob, the
client plays Alice and drives the resilient recovery policy; a seeded
:class:`~repro.server.network.SimulatedNetwork` injects deterministic
loss/corruption/duplication/latency for the service scenarios and CI's
server-smoke gate.
"""

from .network import NetworkConfig, SessionLink, SimulatedNetwork
from .transport import (
    AsyncChannel,
    ConnectionClosedError,
    FrameConnection,
    FrameMux,
    SessionWireStats,
    memory_pipe,
)
from .session import SessionConfig, session_workload
from .server import ReconcileServer, ServerSession
from .client import (
    ProtocolError,
    ReconcileClient,
    SessionReport,
    render_session_reports,
)

__all__ = [
    "NetworkConfig",
    "SessionLink",
    "SimulatedNetwork",
    "AsyncChannel",
    "ConnectionClosedError",
    "FrameConnection",
    "FrameMux",
    "SessionWireStats",
    "memory_pipe",
    "SessionConfig",
    "session_workload",
    "ReconcileServer",
    "ServerSession",
    "ProtocolError",
    "ReconcileClient",
    "SessionReport",
    "render_session_reports",
]
