"""The asyncio reconciliation server: Bob as a service.

One :class:`ReconcileServer` accepts any number of connections; each
connection carries any number of interleaved sessions (frames route by
the session id in every header).  The server plays **Bob**: it derives
its half of the session workload from the HELLO config, then answers
requests statelessly enough that a client can retry anything —

* ``REQ_SKETCH {attempt, bound}`` → an IBLT of Bob's points sized for
  ``bound`` differences, built with the attempt's coins (so client and
  server agree on the hypergraph byte for byte);
* ``REQ_STRATA`` (Alice's strata sketch) → ``ESTIMATE {bound}``, Bob's
  measured difference bound — the wire form of the controller's
  circuit-breaker fallback;
* ``PUSH_POINTS`` → merge Alice's difference, verify the union against
  the derived ground truth, answer ``RESULT``.

Session state machine::

    (no session) --HELLO ok--> ACTIVE --BYE--> CLOSED (removed)
         |                       |
         +--HELLO damaged--> ERROR(decode), no session
         ACTIVE --HELLO (retransmit)--> re-ACK (idempotent)
         ACTIVE --damaged frame--> ERROR(decode), stays ACTIVE
         CLOSED/unknown --any frame--> ERROR(unknown-session)

Every failure an attacker (or the fault-injecting link) can trigger is
answered with a typed ``ERROR`` frame or a clean connection close —
never an unhandled exception, never a hang.  Duplicate deliveries are
dropped by sequence number before any state changes.
"""

from __future__ import annotations

import asyncio

from ..errors import DecodeError, MalformedPayloadError
from ..iblt.iblt import IBLT, cells_for_differences
from ..protocol.channel import BOB
from ..protocol.serialize import BitReader, read_points
from ..protocol.wire import HEADER_LEN, Frame, MessageType, decode_body, encode_frame
from ..reconcile.strata import StrataEstimator
from ..store import SketchStore
from .session import SessionConfig, insert_all, json_payload, parse_json_payload
from .transport import ConnectionClosedError, FrameConnection

__all__ = ["ReconcileServer", "ServerSession"]

#: Ceiling on client-requested difference bounds, so a malformed or
#: hostile REQ_SKETCH cannot make the server allocate a huge table.
MAX_BOUND = 1 << 20


class ServerSession:
    """Bob's state for one session on one connection.

    With a :class:`~repro.store.SketchStore` attached, Bob's derived
    set is registered under its workload identity and sketches/strata
    are served from the store's warm shards — byte-identical to the
    stateless path (insert order and cache residency never reach the
    wire), but a repeat request hits cached state instead of re-hashing
    the set.  A session that merges pushed points has *diverged* from
    the derived workload and silently reverts to stateless building;
    the store keeps the derived set for the next session.
    """

    def __init__(self, config: SessionConfig, store: "SketchStore | None" = None) -> None:
        self.config = config
        self.space = config.space()
        alice, bob = config.workload()
        self.bob_points = list(bob)
        self.expected_union = set(alice) | set(bob)
        self.closed = False
        self.store = store
        self._store_key: "int | None" = None
        self._diverged = False
        if store is not None:
            keys = self._encoded_keys()
            if len(set(map(int, keys))) == len(keys):
                self._store_key = config.store_key()
                if not store.contains(self._store_key):
                    store.put_set(self._store_key, keys, key_bits=config.key_bits)
            # else: the sampled workload collided into a multiset; the
            # store holds sets, so this (astronomically rare) session
            # stays stateless to preserve exact wire parity.

    def _encoded_keys(self) -> "list[int]":
        from ..reconcile.exact_iblt import encode_point, encode_points

        if self.config.key_bits <= 61:
            return [int(k) for k in encode_points(self.space, self.bob_points)]
        return [encode_point(self.space, point) for point in self.bob_points]

    @property
    def _warm(self) -> bool:
        return self._store_key is not None and not self._diverged

    def build_sketch(self, attempt: int, bound: int) -> "tuple[bytes, int]":
        """Bob's IBLT payload for one attempt (client-matching coins)."""
        coins = self.config.attempt_coins(attempt)
        cells = cells_for_differences(bound, q=self.config.q)
        if self._warm:
            return self.store.serve_iblt(
                self._store_key, coins, "exact-reconcile", cells=cells, q=self.config.q
            )
        table = IBLT(
            coins,
            "exact-reconcile",
            cells=cells,
            q=self.config.q,
            key_bits=self.config.key_bits,
        )
        insert_all(table, self.space, self.bob_points, self.config.key_bits)
        return table.to_payload()

    def estimate_difference(self, strata_payload: bytes) -> int:
        """Load Alice's strata sketch, subtract Bob's, measure the bound."""
        key_bits = self.config.key_bits
        shell = StrataEstimator(
            self.config.strata_coins(), "service-strata", key_bits=key_bits
        )
        received = shell.from_payload(strata_payload)
        if self._warm:
            bob_sketch = self.store.serve_strata(
                self._store_key, self.config.strata_coins(), "service-strata"
            )
        else:
            bob_sketch = StrataEstimator(
                self.config.strata_coins(), "service-strata", key_bits=key_bits
            )
            insert_all(bob_sketch, self.space, self.bob_points, key_bits)
        return max(4, received.subtract(bob_sketch).estimate())

    def merge_push(self, payload: bytes) -> "tuple[bool, int]":
        """Merge Alice's pushed points; verify against the ground truth."""
        shipped = read_points(BitReader(payload), self.space)
        existing = set(self.bob_points)
        for point in shipped:
            if point not in existing:
                self.bob_points.append(point)
                existing.add(point)
                # Bob no longer matches the store's derived set; any
                # further sketch for this session must be built from
                # the merged points (the store entry stays derived).
                self._diverged = True
        return existing == self.expected_union, len(self.bob_points)


class ReconcileServer:
    """Serves reconciliation sessions over framed streams.

    ``store`` attaches a :class:`~repro.store.SketchStore` shared by
    every connection and session: repeat sketch requests for unchanged
    workloads become warm cache hits (see :class:`ServerSession`).
    Stateless operation (``store=None``) is unchanged and pinned.
    """

    def __init__(self, store: "SketchStore | None" = None) -> None:
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.connections = 0
        self.store = store

    # -- entry points ------------------------------------------------------

    async def serve_tcp(self, host: str, port: int) -> "asyncio.AbstractServer":
        """Start a TCP listener; returns the asyncio server object."""

        async def handler(reader, writer):
            await self.serve_connection(FrameConnection(reader, writer))

        return await asyncio.start_server(handler, host, port)

    async def serve_connection(self, connection: FrameConnection) -> None:
        """Run one connection to completion (EOF or unframeable stream)."""
        self.connections += 1
        sessions: "dict[int, ServerSession]" = {}
        out_seqs: "dict[int, int]" = {}
        # Incoming dedup lives at connection scope (not on the session)
        # so duplicated deliveries are dropped even before a session
        # exists — e.g. a duplicated, damaged HELLO must produce one
        # ERROR, not two, or the client sees stale responses.
        seen_seqs: "dict[int, set[int]]" = {}

        async def reply(
            session_id: int,
            msg_type: MessageType,
            label: str,
            payload: bytes,
            payload_bits: "int | None" = None,
        ) -> None:
            seq = out_seqs.get(session_id, 0)
            out_seqs[session_id] = seq + 1
            frame = Frame(
                msg_type=msg_type,
                session_id=session_id,
                seq=seq,
                sender=BOB,
                label=label,
                payload=payload,
                payload_bits=payload_bits if payload_bits is not None else 8 * len(payload),
            )
            await connection.write_raw(encode_frame(frame))

        async def error(session_id: int, code: str, detail: str) -> None:
            await reply(
                session_id,
                MessageType.ERROR,
                "error",
                json_payload({"code": code, "detail": detail}),
            )

        try:
            while True:
                try:
                    header, raw = await connection.read_raw()
                except ConnectionClosedError:
                    break
                except DecodeError:
                    # Header-level damage: the stream cannot be reframed;
                    # close rather than guess at message boundaries.
                    break
                sid = header.session_id
                if header.seq in seen_seqs.setdefault(sid, set()):
                    continue  # duplicated delivery
                seen_seqs[sid].add(header.seq)
                try:
                    frame = decode_body(header, raw[HEADER_LEN:])
                except DecodeError as exc:
                    # Valid header, unusable body (e.g. a chewed label):
                    # the stream is still framed — answer and carry on.
                    await error(sid, "decode", str(exc))
                    continue

                if frame.msg_type == MessageType.HELLO:
                    if sid in sessions:
                        # Retransmitted HELLO (our ACK was damaged): re-ACK.
                        await reply(sid, MessageType.HELLO_ACK, "hello-ack", b"{}")
                        continue
                    try:
                        frame.verify_payload()
                        config = SessionConfig.from_payload(frame.payload)
                        if config.session_id != sid:
                            raise MalformedPayloadError(
                                f"HELLO session_id {config.session_id} does not "
                                f"match frame header session {sid}"
                            )
                        sessions[sid] = ServerSession(config, store=self.store)
                        self.sessions_opened += 1
                        await reply(sid, MessageType.HELLO_ACK, "hello-ack", b"{}")
                    except DecodeError as exc:
                        await error(sid, "decode", str(exc))
                    continue

                session = sessions.get(sid)
                if session is None:
                    await error(sid, "unknown-session", f"no session {sid} on this connection")
                    continue
                await self._handle(session, frame, reply, error)
                if session.closed:
                    del sessions[sid]
                    self.sessions_closed += 1
        finally:
            connection.close()

    # -- per-frame dispatch ------------------------------------------------

    async def _handle(self, session: ServerSession, frame: Frame, reply, error) -> None:
        sid = session.config.session_id
        try:
            frame.verify_payload()
        except MalformedPayloadError as exc:
            await error(sid, "decode", str(exc))
            return

        try:
            if frame.msg_type == MessageType.REQ_SKETCH:
                request = parse_json_payload(frame.payload)
                attempt = request.get("attempt")
                bound = request.get("bound")
                if (
                    not isinstance(attempt, int)
                    or not isinstance(bound, int)
                    or isinstance(attempt, bool)
                    or isinstance(bound, bool)
                    or attempt < 1
                    or not 1 <= bound <= MAX_BOUND
                ):
                    raise MalformedPayloadError(
                        f"REQ_SKETCH needs integer attempt >= 1 and bound in "
                        f"[1, {MAX_BOUND}], got {request!r}"
                    )
                payload, bits = session.build_sketch(attempt, bound)
                await reply(sid, MessageType.SKETCH, "iblt", payload, bits)
            elif frame.msg_type == MessageType.REQ_STRATA:
                bound = session.estimate_difference(frame.payload)
                await reply(
                    sid,
                    MessageType.ESTIMATE,
                    "strata-estimate",
                    json_payload({"bound": int(bound)}),
                )
            elif frame.msg_type == MessageType.PUSH_POINTS:
                union_ok, bob_size = session.merge_push(frame.payload)
                await reply(
                    sid,
                    MessageType.RESULT,
                    "result",
                    json_payload(
                        {"success": True, "union_ok": union_ok, "bob_size": bob_size}
                    ),
                )
            elif frame.msg_type == MessageType.BYE:
                session.closed = True
            else:
                await error(
                    sid, "bad-type", f"unexpected frame type {frame.msg_type.name}"
                )
        except DecodeError as exc:
            await error(sid, "decode", str(exc))
