"""Shared session vocabulary: config, coins, workload, JSON payloads.

Client and server never ship point sets in the clear to set a benchmark
up — a session's workload is *derived* on both sides from the HELLO
config: ``numpy.random.default_rng([seed, session_id])`` generates the
shared points and each party's extras, the client keeps Alice's half and
the server keeps Bob's.  Because the server can derive the full union,
it can verify end-to-end success and report it in RESULT, making every
session self-checking.

All JSON parsing here guards against malformed input with
:class:`~repro.errors.MalformedPayloadError` — HELLO payloads arrive
off the wire and must never crash the server.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from ..errors import MalformedPayloadError
from ..hashing import PublicCoins, derive_seed
from ..metric.spaces import HammingSpace, Point

__all__ = [
    "SessionConfig",
    "json_payload",
    "parse_json_payload",
    "session_workload",
    "insert_all",
]

#: Protocol families a session may request.
PROTOCOLS = ("exact", "resilient")


def json_payload(obj: dict) -> bytes:
    """Canonical JSON bytes (sorted keys, compact separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("ascii")


def parse_json_payload(payload: bytes) -> dict:
    """Parse a JSON control payload; typed error on any damage."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedPayloadError(f"malformed JSON control payload: {exc}") from None
    if not isinstance(obj, dict):
        raise MalformedPayloadError(
            f"JSON control payload must be an object, got {type(obj).__name__}"
        )
    return obj


@dataclass(frozen=True)
class SessionConfig:
    """Everything both endpoints need to run (and verify) one session."""

    session_id: int
    seed: int
    protocol: str = "resilient"
    dim: int = 64
    n_shared: int = 256
    delta: int = 16
    delta_bound: int = 8
    q: int = 3
    max_attempts: int = 8
    max_escalations: int = 2

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"protocol must be one of {PROTOCOLS}, got {self.protocol!r}")
        for name in ("dim", "delta_bound", "q", "max_attempts"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("session_id", "n_shared", "delta", "max_escalations"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")

    def to_json(self) -> bytes:
        return json_payload(asdict(self))

    @classmethod
    def from_payload(cls, payload: bytes) -> "SessionConfig":
        """Parse a HELLO payload; every failure is a typed decode error."""
        obj = parse_json_payload(payload)
        expected = {
            "session_id", "seed", "protocol", "dim", "n_shared",
            "delta", "delta_bound", "q", "max_attempts", "max_escalations",
        }
        if set(obj) != expected:
            raise MalformedPayloadError(
                f"HELLO config fields mismatch: got {sorted(obj)}"
            )
        if not isinstance(obj["protocol"], str):
            raise MalformedPayloadError("HELLO protocol must be a string")
        for name in expected - {"protocol"}:
            if not isinstance(obj[name], int) or isinstance(obj[name], bool):
                raise MalformedPayloadError(f"HELLO field {name!r} must be an integer")
        try:
            return cls(**obj)
        except ValueError as exc:
            raise MalformedPayloadError(f"invalid HELLO config: {exc}") from None

    # -- derived state -----------------------------------------------------

    def space(self) -> HammingSpace:
        return HammingSpace(self.dim)

    def coins(self) -> PublicCoins:
        """The session's shared protocol randomness (both endpoints)."""
        return PublicCoins(self.seed).child("recon-service", self.session_id)

    def attempt_coins(self, attempt: int) -> PublicCoins:
        """Per-attempt coins; attempt 1 uses the session coins unchanged
        (mirroring the resilient controller's zero-overhead first try)."""
        base = self.coins()
        return base if attempt == 1 else base.child("service-attempt", attempt)

    def strata_coins(self) -> PublicCoins:
        return self.coins().child("service-strata")

    @property
    def key_bits(self) -> int:
        return max(1, self.dim)

    def store_key(self) -> int:
        """Stable sketch-store key for Bob's derived set.

        Folds the workload identity — everything :meth:`workload`
        depends on — onto the store's 61-bit routing line, so any two
        sessions deriving the same Bob set share one warm entry.
        """
        return derive_seed(
            self.seed,
            "store-workload",
            self.session_id,
            self.dim,
            self.n_shared,
            self.delta,
        ) & ((1 << 61) - 1)

    def workload(self) -> "tuple[list[Point], list[Point]]":
        """Derive ``(alice_points, bob_points)`` for this session."""
        return session_workload(
            self.seed, self.session_id, self.dim, self.n_shared, self.delta
        )


def insert_all(sketch, space, points, key_bits: int) -> None:
    """Insert encoded points, vectorised when the universe fits 61 bits
    (the same dispatch rule as the in-process reconciliation paths)."""
    from ..reconcile.exact_iblt import encode_point, encode_points

    if key_bits <= 61:
        sketch.insert_batch(encode_points(space, points))
    else:
        for point in points:
            sketch.insert(encode_point(space, point))


def session_workload(
    seed: int, session_id: int, dim: int, n_shared: int, delta: int
) -> "tuple[list[Point], list[Point]]":
    """Deterministic per-session Hamming workload (both endpoints agree).

    Mirrors the scenario drivers' shape: ``n_shared`` common points plus
    a split of ``delta`` extras, so the true symmetric difference is at
    most ``delta`` (sampling collisions can only shrink it).
    """
    rng = np.random.default_rng([seed, session_id])
    space = HammingSpace(dim)
    shared = space.sample(rng, n_shared)
    alice = shared + space.sample(rng, delta // 2)
    bob = shared + space.sample(rng, delta - delta // 2)
    return alice, bob
