"""Seeded simulated network conditions for the reconciliation service.

:class:`SimulatedNetwork` sits between a client's frame multiplexer and
its transport and damages traffic the way a lossy link would — except
deterministically.  Every decision about a frame is drawn from an RNG
keyed **only** on ``(seed, session id, direction, sequence number)``,
never on payload bytes, arrival order, or wall clock, so a multi-session
run produces the same fault pattern regardless of asyncio scheduling —
the property the service scenario's byte-identical reports rest on.

Fault semantics are chosen to preserve *framing* (a length-prefixed
stream must stay reassemblable):

* **loss** — the frame is delivered, but with its payload zeroed and its
  trailing CRC inverted: a guaranteed payload-checksum failure at the
  receiver, modelling a detected loss that triggers a protocol-level
  re-request.  (Actually withholding bytes would stall the peer's
  ``readexactly`` forever.)
* **corruption** — a few payload bits flip; detected by the payload CRC.
* **duplication** — the (possibly damaged) frame is delivered twice;
  receivers deduplicate by sequence number.
* **reordering** — modelled as a *late duplicate*: the frame is
  delivered on time and a deferred stale copy arrives after the next
  frame in the same direction, so receivers observe genuinely
  out-of-order sequence numbers.  (Deferring the *only* copy of a
  frame would stall a stop-and-wait protocol against the wall-clock
  timeout — nondeterministically.  A retransmission racing a newer
  frame is also how real links reorder under this protocol.)
* **latency** — a per-frame value ``base + jitter·U(0,1)`` is *drawn*
  and recorded; by default no wall-clock sleep happens
  (``latency_scale = 0``), so reports carry simulated latency while
  tests stay fast.

Faults never touch the 30-byte frame prelude: a damaged frame still
routes to its session, which is what lets one session recover without
poisoning its neighbours on the shared connection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..hashing import derive_seed
from ..protocol.wire import HEADER_LEN, FrameHeader

__all__ = ["NetworkConfig", "SessionLink", "SimulatedNetwork", "LinkDecision"]

#: Direction tags used to key fault streams.
CLIENT_TO_SERVER = "c2s"
SERVER_TO_CLIENT = "s2c"


@dataclass(frozen=True)
class NetworkConfig:
    """Seeded link conditions applied client-side in both directions."""

    seed: int
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    base_latency_ms: float = 0.2
    jitter_ms: float = 0.0
    #: Wall-clock seconds slept per simulated millisecond (0 = never sleep).
    latency_scale: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "corrupt_rate", "duplicate_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.loss_rate + self.corrupt_rate > 1.0:
            raise ValueError("loss_rate + corrupt_rate must not exceed 1")
        if self.base_latency_ms < 0 or self.jitter_ms < 0 or self.latency_scale < 0:
            raise ValueError("latency parameters must be >= 0")

    @property
    def any_faults(self) -> bool:
        return bool(
            self.loss_rate
            or self.corrupt_rate
            or self.duplicate_rate
            or self.reorder_rate
        )


@dataclass(frozen=True)
class LinkDecision:
    """What the link did to one frame."""

    deliveries: "list[bytes]"  #: physical copies put on the wire (>= 1)
    latency_ms: float  #: drawn one-way latency for this frame
    lost: bool  #: payload zeroed + trailer inverted
    corrupted: bool  #: payload bits flipped
    duplicated: bool  #: delivered twice
    #: Stale copies to deliver *after* the next frame in this direction
    #: (the late-duplicate model of reordering); empty when none.
    deferred: "tuple[bytes, ...]" = ()

    @property
    def reordered(self) -> bool:
        return bool(self.deferred)


def _zero_payload(raw: bytes, header: FrameHeader) -> bytes:
    mutated = bytearray(raw)
    start = HEADER_LEN + header.label_len
    for index in range(start, start + header.payload_len):
        mutated[index] = 0
    # Invert the trailing CRC so even an all-zero payload is detected.
    for index in range(len(mutated) - 4, len(mutated)):
        mutated[index] ^= 0xFF
    return bytes(mutated)


def _flip_payload_bits(raw: bytes, header: FrameHeader, rng: random.Random) -> bytes:
    mutated = bytearray(raw)
    start = HEADER_LEN + header.label_len
    if header.payload_len == 0:
        # Nothing to flip in the payload; damage the trailer instead.
        mutated[len(mutated) - 1] ^= 0x01
        return bytes(mutated)
    for _ in range(1 + rng.randrange(3)):
        position = start + rng.randrange(header.payload_len)
        mutated[position] ^= 1 << rng.randrange(8)
    return bytes(mutated)


class SessionLink:
    """The deterministic fault/latency plan for one session's frames."""

    def __init__(self, config: NetworkConfig, session_id: int) -> None:
        self.config = config
        self.session_id = session_id

    def _rng(self, direction: str, seq: int) -> random.Random:
        return random.Random(
            derive_seed(self.config.seed, "link", self.session_id, direction, seq)
        )

    def apply(self, direction: str, seq: int, header: FrameHeader, raw: bytes) -> LinkDecision:
        """Decide this frame's fate; pure in ``(direction, seq)``."""
        rng = self._rng(direction, seq)
        latency_ms = self.config.base_latency_ms + self.config.jitter_ms * rng.random()
        lost = corrupted = False
        roll = rng.random()
        if roll < self.config.loss_rate:
            raw = _zero_payload(raw, header)
            lost = True
        elif roll < self.config.loss_rate + self.config.corrupt_rate:
            raw = _flip_payload_bits(raw, header, rng)
            corrupted = True
        duplicated = rng.random() < self.config.duplicate_rate
        deliveries = [raw, raw] if duplicated else [raw]
        # Reordering defers an *extra* stale copy past the next frame in
        # this direction; the draw comes last so enabling it leaves the
        # loss/corrupt/duplicate streams of a given seed untouched.
        deferred: "tuple[bytes, ...]" = ()
        if rng.random() < self.config.reorder_rate:
            deferred = (raw,)
        return LinkDecision(
            deliveries=deliveries,
            latency_ms=latency_ms,
            lost=lost,
            corrupted=corrupted,
            duplicated=duplicated,
            deferred=deferred,
        )


class SimulatedNetwork:
    """Factory handing each session its own deterministic link."""

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config

    def link(self, session_id: int) -> SessionLink:
        return SessionLink(self.config, session_id)
