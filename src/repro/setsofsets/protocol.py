"""Multiset-of-sets reconciliation (substitute for Mitzenmacher–Morgan [22]).

The Gap protocol's middle rounds let Alice recover the multiset of Bob's
*keys*, where a key is a length-``h`` vector of ``O(log n)``-bit entries
and close keys differ in few entries.  The paper invokes Theorem 3.11 of
[22] as a black box; this module implements a 3-round protocol with the
same interface and communication *shape* (see DESIGN.md, substitution 1):

* **Round 1 (Bob -> Alice)** — a counting IBLT over Bob's *entry items*
  ``(vector index, entry value)``, multiplicities respected.  Alice
  deletes her own items; the surviving signed difference has one item per
  pairwise entry difference — ``O(z)`` items, *not* ``n·h``.
* **Round 2 (Alice -> Bob)** — the list of Bob-side differing items.
* **Round 3 (Bob -> Alice)** — for each of his keys containing differing
  items: the key verbatim if at least a third of its entries differ (far
  keys), otherwise a *patch*: the differing entries plus a checksum of
  the whole key.  Alice reconstructs each patched key by applying the
  patch to each of her own keys and testing the checksum.

Signature entries
-----------------
Internally every key gets an extra entry: a hash of the whole vector.
Identical keys on the two sides then cancel *including* their signatures,
while any Bob key not identically held by Alice is guaranteed a differing
item (its signature) and therefore gets recovered in Round 3.  Conversely
Alice infers which of her own keys Bob (very likely) also holds: a key
none of whose items — signature included — survived as Alice-only must be
entry-wise covered by Bob's multiset, and signature coverage means an
identical key on Bob's side up to hash collision.  These appear in
``shared_alice_keys``.

Failure semantics
-----------------
Reconstruction of a patched key can fail (multiset cancellations may hide
a differing entry, leaving the patch incomplete): such keys are counted
``unresolved``.  For the Gap protocol this failure mode is *safe*: a Bob
key Alice does not know can only make her transmit extra close points,
never suppress a far one, so the ``r2`` guarantee survives (the model
explicitly allows extra points of ``S_A`` in ``T_A``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..hashing import PublicCoins, VectorHash
from ..iblt.counting import MultisetIBLT
from ..iblt.iblt import cells_for_differences
from ..protocol.channel import ALICE, BOB, Channel
from ..protocol.serialize import BitReader, BitWriter

__all__ = ["SetsOfSetsResult", "SetsOfSetsReconciler"]

KeyVector = tuple[int, ...]

_CHECK_BITS = 61


@dataclass
class SetsOfSetsResult:
    """Outcome of the reconciliation (Alice's view of Bob's keys).

    Attributes
    ----------
    success:
        False iff the Round-1 counting IBLT failed to peel (undersized).
    recovered:
        Reconstructed Bob keys (those differing from all of Alice's) with
        multiplicities.
    shared_alice_keys:
        Alice's own keys inferred to be identically present on Bob's side.
    unresolved:
        Multiplicity-weighted count of Bob keys whose patch could not be
        applied to any of Alice's keys.
    pair_difference:
        Number of differing entry items the IBLT decoded (``z`` in [22]).
    """

    success: bool
    recovered: dict[KeyVector, int] = field(default_factory=dict)
    shared_alice_keys: list[KeyVector] = field(default_factory=list)
    unresolved: int = 0
    pair_difference: int = 0
    total_bits: int = 0
    rounds: int = 0

    @property
    def recovered_keys(self) -> list[KeyVector]:
        return list(self.recovered)

    @property
    def bob_key_view(self) -> list[KeyVector]:
        """Every key Alice should treat as held by Bob."""
        return list(self.recovered) + list(self.shared_alice_keys)


class SetsOfSetsReconciler:
    """3-round multiset-of-keys reconciliation.

    Parameters
    ----------
    coins, label:
        Shared randomness.
    entries:
        ``h``: entries per (external) key vector.
    entry_bits:
        Bit width of each entry (``Θ(log n)`` in the Gap protocol).
    expected_differences:
        Sizing hint: the expected number of pairwise entry differences
        ``z`` (the Gap protocol passes ``O((k + ρn) log n)``).
    size_multiplier:
        Headroom on the counting IBLT (failure probability decays
        geometrically in this).
    verbatim_fraction:
        Keys with at least this fraction of differing entries are sent
        verbatim instead of patched (far keys differ in ``> h/3`` entries
        under the threshold analysis of Theorem 4.2).
    """

    def __init__(
        self,
        coins: PublicCoins,
        label: object,
        entries: int,
        entry_bits: int,
        expected_differences: int,
        q: int = 4,
        size_multiplier: float = 4.0,
        verbatim_fraction: float = 1.0 / 3.0,
        backend: str | None = None,
    ):
        if entries < 1:
            raise ValueError(f"entries must be >= 1, got {entries}")
        if entry_bits < 1 or entry_bits > 55:
            raise ValueError(f"entry_bits must be in [1, 55], got {entry_bits}")
        self.coins = coins
        self.label = label
        self.backend = backend
        self.entries = entries
        self.internal_entries = entries + 1  # +1 signature entry
        self.entry_bits = entry_bits
        self.index_bits = max(1, (self.internal_entries - 1).bit_length())
        self.item_bits = self.entry_bits + self.index_bits
        self.expected_differences = max(1, int(expected_differences))
        self.q = q
        self.cells = cells_for_differences(
            self.expected_differences, q=q, headroom=size_multiplier
        )
        self.verbatim_threshold = max(
            1, math.ceil(verbatim_fraction * self.internal_entries)
        )
        self.signature_hash = VectorHash(
            coins, ("sos-signature", label), arity=entries, bits=entry_bits
        )
        self.key_checksum = VectorHash(
            coins,
            ("sos-key-checksum", label),
            arity=self.internal_entries,
            bits=_CHECK_BITS,
        )

    # -- key / item encoding -------------------------------------------------
    def _internal(self, key: KeyVector) -> KeyVector:
        """Append the signature entry."""
        if len(key) != self.entries:
            raise ValueError(f"key has {len(key)} entries, expected {self.entries}")
        return tuple(key) + (self.signature_hash(key),)

    def _as_matrix(self, keys: Sequence[KeyVector] | np.ndarray) -> np.ndarray:
        """Normalise a key collection to an ``(n, entries)`` ``uint64`` matrix."""
        matrix = np.asarray(keys, dtype=np.uint64)
        if matrix.size == 0:
            return matrix.reshape(0, self.entries)
        if matrix.ndim != 2 or matrix.shape[1] != self.entries:
            raise ValueError(
                f"key has {matrix.shape[-1] if matrix.ndim else 0} entries, "
                f"expected {self.entries}"
            )
        if int(matrix.max()) >= (1 << self.entry_bits):
            raise ValueError(
                f"entry value {int(matrix.max())} outside [0, 2^{self.entry_bits})"
            )
        return matrix

    def _internal_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_internal`: append the signature column."""
        signatures = self.signature_hash.hash_rows(matrix)
        return np.concatenate([matrix, signatures[:, None]], axis=1)

    def _encode_item(self, index: int, value: int) -> int:
        if not 0 <= value < (1 << self.entry_bits):
            raise ValueError(f"entry value {value} outside [0, 2^{self.entry_bits})")
        return (value << self.index_bits) | index

    def _item_multiset(self, internal_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Distinct encoded entry items and their multiplicities.

        Vectorised :meth:`_encode_item` over the whole internal-key matrix
        followed by one ``np.unique`` pass; the result feeds the counting
        IBLT's batch insert/delete directly.  Only valid while encoded
        items fit ``uint64`` (``item_bits <= 64``) — :meth:`run` falls
        back to the exact scalar encoding beyond that.
        """
        if internal_matrix.size == 0:
            return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
        index_row = np.arange(self.internal_entries, dtype=np.uint64)[None, :]
        encoded = (internal_matrix << np.uint64(self.index_bits)) | index_row
        items, counts = np.unique(encoded.ravel(), return_counts=True)
        return items, counts.astype(np.int64)

    def _items_of(self, internal_keys: Sequence[KeyVector]) -> dict[int, int]:
        """Scalar item multiset (exact Python ints, any ``item_bits``)."""
        items: dict[int, int] = {}
        for key in internal_keys:
            for index, value in enumerate(key):
                item = self._encode_item(index, int(value))
                items[item] = items.get(item, 0) + 1
        return items

    def _table(self) -> MultisetIBLT:
        return MultisetIBLT(
            self.coins,
            ("sos-items", self.label),
            cells=self.cells,
            q=self.q,
            key_bits=self.item_bits,
            backend=self.backend,
        )

    # -- the protocol ----------------------------------------------------------
    def run(
        self,
        alice_keys: Sequence[KeyVector] | np.ndarray,
        bob_keys: Sequence[KeyVector] | np.ndarray,
        channel: Channel | None = None,
    ) -> SetsOfSetsResult:
        """Run the 3-round protocol; Alice ends with Bob's key multiset view.

        Key collections may be sequences of tuples or ``(n, entries)``
        integer matrices; the Gap protocol passes key matrices straight
        through, keeping the signature hashing, item encoding, and
        counting-IBLT fills fully vectorised.
        """
        channel = channel if channel is not None else Channel()
        alice_matrix = self._internal_matrix(self._as_matrix(alice_keys))
        bob_matrix = self._internal_matrix(self._as_matrix(bob_keys))
        # Tuple views feed the (inherently per-key) patch logic of Round 3.
        alice_internal = [tuple(row) for row in alice_matrix.tolist()]
        bob_internal = [tuple(row) for row in bob_matrix.tolist()]

        # ---- Round 1: Bob -> Alice — counting IBLT over his items --------
        bob_table = self._table()
        alice_view_shell = self._table()
        if self.item_bits <= 64:
            bob_items, bob_mults = self._item_multiset(bob_matrix)
            bob_table.insert_batch(bob_items, bob_mults)
        else:  # encoded items overflow uint64; use the exact scalar path
            for item, multiplicity in self._items_of(bob_internal).items():
                bob_table.insert(item, multiplicity)
        payload, bits = bob_table.to_payload()
        sent = channel.send(BOB, "sos-item-iblt", payload, bits)

        # Alice: load, delete her items, peel.
        alice_view = alice_view_shell.from_payload(sent)
        if self.item_bits <= 64:
            alice_items, alice_mults = self._item_multiset(alice_matrix)
            alice_view.delete_batch(alice_items, alice_mults)
        else:
            for item, multiplicity in self._items_of(alice_internal).items():
                alice_view.delete(item, multiplicity)
        decoded = alice_view.decode()
        if not decoded.success:
            return SetsOfSetsResult(
                success=False,
                total_bits=channel.total_bits,
                rounds=channel.rounds,
            )
        bob_only_items = decoded.positive  # item -> multiplicity
        alice_only_items = set(decoded.negative)

        # ---- Round 2: Alice -> Bob — the Bob-side differing items --------
        writer = BitWriter()
        writer.write_varuint(len(bob_only_items))
        for item, multiplicity in sorted(bob_only_items.items()):
            writer.write_uint(item, self.item_bits)
            writer.write_varuint(multiplicity)
        reply = channel.send(ALICE, "sos-query", writer.getvalue(), writer.bit_length)

        reader = BitReader(reply)
        query_count = reader.read_varuint()
        queried_items: set[int] = set()
        for _ in range(query_count):
            item = reader.read_uint(self.item_bits)
            reader.read_varuint()  # multiplicity (informational)
            queried_items.add(item)

        # ---- Round 3: Bob -> Alice — verbatim far keys + patches ----------
        distinct_bob: dict[KeyVector, int] = {}
        for key in bob_internal:
            distinct_bob[key] = distinct_bob.get(key, 0) + 1

        writer = BitWriter()
        affected: list[tuple[KeyVector, int, list[tuple[int, int]]]] = []
        for key, multiplicity in distinct_bob.items():
            diff_entries = [
                (index, value)
                for index, value in enumerate(key)
                if self._encode_item(index, value) in queried_items
            ]
            if diff_entries:
                affected.append((key, multiplicity, diff_entries))
        writer.write_varuint(len(affected))
        for key, multiplicity, diff_entries in affected:
            verbatim = len(diff_entries) >= self.verbatim_threshold
            writer.write_bool(verbatim)
            writer.write_varuint(multiplicity)
            if verbatim:
                # Signature entry is derivable; ship only the h real entries.
                for value in key[: self.entries]:
                    writer.write_uint(value, self.entry_bits)
            else:
                writer.write_uint(self.key_checksum(key), _CHECK_BITS)
                writer.write_varuint(len(diff_entries))
                for index, value in diff_entries:
                    writer.write_uint(index, self.index_bits)
                    writer.write_uint(value, self.entry_bits)
        patch_payload = channel.send(
            BOB, "sos-patches", writer.getvalue(), writer.bit_length
        )

        # ---- Alice: reconstruct Bob's keys --------------------------------
        reader = BitReader(patch_payload)
        recovered: dict[KeyVector, int] = {}
        unresolved = 0
        distinct_alice = list(dict.fromkeys(alice_internal))
        record_count = reader.read_varuint()
        for _ in range(record_count):
            verbatim = reader.read_bool()
            multiplicity = reader.read_varuint()
            if verbatim:
                external = tuple(
                    reader.read_uint(self.entry_bits) for _ in range(self.entries)
                )
                recovered[external] = recovered.get(external, 0) + multiplicity
                continue
            checksum = reader.read_uint(_CHECK_BITS)
            patch_length = reader.read_varuint()
            patch = [
                (reader.read_uint(self.index_bits), reader.read_uint(self.entry_bits))
                for _ in range(patch_length)
            ]
            reconstructed = self._apply_patch(distinct_alice, patch, checksum)
            if reconstructed is None:
                unresolved += multiplicity
            else:
                recovered[reconstructed] = (
                    recovered.get(reconstructed, 0) + multiplicity
                )

        # Alice infers identically-shared keys: none of their items (the
        # signature included) ended Alice-only, so Bob's multiset covers
        # every entry and, via the signature, holds the key itself.
        shared: list[KeyVector] = []
        for key in distinct_alice:
            covered = all(
                self._encode_item(index, value) not in alice_only_items
                for index, value in enumerate(key)
            )
            if covered:
                shared.append(key[: self.entries])

        return SetsOfSetsResult(
            success=True,
            recovered=recovered,
            shared_alice_keys=shared,
            unresolved=unresolved,
            pair_difference=decoded.total_difference,
            total_bits=channel.total_bits,
            rounds=channel.rounds,
        )

    def _apply_patch(
        self,
        alice_internal_keys: list[KeyVector],
        patch: list[tuple[int, int]],
        checksum: int,
    ) -> KeyVector | None:
        """Patch each of Alice's keys; the checksum identifies the original.

        Returns the *external* (signature-stripped) key, additionally
        validating that the signature entry is consistent with the
        reconstructed vector.
        """
        for base in alice_internal_keys:
            candidate = list(base)
            for index, value in patch:
                candidate[index] = value
            key = tuple(candidate)
            if self.key_checksum(key) != checksum:
                continue
            external = key[: self.entries]
            if self.signature_hash(external) != key[self.entries]:
                continue  # checksum collision produced an inconsistent key
            return external
        return None
