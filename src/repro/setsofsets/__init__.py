"""Multiset-of-sets reconciliation used by the Gap protocol ([22] substitute)."""

from .protocol import SetsOfSetsReconciler, SetsOfSetsResult

__all__ = ["SetsOfSetsReconciler", "SetsOfSetsResult"]
