"""repro — Robust Set Reconciliation via Locality Sensitive Hashing.

A faithful reimplementation of Mitzenmacher & Morgan (PODS 2019,
arXiv:1807.09694): two-party reconciliation of point sets in a metric
space where *close* points should be treated as equal.

Quickstart
----------
>>> import numpy as np
>>> from repro import (HammingSpace, EMDProtocol, PublicCoins,
...                    noisy_replica_pair)
>>> space = HammingSpace(64)
>>> wl = noisy_replica_pair(space, n=32, k=2, close_radius=1,
...                         far_radius=24, rng=np.random.default_rng(0))
>>> result = EMDProtocol.for_instance(space, n=32, k=2).run(
...     wl.alice, wl.bob, PublicCoins(0))
>>> result.success
True

The two protocol families:

* :class:`EMDProtocol` / :class:`ScaledEMDProtocol` — Bob's final set is
  close to Alice's in earth mover's distance (Section 3).
* :class:`GapProtocol` / :func:`low_dimensional_gap_protocol` — Bob ends
  with a point within ``r2`` of every input point (Section 4).

Substrates (all reimplemented from scratch): multi-scale LSH families
(:mod:`repro.lsh`), robust invertible Bloom lookup tables
(:mod:`repro.iblt`), branching-process analysis (:mod:`repro.branching`),
a bit-measured protocol channel (:mod:`repro.protocol`), baselines
(:mod:`repro.reconcile`), and the sets-of-sets reconciliation layer
(:mod:`repro.setsofsets`).
"""

from .core import (
    EMDParameters,
    EMDProtocol,
    EMDResult,
    GapProtocol,
    GapResult,
    ScaledEMDProtocol,
    ScaledEMDResult,
    derive_emd_parameters,
    low_dimensional_gap_protocol,
    make_index_instance,
    one_round_subset_protocol,
    repair_point_set,
    solve_index_via_gap,
    verify_gap_guarantee,
)
from .errors import (
    DecodeError,
    MalformedPayloadError,
    SketchUndecodableError,
    TruncatedPayloadError,
)
from .experiments import (
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    builtin_scenarios,
)
from .hashing import PublicCoins
from .iblt import IBLT, RIBLT, MultisetIBLT
from .lsh import (
    BitSamplingMLSH,
    GridMLSH,
    LSHParams,
    OneSidedGridLSH,
    PStableMLSH,
)
from .metric import GridSpace, HammingSpace, MetricSpace, Point, emd, emd_k
from .protocol import Channel, FaultSpec, FaultyChannel
from .reconcile import (
    QuadtreeEMDProtocol,
    RecoveryReport,
    ResilienceConfig,
    exact_iblt_reconcile,
    naive_full_transfer,
    naive_union_transfer,
    resilient_reconcile,
)
from .setsofsets import SetsOfSetsReconciler
from .workloads import ReconciliationWorkload, noisy_replica_pair, perturb_point

__version__ = "1.0.0"

__all__ = [
    "EMDParameters",
    "EMDProtocol",
    "EMDResult",
    "GapProtocol",
    "GapResult",
    "ScaledEMDProtocol",
    "ScaledEMDResult",
    "derive_emd_parameters",
    "low_dimensional_gap_protocol",
    "make_index_instance",
    "one_round_subset_protocol",
    "repair_point_set",
    "solve_index_via_gap",
    "verify_gap_guarantee",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "builtin_scenarios",
    "PublicCoins",
    "IBLT",
    "RIBLT",
    "MultisetIBLT",
    "BitSamplingMLSH",
    "GridMLSH",
    "LSHParams",
    "OneSidedGridLSH",
    "PStableMLSH",
    "GridSpace",
    "HammingSpace",
    "MetricSpace",
    "Point",
    "emd",
    "emd_k",
    "Channel",
    "DecodeError",
    "MalformedPayloadError",
    "SketchUndecodableError",
    "TruncatedPayloadError",
    "FaultSpec",
    "FaultyChannel",
    "QuadtreeEMDProtocol",
    "RecoveryReport",
    "ResilienceConfig",
    "exact_iblt_reconcile",
    "naive_full_transfer",
    "naive_union_transfer",
    "resilient_reconcile",
    "SetsOfSetsReconciler",
    "ReconciliationWorkload",
    "noisy_replica_pair",
    "perturb_point",
    "__version__",
]
