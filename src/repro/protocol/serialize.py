"""Bit-level serialization for honest communication accounting.

Every protocol message in this library is serialized to actual bytes
before "transmission" and parsed back on receipt, so the communication
costs the benchmarks report are *measured*, not computed from formulas.
Because the paper's bounds are stated in bits, the writer packs at bit
granularity: a Hamming point costs ``d`` bits, a ``[Δ]^d`` point costs
``d·ceil(log2 Δ)`` bits, and unbounded integers (RIBLT cell sums) use
zigzag varints whose cost adapts to their magnitude (``O(log |x|)``).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import MalformedPayloadError, TruncatedPayloadError
from ..metric.spaces import MetricSpace, Point

__all__ = [
    "BitWriter",
    "BitReader",
    "VARUINT_MAX_GROUPS",
    "coordinate_bits",
    "write_point",
    "read_point",
    "write_points",
    "read_points",
]


#: Varint group budget shared by writer and reader.  19 groups carry
#: ``19 · 7 = 133`` payload bits — enough for any legitimate cell sum
#: (``2^31`` pairs of 61-bit keys stay below ``2^93``, well under the
#: cap even after zigzag) while bounding how far a malformed stream can
#: drag :meth:`BitReader.read_varuint`.
VARUINT_MAX_GROUPS = 19


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_position = 0  # bits used in the last byte (0..7)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        if self._bit_position == 0:
            return 8 * len(self._bytes)
        return 8 * (len(self._bytes) - 1) + self._bit_position

    def write_bit(self, bit: int) -> None:
        if self._bit_position == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 1 << self._bit_position
        self._bit_position = (self._bit_position + 1) % 8

    def write_uint(self, value: int, bits: int) -> None:
        """Write ``value`` as a fixed-width ``bits``-bit unsigned integer."""
        value = int(value)
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        if value < 0 or (bits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {bits} bits")
        for position in range(bits):
            self.write_bit((value >> position) & 1)

    def write_varuint(self, value: int) -> None:
        """LEB128-style varint: 7 value bits + 1 continuation bit per group.

        Values are capped at :data:`VARUINT_MAX_GROUPS` groups (133 bits)
        so the reader can bound malformed streams without ever rejecting a
        legitimately written value.
        """
        value = int(value)
        if value < 0:
            raise ValueError(f"write_varuint requires value >= 0, got {value}")
        if value.bit_length() > 7 * VARUINT_MAX_GROUPS:
            raise ValueError(
                f"value {value} needs more than {VARUINT_MAX_GROUPS} varuint "
                f"groups ({7 * VARUINT_MAX_GROUPS} bits)"
            )
        while True:
            group = value & 0x7F
            value >>= 7
            self.write_bit(1 if value else 0)
            self.write_uint(group, 7)
            if not value:
                break

    def write_varint(self, value: int) -> None:
        """Signed varint via zigzag mapping ``x -> 2x`` / ``-x -> 2x-1``."""
        value = int(value)
        self.write_varuint(value * 2 if value >= 0 else -value * 2 - 1)

    def write_bool(self, flag: bool) -> None:
        self.write_bit(1 if flag else 0)

    def getvalue(self) -> bytes:
        """The accumulated buffer, final partial byte zero-padded."""
        return bytes(self._bytes)


class BitReader:
    """Sequential reader matching :class:`BitWriter`'s encoding."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0  # absolute bit offset

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._position

    def read_bit(self) -> int:
        if self._position >= 8 * len(self._data):
            raise TruncatedPayloadError("bit stream exhausted")
        byte_index, bit_index = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> bit_index) & 1

    def read_uint(self, bits: int) -> int:
        """Read a fixed-width unsigned integer (mirrors ``write_uint``)."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        value = 0
        for position in range(bits):
            value |= self.read_bit() << position
        return value

    def read_varuint(self) -> int:
        """Read a varuint; raises on malformed or truncated streams.

        A stream still asking for continuation after
        :data:`VARUINT_MAX_GROUPS` groups cannot have come from
        :meth:`BitWriter.write_varuint` and raises
        :class:`~repro.errors.MalformedPayloadError` (a ``ValueError``);
        running out of bits mid-value raises
        :class:`~repro.errors.TruncatedPayloadError` (an ``EOFError``).
        """
        value = 0
        shift = 0
        for _group in range(VARUINT_MAX_GROUPS):
            more = self.read_bit()
            value |= self.read_uint(7) << shift
            shift += 7
            if not more:
                return value
        raise MalformedPayloadError(
            f"malformed varuint: more than {VARUINT_MAX_GROUPS} continuation "
            "groups"
        )

    def read_varint(self) -> int:
        raw = self.read_varuint()
        return raw // 2 if raw % 2 == 0 else -(raw + 1) // 2

    def read_bool(self) -> bool:
        return bool(self.read_bit())


def coordinate_bits(space: MetricSpace) -> int:
    """Fixed width per coordinate: ``ceil(log2 Δ)`` (1 bit for Hamming)."""
    return max(1, math.ceil(math.log2(space.side)))


def write_point(writer: BitWriter, space: MetricSpace, point: Point) -> None:
    """Write one point at ``d · ceil(log2 Δ)`` bits."""
    bits = coordinate_bits(space)
    if len(point) != space.dim:
        raise ValueError(f"point has dimension {len(point)}, expected {space.dim}")
    for coordinate in point:
        writer.write_uint(coordinate, bits)


def read_point(reader: BitReader, space: MetricSpace) -> Point:
    bits = coordinate_bits(space)
    return tuple(reader.read_uint(bits) for _ in range(space.dim))


def write_points(writer: BitWriter, space: MetricSpace, points: Sequence[Point]) -> None:
    """Length-prefixed list of points."""
    writer.write_varuint(len(points))
    for point in points:
        write_point(writer, space, point)


def read_points(reader: BitReader, space: MetricSpace) -> list[Point]:
    count = reader.read_varuint()
    needed = count * space.dim * coordinate_bits(space)
    if needed > reader.bits_remaining:
        raise MalformedPayloadError(
            f"declared point count {count} needs {needed} bits, "
            f"only {reader.bits_remaining} remain"
        )
    return [read_point(reader, space) for _ in range(count)]
