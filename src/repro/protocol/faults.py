"""Seeded fault injection for the measured channel.

:class:`FaultyChannel` wraps a :class:`~repro.protocol.channel.Channel`
and deterministically damages messages in flight: per-message drop,
byte truncation, bit-flip corruption, and duplication, each drawn from a
:class:`~repro.hashing.PublicCoins`-derived stream.  Protocol code is
unchanged — it still calls ``send`` and parses whatever comes back — but
what comes back may be damaged, which is exactly what the typed
:class:`~repro.errors.DecodeError` surface and the resilient
reconciliation controller exist to absorb.

Determinism contract: the fault draws for message ``i`` depend only on
the injected coins and ``i`` — never on payload bytes, labels, or wall
clock — so a protocol that re-sends the same sequence of messages hits
the same sequence of faults, and the same fault seed yields byte-identical
recovery reports (CI's fault-smoke gate pins this).

Accounting: the *sender* pays for what was transmitted, so the full
payload is recorded on the inner transcript even when the receiver gets
a truncated or empty delivery, and a duplicated message is recorded (and
paid for) twice.  The fault transcript (:attr:`FaultyChannel.events`)
records what happened to each damaged message alongside the message
transcript.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hashing import PublicCoins
from .channel import BaseChannel, Channel, Message

__all__ = ["FaultSpec", "FaultEvent", "FaultSummary", "FaultyChannel"]


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class FaultSpec:
    """Per-message fault probabilities (independent Bernoulli draws).

    Parameters
    ----------
    drop_rate:
        The receiver gets an empty payload (the message is paid for but
        lost in flight).
    truncate_rate:
        The receiver gets a strict byte prefix of the payload.
    flip_rate:
        1..``max_flip_bits`` uniformly chosen bits of the delivered
        payload are inverted.
    duplicate_rate:
        The message is transmitted (and paid for) twice; the receiver
        still parses a single copy.
    max_flip_bits:
        Upper bound on bits flipped per corrupted message.
    """

    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    flip_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_flip_bits: int = 4

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("truncate_rate", self.truncate_rate)
        _check_rate("flip_rate", self.flip_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        if self.max_flip_bits < 1:
            raise ValueError(f"max_flip_bits must be >= 1, got {self.max_flip_bits}")

    @property
    def any_faults(self) -> bool:
        return (
            self.drop_rate > 0
            or self.truncate_rate > 0
            or self.flip_rate > 0
            or self.duplicate_rate > 0
        )


@dataclass(frozen=True)
class FaultEvent:
    """One damaged message: what was sent vs. what was delivered."""

    index: int  #: position of the message in the logical send sequence
    sender: str
    label: str
    kinds: tuple[str, ...]  #: subset of ("duplicate", "drop", "truncate", "flip")
    sent_bits: int
    delivered_bits: int
    flipped_bits: int = 0


@dataclass
class FaultSummary:
    """Aggregate fault transcript for a finished run."""

    messages: int = 0
    faulted: int = 0
    dropped: int = 0
    truncated: int = 0
    flipped: int = 0
    duplicated: int = 0
    bits_lost: int = 0  #: sent-but-undelivered bits (drops + truncations)

    def to_dict(self) -> dict:
        return {
            "messages": self.messages,
            "faulted": self.faulted,
            "dropped": self.dropped,
            "truncated": self.truncated,
            "flipped": self.flipped,
            "duplicated": self.duplicated,
            "bits_lost": self.bits_lost,
        }


class FaultyChannel(BaseChannel):
    """A :class:`Channel` wrapper that deterministically injects faults.

    Drop-in for ``Channel`` anywhere a protocol takes one (both sides of
    the :class:`~repro.protocol.channel.BaseChannel` contract): ``send``
    returns the (possibly damaged) delivered payload, and the transcript
    accessors delegate to the wrapped channel, so communication
    accounting is unchanged by wrapping.
    """

    def __init__(self, inner: Channel, spec: FaultSpec, coins: PublicCoins):
        # No super().__init__(): the transcript lives on the wrapped
        # channel and ``messages`` delegates to it.
        self.inner = inner
        self.spec = spec
        self.coins = coins.child("faulty-channel")
        self.events: list[FaultEvent] = []
        self._send_index = 0

    # -- transcript delegation ---------------------------------------------
    @property
    def messages(self) -> list[Message]:  # type: ignore[override]
        return self.inner.messages

    def fault_summary(self) -> FaultSummary:
        summary = FaultSummary(messages=self._send_index, faulted=len(self.events))
        for event in self.events:
            if "drop" in event.kinds:
                summary.dropped += 1
            if "truncate" in event.kinds:
                summary.truncated += 1
            if "flip" in event.kinds:
                summary.flipped += 1
            if "duplicate" in event.kinds:
                summary.duplicated += 1
            summary.bits_lost += max(0, event.sent_bits - event.delivered_bits)
        return summary

    # -- sending -----------------------------------------------------------
    def send(
        self, sender: str, label: str, payload: bytes, payload_bits: int | None = None
    ) -> bytes:
        """Transmit via the inner channel, then damage the delivery.

        The fault draws for message ``i`` come from a private stream
        keyed only on ``i``, and all four Bernoulli draws happen for
        every message, so the stream layout (hence every later message's
        fate) is independent of which faults actually fire.
        """
        index = self._send_index
        self._send_index += 1
        sent = self.inner.send(sender, label, payload, payload_bits)
        sent_bits = self.inner.messages[-1].bits

        rng = self.coins.python_rng("message", index)
        duplicate = rng.random() < self.spec.duplicate_rate
        drop = rng.random() < self.spec.drop_rate
        truncate = rng.random() < self.spec.truncate_rate
        flip = rng.random() < self.spec.flip_rate

        if duplicate:
            self.inner.send(sender, label, payload, payload_bits)

        kinds: list[str] = ["duplicate"] if duplicate else []
        delivered = sent
        delivered_bits = sent_bits
        flipped_bits = 0
        if drop:
            kinds.append("drop")
            delivered = b""
            delivered_bits = 0
        else:
            if truncate and len(delivered) > 0:
                kinds.append("truncate")
                cut = rng.randrange(len(delivered))
                delivered = delivered[:cut]
                delivered_bits = min(delivered_bits, 8 * cut)
            if flip and len(delivered) > 0:
                kinds.append("flip")
                flipped_bits = 1 + rng.randrange(self.spec.max_flip_bits)
                damaged = bytearray(delivered)
                for _ in range(flipped_bits):
                    position = rng.randrange(8 * len(damaged))
                    damaged[position // 8] ^= 1 << (position % 8)
                delivered = bytes(damaged)

        if kinds:
            self.events.append(
                FaultEvent(
                    index=index,
                    sender=sender,
                    label=label,
                    kinds=tuple(kinds),
                    sent_bits=sent_bits,
                    delivered_bits=delivered_bits,
                    flipped_bits=flipped_bits,
                )
            )
        return delivered
