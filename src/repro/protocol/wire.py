"""Framed binary wire format for reconciliation-as-a-service.

Everything the asyncio session server (:mod:`repro.server`) puts on a
byte stream travels inside a *frame*: a fixed 30-byte prelude, a short
ASCII label, the payload bytes, and a trailing payload CRC.  The layout
(all multi-byte integers big-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     2  magic ``b"RW"``
         2     1  protocol version (currently 1)
         3     1  message type (:class:`MessageType`)
         4     8  session id (uint64)
        12     4  sequence number within the session+direction (uint32)
        16     1  sender code (1 = alice, 2 = bob)
        17     1  label length ``L`` (uint8)
        18     4  declared payload bits (uint32)
        22     4  payload length ``P`` in bytes (uint32)
        26     4  CRC32 of bytes [0, 26)          -- header checksum
        30     L  label (ASCII)
      30+L     P  payload
    30+L+P     4  CRC32 of label + payload        -- payload checksum

Framing overhead is therefore ``34 + L`` bytes per frame — the number
the service scenario reports itemise separately from payload bytes.

Parsing is split in two so a multiplexer can route damaged frames:

* :func:`decode_header` validates magic, version, structural bounds and
  the *header* CRC.  Any damage there raises a typed
  :class:`~repro.errors.DecodeError` (the stream cannot be trusted for
  reframing and the connection should close).
* :meth:`Frame.verify_payload` checks the *payload* CRC.  A frame whose
  header survived but whose payload is damaged still carries a routable
  session id, so the receiving session can turn the damage into a
  protocol-level re-request instead of killing every other session on
  the connection.

No parse path here ever raises anything outside the
:class:`~repro.errors.DecodeError` hierarchy — malformed input must
never crash a peer.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from ..errors import MalformedPayloadError, TruncatedPayloadError

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "HEADER_LEN",
    "MAX_LABEL_LEN",
    "MAX_PAYLOAD_LEN",
    "SENDER_CODES",
    "MessageType",
    "Frame",
    "FrameHeader",
    "frame_overhead",
    "encode_frame",
    "decode_header",
    "decode_body",
    "decode_frame",
]

MAGIC = b"RW"
WIRE_VERSION = 1

#: Fixed prelude size: 26 header bytes + 4-byte header CRC.
HEADER_LEN = 30

#: Trailing payload-CRC size.
TRAILER_LEN = 4

MAX_LABEL_LEN = 255

#: Upper bound on a single frame's payload (64 MiB).  Far above any
#: sketch this library emits; exists purely so a malformed length field
#: cannot make a reader attempt a multi-gigabyte allocation.
MAX_PAYLOAD_LEN = 1 << 26

#: Wire encoding of the two protocol roles.
SENDER_CODES = {1: "alice", 2: "bob"}
_SENDER_TO_CODE = {name: code for code, name in SENDER_CODES.items()}

_PRELUDE = struct.Struct(">2sBBQIBBII")
assert _PRELUDE.size == HEADER_LEN - 4


class MessageType(enum.IntEnum):
    """Frame types of the reconciliation session protocol."""

    HELLO = 1  #: client -> server: open a session (JSON config payload)
    HELLO_ACK = 2  #: server -> client: session accepted
    REQ_SKETCH = 3  #: client -> server: request an IBLT at a bound (JSON)
    SKETCH = 4  #: server -> client: the IBLT payload (label ``iblt``)
    PUSH_POINTS = 5  #: client -> server: Alice-only points payload
    RESULT = 6  #: server -> client: union verification verdict (JSON)
    REQ_STRATA = 7  #: client -> server: Alice's strata sketch payload
    ESTIMATE = 8  #: server -> client: measured difference bound (JSON)
    ERROR = 9  #: either direction: typed protocol error (JSON)
    BYE = 10  #: client -> server: session finished


def frame_overhead(label: str) -> int:
    """Bytes a frame adds beyond its payload: ``34 + len(label)``."""
    return HEADER_LEN + len(label.encode("ascii")) + TRAILER_LEN


@dataclass(frozen=True)
class Frame:
    """One decoded (or to-be-encoded) wire frame.

    ``payload_crc`` is the *received* trailing checksum; frames built
    locally for sending leave it ``None`` (:func:`encode_frame` computes
    it).  :meth:`verify_payload` checks it — deliberately not done
    during :func:`decode_frame`, so a mux can still route a
    payload-damaged frame to its session by ``session_id``.
    """

    msg_type: MessageType
    session_id: int
    seq: int
    sender: str
    label: str
    payload: bytes
    payload_bits: int
    payload_crc: "int | None" = None

    @property
    def overhead_bytes(self) -> int:
        """Framing bytes this frame adds beyond its payload."""
        return frame_overhead(self.label)

    @property
    def wire_length(self) -> int:
        """Total encoded size of this frame in bytes."""
        return self.overhead_bytes + len(self.payload)

    def verify_payload(self) -> "Frame":
        """Check the trailing payload CRC; returns ``self`` when intact.

        Raises
        ------
        MalformedPayloadError
            When the received checksum does not match the label+payload
            bytes (damage in flight).  Callers re-request rather than
            crash.
        """
        if self.payload_crc is None:
            return self
        actual = zlib.crc32(self.label.encode("ascii") + self.payload)
        if actual != self.payload_crc:
            raise MalformedPayloadError(
                f"frame payload checksum mismatch in session {self.session_id} "
                f"seq {self.seq} ({self.label!r}): "
                f"expected {self.payload_crc:#010x}, got {actual:#010x}"
            )
        return self


def encode_frame(frame: Frame) -> bytes:
    """Serialise a frame to wire bytes (header CRC + payload CRC added)."""
    label_bytes = frame.label.encode("ascii")
    if len(label_bytes) > MAX_LABEL_LEN:
        raise ValueError(f"label exceeds {MAX_LABEL_LEN} bytes: {frame.label!r}")
    if len(frame.payload) > MAX_PAYLOAD_LEN:
        raise ValueError(
            f"payload of {len(frame.payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_LEN}-byte frame cap"
        )
    if frame.sender not in _SENDER_TO_CODE:
        raise ValueError(f"sender must be 'alice' or 'bob', got {frame.sender!r}")
    prelude = _PRELUDE.pack(
        MAGIC,
        WIRE_VERSION,
        int(frame.msg_type),
        frame.session_id,
        frame.seq,
        _SENDER_TO_CODE[frame.sender],
        len(label_bytes),
        frame.payload_bits,
        len(frame.payload),
    )
    header_crc = zlib.crc32(prelude)
    payload_crc = zlib.crc32(label_bytes + frame.payload)
    return b"".join(
        [
            prelude,
            struct.pack(">I", header_crc),
            label_bytes,
            frame.payload,
            struct.pack(">I", payload_crc),
        ]
    )


@dataclass(frozen=True)
class FrameHeader:
    """The validated fixed prelude: enough to read the frame's body."""

    msg_type: MessageType
    session_id: int
    seq: int
    sender: str
    label_len: int
    payload_bits: int
    payload_len: int

    @property
    def body_len(self) -> int:
        """Bytes following the prelude: label + payload + payload CRC."""
        return self.label_len + self.payload_len + TRAILER_LEN


def decode_header(prelude: bytes) -> FrameHeader:
    """Parse and validate the fixed 30-byte frame prelude.

    Raises :class:`~repro.errors.TruncatedPayloadError` when fewer than
    :data:`HEADER_LEN` bytes are supplied and
    :class:`~repro.errors.MalformedPayloadError` for bad magic, version,
    checksum, or structurally impossible fields — never anything
    outside the :class:`~repro.errors.DecodeError` hierarchy.
    """
    if len(prelude) < HEADER_LEN:
        raise TruncatedPayloadError(
            f"frame header truncated: need {HEADER_LEN} bytes, got {len(prelude)}"
        )
    raw = bytes(prelude[: HEADER_LEN - 4])
    (received_crc,) = struct.unpack(">I", bytes(prelude[HEADER_LEN - 4 : HEADER_LEN]))
    if raw[:2] != MAGIC:
        raise MalformedPayloadError(
            f"bad frame magic: expected {MAGIC!r}, got {raw[:2]!r}"
        )
    actual_crc = zlib.crc32(raw)
    if actual_crc != received_crc:
        raise MalformedPayloadError(
            f"frame header checksum mismatch: expected {received_crc:#010x}, "
            f"got {actual_crc:#010x}"
        )
    (
        _magic,
        version,
        type_code,
        session_id,
        seq,
        sender_code,
        label_len,
        payload_bits,
        payload_len,
    ) = _PRELUDE.unpack(raw)
    if version != WIRE_VERSION:
        raise MalformedPayloadError(
            f"unsupported wire version {version} (expected {WIRE_VERSION})"
        )
    try:
        msg_type = MessageType(type_code)
    except ValueError:
        raise MalformedPayloadError(f"unknown frame type code {type_code}") from None
    sender = SENDER_CODES.get(sender_code)
    if sender is None:
        raise MalformedPayloadError(f"unknown sender code {sender_code}")
    if payload_len > MAX_PAYLOAD_LEN:
        raise MalformedPayloadError(
            f"declared payload of {payload_len} bytes exceeds the "
            f"{MAX_PAYLOAD_LEN}-byte frame cap"
        )
    if payload_bits > 8 * payload_len:
        raise MalformedPayloadError(
            f"declared {payload_bits} payload bits exceed the "
            f"{payload_len}-byte payload"
        )
    return FrameHeader(
        msg_type=msg_type,
        session_id=session_id,
        seq=seq,
        sender=sender,
        label_len=label_len,
        payload_bits=payload_bits,
        payload_len=payload_len,
    )


def decode_body(header: FrameHeader, body: bytes) -> Frame:
    """Build a :class:`Frame` from a validated header and its full body
    (exactly ``header.body_len`` bytes: label + payload + payload CRC)."""
    if len(body) < header.body_len:
        raise TruncatedPayloadError(
            f"frame body truncated: need {header.body_len} bytes, got {len(body)}"
        )
    label_bytes = body[: header.label_len]
    payload = bytes(body[header.label_len : header.label_len + header.payload_len])
    (payload_crc,) = struct.unpack(
        ">I", bytes(body[header.label_len + header.payload_len : header.body_len])
    )
    try:
        label = label_bytes.decode("ascii")
    except UnicodeDecodeError:
        raise MalformedPayloadError(
            f"frame label is not ASCII: {bytes(label_bytes)!r}"
        ) from None
    return Frame(
        msg_type=header.msg_type,
        session_id=header.session_id,
        seq=header.seq,
        sender=header.sender,
        label=label,
        payload=payload,
        payload_bits=header.payload_bits,
        payload_crc=payload_crc,
    )


def decode_frame(data: bytes) -> "tuple[Frame, int]":
    """Decode one frame from the head of ``data``.

    Returns ``(frame, consumed_bytes)``.  The payload CRC is *carried*,
    not checked — call :meth:`Frame.verify_payload` before trusting the
    payload.  Raises :class:`~repro.errors.TruncatedPayloadError` when
    ``data`` ends mid-frame.
    """
    header = decode_header(data[:HEADER_LEN])
    total = HEADER_LEN + header.body_len
    if len(data) < total:
        raise TruncatedPayloadError(
            f"frame body truncated: need {total} bytes, got {len(data)}"
        )
    frame = decode_body(header, data[HEADER_LEN:total])
    return frame, total
