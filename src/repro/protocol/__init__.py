"""Two-party protocol harness: channel, serialization, table wire formats."""

from .channel import ALICE, BOB, BaseChannel, Channel, Message, TranscriptSummary
from .faults import FaultEvent, FaultSpec, FaultSummary, FaultyChannel
from .serialize import (
    VARUINT_MAX_GROUPS,
    BitReader,
    BitWriter,
    coordinate_bits,
    read_point,
    read_points,
    write_point,
    write_points,
)
from .tables import (
    iblt_payload,
    multiset_payload,
    read_multiset_cells,
    write_multiset_cells,
    read_iblt_cells,
    read_riblt_cells,
    riblt_payload,
    write_iblt_cells,
    write_riblt_cells,
)

__all__ = [
    "ALICE",
    "BOB",
    "BaseChannel",
    "Channel",
    "Message",
    "TranscriptSummary",
    "FaultEvent",
    "FaultSpec",
    "FaultSummary",
    "FaultyChannel",
    "VARUINT_MAX_GROUPS",
    "BitReader",
    "BitWriter",
    "coordinate_bits",
    "read_point",
    "read_points",
    "write_point",
    "write_points",
    "iblt_payload",
    "multiset_payload",
    "read_multiset_cells",
    "write_multiset_cells",
    "read_iblt_cells",
    "read_riblt_cells",
    "riblt_payload",
    "write_iblt_cells",
    "write_riblt_cells",
]
