"""A simulated two-party channel with measured communication.

Protocols in this library are written as explicit message exchanges over a
:class:`Channel`.  Every message is a real byte payload (produced by the
serializers in :mod:`repro.protocol.serialize`), and the channel records a
transcript from which experiments read *measured* bits and round counts.

Following the paper (Section 2), the number of *rounds* of a protocol is
the number of messages sent, and a one-round protocol is a single message
from Alice to Bob (or vice versa).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Message", "BaseChannel", "Channel", "TranscriptSummary"]

ALICE = "alice"
BOB = "bob"


@dataclass(frozen=True)
class Message:
    """One transmitted message."""

    sender: str
    label: str
    payload: bytes
    payload_bits: int

    @property
    def bits(self) -> int:
        """Exact bit size the sender declared (<= 8 * len(payload))."""
        return self.payload_bits


@dataclass
class TranscriptSummary:
    """Aggregate view of a finished protocol run."""

    total_bits: int
    rounds: int
    by_label: dict[str, int] = field(default_factory=dict)
    by_sender: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0

    @classmethod
    def merge(cls, summaries: Iterable["TranscriptSummary"]) -> "TranscriptSummary":
        """Combine summaries of several attempts into one aggregate.

        Multi-attempt runs (the resilient reconciliation controller's
        retries) summarise each attempt separately; the merged summary is
        what the whole run cost on the wire — bits and rounds add, and
        the per-label/per-sender breakdowns accumulate key-wise.
        """
        merged = cls(total_bits=0, rounds=0)
        for summary in summaries:
            merged.total_bits += summary.total_bits
            merged.rounds += summary.rounds
            for label, bits in summary.by_label.items():
                merged.by_label[label] = merged.by_label.get(label, 0) + bits
            for sender, bits in summary.by_sender.items():
                merged.by_sender[sender] = merged.by_sender.get(sender, 0) + bits
        return merged


class BaseChannel(abc.ABC):
    """The measurement contract every transport implements.

    Three transports speak it: the in-process :class:`Channel`, the
    fault-injecting :class:`~repro.protocol.faults.FaultyChannel`
    wrapper, and the wire-backed
    :class:`~repro.server.transport.AsyncChannel`.  Send-time validation
    (:meth:`validate_send`) and the transcript accessors live here, so
    every transport accounts for communication identically; subclasses
    only decide how a validated message actually moves (``send`` is sync
    on the in-process transports and a coroutine on the async one, but
    takes the same arguments and applies the same validation).

    Subclasses must expose the transcript as a ``messages`` sequence —
    either the inherited list or a delegating property.
    """

    messages: "list[Message]"

    def __init__(self) -> None:
        self.messages = []

    @staticmethod
    def validate_send(
        sender: str, label: str, payload: bytes, payload_bits: int | None = None
    ) -> int:
        """Validate a send and return the exact declared bit count."""
        if not sender:
            raise ValueError("sender must be non-empty ('alice' or 'bob')")
        if sender not in (ALICE, BOB):
            raise ValueError(f"sender must be 'alice' or 'bob', got {sender!r}")
        if not label:
            raise ValueError("message label must be a non-empty string")
        bits = 8 * len(payload) if payload_bits is None else int(payload_bits)
        if bits < 0:
            raise ValueError(f"declared payload_bits must be >= 0, got {bits}")
        if bits > 8 * len(payload):
            raise ValueError(
                f"declared {bits} bits exceeds payload of {8 * len(payload)} bits"
            )
        return bits

    @abc.abstractmethod
    def send(self, sender: str, label: str, payload: bytes, payload_bits: int | None = None):
        """Transmit ``payload`` (sync transports return the delivery)."""

    @property
    def total_bits(self) -> int:
        return sum(message.bits for message in self.messages)

    @property
    def rounds(self) -> int:
        """Number of messages sent (the paper's round count)."""
        return len(self.messages)

    def summary(self) -> TranscriptSummary:
        by_label: dict[str, int] = {}
        by_sender: dict[str, int] = {}
        for message in self.messages:
            by_label[message.label] = by_label.get(message.label, 0) + message.bits
            by_sender[message.sender] = by_sender.get(message.sender, 0) + message.bits
        return TranscriptSummary(
            total_bits=self.total_bits,
            rounds=self.rounds,
            by_label=by_label,
            by_sender=by_sender,
        )


class Channel(BaseChannel):
    """Records messages between Alice and Bob (in-process transport).

    ``send`` returns the payload so caller code naturally reads like a
    protocol: the receiving party parses exactly the bytes that were
    "sent".  ``payload_bits`` lets bit-packed messages report their exact
    bit count (the final byte of a :class:`BitWriter` buffer is padded).
    """

    def send(self, sender: str, label: str, payload: bytes, payload_bits: int | None = None) -> bytes:
        """Transmit ``payload``; returns it for the receiver to parse."""
        bits = self.validate_send(sender, label, payload, payload_bits)
        self.messages.append(
            Message(sender=sender, label=label, payload=payload, payload_bits=bits)
        )
        return payload
