"""Wire formats for IBLT and RIBLT tables.

The structural parts of a table (cell hashes, checksum function) come from
public coins, so only *cell contents* cross the wire.  The receiver builds
an empty, structurally identical shell from the shared coins and loads the
transmitted cells into it.

Cell encodings (all via :class:`~repro.protocol.serialize.BitWriter`):

* IBLT cell: zigzag-varint count, fixed ``key_bits`` key XOR, fixed
  ``check_bits`` checksum XOR — ``O(log|U|)`` bits per cell, matching
  Theorem 2.6's accounting.
* RIBLT cell: zigzag-varint count, key sum, checksum sum, and ``d``
  zigzag-varint value coordinates — the widened ``O(log(|U|n))`` and
  ``O(d log(nΔ))`` representations of Section 2.2 items 3–4, with the
  varint adapting to actual magnitudes.
"""

from __future__ import annotations

from ..errors import MalformedPayloadError
from ..iblt.counting import MultisetIBLT
from ..iblt.iblt import IBLT
from ..iblt.riblt import RIBLT
from .serialize import BitReader, BitWriter

__all__ = [
    "write_multiset_cells",
    "read_multiset_cells",
    "multiset_payload",
    "write_iblt_cells",
    "read_iblt_cells",
    "iblt_payload",
    "write_riblt_cells",
    "read_riblt_cells",
    "riblt_payload",
]

_CHECK_BITS = 61

#: Cell counts must fit a signed 64-bit integer: the numpy backend stores
#: them in ``int64`` arrays, and no honest table ever exceeds it (counts
#: are bounded by the number of inserted keys).  The varint cap alone
#: allows up to 132-bit magnitudes, so corrupted streams must be rejected
#: here rather than overflow on assignment.
_COUNT_LIMIT = 1 << 63


def _read_cell_count(reader: BitReader) -> int:
    count = reader.read_varint()
    if not -_COUNT_LIMIT <= count < _COUNT_LIMIT:
        raise MalformedPayloadError(f"cell count {count} does not fit int64")
    return count


def write_iblt_cells(writer: BitWriter, table: IBLT) -> None:
    """Serialize every cell of an IBLT."""
    for index in range(table.m):
        writer.write_varint(table.counts[index])
        writer.write_uint(table.key_xor[index], table.key_bits)
        writer.write_uint(table.check_xor[index], _CHECK_BITS)


def read_iblt_cells(reader: BitReader, shell: IBLT) -> IBLT:
    """Load transmitted cells into a structurally identical empty shell."""
    if not shell.is_empty():
        raise ValueError("shell IBLT must be empty before loading cells")
    for index in range(shell.m):
        shell.counts[index] = _read_cell_count(reader)
        shell.key_xor[index] = reader.read_uint(shell.key_bits)
        shell.check_xor[index] = reader.read_uint(_CHECK_BITS)
    return shell


def iblt_payload(table: IBLT) -> tuple[bytes, int]:
    """Serialize a whole IBLT; returns ``(payload, exact_bit_count)``."""
    writer = BitWriter()
    write_iblt_cells(writer, table)
    return writer.getvalue(), writer.bit_length


def write_riblt_cells(writer: BitWriter, table: RIBLT) -> None:
    """Serialize every cell of a robust IBLT."""
    for index in range(table.m):
        writer.write_varint(table.counts[index])
        writer.write_varint(table.key_sum[index])
        writer.write_varint(table.check_sum[index])
        for coordinate in table.value_sum[index]:
            writer.write_varint(coordinate)


def read_riblt_cells(reader: BitReader, shell: RIBLT) -> RIBLT:
    """Load transmitted cells into a structurally identical empty shell."""
    if not shell.is_empty():
        raise ValueError("shell RIBLT must be empty before loading cells")
    for index in range(shell.m):
        shell.counts[index] = _read_cell_count(reader)
        shell.key_sum[index] = reader.read_varint()
        shell.check_sum[index] = reader.read_varint()
        shell.value_sum[index] = [
            reader.read_varint() for _ in range(shell.dim)
        ]
    return shell


def riblt_payload(table: RIBLT) -> tuple[bytes, int]:
    """Serialize a whole RIBLT; returns ``(payload, exact_bit_count)``."""
    writer = BitWriter()
    write_riblt_cells(writer, table)
    return writer.getvalue(), writer.bit_length


def write_multiset_cells(writer: BitWriter, table: MultisetIBLT) -> None:
    """Serialize every cell of a counting IBLT."""
    for index in range(table.m):
        writer.write_varint(table.counts[index])
        writer.write_varint(table.key_sum[index])
        writer.write_varint(table.check_sum[index])


def read_multiset_cells(reader: BitReader, shell: MultisetIBLT) -> MultisetIBLT:
    """Load transmitted cells into a structurally identical empty shell."""
    if not shell.is_empty():
        raise ValueError("shell MultisetIBLT must be empty before loading cells")
    for index in range(shell.m):
        shell.counts[index] = _read_cell_count(reader)
        shell.key_sum[index] = reader.read_varint()
        shell.check_sum[index] = reader.read_varint()
    return shell


def multiset_payload(table: MultisetIBLT) -> tuple[bytes, int]:
    """Serialize a whole counting IBLT; returns ``(payload, bit_count)``."""
    writer = BitWriter()
    write_multiset_cells(writer, table)
    return writer.getvalue(), writer.bit_length
