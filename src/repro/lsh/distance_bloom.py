"""Distance-sensitive Bloom filters (Kirsch & Mitzenmacher [18]).

The paper credits [18] with the idea of building hash data structures
from locality sensitive hashes: a Bloom-filter-like sketch that answers
"is the query *close* to some set element?" instead of exact membership.
We include it both as the historical precursor and as a practical
utility: a party can broadcast a small sketch letting peers cheaply test
whether a point is worth reconciling at all.

Construction: ``groups`` independent rows; row ``j`` applies a
concatenation of ``per_group`` LSH functions (an AND) and sets the
bucket that the hashed value selects in a ``row_bits``-wide bit array.
A query is *positive* when at least ``threshold`` rows hit set buckets
(an OR with counting).  With an ``(r1, r2, p1, p2)`` family, a close
pair hits a given row w.p. ``>= p1^per_group`` and a far pair w.p.
``<= p2^per_group + fill`` (bucket collisions add the fill rate), so
thresholding between the two expectations separates close from far
w.h.p. for suitably many groups — the same Chernoff argument as the Gap
protocol's key threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..hashing import PairwiseHash, PublicCoins
from ..metric.spaces import MetricSpace, Point
from .base import LSHBatch, LSHFamily, LSHParams

__all__ = ["DistanceSensitiveBloomFilter", "DSBFParameters"]


@dataclass(frozen=True)
class DSBFParameters:
    """Derived operating characteristics of a filter instance."""

    groups: int
    per_group: int
    row_bits: int
    threshold: int
    close_row_probability: float
    far_row_probability: float


class DistanceSensitiveBloomFilter:
    """A Bloom filter that answers *proximity* queries.

    Parameters
    ----------
    space, family, params:
        The metric space and the LSH family with its ``(r1, r2, p1, p2)``
        guarantee.
    coins, label:
        Shared randomness (sketches built from equal coins are comparable
        and mergeable).
    groups:
        Number of independent rows (defaults to ``Θ(log(1/δ))`` for a
        1e-3-ish error target).
    per_group:
        AND-concatenation width; larger drives the far-hit rate down.
        The default also grows with ``expected_items`` so that families
        with *small output support* (bit sampling yields binary values,
        so a width-``g`` AND has only ``2^g`` possible patterns) do not
        saturate their rows.
    row_bits:
        Buckets per row.
    expected_items:
        Sizing hint: roughly how many points will be added.  Drives the
        default ``per_group`` and the decision threshold's fill
        correction.
    """

    def __init__(
        self,
        space: MetricSpace,
        family: LSHFamily,
        params: LSHParams,
        coins: PublicCoins,
        label: object = "dsbf",
        groups: int = 32,
        per_group: int | None = None,
        row_bits: int = 1024,
        expected_items: int = 64,
    ):
        if groups < 1:
            raise ValueError(f"groups must be >= 1, got {groups}")
        if row_bits < 2:
            raise ValueError(f"row_bits must be >= 2, got {row_bits}")
        if expected_items < 1:
            raise ValueError(f"expected_items must be >= 1, got {expected_items}")
        self.space = space
        self.family = family
        self.params = params
        if per_group is None:
            # Drive a far pair's row-hit probability under ~1/4, and keep
            # the AND's pattern space well above the stored set size.
            if params.p2 <= 0.0:
                per_group = 1
            else:
                per_group = max(
                    1,
                    math.ceil(math.log(0.25) / math.log(params.p2)),
                    math.ceil(math.log2(expected_items)) + 3,
                )
        self.groups = groups
        self.per_group = per_group
        self.row_bits = row_bits
        self.expected_items = expected_items
        self._batch: LSHBatch = family.sample_batch(
            coins, ("dsbf-lsh", label), groups * per_group
        )
        self._bucket_hashes = [
            PairwiseHash(coins, ("dsbf-bucket", label, j), bits=61)
            for j in range(groups)
        ]
        self._rows = [0] * groups  # bitmask per row
        self._count = 0

        close_row = params.p1**per_group
        # A far query hits a row via a true LSH collision *or* a bucket
        # already filled by another element.
        fill_estimate = min(0.5, expected_items / row_bits)
        far_row = min(1.0, params.p2**per_group + fill_estimate)
        if far_row >= close_row:
            raise ValueError(
                "filter cannot separate close from far with these parameters: "
                f"close row-hit {close_row:.3f} <= far row-hit {far_row:.3f}; "
                "increase row_bits or groups, or use a better LSH"
            )
        self.threshold = max(1, math.ceil(groups * (close_row + far_row) / 2))
        self.derived = DSBFParameters(
            groups=groups,
            per_group=per_group,
            row_bits=row_bits,
            threshold=self.threshold,
            close_row_probability=close_row,
            far_row_probability=far_row,
        )

    # -- construction --------------------------------------------------------
    def _buckets_of(self, points: Sequence[Point]) -> list[list[int]]:
        """Row-bucket indices for each point: ``result[i][j]``."""
        if not points:
            return []
        values = self._batch.evaluate(points)  # (n, groups*per_group)
        all_buckets = []
        for row_values in values.tolist():
            buckets = []
            for j in range(self.groups):
                start = j * self.per_group
                combined = 0
                for value in row_values[start : start + self.per_group]:
                    combined = combined * 0x9E3779B97F4A7C15 + int(value) + 1
                    combined &= (1 << 61) - 1
                buckets.append(self._bucket_hashes[j](combined) % self.row_bits)
            all_buckets.append(buckets)
        return all_buckets

    def add(self, point: Point) -> None:
        """Insert one point into the sketch."""
        self.add_all([point])

    def add_all(self, points: Sequence[Point]) -> None:
        for buckets in self._buckets_of(list(points)):
            for j, bucket in enumerate(buckets):
                self._rows[j] |= 1 << bucket
        self._count += len(points)

    def merge(self, other: "DistanceSensitiveBloomFilter") -> None:
        """Union with a sketch built from the same coins/label."""
        if (
            self.groups != other.groups
            or self.per_group != other.per_group
            or self.row_bits != other.row_bits
        ):
            raise ValueError("filters are structurally incompatible")
        self._rows = [a | b for a, b in zip(self._rows, other._rows)]
        self._count += other._count

    # -- queries ---------------------------------------------------------------
    def hits(self, point: Point) -> int:
        """How many rows report the query's bucket set."""
        buckets = self._buckets_of([point])[0]
        return sum(
            1 for j, bucket in enumerate(buckets) if (self._rows[j] >> bucket) & 1
        )

    def query(self, point: Point) -> bool:
        """True when the query is (probably) within ``r1`` of some element.

        One-sided-ish: close points pass w.h.p.; far points fail w.h.p.
        as long as the rows are not saturated (monitor :meth:`fill_rate`).
        """
        return self.hits(point) >= self.threshold

    @property
    def fill_rate(self) -> float:
        """Mean fraction of set buckets per row (saturation indicator)."""
        total = sum(bin(row).count("1") for row in self._rows)
        return total / (self.groups * self.row_bits)

    @property
    def size_bits(self) -> int:
        """Sketch size if transmitted."""
        return self.groups * self.row_bits

    def __len__(self) -> int:
        return self._count
