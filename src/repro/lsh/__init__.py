"""Locality sensitive hashing: classic LSH, multi-scale LSH, key builders."""

from .base import LSHBatch, LSHFamily, LSHParams, MLSHFamily, batches_for_p2_half
from .bit_sampling import BitSamplingBatch, BitSamplingMLSH
from .distance_bloom import DistanceSensitiveBloomFilter, DSBFParameters
from .grid import GridBatch, GridMLSH, fold_cells
from .keys import BatchKeyBuilder, PrefixKeyBuilder, key_bits_for
from .onesided import OneSidedGridLSH
from .pstable import PStableBatch, PStableMLSH, pstable_collision_probability

__all__ = [
    "LSHBatch",
    "LSHFamily",
    "LSHParams",
    "MLSHFamily",
    "batches_for_p2_half",
    "BitSamplingBatch",
    "DistanceSensitiveBloomFilter",
    "DSBFParameters",
    "BitSamplingMLSH",
    "GridBatch",
    "GridMLSH",
    "fold_cells",
    "BatchKeyBuilder",
    "PrefixKeyBuilder",
    "key_bits_for",
    "OneSidedGridLSH",
    "PStableBatch",
    "PStableMLSH",
    "pstable_collision_probability",
]
