"""p-stable (Gaussian) MLSH for ``([Δ]^d, ℓ2)`` (Lemma 2.5, Datar et al. [8]).

Each function projects the input onto a random Gaussian direction and
rounds to a randomly shifted 1-D lattice of width ``w``:

``h(x) = floor((r · x + a) / w)``, ``r_i ~ N(0, 1)``, ``a ~ U[0, w)``.

Because the Gaussian is 2-stable, ``r·(x-y)`` is distributed as
``||x-y||_2 · N(0,1)``, and Appendix A brackets the collision probability to
obtain an MLSH family with parameters

``(r, p, α) = (.99·w, e^{-2·sqrt(2/π)/w}, 1/(4·sqrt(2)))``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..metric.spaces import GridSpace, Point
from .base import LSHBatch, LSHParams, MLSHFamily

__all__ = ["PStableMLSH", "PStableBatch", "pstable_collision_probability"]


def pstable_collision_probability(distance: float, w: float) -> float:
    """Exact collision probability of the p-stable scheme (Appendix A).

    ``Pr = 2Φ(-w/c) + sqrt(2/π)·(c/w)·(e^{-w²/(2c²)} - 1) + 1`` where
    ``c = ||x-y||_2`` — equal to the paper's expression
    ``2Φ(-w/c) - sqrt(2)c/(sqrt(π)w)·(1 - e^{-w²/2c²})`` shifted to the
    standard CDF convention (the paper's ``Φ`` is the CDF minus 1/2).
    """
    if distance <= 0:
        return 1.0
    ratio = w / distance
    # Standard normal CDF at -ratio via erfc.
    cdf_tail = 0.5 * math.erfc(ratio / math.sqrt(2.0))
    term = (
        math.sqrt(2.0 / math.pi)
        / ratio
        * (1.0 - math.exp(-(ratio**2) / 2.0))
    )
    return max(0.0, min(1.0, 1.0 - 2.0 * cdf_tail - term))


class PStableBatch(LSHBatch):
    """A batch of Gaussian-projection lattice hashes."""

    def __init__(self, directions: np.ndarray, shifts: np.ndarray, w: float):
        super().__init__(count=directions.shape[0])
        self.directions = directions  # (count, d)
        self.shifts = shifts  # (count,)
        self.w = w

    def evaluate(self, points: Sequence[Point]) -> np.ndarray:
        if not points:
            return np.empty((0, self.count), dtype=np.int64)
        matrix = np.asarray(points, dtype=np.float64)
        if matrix.shape[1] != self.directions.shape[1]:
            raise ValueError(
                f"points have dimension {matrix.shape[1]}, "
                f"expected {self.directions.shape[1]}"
            )
        projections = matrix @ self.directions.T  # (n, count)
        return np.floor((projections + self.shifts[None, :]) / self.w).astype(np.int64)


class PStableMLSH(MLSHFamily):
    """Lemma 2.5: MLSH on ``([Δ]^d, ℓ2)``.

    Parameters ``(r, p, α) = (.99w, e^{-2√(2/π)/w}, 1/(4√2))``.
    """

    def __init__(self, space: GridSpace, w: float):
        if not isinstance(space, GridSpace) or space.p != 2.0:
            raise TypeError(f"PStableMLSH requires a GridSpace with p=2, got {space!r}")
        if w <= 0:
            raise ValueError(f"w must be > 0, got {w}")
        super().__init__(
            space,
            r=0.99 * w,
            p=float(np.exp(-2.0 * math.sqrt(2.0 / math.pi) / w)),
            alpha=1.0 / (4.0 * math.sqrt(2.0)),
        )
        self.w = float(w)

    def __repr__(self) -> str:
        return f"PStableMLSH(side={self.space.side}, dim={self.space.dim}, w={self.w})"

    @property
    def params(self) -> LSHParams:
        return self.derived_lsh_params(r1=min(1.0, self.r / 2), r2=self.r)

    def collision_probability(self, distance: float) -> float:
        """Exact collision probability at a given ``ℓ2`` distance."""
        return pstable_collision_probability(distance, self.w)

    def sample_batch(self, coins: PublicCoins, label: object, count: int) -> PStableBatch:
        rng = coins.numpy_rng("pstable", label)
        d = self.space.dim
        directions = rng.standard_normal(size=(count, d))
        shifts = rng.uniform(0.0, self.w, size=count)
        return PStableBatch(directions, shifts, self.w)
