"""Key construction on top of raw LSH values.

Both protocols turn a point's vector of LSH values into compact *keys*:

* **Algorithm 1 (EMD)** keys level ``i`` by a pairwise-independent hash of
  the first ``c_i`` MLSH values, with ``c_1 < c_2 < ... < c_t`` doubling
  per level (``key_i(a) = h(g_1(a), ..., g_{c_i}(a))``).
  :class:`PrefixKeyBuilder` computes all ``t`` keys for every point in one
  linear pass using the rolling :class:`~repro.hashing.PrefixHasher`.
* **The Gap protocol (Section 4.1)** gives each point a key *vector* of
  ``h`` entries, each entry a pairwise-independent hash of a batch of ``m``
  LSH values.  :class:`BatchKeyBuilder` produces these vectors.

Key widths are ``Θ(log n)`` bits; both parties construct builders from the
same public coins so keys agree without communication.

:class:`PrefixKeyBuilder` is the *single* EMD key stream: its rolling hash
runs over the Mersenne-61 field, fully vectorised via
:meth:`~repro.hashing.PrefixHasher.prefix_digests_many`, and every caller
(:class:`~repro.core.emd_protocol.EMDProtocol`, its interval-scaled
wrapper, experiments, benchmarks) keys all resolution levels through it.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..hashing import PrefixHasher, PublicCoins, VectorHash
from ..metric.spaces import Point
from .base import LSHBatch

__all__ = ["PrefixKeyBuilder", "BatchKeyBuilder", "key_bits_for"]


def key_bits_for(n: int, slack_bits: int = 20) -> int:
    """``Θ(log n)`` key width with enough slack to avoid collisions w.h.p.

    With ``B = 2·log2(n) + slack_bits`` bits, the expected number of
    colliding pairs among ``O(n)`` keys is ``O(2^{-slack_bits})``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return min(61, max(16, 2 * math.ceil(math.log2(max(n, 2))) + slack_bits))


class PrefixKeyBuilder:
    """Multi-resolution keys for Algorithm 1.

    Parameters
    ----------
    batch:
        The ``s_max`` sampled MLSH functions (``s_max = c_t``, the largest
        prefix any level needs).
    prefix_lengths:
        ``c_1 <= c_2 <= ... <= c_t``: how many MLSH values each level hashes.
    coins, label:
        Shared randomness for the compressing hash.
    key_bits:
        Output key width (``Θ(log n)``).
    """

    def __init__(
        self,
        batch: LSHBatch,
        prefix_lengths: Sequence[int],
        coins: PublicCoins,
        label: object,
        key_bits: int,
    ):
        if not prefix_lengths:
            raise ValueError("at least one prefix length is required")
        lengths = [int(length) for length in prefix_lengths]
        if any(length < 1 for length in lengths):
            raise ValueError(f"prefix lengths must be >= 1, got {lengths}")
        if any(b < a for a, b in zip(lengths, lengths[1:])):
            raise ValueError(f"prefix lengths must be non-decreasing, got {lengths}")
        if lengths[-1] > batch.count:
            raise ValueError(
                f"largest prefix {lengths[-1]} exceeds batch size {batch.count}"
            )
        self.batch = batch
        self.prefix_lengths = lengths
        self.levels = len(lengths)
        self.hasher = PrefixHasher(coins, ("prefix-key", label), bits=key_bits)
        self.key_bits = key_bits

    def keys_for(self, points: Sequence[Point]) -> np.ndarray:
        """Return the ``(len(points), levels)`` ``uint64`` matrix of level keys.

        Row ``i`` column ``j`` is ``key_{j+1}(points[i])``: the hash of the
        first ``c_{j+1}`` MLSH values of the point.  The whole point set is
        hashed with :meth:`~repro.hashing.PrefixHasher.prefix_digests_many`
        — one vectorised rolling-hash step per MLSH column instead of a
        Python loop per point.
        """
        if not points:
            return np.empty((0, self.levels), dtype=np.uint64)
        values = self.batch.evaluate(points)  # (n, s_max)
        return self.hasher.prefix_digests_many(values, self.prefix_lengths)


class BatchKeyBuilder:
    """Gap-protocol key vectors (Section 4.1).

    A key is a vector of ``h`` entries; entry ``j`` is a pairwise-independent
    hash of LSH values ``j·m .. (j+1)·m - 1``.  Two *far* points disagree on
    (almost) every entry w.h.p.; two *close* points agree on most entries.
    """

    def __init__(
        self,
        batch: LSHBatch,
        entries: int,
        per_entry: int,
        coins: PublicCoins,
        label: object,
        key_bits: int,
    ):
        if entries < 1 or per_entry < 1:
            raise ValueError(
                f"entries and per_entry must be >= 1, got {entries}, {per_entry}"
            )
        if entries * per_entry != batch.count:
            raise ValueError(
                f"batch has {batch.count} functions, need entries*per_entry = "
                f"{entries * per_entry}"
            )
        self.batch = batch
        self.entries = entries
        self.per_entry = per_entry
        self.key_bits = key_bits
        self.entry_hashes = [
            VectorHash(coins, ("batch-key", label, j), arity=per_entry, bits=key_bits)
            for j in range(entries)
        ]

    def key_matrix_for(self, points: Sequence[Point]) -> np.ndarray:
        """The ``(len(points), entries)`` ``uint64`` matrix of key vectors.

        Entry hash ``j`` is evaluated over its LSH-value batch for *all*
        points at once (:meth:`~repro.hashing.VectorHash.hash_rows`), so the
        whole key set costs ``O(entries · per_entry)`` vectorised field
        operations instead of a Python loop per point.
        """
        if not points:
            return np.empty((0, self.entries), dtype=np.uint64)
        values = self.batch.evaluate(points)  # (n, h*m)
        keys = np.empty((len(points), self.entries), dtype=np.uint64)
        for j, entry_hash in enumerate(self.entry_hashes):
            start = j * self.per_entry
            keys[:, j] = entry_hash.hash_rows(values[:, start : start + self.per_entry])
        return keys

    def keys_for(self, points: Sequence[Point]) -> list[tuple[int, ...]]:
        """Return one ``h``-entry key vector per point (tuple view)."""
        return [tuple(row) for row in self.key_matrix_for(points).tolist()]

    @staticmethod
    def matches(key_a: Sequence[int], key_b: Sequence[int]) -> int:
        """Number of agreeing entries between two key vectors."""
        if len(key_a) != len(key_b):
            raise ValueError("key vectors must have equal length")
        return sum(a == b for a, b in zip(key_a, key_b))

    @staticmethod
    def best_matches(keys: np.ndarray, candidates: np.ndarray, chunk: int = 256) -> np.ndarray:
        """For each row of ``keys``, the max :meth:`matches` over ``candidates``.

        Vectorised pairwise entry comparison, chunked over the key rows to
        bound the ``chunk × len(candidates) × entries`` broadcast buffer.
        Returns zeros when there are no candidates.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        candidates = np.asarray(candidates, dtype=np.uint64)
        if keys.ndim != 2 or candidates.ndim != 2 or (
            candidates.size and candidates.shape[1] != keys.shape[1]
        ):
            raise ValueError(
                f"key matrices disagree: {keys.shape} vs {candidates.shape}"
            )
        best = np.zeros(keys.shape[0], dtype=np.int64)
        if not candidates.size or not keys.size:
            return best
        for start in range(0, keys.shape[0], chunk):
            block = keys[start : start + chunk]
            agreement = (block[:, None, :] == candidates[None, :, :]).sum(axis=2)
            best[start : start + block.shape[0]] = agreement.max(axis=1)
        return best
