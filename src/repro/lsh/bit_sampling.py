"""Bit-sampling MLSH for Hamming space (Lemma 2.3).

The standard Hamming LSH samples one coordinate of the input.  The paper
pads points to ``w >= d`` dimensions with zeros before sampling, which is
equivalent to the more efficient realisation used here (footnote 3): with
probability ``d/w`` the function samples a uniformly random real bit, and
with probability ``1 - d/w`` it is the constant-0 function.

Collision probability between ``x, y`` is exactly ``1 - f_H(x, y)/w``,
which Lemma 2.3 brackets as

``e^{-2·f_H(x,y)/w} <= 1 - f_H(x,y)/w <= e^{-f_H(x,y)/w}``   (``f_H <= .79w``)

giving an MLSH family with parameters ``(r, p, α) = (.79·w, e^{-2/w}, 1/2)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..metric.spaces import HammingSpace, Point
from .base import LSHBatch, LSHParams, MLSHFamily

__all__ = ["BitSamplingMLSH", "BitSamplingBatch"]


class BitSamplingBatch(LSHBatch):
    """A batch of bit-sampling functions, held as sampled indices.

    ``indices[j] >= 0`` means function ``j`` returns coordinate
    ``indices[j]``; ``indices[j] == -1`` means the constant-0 function.
    """

    def __init__(self, indices: np.ndarray, dim: int):
        super().__init__(count=len(indices))
        self.indices = np.asarray(indices, dtype=np.int64)
        self.dim = dim

    def evaluate(self, points: Sequence[Point]) -> np.ndarray:
        if not points:
            return np.empty((0, self.count), dtype=np.int64)
        matrix = np.asarray(points, dtype=np.int64)
        if matrix.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {matrix.shape[1]}, expected {self.dim}"
            )
        out = np.zeros((matrix.shape[0], self.count), dtype=np.int64)
        real = self.indices >= 0
        if real.any():
            out[:, real] = matrix[:, self.indices[real]]
        return out


class BitSamplingMLSH(MLSHFamily):
    """Lemma 2.3: MLSH on ``({0,1}^d, f_H)`` with ``(.79w, e^{-2/w}, 1/2)``.

    Parameters
    ----------
    space:
        The Hamming space.
    w:
        The padding width ``w >= d``.  Larger ``w`` raises ``p = e^{-2/w}``
        toward 1 (footnote 4's "add constant functions" mechanism), which
        Algorithm 1 needs to satisfy ``p >= e^{-k/(24·D2)}``.
    """

    def __init__(self, space: HammingSpace, w: float):
        if not isinstance(space, HammingSpace):
            raise TypeError(f"BitSamplingMLSH requires a HammingSpace, got {space!r}")
        if w < space.dim:
            raise ValueError(f"w must be >= d = {space.dim}, got {w}")
        super().__init__(
            space, r=0.79 * w, p=float(np.exp(-2.0 / w)), alpha=0.5
        )
        self.w = float(w)

    def __repr__(self) -> str:
        return f"BitSamplingMLSH(dim={self.space.dim}, w={self.w})"

    @property
    def params(self) -> LSHParams:
        """Plain-LSH view at the canonical scales ``r1 = 1, r2 = r``."""
        return self.derived_lsh_params(r1=1.0, r2=self.r)

    def collision_probability(self, distance: float) -> float:
        """The *exact* collision probability ``1 - f_H/w`` of this family."""
        return max(0.0, 1.0 - distance / self.w)

    def sample_batch(
        self, coins: PublicCoins, label: object, count: int
    ) -> BitSamplingBatch:
        rng = coins.numpy_rng("bit-sampling", label)
        d = self.space.dim
        # With probability d/w sample a real coordinate, else constant 0.
        real = rng.random(count) < d / self.w
        indices = np.full(count, -1, dtype=np.int64)
        indices[real] = rng.integers(0, d, size=int(real.sum()))
        return BitSamplingBatch(indices, dim=d)
