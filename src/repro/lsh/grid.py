"""Randomly-shifted grid MLSH for ``([Δ]^d, ℓ1)`` (Lemma 2.4).

Each function rounds the input to a randomly shifted orthogonal lattice of
width ``w``: coordinate ``j`` maps to ``floor((x_j + a_j) / w)`` with
``a_j ~ U[0, w)``.  Two points collide iff they share every lattice cell
coordinate, so (Appendix A)

``1 - ||x-y||_1 / w <= Pr[h(x)=h(y)] <= (1 - ||x-y||_1/(dw))^d <= e^{-||x-y||_1/w}``

which yields an MLSH family with parameters ``(.79·w, e^{-2/w}, 1/2)``.

The ``d`` cell coordinates are folded into a single integer with two
independent modular linear hashes (62 output bits total) so downstream key
builders see one value per function; the fold's false-collision rate is
``~2^{-62}`` per pair, negligible against the probabilities being measured.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..metric.spaces import GridSpace, Point
from .base import LSHBatch, LSHParams, MLSHFamily

__all__ = ["GridMLSH", "GridBatch", "fold_cells"]

_FOLD_PRIME_1 = (1 << 31) - 1  # Mersenne prime 2^31 - 1
_FOLD_PRIME_2 = (1 << 29) - 3  # prime below 2^29
_MAX_CELL = 1 << 29


def fold_cells(cells: np.ndarray, coeffs_1: np.ndarray, coeffs_2: np.ndarray) -> np.ndarray:
    """Fold per-dimension lattice cells into one int per (function, point).

    Parameters
    ----------
    cells:
        ``(count, n, d)`` non-negative int64 cell coordinates.
    coeffs_1, coeffs_2:
        ``(count, d)`` random coefficients for the two modular hashes.

    Returns
    -------
    ``(n, count)`` int64 values ``h1 + (h2 << 31)``.

    Notes
    -----
    The accumulation reduces modulo a sub-``2^31`` prime after every
    dimension so that every intermediate fits comfortably in int64
    (``acc < 2^31``, ``product < 2^60``).
    """
    if cells.min(initial=0) < 0:
        raise ValueError("cells must be non-negative before folding")
    if cells.max(initial=0) >= _MAX_CELL:
        raise ValueError(
            f"cell coordinates must be < 2^29 for exact folding, got {cells.max()}"
        )
    count, n, d = cells.shape
    acc_1 = np.zeros((count, n), dtype=np.int64)
    acc_2 = np.zeros((count, n), dtype=np.int64)
    for j in range(d):
        acc_1 = (acc_1 + cells[:, :, j] * coeffs_1[:, j, None]) % _FOLD_PRIME_1
        acc_2 = (acc_2 + cells[:, :, j] * coeffs_2[:, j, None]) % _FOLD_PRIME_2
    return (acc_1 + (acc_2 << 31)).T.copy()


class GridBatch(LSHBatch):
    """A batch of randomly shifted lattice hashes of width ``w``."""

    def __init__(self, offsets: np.ndarray, w: float, coeffs_1: np.ndarray, coeffs_2: np.ndarray):
        super().__init__(count=offsets.shape[0])
        self.offsets = offsets  # (count, d) uniform in [0, w)
        self.w = w
        self.coeffs_1 = coeffs_1
        self.coeffs_2 = coeffs_2

    def evaluate(self, points: Sequence[Point]) -> np.ndarray:
        if not points:
            return np.empty((0, self.count), dtype=np.int64)
        matrix = np.asarray(points, dtype=np.float64)  # (n, d)
        if matrix.shape[1] != self.offsets.shape[1]:
            raise ValueError(
                f"points have dimension {matrix.shape[1]}, "
                f"expected {self.offsets.shape[1]}"
            )
        shifted = matrix[None, :, :] + self.offsets[:, None, :]  # (count, n, d)
        cells = np.floor(shifted / self.w).astype(np.int64)
        return fold_cells(cells, self.coeffs_1, self.coeffs_2)


class GridMLSH(MLSHFamily):
    """Lemma 2.4: MLSH on ``([Δ]^d, ℓ1)`` with ``(.79w, e^{-2/w}, 1/2)``."""

    def __init__(self, space: GridSpace, w: float):
        if not isinstance(space, GridSpace) or space.p != 1.0:
            raise TypeError(f"GridMLSH requires a GridSpace with p=1, got {space!r}")
        if w <= 0:
            raise ValueError(f"w must be > 0, got {w}")
        super().__init__(space, r=0.79 * w, p=float(np.exp(-2.0 / w)), alpha=0.5)
        self.w = float(w)
        if (space.side + w) / w >= _MAX_CELL:
            raise ValueError("grid too fine: cell ids would overflow exact folding")

    def __repr__(self) -> str:
        return f"GridMLSH(side={self.space.side}, dim={self.space.dim}, w={self.w})"

    @property
    def params(self) -> LSHParams:
        return self.derived_lsh_params(r1=min(1.0, self.r / 2), r2=self.r)

    def sample_batch(self, coins: PublicCoins, label: object, count: int) -> GridBatch:
        rng = coins.numpy_rng("grid", label)
        d = self.space.dim
        offsets = rng.uniform(0.0, self.w, size=(count, d))
        coeffs_1 = rng.integers(1, _FOLD_PRIME_1, size=(count, d), dtype=np.int64)
        coeffs_2 = rng.integers(1, _FOLD_PRIME_2, size=(count, d), dtype=np.int64)
        return GridBatch(offsets, self.w, coeffs_1, coeffs_2)
