"""LSH and multi-scale LSH interfaces (Definitions 2.1 and 2.2).

Two abstractions:

* :class:`LSHFamily` — the classic Indyk–Motwani locality sensitive hash
  family with parameters ``(r1, r2, p1, p2)``: points within ``r1`` collide
  with probability at least ``p1``, points beyond ``r2`` with probability
  at most ``p2``.  The meta-parameter ``ρ = log p1 / log p2`` governs the
  Gap Guarantee protocol's communication (Theorem 4.2).
* :class:`MLSHFamily` — the paper's *multi-scale* strengthening
  (Definition 2.2) with parameters ``(r, p, α)``: for every pair,
  ``Pr[h(x)=h(y)] ≤ p^{α·f(x,y)}``, and for pairs within ``r``,
  ``Pr[h(x)=h(y)] ≥ p^{f(x,y)}``.  Collision probability degrades
  *gracefully* with distance, which is what lets Algorithm 1 hash at many
  resolutions with one family.

Every family evaluates in *batches*: ``sample_batch(coins, label, count)``
returns a :class:`LSHBatch` that maps a list of ``n`` points to an
``(n, count)`` integer matrix of hash values, one column per independent
function from the family.  Batch evaluation is the unit both protocols
consume (Algorithm 1 needs prefixes of a long stream of functions; the Gap
protocol needs ``h·m`` functions per point), and it is where numpy
vectorisation lives.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..metric.spaces import MetricSpace, Point

__all__ = ["LSHParams", "LSHBatch", "LSHFamily", "MLSHFamily", "batches_for_p2_half"]


@dataclass(frozen=True)
class LSHParams:
    """The ``(r1, r2, p1, p2)`` parameters of Definition 2.1."""

    r1: float
    r2: float
    p1: float
    p2: float

    def __post_init__(self) -> None:
        if not self.r1 < self.r2:
            raise ValueError(f"need r1 < r2, got r1={self.r1}, r2={self.r2}")
        if not self.p1 > self.p2:
            raise ValueError(f"need p1 > p2, got p1={self.p1}, p2={self.p2}")
        if not (0 <= self.p2 and self.p1 <= 1):
            raise ValueError("probabilities must lie in [0, 1]")

    @property
    def rho(self) -> float:
        """``ρ = log(p1) / log(p2)``; 0 when ``p2 = 0`` (one-sided families)."""
        if self.p2 == 0.0:
            return 0.0
        if self.p1 >= 1.0:
            return 0.0
        return math.log(self.p1) / math.log(self.p2)


class LSHBatch(ABC):
    """A concrete batch of ``count`` independently-drawn hash functions."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError(f"batch size must be >= 1, got {count}")
        self.count = count

    @abstractmethod
    def evaluate(self, points: Sequence[Point]) -> np.ndarray:
        """Hash every point with every function.

        Returns an ``(len(points), count)`` int64 matrix; column ``j`` holds
        the values of the ``j``-th function.  Values are opaque integers --
        equality is the only meaningful operation.
        """

    def evaluate_one(self, point: Point) -> np.ndarray:
        """Hash a single point; returns a length-``count`` vector."""
        return self.evaluate([point])[0]


class LSHFamily(ABC):
    """A locality sensitive hash family over a metric space."""

    def __init__(self, space: MetricSpace):
        self.space = space

    @property
    @abstractmethod
    def params(self) -> LSHParams:
        """The family's ``(r1, r2, p1, p2)`` guarantee."""

    @abstractmethod
    def sample_batch(self, coins: PublicCoins, label: object, count: int) -> LSHBatch:
        """Draw ``count`` i.i.d. functions using shared randomness.

        Both parties calling with equal ``coins``/``label``/``count`` get
        the *same* batch -- this is the public-coin model.
        """

    @property
    def rho(self) -> float:
        """Convenience accessor for ``params.rho``."""
        return self.params.rho


class MLSHFamily(LSHFamily):
    """A multi-scale LSH family (Definition 2.2) with parameters ``(r, p, α)``."""

    def __init__(self, space: MetricSpace, r: float, p: float, alpha: float):
        super().__init__(space)
        if r <= 0:
            raise ValueError(f"r must be > 0, got {r}")
        if not 0 < p < 1:
            raise ValueError(f"p must be in (0, 1), got {p}")
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.r = float(r)
        self.p = float(p)
        self.alpha = float(alpha)

    def collision_upper_bound(self, distance: float) -> float:
        """Definition 2.2 upper bound ``p^{α·f(x,y)}`` (all distances)."""
        return self.p ** (self.alpha * distance)

    def collision_lower_bound(self, distance: float) -> float:
        """Definition 2.2 lower bound ``p^{f(x,y)}`` (distances <= r)."""
        if distance > self.r:
            return 0.0
        return self.p**distance

    def derived_lsh_params(self, r1: float, r2: float) -> LSHParams:
        """View the MLSH as a plain LSH at scales ``(r1, r2)``.

        ``p1 = p^{r1}`` (needs ``r1 <= r``) and ``p2 = p^{α·r2}`` follow
        directly from Definition 2.2.
        """
        if r1 > self.r:
            raise ValueError(
                f"MLSH lower bound only holds up to r={self.r}, asked for r1={r1}"
            )
        return LSHParams(r1=r1, r2=r2, p1=self.p**r1, p2=self.p ** (self.alpha * r2))


def batches_for_p2_half(p2: float) -> int:
    """``m = log_{p2}(1/2)``: functions per batch in the Gap protocol.

    Section 4.1 concatenates ``m`` LSH values so two *far* points agree on
    a whole batch with probability at most ``p2^m <= 1/2``.  The paper
    assumes ``p2 >= 1/2`` so ``m >= 1``; for smaller ``p2`` a single
    function already suffices.
    """
    if not 0 < p2 < 1:
        raise ValueError(f"p2 must be in (0, 1), got {p2}")
    return max(1, math.ceil(math.log(0.5) / math.log(p2)))
