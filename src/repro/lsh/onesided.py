"""One-sided grid LSH for low-dimensional ``ℓ_p`` spaces (Appendix E.1).

Theorem 4.5's protocol uses an LSH with the special property ``p2 = 0``:
*far* points (distance > ``r2``) can **never** collide.  The construction
is a randomly shifted axis-aligned grid of cell width ``r2 / d^{1/p}``; the
cell diameter under ``ℓ_p`` is then exactly ``r2``, so two points sharing a
cell are within ``r2``.  For *close* points (distance <= ``r1``) a union
bound over dimensions (Appendix E.1) gives

``p1 >= 1 - r1·d / r2 = 1 - ρ̂``,

where ``ρ̂ = r1·d/r2`` is the quantity that drives Theorem 4.5's bounds.
"""

from __future__ import annotations

import numpy as np

from ..hashing import PublicCoins
from ..metric.spaces import GridSpace
from .base import LSHFamily, LSHParams
from .grid import _FOLD_PRIME_1, _FOLD_PRIME_2, GridBatch

__all__ = ["OneSidedGridLSH"]


class OneSidedGridLSH(LSHFamily):
    """Appendix E.1's grid LSH with ``p2 = 0``.

    Parameters
    ----------
    space:
        Grid space under any ``ℓ_p``, ``p >= 1``.
    r1, r2:
        The Gap model's distance scales; cells have width ``r2 / d^{1/p}``.
    """

    def __init__(self, space: GridSpace, r1: float, r2: float):
        if not isinstance(space, GridSpace):
            raise TypeError(f"OneSidedGridLSH requires a GridSpace, got {space!r}")
        if not 0 < r1 < r2:
            raise ValueError(f"need 0 < r1 < r2, got r1={r1}, r2={r2}")
        super().__init__(space)
        self.r1 = float(r1)
        self.r2 = float(r2)
        self.cell_width = r2 / space.dim ** (1.0 / space.p)
        self.rho_hat = r1 * space.dim / r2
        if self.rho_hat >= 1.0:
            raise ValueError(
                f"one-sided LSH needs r1*d/r2 < 1 (got {self.rho_hat:.3f}); "
                "the construction is only useful in low dimensions"
            )

    def __repr__(self) -> str:
        return (
            f"OneSidedGridLSH(side={self.space.side}, dim={self.space.dim}, "
            f"p={self.space.p}, r1={self.r1}, r2={self.r2})"
        )

    @property
    def params(self) -> LSHParams:
        return LSHParams(r1=self.r1, r2=self.r2, p1=1.0 - self.rho_hat, p2=0.0)

    def sample_batch(self, coins: PublicCoins, label: object, count: int) -> GridBatch:
        rng = coins.numpy_rng("one-sided-grid", label)
        d = self.space.dim
        offsets = rng.uniform(0.0, self.cell_width, size=(count, d))
        coeffs_1 = rng.integers(1, _FOLD_PRIME_1, size=(count, d), dtype=np.int64)
        coeffs_2 = rng.integers(1, _FOLD_PRIME_2, size=(count, d), dtype=np.int64)
        return GridBatch(offsets, self.cell_width, coeffs_1, coeffs_2)
