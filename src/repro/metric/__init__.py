"""Metric substrate: spaces, points, Hungarian matching, and EMD."""

from .emd import emd, emd_k, emd_k_with_exclusions, emd_with_matching
from .matching import greedy_matching, hungarian, matching_cost, min_cost_matching
from .spaces import GridSpace, HammingSpace, MetricSpace, Point

__all__ = [
    "GridSpace",
    "HammingSpace",
    "MetricSpace",
    "Point",
    "emd",
    "emd_k",
    "emd_k_with_exclusions",
    "emd_with_matching",
    "greedy_matching",
    "hungarian",
    "matching_cost",
    "min_cost_matching",
]
