"""Minimum-cost assignment (the Hungarian method, Kuhn [20]).

Algorithm 1's repair step has Bob compute the min-cost matching between the
decoded points ``X_B`` and his own set ``S_B`` to choose which of his points
to replace; the EMD objective itself is a min-cost perfect matching.  The
paper cites the Hungarian method, which we implement from scratch here as a
potentials / shortest-augmenting-path algorithm: ``O(n_rows^2 * n_cols)``
time, exact, supporting rectangular instances (``n_rows <= n_cols``) where
every row must be matched to a distinct column.

``scipy.optimize.linear_sum_assignment`` is intentionally *not* used in the
library; the test-suite uses it as an independent oracle.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["hungarian", "min_cost_matching", "matching_cost", "greedy_matching"]


def hungarian(cost: np.ndarray) -> list[int]:
    """Solve the rectangular assignment problem.

    Parameters
    ----------
    cost:
        An ``(n_rows, n_cols)`` matrix with ``n_rows <= n_cols``; entries may
        be any finite floats.

    Returns
    -------
    list[int]
        ``assignment`` with ``assignment[row] = col`` minimising
        ``sum(cost[row, assignment[row]])`` over injections rows -> cols.

    Notes
    -----
    Classic shortest-augmenting-path formulation with dual potentials
    ``u`` (rows) and ``v`` (columns); one augmentation per row.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got shape {cost.shape}")
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"hungarian requires n_rows <= n_cols, got {n_rows} x {n_cols}; "
            "transpose the matrix and invert the assignment instead"
        )
    if n_rows == 0:
        return []
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix entries must be finite")

    # 1-indexed arrays in the style of the standard potentials algorithm.
    u = [0.0] * (n_rows + 1)
    v = [0.0] * (n_cols + 1)
    # way[col] = previous column on the alternating path to `col`.
    match_of_col = [0] * (n_cols + 1)  # row matched to each column (0 = free)

    for row in range(1, n_rows + 1):
        match_of_col[0] = row
        current_col = 0
        min_to = [math.inf] * (n_cols + 1)
        way = [0] * (n_cols + 1)
        used = [False] * (n_cols + 1)
        while True:
            used[current_col] = True
            row_here = match_of_col[current_col]
            delta = math.inf
            next_col = 0
            for col in range(1, n_cols + 1):
                if used[col]:
                    continue
                reduced = cost[row_here - 1][col - 1] - u[row_here] - v[col]
                if reduced < min_to[col]:
                    min_to[col] = reduced
                    way[col] = current_col
                if min_to[col] < delta:
                    delta = min_to[col]
                    next_col = col
            for col in range(n_cols + 1):
                if used[col]:
                    u[match_of_col[col]] += delta
                    v[col] -= delta
                else:
                    min_to[col] -= delta
            current_col = next_col
            if match_of_col[current_col] == 0:
                break
        # Unwind the alternating path.
        while current_col != 0:
            previous_col = way[current_col]
            match_of_col[current_col] = match_of_col[previous_col]
            current_col = previous_col

    assignment = [-1] * n_rows
    for col in range(1, n_cols + 1):
        if match_of_col[col] != 0:
            assignment[match_of_col[col] - 1] = col - 1
    return assignment


def min_cost_matching(cost: np.ndarray) -> tuple[list[int], float]:
    """Hungarian assignment plus its total cost."""
    assignment = hungarian(cost)
    total = float(sum(cost[row][col] for row, col in enumerate(assignment)))
    return assignment, total


def matching_cost(cost: np.ndarray, assignment: Sequence[int]) -> float:
    """Total cost of an explicit assignment under ``cost``."""
    return float(sum(cost[row][col] for row, col in enumerate(assignment)))


def greedy_matching(cost: np.ndarray) -> tuple[list[int], float]:
    """A fast 1-pass greedy injection rows -> cols (ablation baseline).

    Sorts all pairs by cost and matches greedily.  Not optimal, but
    ``O(nm log nm)`` and used by the E4 ablation to quantify how much the
    exact Hungarian repair step matters in Algorithm 1.
    """
    cost = np.asarray(cost, dtype=float)
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError("greedy_matching requires n_rows <= n_cols")
    order = np.argsort(cost, axis=None)
    assignment = [-1] * n_rows
    used_cols: set[int] = set()
    matched = 0
    total = 0.0
    for flat_index in order:
        row, col = divmod(int(flat_index), n_cols)
        if assignment[row] != -1 or col in used_cols:
            continue
        assignment[row] = col
        used_cols.add(col)
        total += float(cost[row, col])
        matched += 1
        if matched == n_rows:
            break
    return assignment, total
