"""Metric spaces used by the paper's protocols.

The paper works in discretised metric spaces ``(U, f)`` of two flavours:

* ``({0,1}^d, f_H)`` — binary vectors under Hamming distance (Lemma 2.3,
  Corollaries 3.5 and 4.3, Theorem 4.6);
* ``([Δ]^d, ℓ_p)`` — integer grids under an ``ℓ_p`` norm (Lemmas 2.4/2.5,
  Corollaries 3.6 and 4.4, Theorem 4.5).

Points are plain tuples of Python ints: hashable, exact, and directly
summable inside RIBLT cells.  Each space knows how to validate, clamp and
measure points, how big its universe is (``log2|U|`` drives the
communication accounting of every protocol), and how to draw uniform
points for workloads and tests.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Point", "MetricSpace", "HammingSpace", "GridSpace"]

#: A point is an immutable tuple of integer coordinates.
Point = tuple[int, ...]


class MetricSpace(ABC):
    """Abstract base for the discretised metric spaces ``(U, f)``.

    Attributes
    ----------
    dim:
        Dimension ``d`` of the space.
    side:
        Number of distinct values per coordinate (2 for Hamming, ``Δ`` for
        grids); coordinates live in ``{0, ..., side - 1}``.
    """

    def __init__(self, dim: int, side: int):
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        if side < 2:
            raise ValueError(f"side must be >= 2, got {side}")
        self.dim = dim
        self.side = side

    # -- distances ---------------------------------------------------------
    @abstractmethod
    def distance(self, x: Point, y: Point) -> float:
        """The metric ``f(x, y)``."""

    def distance_matrix(self, xs: Sequence[Point], ys: Sequence[Point]) -> np.ndarray:
        """All pairwise distances between two point sequences.

        The default implementation loops over :meth:`distance`; subclasses
        vectorise it.
        """
        out = np.empty((len(xs), len(ys)), dtype=float)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                out[i, j] = self.distance(x, y)
        return out

    # -- universe accounting -------------------------------------------------
    @property
    def log2_universe(self) -> float:
        """``log2 |U|`` — the bit-size of one point, used in comm. bounds."""
        return self.dim * math.log2(self.side)

    @property
    @abstractmethod
    def diameter(self) -> float:
        """The largest distance between two points of the space."""

    # -- point handling ------------------------------------------------------
    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies in the space."""
        return len(point) == self.dim and all(
            0 <= coordinate < self.side for coordinate in point
        )

    def validate(self, point: Point) -> Point:
        """Return ``point`` as a canonical tuple, or raise ``ValueError``."""
        candidate = tuple(int(coordinate) for coordinate in point)
        if not self.contains(candidate):
            raise ValueError(f"point {point!r} outside {self!r}")
        return candidate

    def validate_all(self, points: Iterable[Point]) -> list[Point]:
        """Validate an iterable of points."""
        return [self.validate(point) for point in points]

    def clamp(self, point: Sequence[float]) -> Point:
        """Round and clamp an arbitrary real vector into the space.

        This is the "shift the result into [0, Δ]" operation the RIBLT
        extraction step uses (Section 2.2, item 5) after averaging values.
        """
        clamped = []
        for coordinate in point:
            value = int(round(coordinate))
            value = min(max(value, 0), self.side - 1)
            clamped.append(value)
        return tuple(clamped)

    def sample(self, rng: np.random.Generator, count: int) -> list[Point]:
        """Draw ``count`` uniform points from the space."""
        raw = rng.integers(0, self.side, size=(count, self.dim))
        return [tuple(int(v) for v in row) for row in raw]

    def to_array(self, points: Sequence[Point]) -> np.ndarray:
        """Stack points into an ``(n, d)`` int64 array for vector ops."""
        if not points:
            return np.empty((0, self.dim), dtype=np.int64)
        return np.asarray(points, dtype=np.int64)

    def from_array(self, array: np.ndarray) -> list[Point]:
        """Convert an ``(n, d)`` array back into canonical point tuples."""
        return [tuple(int(v) for v in row) for row in np.asarray(array)]

    # -- identity ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.__dict__ == other.__dict__  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class HammingSpace(MetricSpace):
    """``({0,1}^d, f_H)`` — bit vectors under Hamming distance."""

    def __init__(self, dim: int):
        super().__init__(dim=dim, side=2)

    def __repr__(self) -> str:
        return f"HammingSpace(dim={self.dim})"

    def distance(self, x: Point, y: Point) -> float:
        if len(x) != self.dim or len(y) != self.dim:
            raise ValueError("points must have the space's dimension")
        return float(sum(a != b for a, b in zip(x, y)))

    def distance_matrix(self, xs: Sequence[Point], ys: Sequence[Point]) -> np.ndarray:
        xs_arr = self.to_array(xs)
        ys_arr = self.to_array(ys)
        if xs_arr.size == 0 or ys_arr.size == 0:
            return np.zeros((len(xs), len(ys)))
        return (xs_arr[:, None, :] != ys_arr[None, :, :]).sum(axis=2).astype(float)

    @property
    def diameter(self) -> float:
        return float(self.dim)


class GridSpace(MetricSpace):
    """``([Δ]^d, ℓ_p)`` — integer grid points under an ``ℓ_p`` norm.

    Parameters
    ----------
    side:
        ``Δ``: coordinates range over ``{0, ..., Δ - 1}``.
    dim:
        ``d``.
    p:
        Norm exponent; the paper uses ``p ∈ {1, 2}`` (and ``p ∈ [1, 2)``
        for Theorem 4.5).
    """

    def __init__(self, side: int, dim: int, p: float = 2.0):
        super().__init__(dim=dim, side=side)
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        self.p = float(p)

    def __repr__(self) -> str:
        return f"GridSpace(side={self.side}, dim={self.dim}, p={self.p})"

    def distance(self, x: Point, y: Point) -> float:
        if len(x) != self.dim or len(y) != self.dim:
            raise ValueError("points must have the space's dimension")
        diffs = [abs(a - b) for a, b in zip(x, y)]
        if self.p == 1.0:
            return float(sum(diffs))
        if math.isinf(self.p):
            return float(max(diffs))
        return float(sum(diff**self.p for diff in diffs) ** (1.0 / self.p))

    def distance_matrix(self, xs: Sequence[Point], ys: Sequence[Point]) -> np.ndarray:
        xs_arr = self.to_array(xs).astype(float)
        ys_arr = self.to_array(ys).astype(float)
        if xs_arr.size == 0 or ys_arr.size == 0:
            return np.zeros((len(xs), len(ys)))
        diffs = np.abs(xs_arr[:, None, :] - ys_arr[None, :, :])
        if self.p == 1.0:
            return diffs.sum(axis=2)
        if math.isinf(self.p):
            return diffs.max(axis=2)
        return (diffs**self.p).sum(axis=2) ** (1.0 / self.p)

    @property
    def diameter(self) -> float:
        extent = self.side - 1
        if self.p == 1.0:
            return float(self.dim * extent)
        if math.isinf(self.p):
            return float(extent)
        return float((self.dim * extent**self.p) ** (1.0 / self.p))
