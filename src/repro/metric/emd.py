"""Earth mover's distance and its outlier-excluding variant ``EMD_k``.

Definitions 3.2 and 3.3 of the paper:

* ``EMD(X, Y)`` — the min-cost perfect matching between two equal-size
  point sets under the space's metric.
* ``EMD_k(X, Y)`` — the minimum EMD achievable after deleting ``k`` points
  from each side; the protocol's approximation guarantee is stated against
  this quantity.

``EMD_k`` reduces to a square assignment problem by padding the cost matrix
with ``k`` dummy rows and ``k`` dummy columns: a dummy row may absorb any
real column at zero cost (that column's point is "excluded"), and
symmetrically for dummy columns; dummy-dummy pairs also cost zero.  With
exactly ``k`` dummies per side, precisely ``k`` real points per side go
unmatched in the optimum, which is exactly Definition 3.3.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .matching import hungarian
from .spaces import MetricSpace, Point

__all__ = ["emd", "emd_k", "emd_with_matching", "emd_k_with_exclusions"]


def emd(space: MetricSpace, xs: Sequence[Point], ys: Sequence[Point]) -> float:
    """``EMD(X, Y)`` for equal-size point sets (Definition 3.2)."""
    value, _ = emd_with_matching(space, xs, ys)
    return value


def emd_with_matching(
    space: MetricSpace, xs: Sequence[Point], ys: Sequence[Point]
) -> tuple[float, list[int]]:
    """EMD together with the optimal bijection as ``matching[i] = j``."""
    if len(xs) != len(ys):
        raise ValueError(
            f"EMD requires equal-size sets, got {len(xs)} and {len(ys)}"
        )
    if not xs:
        return 0.0, []
    cost = space.distance_matrix(xs, ys)
    assignment = hungarian(cost)
    total = float(sum(cost[i][assignment[i]] for i in range(len(xs))))
    return total, assignment


def emd_k(
    space: MetricSpace, xs: Sequence[Point], ys: Sequence[Point], k: int
) -> float:
    """``EMD_k(X, Y)`` — EMD after excluding ``k`` points per side (Def. 3.3)."""
    value, _, _ = emd_k_with_exclusions(space, xs, ys, k)
    return value


def emd_k_with_exclusions(
    space: MetricSpace, xs: Sequence[Point], ys: Sequence[Point], k: int
) -> tuple[float, list[int], list[int]]:
    """``EMD_k`` plus the indices excluded on each side in the optimum.

    Returns
    -------
    (value, excluded_x, excluded_y):
        ``value`` is ``EMD_k(X, Y)``; ``excluded_x`` / ``excluded_y`` are
        the (sorted) indices of the ``k`` points dropped from each side.
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"EMD_k requires equal-size sets, got {len(xs)} and {len(ys)}"
        )
    n = len(xs)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k >= n:
        return 0.0, list(range(n)), list(range(n))
    if k == 0:
        value, matching = emd_with_matching(space, xs, ys)
        return value, [], []

    real = space.distance_matrix(xs, ys)
    size = n + k
    cost = np.zeros((size, size), dtype=float)
    cost[:n, :n] = real
    # Rows n..n+k-1 are dummy "excluders" of Y-points; columns n..n+k-1 of
    # X-points; dummy/dummy corner stays zero.  All dummy interactions are
    # free, which implements the exclusion of exactly k points per side.
    assignment = hungarian(cost)

    value = 0.0
    excluded_x: list[int] = []
    matched_y: set[int] = set()
    for row in range(n):
        col = assignment[row]
        if col < n:
            value += float(real[row][col])
            matched_y.add(col)
        else:
            excluded_x.append(row)
    excluded_y = [j for j in range(n) if j not in matched_y]
    return value, sorted(excluded_x), sorted(excluded_y)
