"""Exact vectorised arithmetic over the Mersenne field ``GF(2^61 - 1)``.

numpy's 64-bit integers cannot hold the 122-bit product of two field
elements, so a naive ``(a * x) % P`` in ``uint64`` silently wraps.  The
classic fix — used by every fast Mersenne-prime hash implementation — is
*limb splitting*: write each 61-bit operand as ``hi·2^32 + lo`` with
``hi < 2^29`` and ``lo < 2^32``.  The three partial products

* ``hi_a·hi_b        < 2^58``   (weight ``2^64``)
* ``hi_a·lo_b + lo_a·hi_b < 2^62``  (weight ``2^32``)
* ``lo_a·lo_b        < 2^64``   (weight ``1``)

all fit in ``uint64``, and the Mersenne identity ``2^61 ≡ 1 (mod P)``
turns the weighted recombination into cheap shifts:

* ``2^64 ≡ 8``, so the high product contributes ``8·hi_a·hi_b``;
* ``mid·2^32 = (mid >> 29)·2^61 + (mid & (2^29-1))·2^32
            ≡ (mid >> 29) + ((mid & (2^29-1)) << 32)``;
* the low product folds as ``(lo >> 61) + (lo & P)``.

Every intermediate stays below ``2^63``, so the arithmetic is *exact* in
``uint64`` — no ``object``-dtype arrays, no Python-int round trips.  All
functions broadcast and accept scalars or arrays; results always satisfy
``0 <= out < P``.

This module is the substrate for the vectorised hash families in
:mod:`repro.hashing.universal` and, through them, for the numpy IBLT
backend.  Bit-exact agreement with Python's ``%`` on the same inputs is
pinned by property tests in ``tests/test_hashing.py``.

When the optional compiled kernel layer is active (``REPRO_KERNELS``,
see :mod:`repro.iblt._kernels`), the batch entry points —
:func:`mul_mod_p`, :func:`affine_mod_p`, :func:`quadratic_mod_p` —
dispatch their common 1-d shapes to nopython loops.  Both sides return
the canonical residue in ``[0, P)``, so the dispatch is bit-invisible;
shapes the kernels don't cover (broadcast matrices, 0-d scalars) fall
through to the numpy expressions below unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MERSENNE_P",
    "reduce_mod_p",
    "to_field",
    "add_mod_p",
    "mul_mod_p",
    "affine_mod_p",
    "quadratic_mod_p",
    "fold_bits",
]

#: The Mersenne prime 2^61 - 1 (kept as a Python int; see universal.py).
MERSENNE_P = (1 << 61) - 1

_P = np.uint64(MERSENNE_P)
_MASK32 = np.uint64(0xFFFFFFFF)
_MASK29 = np.uint64((1 << 29) - 1)
_S3 = np.uint64(3)
_S29 = np.uint64(29)
_S32 = np.uint64(32)
_S61 = np.uint64(61)


def _active_kernels():
    """The compiled kernel namespace, or None (probe cached per env)."""
    try:
        from ..iblt import _kernels
    except ImportError:  # pragma: no cover - partial-init bootstrap guard
        return None
    return _kernels.active()


def reduce_mod_p(x: np.ndarray) -> np.ndarray:
    """Reduce arbitrary ``uint64`` values modulo ``P`` (exact).

    One Mersenne fold brings any 64-bit value below ``2^61 + 8 < 2P``, so
    a single masked subtraction completes the reduction.  (Masked rather
    than ``np.where``, whose eagerly-evaluated unselected branch wraps and
    trips scalar-overflow warnings on 0-d inputs.)
    """
    x = np.asarray(x, dtype=np.uint64)
    r = (x >> _S61) + (x & _P)  # < 2^61 + 8 < 2P
    return r - _P * (r >= _P)


_WRAP64 = np.uint64(MERSENNE_P - 8)  # ≡ -(2^64 mod P): undoes two's-complement wrap


def to_field(x: np.ndarray) -> np.ndarray:
    """Map an integer array into ``[0, P)``, matching Python's ``x % P``.

    Unsigned values up to ``2^64`` reduce directly.  Signed arrays may be
    negative (e.g. p-stable LSH cell indices): viewing a negative ``x`` as
    two's-complement uint64 adds ``2^64 ≡ 8 (mod P)``, so those lanes get
    ``P - 8`` added back, which reproduces floored modulo exactly.
    """
    arr = np.asarray(x)
    if arr.dtype.kind == "i":
        reduced = reduce_mod_p(arr.astype(np.uint64))
        negative = arr < 0
        if negative.any():  # pay the correction passes only when needed
            reduced = np.where(negative, reduce_mod_p(reduced + _WRAP64), reduced)
        return reduced
    return reduce_mod_p(arr.astype(np.uint64))


def add_mod_p(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a + b) mod P`` for operands already in ``[0, P)``."""
    return reduce_mod_p(np.asarray(a, dtype=np.uint64) + np.asarray(b, dtype=np.uint64))


def _mul_folded(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a * b`` folded once: the exact product mod ``P``, as a value
    below ``2^62 + 16`` (callers finish with :func:`reduce_mod_p`)."""
    a_hi = a >> _S32
    a_lo = a & _MASK32
    b_hi = b >> _S32
    b_lo = b & _MASK32
    mid = a_hi * b_lo + a_lo * b_hi  # < 2^62
    low = a_lo * b_lo  # < 2^64
    high = a_hi * b_hi  # < 2^58
    # high·2^64 ≡ 8·high;  mid·2^32 ≡ (mid >> 29) + ((mid & mask29) << 32)
    s = (high << _S3) + (mid >> _S29) + ((mid & _MASK29) << _S32)  # < 2^63
    # One shared Mersenne fold of both partial sums stays under 2^62 + 16,
    # which reduce_mod_p handles — saves two full reduction passes.
    return (s >> _S61) + (s & _P) + (low >> _S61) + (low & _P)


def mul_mod_p(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a * b) mod P`` for operands already in ``[0, P)`` (exact).

    Broadcasts; either side may be a scalar.  See the module docstring
    for the limb-splitting argument that every intermediate fits uint64.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    kernels = _active_kernels()
    if kernels is not None:
        if a.ndim == 1 and a.shape == b.shape:
            return kernels.mul_vv(np.ascontiguousarray(a), np.ascontiguousarray(b))
        if a.ndim == 0 and b.ndim == 1:
            return kernels.mul_sv(a[()], np.ascontiguousarray(b))
        if b.ndim == 0 and a.ndim == 1:
            return kernels.mul_sv(b[()], np.ascontiguousarray(a))
    return reduce_mod_p(_mul_folded(a, b))


def affine_mod_p(a: np.ndarray, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``(a * x + b) mod P`` for operands already in ``[0, P)``, fused.

    The addend rides along in the product's shared fold (sum stays below
    ``2^62 + 2^61``, comfortably inside uint64), so the affine step costs
    one reduction instead of two.  This is the workhorse of every hash
    family here: Carter–Wegman evaluation, Horner steps, rolling-hash
    extension, and vector-hash accumulation are all affine updates.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    x = np.asarray(x, dtype=np.uint64)
    kernels = _active_kernels()
    if kernels is not None:
        if x.ndim == 1 and a.ndim == 0:
            if b.ndim == 0:  # one hash row over a key batch
                return kernels.affine_ssv(a[()], b[()], np.ascontiguousarray(x))
            if b.shape == x.shape:  # vector-hash accumulator step
                return kernels.affine_svv(
                    a[()], np.ascontiguousarray(b), np.ascontiguousarray(x)
                )
        elif x.ndim == 0 and a.ndim == 1 and a.shape == b.shape:
            # per-stream prefix extension: many (a, b) rows, one symbol
            return kernels.affine_vvs(
                np.ascontiguousarray(a), np.ascontiguousarray(b), x[()]
            )
    return reduce_mod_p(_mul_folded(a, x) + b)


def _mul_acc_inplace(
    a_hi: np.ndarray, a_lo: np.ndarray, x_hi: np.ndarray, x_lo: np.ndarray
) -> np.ndarray:
    """``a * x`` folded once (same bound as :func:`_mul_folded`), from
    pre-split 32-bit limbs, using in-place updates on its own partials.

    The vectorised hash paths are memory-pass-bound at decode-frontier
    array sizes (a few hundred to a few thousand lanes), so the win here
    is not different arithmetic — the formulas are exactly
    :func:`_mul_folded`'s — but fewer temporaries: every shift/mask that
    can reuse a partial product's buffer does.  Exactness is unchanged
    (identical uint64 operations in the same order per lane).
    """
    mid = a_hi * x_lo
    t = a_lo * x_hi
    mid += t  # < 2^62
    high = a_hi * x_hi  # < 2^58
    low = a_lo * x_lo  # < 2^64
    np.left_shift(high, _S3, out=high)
    s = mid >> _S29
    s += high
    np.bitwise_and(mid, _MASK29, out=mid)
    np.left_shift(mid, _S32, out=mid)
    s += mid  # < 2^63
    acc = s >> _S61
    np.bitwise_and(s, _P, out=s)
    acc += s
    np.right_shift(low, _S61, out=t)
    acc += t
    np.bitwise_and(low, _P, out=low)
    acc += low  # < 2^62 + 16 (the _mul_folded bound)
    return acc


def quadratic_mod_p(a2: int, a1: int, b: int, x: np.ndarray) -> np.ndarray:
    """``(a2·x² + a1·x + b) mod P`` in Horner form, fused and exact.

    The checksum polynomial is the single hottest hash in the decode
    loop (every purity test evaluates it), so it gets a dedicated fused
    evaluation: both Horner steps run through :func:`_mul_acc_inplace`
    with the input limbs split once, which does the same uint64
    arithmetic as two :func:`affine_mod_p` calls in roughly two thirds
    of the memory passes.  Bit-identical to
    ``affine_mod_p(affine_mod_p(a2, a1, x), b, x)`` — pinned against
    the scalar reference by the hashing property tests.
    """
    xf = to_field(x)
    kernels = _active_kernels()
    if kernels is not None and xf.ndim == 1:
        return kernels.quad_v(
            np.uint64(a2), np.uint64(a1), np.uint64(b), np.ascontiguousarray(xf)
        )
    x_hi = xf >> _S32
    x_lo = np.bitwise_and(xf, _MASK32)
    acc = _mul_acc_inplace(
        np.uint64(a2 >> 32), np.uint64(a2 & 0xFFFFFFFF), x_hi, x_lo
    )
    acc += np.uint64(a1)
    r = acc >> _S61
    np.bitwise_and(acc, _P, out=acc)
    r += acc  # < 2P
    np.subtract(r, _P, out=r, where=r >= _P)
    r_hi = r >> _S32
    np.bitwise_and(r, _MASK32, out=r)  # r is now r_lo
    acc = _mul_acc_inplace(r_hi, r, x_hi, x_lo)
    acc += np.uint64(b)
    out = acc >> _S61
    np.bitwise_and(acc, _P, out=acc)
    out += acc
    np.subtract(out, _P, out=out, where=out >= _P)
    return out


def fold_bits(x: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised :func:`repro.hashing.universal.fold_to_bits`."""
    x = np.asarray(x, dtype=np.uint64)
    if bits >= 61:
        return x
    return x & np.uint64((1 << bits) - 1)
