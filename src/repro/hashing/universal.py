"""Universal (pairwise-independent) hashing over a Mersenne-prime field.

The paper's constructions use pairwise-independent hash functions in three
places:

* Algorithm 1 compresses a tuple of MLSH values into a ``Θ(log n)``-bit
  *key* with a pairwise-independent hash ``h`` (so distinct MLSH vectors
  collide with probability ``1/poly(n)``).
* the Gap protocol hashes each *batch* of ``m`` LSH values down to
  ``O(log n)`` bits (Section 4.1).
* IBLT/RIBLT cells carry a *checksum* of each key so that impure cells are
  detected during peeling (Section 2.2).

All of these are provided here.  We work over the Mersenne prime
``P = 2^61 - 1``, which supports exact modular arithmetic with Python ints
and fast reduction, and we expose a *prefix-evaluable* polynomial hash
(:class:`PrefixHasher`) so Algorithm 1 can derive the key for resolution
level ``i`` (a hash of the first ``c_i`` MLSH values) in O(1) additional
work per level instead of rehashing the whole growing prefix.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .mersenne import MERSENNE_P, affine_mod_p, fold_bits, quadratic_mod_p, to_field
from .random_source import PublicCoins

__all__ = [
    "MERSENNE_P",
    "PairwiseHash",
    "VectorHash",
    "PrefixHasher",
    "Checksum",
    "fold_to_bits",
]


def _mod_p(x: int) -> int:
    """Reduce ``x`` modulo the Mersenne prime ``2^61 - 1``."""
    return x % MERSENNE_P


def fold_to_bits(value: int, bits: int) -> int:
    """Fold a field element down to ``bits`` bits (for key truncation)."""
    if bits >= 61:
        return value
    return value & ((1 << bits) - 1)


class PairwiseHash:
    """A pairwise-independent hash ``x -> (a*x + b) mod P`` folded to ``bits``.

    Drawn from the classic Carter–Wegman family, which is pairwise
    independent over the field of size :data:`MERSENNE_P`.  Inputs may be
    arbitrary (possibly negative or > P) integers; they are reduced into the
    field first.

    Parameters
    ----------
    coins:
        Shared randomness; both parties derive the same ``(a, b)``.
    label:
        Stream label distinguishing this hash from others.
    bits:
        Output width in bits (<= 61).
    """

    def __init__(self, coins: PublicCoins, label: object, bits: int = 61):
        if not 1 <= bits <= 61:
            raise ValueError(f"bits must be in [1, 61], got {bits}")
        rng = coins.python_rng("pairwise", label)
        self.a = rng.randrange(1, MERSENNE_P)
        self.b = rng.randrange(0, MERSENNE_P)
        self.bits = bits

    def __call__(self, x: int) -> int:
        return fold_to_bits(_mod_p(self.a * _mod_p(x) + self.b), self.bits)

    def hash_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised evaluation, exact in ``uint64`` via limb splitting.

        Bit-identical to mapping :meth:`__call__` over the array for any
        non-negative inputs below ``2^64`` (see :mod:`repro.hashing.mersenne`
        for the arithmetic).  Returns a ``uint64`` array.
        """
        out = affine_mod_p(np.uint64(self.a), np.uint64(self.b), to_field(xs))
        return fold_bits(out, self.bits)


class VectorHash:
    """Hash a fixed-length tuple of field elements to ``bits`` bits.

    Implements ``h(x_1..x_k) = (b + sum_i a_i * x_i) mod P`` with independent
    ``a_i``, which is pairwise independent over tuples.  Used by the Gap
    protocol to compress a batch of ``m`` LSH values into one key entry.
    """

    def __init__(self, coins: PublicCoins, label: object, arity: int, bits: int = 61):
        if arity < 1:
            raise ValueError("arity must be >= 1")
        rng = coins.python_rng("vector", label)
        self.coeffs = [rng.randrange(1, MERSENNE_P) for _ in range(arity)]
        self.b = rng.randrange(0, MERSENNE_P)
        self.arity = arity
        self.bits = bits

    def __call__(self, xs: Sequence[int]) -> int:
        if len(xs) != self.arity:
            raise ValueError(f"expected {self.arity} inputs, got {len(xs)}")
        acc = self.b
        for coeff, x in zip(self.coeffs, xs):
            acc += coeff * _mod_p(int(x))
        return fold_to_bits(_mod_p(acc), self.bits)

    def hash_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Hash each row of an ``(n, arity)`` matrix; returns ``uint64``.

        Bit-identical to mapping :meth:`__call__` over the rows for
        non-negative entries below ``2^64``; one fused pass of vectorised
        field operations per column.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.arity:
            raise ValueError(f"expected shape (n, {self.arity}), got {matrix.shape}")
        # Reduce once, then transpose-copy so each column scan is contiguous.
        reduced = np.ascontiguousarray(to_field(matrix).T)
        acc = np.full(matrix.shape[0], self.b, dtype=np.uint64)
        for column, coeff in enumerate(self.coeffs):
            acc = affine_mod_p(np.uint64(coeff), acc, reduced[column])
        return fold_bits(acc, self.bits)

    def hash_matrix(self, matrix: np.ndarray) -> list[int]:
        """Hash each row of an ``(n, arity)`` integer matrix."""
        return [int(value) for value in self.hash_rows(matrix)]


class PrefixHasher:
    """Polynomial rolling hash supporting incremental prefix evaluation.

    ``state_0 = b``; ``state_j = (state_{j-1} * r + x_j) mod P``.  The hash
    of the length-``j`` prefix is ``state_j`` folded to ``bits`` bits.

    Algorithm 1 keys level ``i`` by a hash of the first ``c_i`` MLSH values
    of a point, with ``c_1 < c_2 < ... < c_t``.  Rather than hashing each
    prefix from scratch (quadratic), callers feed values once via
    :meth:`extend` and snapshot the state at each required prefix length,
    which is linear in ``c_t``.

    The family is universal for unequal-length or differing prefixes up to
    collision probability ``len/P`` — comfortably ``1/poly(n)`` for the
    ``Θ(log n)``-bit keys the protocol requires.
    """

    def __init__(self, coins: PublicCoins, label: object, bits: int = 61):
        rng = coins.python_rng("prefix", label)
        self.r = rng.randrange(2, MERSENNE_P)
        self.b = rng.randrange(0, MERSENNE_P)
        self.bits = bits

    def initial_state(self) -> int:
        """The state corresponding to the empty prefix."""
        return self.b

    def extend(self, state: int, value: int) -> int:
        """Absorb one more value into the rolling state."""
        return _mod_p(state * self.r + _mod_p(int(value)))

    def extend_many(self, state: int, values: Iterable[int]) -> int:
        """Absorb a sequence of values into the rolling state."""
        for value in values:
            state = self.extend(state, value)
        return state

    def digest(self, state: int) -> int:
        """Fold a rolling state into the output key width."""
        return fold_to_bits(state, self.bits)

    def hash_prefix(self, values: Sequence[int], length: int) -> int:
        """Hash the first ``length`` entries of ``values`` from scratch."""
        if length > len(values):
            raise ValueError(f"prefix length {length} exceeds {len(values)} values")
        return self.digest(self.extend_many(self.initial_state(), values[:length]))

    def prefix_digests(self, values: Sequence[int], lengths: Sequence[int]) -> list[int]:
        """Digests for several (sorted, increasing) prefix lengths in one pass."""
        digests: list[int] = []
        state = self.initial_state()
        consumed = 0
        for length in lengths:
            if length < consumed:
                raise ValueError("prefix lengths must be non-decreasing")
            if length > len(values):
                raise ValueError(f"prefix length {length} exceeds {len(values)} values")
            state = self.extend_many(state, values[consumed:length])
            consumed = length
            digests.append(self.digest(state))
        return digests

    def prefix_digests_many(
        self, values: np.ndarray, lengths: Sequence[int]
    ) -> np.ndarray:
        """Vectorised :meth:`prefix_digests` over every row of a matrix.

        ``values`` is an ``(n, width)`` matrix of non-negative integers;
        the return is the ``(n, len(lengths))`` ``uint64`` matrix whose row
        ``i`` equals ``prefix_digests(values[i], lengths)``.  The rolling
        state advances one exact vectorised field step per column, so the
        whole point set is hashed in ``O(width)`` numpy operations.
        """
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"expected a 2-d matrix, got shape {values.shape}")
        rows, width = values.shape
        # Reduce once, then transpose-copy so each column scan is contiguous.
        reduced = np.ascontiguousarray(to_field(values).T)
        state = np.full(rows, self.b, dtype=np.uint64)
        r = np.uint64(self.r)
        out = np.empty((rows, len(lengths)), dtype=np.uint64)
        consumed = 0
        for position, length in enumerate(lengths):
            if length < consumed:
                raise ValueError("prefix lengths must be non-decreasing")
            if length > width:
                raise ValueError(f"prefix length {length} exceeds {width} values")
            for column in range(consumed, length):
                state = affine_mod_p(state, reduced[column], r)
            consumed = length
            out[:, position] = fold_bits(state, self.bits)
        return out


class Checksum:
    """Key checksum for IBLT/RIBLT cells.

    A cell is recognised as *pure* when its key-sum is consistent with its
    checksum-sum (Section 2.2, item 5).  The checksum must be a deterministic
    function of the key such that distinct keys rarely agree; we use an
    independent Carter–Wegman hash with a quadratic term, which also breaks
    the linearity that would otherwise make sums of keys fool the test
    (``checksum(k1) + checksum(k2) = checksum(k1 + k2)`` must *not* hold).
    """

    def __init__(self, coins: PublicCoins, label: object, bits: int = 61):
        rng = coins.python_rng("checksum", label)
        self.a1 = rng.randrange(1, MERSENNE_P)
        self.a2 = rng.randrange(1, MERSENNE_P)
        self.b = rng.randrange(0, MERSENNE_P)
        self.bits = bits

    def __call__(self, key: int) -> int:
        x = _mod_p(int(key))
        return fold_to_bits(_mod_p(self.a2 * x * x + self.a1 * x + self.b), self.bits)

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised checksums, exact in ``uint64``; matches :meth:`__call__`.

        Horner form ``((a2·x + a1)·x + b) mod P`` through the fused
        :func:`~repro.hashing.mersenne.quadratic_mod_p` — two exact
        field multiplications per element with the input limbs split
        once (this is the purity test the decode loop lives in).
        Returns a ``uint64`` array.
        """
        return fold_bits(quadratic_mod_p(self.a2, self.a1, self.b, keys), self.bits)
