"""Hashing substrate: public coins and pairwise-independent hashing.

See :mod:`repro.hashing.random_source` for the public-coin model and
:mod:`repro.hashing.universal` for the hash families used throughout the
protocols.
"""

from .mersenne import (
    add_mod_p,
    affine_mod_p,
    fold_bits,
    mul_mod_p,
    reduce_mod_p,
    to_field,
)
from .random_source import PublicCoins, derive_seed
from .universal import (
    MERSENNE_P,
    Checksum,
    PairwiseHash,
    PrefixHasher,
    VectorHash,
    fold_to_bits,
)

__all__ = [
    "PublicCoins",
    "derive_seed",
    "MERSENNE_P",
    "Checksum",
    "PairwiseHash",
    "PrefixHasher",
    "VectorHash",
    "fold_to_bits",
    "add_mod_p",
    "affine_mod_p",
    "fold_bits",
    "mul_mod_p",
    "reduce_mod_p",
    "to_field",
]
