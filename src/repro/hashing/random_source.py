"""Public-coin shared randomness.

The paper's protocols are analysed in the public-coin model: Alice and Bob
share an unbounded random string at no communication cost (Section 2).  In
practice one approximates this by sharing a short seed.  This module provides
:class:`PublicCoins`, a deterministic factory for all the randomness a
protocol consumes.  Both parties construct a ``PublicCoins`` from the *same*
seed and draw from identically-labelled *streams*, which guarantees that the
hash functions, grid offsets, sampled indices, etc. that they use agree
bit-for-bit without any messages being exchanged.

Streams are labelled by arbitrary string paths (``coins.stream("lsh", 3)``);
each label maps to an independent, reproducible :class:`numpy.random.Generator`
and :class:`random.Random`.  Drawing from one stream never perturbs another,
so protocol components can be composed without worrying about consumption
order -- a property that plain ``random.seed`` sharing does not give.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

import numpy as np

__all__ = ["PublicCoins", "derive_seed"]

_SEED_BYTES = 8


def derive_seed(root_seed: int, *labels: Any) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a label path.

    The derivation is a SHA-256 of the root seed and the ``repr`` of every
    label, so distinct label paths yield (cryptographically) independent
    seeds and the same path always yields the same seed.
    """
    hasher = hashlib.sha256()
    hasher.update(int(root_seed).to_bytes(16, "little", signed=True))
    for label in labels:
        hasher.update(repr(label).encode("utf-8"))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "little")


class PublicCoins:
    """A deterministic source of shared randomness.

    Parameters
    ----------
    seed:
        The shared root seed.  Two ``PublicCoins`` built from equal seeds
        produce identical streams for identical labels.

    Examples
    --------
    >>> alice = PublicCoins(7)
    >>> bob = PublicCoins(7)
    >>> alice.integers("offsets", low=0, high=100, size=3).tolist() == \\
    ...     bob.integers("offsets", low=0, high=100, size=3).tolist()
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PublicCoins(seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PublicCoins) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("PublicCoins", self.seed))

    def child_seed(self, *labels: Any) -> int:
        """Return the 64-bit seed for the stream identified by ``labels``."""
        return derive_seed(self.seed, *labels)

    def child(self, *labels: Any) -> "PublicCoins":
        """Return an independent ``PublicCoins`` rooted at a sub-label.

        Useful for handing a whole component (e.g. one RIBLT level) its own
        randomness namespace.
        """
        return PublicCoins(self.child_seed(*labels))

    def numpy_rng(self, *labels: Any) -> np.random.Generator:
        """A reproducible numpy generator for the given stream label."""
        return np.random.default_rng(self.child_seed(*labels))

    def python_rng(self, *labels: Any) -> random.Random:
        """A reproducible stdlib generator for the given stream label."""
        return random.Random(self.child_seed(*labels))

    # -- convenience draws ------------------------------------------------
    def integers(self, *labels: Any, low: int, high: int, size: int | tuple[int, ...]) -> np.ndarray:
        """Draw uniform integers in ``[low, high)`` from the labelled stream."""
        return self.numpy_rng(*labels).integers(low, high, size=size, dtype=np.int64)

    def uniform(self, *labels: Any, low: float = 0.0, high: float = 1.0, size: int | tuple[int, ...] = 1) -> np.ndarray:
        """Draw uniform floats in ``[low, high)`` from the labelled stream."""
        return self.numpy_rng(*labels).uniform(low, high, size=size)

    def gaussians(self, *labels: Any, size: int | tuple[int, ...]) -> np.ndarray:
        """Draw standard normal variates from the labelled stream."""
        return self.numpy_rng(*labels).standard_normal(size=size)
