"""Seeded churn workloads: Zipf-skewed mutation streams with ground truth.

:class:`ChurnGenerator` emits the live-world workload the paper's sensor
fleets imply: a keyed set that keeps changing after the initial
population.  Window 0 inserts the initial membership; every later
window applies ``rate`` mutations whose *delete victims* are drawn
Zipf-style over recency rank — ``skew = 0`` deletes uniformly, larger
``skew`` concentrates churn on the most recently inserted keys (the
hot-key regime of PAPERS.md's "Choice-Memory Tradeoff in Allocations").

Like :class:`~repro.workloads.generators.ReconciliationWorkload`, the
output is a frozen dataclass *with ground truth*: the exact membership
after every window is derivable from the event stream, and
:meth:`ChurnWorkload.membership_after` computes it, so replay layers
can pin their reconstructed state bit-identical to truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing import PublicCoins
from ..stream.events import MutationEvent

__all__ = ["ChurnGenerator", "ChurnWorkload"]


@dataclass(frozen=True)
class ChurnWorkload:
    """A generated mutation stream plus its derivable ground truth.

    ``events`` is the full stream in log order: window 0 populates the
    initial membership, windows ``1..windows`` churn it.  Every key is
    touched at most once per window, so each window's delta obeys the
    strict set discipline of
    :meth:`repro.store.SketchStore.apply_mutations`.
    """

    key_bits: int
    windows: int
    rate: int
    skew: float
    sources: int
    events: tuple[MutationEvent, ...]

    @property
    def n_initial(self) -> int:
        """Size of the window-0 population."""
        return sum(1 for event in self.events if event.window == 0)

    def window_events(self, window: int) -> tuple[MutationEvent, ...]:
        """The events of one window, in stream order."""
        return tuple(event for event in self.events if event.window == window)

    def membership_after(self, window: int) -> set[int]:
        """Ground-truth membership once windows ``0..window`` have applied."""
        members: set[int] = set()
        for event in self.events:
            if event.window > window:
                break
            if event.op == "insert":
                members.add(event.key)
            else:
                members.discard(event.key)
        return members

    @property
    def final_membership(self) -> set[int]:
        return self.membership_after(self.windows)


class ChurnGenerator:
    """Deterministic churn streams from public coins.

    Parameters
    ----------
    coins:
        Seeds the stream; the same coins always yield the same events.
    key_bits:
        Key universe is ``[0, 2^key_bits)`` (≤ 61 so every key rides
        the vectorised sketch paths).
    """

    def __init__(self, coins: PublicCoins, key_bits: int = 55):
        if not 1 <= key_bits <= 61:
            raise ValueError(f"key_bits must be in [1, 61], got {key_bits}")
        self.coins = coins
        self.key_bits = key_bits

    def generate(
        self,
        n: int,
        windows: int,
        rate: int,
        skew: float = 1.0,
        insert_fraction: float = 0.5,
        sources: int = 1,
    ) -> ChurnWorkload:
        """An ``n``-key population plus ``windows`` churn windows.

        Each churn window draws ``rate`` mutations: with probability
        ``insert_fraction`` a fresh (never-seen) key is inserted,
        otherwise a live key is deleted — the victim drawn over recency
        rank with weight ``rank^-skew`` (rank 1 = most recent).  A key
        already touched this window is skipped as a victim, keeping the
        window delta a valid set-discipline delta.  ``source`` labels
        round-robin-free: each event's observing party is drawn
        uniformly from ``range(sources)``.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if windows < 0:
            raise ValueError(f"windows must be >= 0, got {windows}")
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError(f"insert_fraction must be in [0, 1], got {insert_fraction}")
        if sources < 1:
            raise ValueError(f"sources must be >= 1, got {sources}")

        rng = self.coins.numpy_rng("churn", n, windows, rate)
        taken: set[int] = set()
        live: list[int] = []  # insertion order: index = age

        def fresh_key() -> int:
            while True:
                key = int(rng.integers(0, 1 << self.key_bits))
                if key not in taken:
                    taken.add(key)
                    return key

        def draw_source() -> int:
            return int(rng.integers(0, sources))

        events: list[MutationEvent] = []
        for _ in range(n):
            key = fresh_key()
            live.append(key)
            events.append(MutationEvent(key=key, op="insert", window=0, source=draw_source()))

        for window in range(1, windows + 1):
            touched: set[int] = set()
            for _ in range(rate):
                candidates = [key for key in reversed(live) if key not in touched]
                if rng.random() < insert_fraction or not candidates:
                    key = fresh_key()
                    live.append(key)
                    touched.add(key)
                    events.append(
                        MutationEvent(key=key, op="insert", window=window, source=draw_source())
                    )
                else:
                    # candidates[0] is the most recent live key → rank 1.
                    ranks = np.arange(1, len(candidates) + 1, dtype=np.float64)
                    weights = ranks ** -skew
                    weights /= weights.sum()
                    victim = candidates[int(rng.choice(len(candidates), p=weights))]
                    live.remove(victim)
                    touched.add(victim)
                    events.append(
                        MutationEvent(
                            key=victim, op="delete", window=window, source=draw_source()
                        )
                    )

        return ChurnWorkload(
            key_bits=self.key_bits,
            windows=windows,
            rate=rate,
            skew=skew,
            sources=sources,
            events=tuple(events),
        )
