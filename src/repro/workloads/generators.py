"""Synthetic workload generators.

The paper motivates robust reconciliation with sensor networks observing
the same objects with measurement noise, plus genuinely new objects
(outliers) that must be recovered (Section 1).  These generators produce
exactly that structure for every supported space:

* :func:`noisy_replica_pair` — ``S_B`` is a base cloud; ``S_A`` replays
  it with per-point noise of magnitude at most ``close_radius`` and
  replaces ``k`` points with *far* outliers at distance at least
  ``far_radius`` from everything.
* :func:`clustered_points` — Gaussian-ish clusters on a grid, for less
  uniform EMD instances.
* :func:`perturb_point` — the per-space noise model itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metric.spaces import GridSpace, HammingSpace, MetricSpace, Point

__all__ = [
    "ReconciliationWorkload",
    "perturb_point",
    "noisy_replica_pair",
    "clustered_points",
    "random_far_point",
]


@dataclass(frozen=True)
class ReconciliationWorkload:
    """A two-party instance with ground truth.

    ``far_indices`` are positions in ``alice`` holding the planted
    outliers (the points a Gap-model protocol must deliver and the
    natural ``k`` exclusions of ``EMD_k``).
    """

    space: MetricSpace
    alice: list[Point]
    bob: list[Point]
    far_indices: tuple[int, ...]
    close_radius: float
    far_radius: float

    @property
    def n(self) -> int:
        return len(self.alice)

    @property
    def k(self) -> int:
        return len(self.far_indices)

    @property
    def alice_far_points(self) -> list[Point]:
        return [self.alice[index] for index in self.far_indices]


def perturb_point(
    space: MetricSpace, point: Point, radius: float, rng: np.random.Generator
) -> Point:
    """Move ``point`` by at most ``radius`` in the space's metric.

    Hamming: flips a uniform number (0..radius) of distinct coordinates.
    Grids: adds per-coordinate integer offsets bounded so the ``ℓ_p``
    norm of the displacement cannot exceed ``radius``, then clamps into
    the grid (clamping can only shrink the displacement).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if isinstance(space, HammingSpace):
        budget = min(int(radius), space.dim)
        flips = int(rng.integers(0, budget + 1))
        if flips == 0:
            return point
        coordinates = list(point)
        for index in rng.choice(space.dim, size=flips, replace=False):
            coordinates[int(index)] ^= 1
        return tuple(coordinates)
    if isinstance(space, GridSpace):
        per_coordinate = int(radius / space.dim ** (1.0 / space.p))
        if per_coordinate == 0:
            # Fall back to perturbing a single coordinate by <= radius.
            coordinates = list(point)
            index = int(rng.integers(0, space.dim))
            offset = int(rng.integers(-int(radius), int(radius) + 1))
            coordinates[index] += offset
            return space.clamp(coordinates)
        offsets = rng.integers(-per_coordinate, per_coordinate + 1, size=space.dim)
        return space.clamp([c + int(o) for c, o in zip(point, offsets)])
    raise TypeError(f"no perturbation model for {space!r}")


def random_far_point(
    space: MetricSpace,
    anchors: list[Point],
    far_radius: float,
    rng: np.random.Generator,
    max_tries: int = 10_000,
) -> Point:
    """Sample a uniform point at distance >= ``far_radius`` from all anchors."""
    for _ in range(max_tries):
        candidate = space.sample(rng, 1)[0]
        if not anchors:
            return candidate
        distances = space.distance_matrix([candidate], anchors)
        if float(distances.min()) >= far_radius:
            return candidate
    raise RuntimeError(
        f"could not place a point at distance >= {far_radius} "
        f"after {max_tries} tries; the space may be too crowded"
    )


def noisy_replica_pair(
    space: MetricSpace,
    n: int,
    k: int,
    close_radius: float,
    far_radius: float,
    rng: np.random.Generator,
    base_separation: float | None = None,
) -> ReconciliationWorkload:
    """The paper's sensor workload.

    ``S_B`` is a cloud of ``n`` points (optionally mutually separated by
    ``base_separation`` so distinct objects stay distinct); ``S_A``
    perturbs each by at most ``close_radius`` and replaces the last ``k``
    with outliers at distance >= ``far_radius`` from every point of
    ``S_B`` and from each other.
    """
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    if close_radius >= far_radius:
        raise ValueError(
            f"need close_radius < far_radius, got {close_radius} >= {far_radius}"
        )
    base: list[Point] = []
    while len(base) < n:
        candidate = space.sample(rng, 1)[0]
        if base_separation is not None and base:
            distances = space.distance_matrix([candidate], base)
            if float(distances.min()) < base_separation:
                continue
        base.append(candidate)

    alice: list[Point] = []
    far_indices: list[int] = []
    anchors = list(base)
    for index in range(n):
        if index < n - k:
            alice.append(perturb_point(space, base[index], close_radius, rng))
        else:
            outlier = random_far_point(space, anchors, far_radius, rng)
            alice.append(outlier)
            anchors.append(outlier)
            far_indices.append(index)
    return ReconciliationWorkload(
        space=space,
        alice=alice,
        bob=base,
        far_indices=tuple(far_indices),
        close_radius=close_radius,
        far_radius=far_radius,
    )


def clustered_points(
    space: GridSpace,
    n: int,
    clusters: int,
    spread: float,
    rng: np.random.Generator,
) -> list[Point]:
    """``n`` points around ``clusters`` random centres (grid spaces)."""
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    centres = space.to_array(space.sample(rng, clusters)).astype(float)
    assignments = rng.integers(0, clusters, size=n)
    noise = rng.normal(0.0, spread, size=(n, space.dim))
    raw = centres[assignments] + noise
    return [space.clamp(row) for row in raw]
