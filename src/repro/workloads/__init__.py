"""Synthetic workload generators for both reconciliation models."""

from .churn import ChurnGenerator, ChurnWorkload
from .generators import (
    ReconciliationWorkload,
    clustered_points,
    noisy_replica_pair,
    perturb_point,
    random_far_point,
)

__all__ = [
    "ChurnGenerator",
    "ChurnWorkload",
    "ReconciliationWorkload",
    "clustered_points",
    "noisy_replica_pair",
    "perturb_point",
    "random_far_point",
]
