"""Synthetic workload generators for both reconciliation models."""

from .generators import (
    ReconciliationWorkload,
    clustered_points,
    noisy_replica_pair,
    perturb_point,
    random_far_point,
)

__all__ = [
    "ReconciliationWorkload",
    "clustered_points",
    "noisy_replica_pair",
    "perturb_point",
    "random_far_point",
]
