"""Typed failure surface for everything that parses untrusted bytes.

Deserializers in :mod:`repro.protocol.serialize`,
:mod:`repro.protocol.tables` and the IBLT array-loading paths raise
exceptions from this single :class:`DecodeError` hierarchy — never bare
``IndexError``/``ValueError``/``struct`` noise — so recovery code (the
resilient reconciliation controller in
:mod:`repro.reconcile.resilient`) can catch one type and still
distinguish *what* failed:

* :class:`TruncatedPayloadError` / :class:`MalformedPayloadError` — the
  received bytes themselves are damaged (re-request the message);
* :class:`SketchUndecodableError` — the bytes parsed fine but the sketch
  could not be peeled, i.e. the table was undersized for the actual
  difference (escalate the cell count).

For backward compatibility the payload errors multiply inherit from the
stdlib types historically raised on the same paths (``EOFError`` for
truncation, ``ValueError`` for structural damage), so pre-existing
``except EOFError`` / ``except ValueError`` call sites keep working.
"""

from __future__ import annotations

__all__ = [
    "DecodeError",
    "TruncatedPayloadError",
    "MalformedPayloadError",
    "SketchUndecodableError",
]


class DecodeError(Exception):
    """Base class: decoding a received payload or sketch failed."""


class TruncatedPayloadError(DecodeError, EOFError):
    """The payload ended mid-value (bits ran out while parsing).

    Also an ``EOFError``: truncation was historically reported as
    ``EOFError("bit stream exhausted")`` and callers may still catch it
    as such.
    """


class MalformedPayloadError(DecodeError, ValueError):
    """The payload is structurally invalid (cannot have been written
    by the matching serializer): impossible varint continuations,
    out-of-range cell contents, wrong array shapes or dtypes.

    Also a ``ValueError`` for backward compatibility with callers that
    predate the typed hierarchy.
    """


class SketchUndecodableError(DecodeError):
    """A well-formed sketch failed to decode (peeling left a 2-core).

    Raised by recovery-aware callers when ``decode()`` reports failure;
    the sketch was parsed correctly but undersized for the difference it
    had to carry, so the remedy is a bigger table, not a re-request.
    """
