"""Streaming churn: event logs, churn workloads, gossip replay.

The streaming subsystem models the paper's live-world motivation: sets
that change continuously.  Its pieces:

* :mod:`repro.stream.events` — :class:`MutationEvent`, the unified
  mutation atom shared by the log, the workload generator and
  :meth:`repro.store.SketchStore.apply_events`;
* :mod:`repro.stream.log` — the ``repro.events/v1`` crc-stamped
  append-only NDJSON event log;
* :mod:`repro.stream.replay` — :class:`StreamReplayer`, which drives a
  stream through per-party warm stores and reconciles every window
  across a :class:`~repro.core.multiparty.Topology`.
"""

from .events import MutationEvent, events_by_window, split_mutations
from .log import (
    EVENT_LOG_SCHEMA,
    EventLogReader,
    EventLogWriter,
    record_line,
    write_event_log,
)
from .replay import ID_KEY_BITS, ReplayReport, StreamReplayer, render_replay_report

__all__ = [
    "EVENT_LOG_SCHEMA",
    "EventLogReader",
    "EventLogWriter",
    "ID_KEY_BITS",
    "MutationEvent",
    "ReplayReport",
    "StreamReplayer",
    "events_by_window",
    "record_line",
    "render_replay_report",
    "split_mutations",
    "write_event_log",
]
