"""A versioned, crc-stamped, append-only NDJSON event log.

Format (``repro.events/v1``): UTF-8 text, one JSON object per ``\\n``
terminated line.  The first line is a *header* record; every following
line is an *event* record with a strictly increasing ``seq`` and a
non-decreasing ``window``:

====== =====================================================
line   canonical JSON (keys sorted, no spaces) + ``\\n``
====== =====================================================
header ``{"crc": C, "key_bits": B, "kind": "header", "meta": {...}, "schema": "repro.events/v1"}``
event  ``{"crc": C, "key": K, "kind": "event", "op": "insert"|"delete", "seq": S, "source": P, "window": W}``
====== =====================================================

Every record carries a ``crc`` — the CRC-32 of its own canonical JSON
with the ``crc`` field removed — so bit damage anywhere in a line is
detected, not silently applied to a replica.  The reader enforces the
full discipline and raises only the typed
:class:`~repro.errors.DecodeError` hierarchy on damaged input:

* :class:`~repro.errors.TruncatedPayloadError` — empty log, or the
  final line lost its newline (an interrupted append);
* :class:`~repro.errors.MalformedPayloadError` — bad UTF-8, bad JSON,
  crc mismatch, wrong schema, unexpected fields, out-of-order or
  duplicate ``seq``, a regressing ``window``, an out-of-range key.

Writers refuse out-of-order windows and out-of-range keys eagerly, so a
log produced by :class:`EventLogWriter` always round-trips.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from ..errors import MalformedPayloadError, TruncatedPayloadError
from .events import OPS, MutationEvent

__all__ = [
    "EVENT_LOG_SCHEMA",
    "EventLogReader",
    "EventLogWriter",
    "record_line",
    "write_event_log",
]

EVENT_LOG_SCHEMA = "repro.events/v1"

_HEADER_FIELDS = frozenset({"crc", "key_bits", "kind", "meta", "schema"})
_EVENT_FIELDS = frozenset({"crc", "key", "kind", "op", "seq", "source", "window"})


def _canonical(record: Mapping) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def record_line(record: Mapping) -> bytes:
    """Stamp ``record`` with its crc and render the canonical log line.

    Also the wire form the gossip replayer ships events in, so a
    transferred event costs exactly its log-line bytes.
    """
    body = {key: value for key, value in record.items() if key != "crc"}
    stamped = dict(body)
    stamped["crc"] = zlib.crc32(_canonical(body))
    return _canonical(stamped) + b"\n"


class EventLogWriter:
    """Append events to a log file (header written on open).

    Enforces the append-only discipline at write time: ``seq`` is
    assigned by the writer, windows must be non-decreasing, and keys
    must fit ``key_bits``.  Usable as a context manager.
    """

    def __init__(self, path: "str | Path", key_bits: int = 61, meta: Mapping | None = None):
        if not 1 <= key_bits <= 64:
            raise ValueError(f"key_bits must be in [1, 64], got {key_bits}")
        self.key_bits = key_bits
        self.meta = dict(meta or {})
        self._file = open(path, "wb")
        self._seq = 0
        self._window = 0
        self._file.write(
            record_line(
                {
                    "kind": "header",
                    "schema": EVENT_LOG_SCHEMA,
                    "key_bits": key_bits,
                    "meta": self.meta,
                }
            )
        )

    def append(self, event: MutationEvent) -> int:
        """Append one event; returns the sequence number it received."""
        if not isinstance(event, MutationEvent):
            raise TypeError(f"expected MutationEvent, got {type(event).__name__}")
        if event.key >= (1 << self.key_bits):
            raise ValueError(f"key {event.key} outside [0, 2^{self.key_bits})")
        if event.window < self._window:
            raise ValueError(
                f"window {event.window} regresses (last written {self._window})"
            )
        seq = self._seq
        self._file.write(record_line(event.to_record(seq)))
        self._seq += 1
        self._window = event.window
        return seq

    def extend(self, events: Iterable[MutationEvent]) -> int:
        """Append many events; returns the count written."""
        count = 0
        for event in events:
            self.append(event)
            count += 1
        return count

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_event_log(
    path: "str | Path",
    events: Iterable[MutationEvent],
    key_bits: int = 61,
    meta: Mapping | None = None,
) -> int:
    """Write a whole event stream to ``path``; returns the event count."""
    with EventLogWriter(path, key_bits=key_bits, meta=meta) as writer:
        return writer.extend(events)


class EventLogReader:
    """Parse and validate a ``repro.events/v1`` byte stream.

    The input is untrusted: every deviation from the format raises from
    the typed :class:`~repro.errors.DecodeError` hierarchy (see the
    module docstring for the taxonomy) and nothing is yielded past the
    first damaged record.
    """

    def __init__(self, data: bytes):
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"expected bytes, got {type(data).__name__}")
        self._data = bytes(data)

    @classmethod
    def open(cls, path: "str | Path") -> "EventLogReader":
        return cls(Path(path).read_bytes())

    # -- line / record layer -------------------------------------------------
    def _lines(self) -> list[bytes]:
        if not self._data:
            raise TruncatedPayloadError("empty event log")
        if not self._data.endswith(b"\n"):
            raise TruncatedPayloadError("event log ends mid-record (no trailing newline)")
        return self._data[:-1].split(b"\n")

    @staticmethod
    def _parse_record(raw: bytes, line_number: int) -> dict:
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise MalformedPayloadError(f"line {line_number}: not UTF-8 ({error})") from error
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise MalformedPayloadError(f"line {line_number}: not JSON ({error})") from error
        if not isinstance(record, dict):
            raise MalformedPayloadError(f"line {line_number}: record is not an object")
        crc = record.get("crc")
        if not isinstance(crc, int) or isinstance(crc, bool):
            raise MalformedPayloadError(f"line {line_number}: missing integer crc")
        body = {key: value for key, value in record.items() if key != "crc"}
        if zlib.crc32(_canonical(body)) != crc:
            raise MalformedPayloadError(f"line {line_number}: crc mismatch")
        return record

    @staticmethod
    def _int_field(record: dict, name: str, line_number: int, minimum: int = 0) -> int:
        value = record.get(name)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise MalformedPayloadError(
                f"line {line_number}: field {name!r} must be an int >= {minimum}, "
                f"got {value!r}"
            )
        return value

    def _parse_header(self, raw: bytes) -> dict:
        record = self._parse_record(raw, 1)
        if record.get("kind") != "header":
            raise MalformedPayloadError("first record is not a header")
        if set(record) != _HEADER_FIELDS:
            raise MalformedPayloadError(
                f"header fields {sorted(record)} != {sorted(_HEADER_FIELDS)}"
            )
        if record.get("schema") != EVENT_LOG_SCHEMA:
            raise MalformedPayloadError(
                f"unsupported schema {record.get('schema')!r} (expected {EVENT_LOG_SCHEMA})"
            )
        key_bits = self._int_field(record, "key_bits", 1, minimum=1)
        if key_bits > 64:
            raise MalformedPayloadError(f"key_bits {key_bits} > 64")
        if not isinstance(record.get("meta"), dict):
            raise MalformedPayloadError("header meta must be an object")
        return record

    # -- public surface ------------------------------------------------------
    def header(self) -> dict:
        """The validated header record (``key_bits``, ``meta``, ...)."""
        return self._parse_header(self._lines()[0])

    def events(self) -> Iterator[MutationEvent]:
        """Yield events in sequence order, validating as it goes."""
        lines = self._lines()
        header = self._parse_header(lines[0])
        key_limit = 1 << header["key_bits"]
        expected_seq = 0
        last_window = 0
        for offset, raw in enumerate(lines[1:]):
            line_number = offset + 2
            record = self._parse_record(raw, line_number)
            kind = record.get("kind")
            if kind == "header":
                raise MalformedPayloadError(f"line {line_number}: duplicate header")
            if kind != "event":
                raise MalformedPayloadError(f"line {line_number}: unknown kind {kind!r}")
            if set(record) != _EVENT_FIELDS:
                raise MalformedPayloadError(
                    f"line {line_number}: event fields {sorted(record)} != "
                    f"{sorted(_EVENT_FIELDS)}"
                )
            seq = self._int_field(record, "seq", line_number)
            if seq != expected_seq:
                raise MalformedPayloadError(
                    f"line {line_number}: seq {seq} out of order (expected {expected_seq})"
                )
            window = self._int_field(record, "window", line_number)
            if window < last_window:
                raise MalformedPayloadError(
                    f"line {line_number}: window {window} regresses from {last_window}"
                )
            if record.get("op") not in OPS:
                raise MalformedPayloadError(
                    f"line {line_number}: op must be one of {OPS}, got {record.get('op')!r}"
                )
            key = self._int_field(record, "key", line_number)
            if key >= key_limit:
                raise MalformedPayloadError(
                    f"line {line_number}: key {key} outside [0, 2^{header['key_bits']})"
                )
            self._int_field(record, "source", line_number)
            expected_seq = seq + 1
            last_window = window
            yield MutationEvent.from_record(record)

    def read_all(self) -> list[MutationEvent]:
        """Every event in the log, fully validated."""
        return list(self.events())
