"""Replay an event stream through warm stores over gossip topologies.

:class:`StreamReplayer` is the end-to-end streaming pipeline: a recorded
(or generated) :class:`~repro.stream.events.MutationEvent` stream is cut
into its time windows; each party ingests the events it *observed*
(``source`` mod parties) into a per-party
:class:`~repro.store.SketchStore`; and each window closes with one
gossip wave over a :class:`~repro.core.multiparty.Topology` that brings
every party to the union of all observed events.

The anti-entropy plane reconciles **event IDs** (sequence numbers), not
membership: event streams only ever grow, so the per-edge difference is
exactly the events one side has not yet heard — a monotone set union,
decoded from a small IBLT whose size escalates by doubling on failure
(and stays escalated for that edge, like the PR-6 breaker).  Decoded
IDs are then settled by shipping the missing events in their canonical
crc-stamped log-line form, so wire accounting uses the exact bytes a
log replica would.

Two pins make the replay honest:

* **convergence** — after the final window every party's membership
  equals the ground truth derived from the event stream;
* **warm = cold** — every party's warm membership sketch (built empty
  at window 0 and only ever refreshed in place through
  :meth:`~repro.store.SketchStore.apply_events`) serialises
  byte-identical to a cold IBLT built from the final ground truth.

Reports carry per-edge transcript bits and never embed the backend
name, so numpy and pure-python replays of the same stream render
byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.multiparty import Topology, _edge
from ..hashing import PublicCoins, derive_seed
from ..iblt.iblt import IBLT, cells_for_differences
from .events import MutationEvent, events_by_window
from .log import record_line

__all__ = ["ID_KEY_BITS", "ReplayReport", "StreamReplayer", "render_replay_report"]

#: Event sequence numbers ride a 32-bit ID universe on the wire.
ID_KEY_BITS = 32

#: Bits to request one missing event by its sequence number.
_REQUEST_BITS_PER_ID = 32

_MASK_61 = (1 << 61) - 1


@dataclass(frozen=True)
class ReplayReport:
    """Outcome and transcript accounting of one stream replay."""

    topology: str
    parties: int
    depth: int
    windows: int
    events: int
    total_bits: int
    edge_bits: tuple[tuple[int, int, int], ...]
    syncs: int
    decode_failures: int
    events_shipped: int
    converged: bool
    matches_cold_rebuild: bool
    store_hits: int
    incremental_refreshes: int
    keys_hashed: int

    @property
    def success(self) -> bool:
        return self.converged and self.matches_cold_rebuild

    def to_metrics(self, suffix: str = "") -> dict:
        """Flat scalar metrics (scenario-report shape), optionally suffixed."""
        metrics = {
            "converged": self.converged,
            "matches_cold_rebuild": self.matches_cold_rebuild,
            "bits": self.total_bits,
            "syncs": self.syncs,
            "decode_failures": self.decode_failures,
            "events_shipped": self.events_shipped,
            "gossip_depth": self.depth,
            "max_edge_bits": max((bits for _, _, bits in self.edge_bits), default=0),
        }
        return {f"{name}{suffix}": value for name, value in metrics.items()}


class _Party:
    """One replica: its warm store, its event knowledge, its ID set."""

    __slots__ = ("index", "known", "store")

    def __init__(self, index: int, store: "object"):
        self.index = index
        self.store = store
        self.known: dict[int, MutationEvent] = {}


class StreamReplayer:
    """Drive an event stream through per-party stores and gossip.

    Parameters
    ----------
    topology:
        The gossip graph; waves follow its BFS spanning tree rooted at
        party 0 (convergecast then broadcast, the
        :meth:`~repro.core.multiparty.Topology.gossip_schedule` order).
    coins:
        Public coins shared by all parties — sketch shapes, labels and
        cell hashes derive from them, never from private state.
    key_bits:
        Membership key universe (must match the event log's header).
    delta_bound:
        Initial per-edge difference bound for the ID sketches.
    """

    def __init__(
        self,
        topology: Topology,
        coins: PublicCoins,
        key_bits: int = 55,
        delta_bound: int = 8,
        q: int = 3,
        max_attempts: int = 6,
    ):
        if delta_bound < 1:
            raise ValueError(f"delta_bound must be >= 1, got {delta_bound}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.topology = topology
        self.coins = coins
        self.key_bits = key_bits
        self.delta_bound = delta_bound
        self.q = q
        self.max_attempts = max_attempts
        self.mem_coins = coins.child("stream-membership")
        self.id_coins = coins.child("stream-ids")
        self.mem_key = derive_seed(coins.seed, "stream-membership-key") & _MASK_61
        self.id_key = derive_seed(coins.seed, "stream-id-key") & _MASK_61

    # -- per-party state -----------------------------------------------------
    def _make_parties(self, check_cells: int) -> list[_Party]:
        from ..store import SketchStore, StoreConfig

        parties: list[_Party] = []
        for index in range(self.topology.parties):
            store = SketchStore(
                StoreConfig(seed=derive_seed(self.coins.seed, "stream-store", index))
            )
            store.put_set(self.mem_key, (), key_bits=self.key_bits)
            store.put_set(self.id_key, (), key_bits=ID_KEY_BITS)
            # Build the membership slot now, over the empty set: from
            # here on it is only ever refreshed in place, which is what
            # the warm-equals-cold pin at the end actually exercises.
            store.serve_iblt(self.mem_key, self.mem_coins, "membership", check_cells, q=self.q)
            parties.append(_Party(index, store))
        return parties

    def _ingest(self, party: _Party, batch: "list[tuple[int, MutationEvent]]") -> None:
        """Apply ``(seq, event)`` pairs this party just learned."""
        if not batch:
            return
        party.store.apply_events(self.mem_key, [event for _, event in batch])
        party.store.apply_mutations(self.id_key, inserts=[seq for seq, _ in batch])
        for seq, event in batch:
            party.known[seq] = event

    # -- the anti-entropy edge sync ------------------------------------------
    def _sync_edge(
        self,
        sender: _Party,
        receiver: _Party,
        bounds: dict,
        edge_bits: dict,
        counters: dict,
    ) -> None:
        """Reconcile two parties' event-ID sets across one edge.

        ``sender`` serves its ID sketch; ``receiver`` subtracts its own
        and peels.  Both sides end up with the union: receiver-missing
        events are requested by ID and shipped as log lines,
        sender-missing events are shipped back unprompted.  All of it
        is charged to the edge.
        """
        edge = _edge(sender.index, receiver.index)
        counters["syncs"] += 1
        bound = bounds[edge]
        decoded = None
        for _ in range(self.max_attempts):
            cells = cells_for_differences(bound, q=self.q)
            payload, bits = sender.store.serve_iblt(
                self.id_key, self.id_coins, "ids", cells, q=self.q
            )
            edge_bits[edge] += bits
            local_payload, _ = receiver.store.serve_iblt(
                self.id_key, self.id_coins, "ids", cells, q=self.q
            )
            shell = IBLT(self.id_coins, "ids", cells=cells, q=self.q, key_bits=ID_KEY_BITS)
            remote = shell.from_payload(payload)
            local_shell = IBLT(
                self.id_coins, "ids", cells=cells, q=self.q, key_bits=ID_KEY_BITS
            )
            local = local_shell.from_payload(local_payload)
            result = remote.subtract(local).decode()
            if result.success:
                decoded = result
                break
            counters["decode_failures"] += 1
            bound *= 2
        bounds[edge] = bound
        if decoded is None:
            counters["sync_failures"] += 1
            return

        sender_only = sorted(int(seq) for seq in decoded.inserted)
        receiver_only = sorted(int(seq) for seq in decoded.deleted)
        # Receiver asks for the events it is missing, by ID…
        edge_bits[edge] += _REQUEST_BITS_PER_ID * len(sender_only)
        to_receiver = [(seq, sender.known[seq]) for seq in sender_only]
        # …and ships the ones the sender is missing unprompted.
        to_sender = [(seq, receiver.known[seq]) for seq in receiver_only]
        for seq, event in to_receiver + to_sender:
            edge_bits[edge] += 8 * len(record_line(event.to_record(seq)))
        counters["events_shipped"] += len(to_receiver) + len(to_sender)
        self._ingest(receiver, to_receiver)
        self._ingest(sender, to_sender)

    # -- the replay loop -----------------------------------------------------
    def replay(self, events: "list[MutationEvent] | tuple[MutationEvent, ...]") -> ReplayReport:
        """Run the full stream; returns the pinned report."""
        events = list(events)
        truth: set[int] = set()
        for event in events:
            if event.op == "insert":
                truth.add(event.key)
            else:
                truth.discard(event.key)
        check_cells = cells_for_differences(max(1, len(truth)), q=self.q)

        parties = self._make_parties(check_cells)
        count = self.topology.parties
        parent_of, depth_of = self.topology.spanning_tree(0)
        up_order, down_order = self.topology.gossip_schedule(0)
        bounds = {edge: self.delta_bound for edge in self.topology.edges}
        edge_bits = {edge: 0 for edge in self.topology.edges}
        counters = {
            "syncs": 0,
            "decode_failures": 0,
            "sync_failures": 0,
            "events_shipped": 0,
        }

        grouped = events_by_window(events)
        windows = sorted(grouped)
        for window in windows:
            for party in parties:
                own = [
                    (seq, event)
                    for seq, event in grouped[window]
                    if event.source % count == party.index
                ]
                self._ingest(party, own)
            for child in up_order:
                self._sync_edge(
                    parties[child], parties[parent_of[child]], bounds, edge_bits, counters
                )
            for child in down_order:
                self._sync_edge(
                    parties[parent_of[child]], parties[child], bounds, edge_bits, counters
                )

        converged = counters["sync_failures"] == 0 and all(
            party.store.keys_of(self.mem_key) == truth for party in parties
        )

        cold = IBLT(
            self.mem_coins, "membership", cells=check_cells, q=self.q, key_bits=self.key_bits
        )
        cold.insert_all(sorted(truth))
        cold_payload, _ = cold.to_payload()
        matches = True
        for party in parties:
            warm_payload, _ = party.store.serve_iblt(
                self.mem_key, self.mem_coins, "membership", check_cells, q=self.q
            )
            if warm_payload != cold_payload:
                matches = False

        stats = [party.store.stats for party in parties]
        return ReplayReport(
            topology=self.topology.kind,
            parties=count,
            depth=max(depth_of.values()) if depth_of else 0,
            windows=len(windows),
            events=len(events),
            total_bits=sum(edge_bits.values()),
            edge_bits=tuple((u, v, edge_bits[(u, v)]) for u, v in self.topology.edges),
            syncs=counters["syncs"],
            decode_failures=counters["decode_failures"],
            events_shipped=counters["events_shipped"],
            converged=converged,
            matches_cold_rebuild=matches,
            store_hits=sum(s.hits for s in stats),
            incremental_refreshes=sum(s.incremental_refreshes for s in stats),
            keys_hashed=sum(s.keys_hashed for s in stats),
        )


def render_replay_report(report: ReplayReport, seed: int, meta: "dict | None" = None) -> str:
    """Canonical-JSON replay report (``repro.stream/v1``).

    Deliberately backend-free: the same stream replayed on the numpy
    and pure-python backends must render byte-identical text — CI
    compares them with ``cmp``.
    """
    payload = {
        "schema": "repro.stream/v1",
        "seed": seed,
        "meta": dict(meta or {}),
        "topology": report.topology,
        "parties": report.parties,
        "depth": report.depth,
        "windows": report.windows,
        "events": report.events,
        "converged": report.converged,
        "matches_cold_rebuild": report.matches_cold_rebuild,
        "total_bits": report.total_bits,
        "edge_bits": [[u, v, bits] for u, v, bits in report.edge_bits],
        "syncs": report.syncs,
        "decode_failures": report.decode_failures,
        "events_shipped": report.events_shipped,
        "store_hits": report.store_hits,
        "incremental_refreshes": report.incremental_refreshes,
        "keys_hashed": report.keys_hashed,
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
