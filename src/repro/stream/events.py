"""The unified mutation event: one set change, anywhere in the system.

The paper motivates reconciliation with sensor fleets observing a live
world — sets change continuously, not in pre-cut snapshots.  A
:class:`MutationEvent` is the atom of that model: one key inserted into
or deleted from a keyed set, stamped with the *time window* it belongs
to and the *source* party that observed it.  The same dataclass rides
the append-only event log (:mod:`repro.stream.log`), the churn workload
generator (:mod:`repro.workloads.churn`), the gossip replayer
(:mod:`repro.stream.replay`) and
:meth:`repro.store.SketchStore.apply_events` — so a recorded stream and
a live mutation share one schema end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["MutationEvent", "OPS", "events_by_window", "split_mutations"]

#: The two legal operations; anything else is a malformed record.
OPS = ("insert", "delete")


@dataclass(frozen=True)
class MutationEvent:
    """One keyed-set mutation: ``op`` applied to ``key`` in ``window``.

    ``source`` names the party that observed the event (0 for a
    single-writer stream).  Events are value objects: frozen, ordered
    only by the stream that carries them (the log's ``seq`` field),
    and validated eagerly so malformed events never enter a log or a
    store.
    """

    key: int
    op: str
    window: int
    source: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {self.op!r}")
        if not isinstance(self.key, int) or isinstance(self.key, bool) or self.key < 0:
            raise ValueError(f"key must be a non-negative int, got {self.key!r}")
        if not isinstance(self.window, int) or isinstance(self.window, bool) or self.window < 0:
            raise ValueError(f"window must be a non-negative int, got {self.window!r}")
        if not isinstance(self.source, int) or isinstance(self.source, bool) or self.source < 0:
            raise ValueError(f"source must be a non-negative int, got {self.source!r}")

    def to_record(self, seq: int) -> dict:
        """The event's log-record fields (crc added by the log layer)."""
        return {
            "kind": "event",
            "seq": int(seq),
            "window": self.window,
            "op": self.op,
            "key": self.key,
            "source": self.source,
        }

    @classmethod
    def from_record(cls, record: dict) -> "MutationEvent":
        """Rebuild an event from validated log-record fields."""
        return cls(
            key=record["key"],
            op=record["op"],
            window=record["window"],
            source=record["source"],
        )


def split_mutations(events: Iterable[MutationEvent]) -> tuple[list[int], list[int]]:
    """Split an event batch into the raw ``(inserts, deletes)`` delta.

    Keys keep their order of appearance within each list — the shape
    :meth:`repro.store.SketchStore.apply_mutations` has always taken,
    which makes the events path a strict superset of the raw one.
    """
    inserts: list[int] = []
    deletes: list[int] = []
    for event in events:
        if not isinstance(event, MutationEvent):
            raise TypeError(f"expected MutationEvent, got {type(event).__name__}")
        (inserts if event.op == "insert" else deletes).append(event.key)
    return inserts, deletes


def events_by_window(events: Sequence[MutationEvent]) -> dict[int, list[tuple[int, MutationEvent]]]:
    """Group ``(seq, event)`` pairs by window (seq = position in the stream)."""
    grouped: dict[int, list[tuple[int, MutationEvent]]] = {}
    for seq, event in enumerate(events):
        grouped.setdefault(event.window, []).append((seq, event))
    return grouped
