"""Statistics helpers shared by the experiment harness.

Small, dependency-light utilities: summary statistics with normal-
approximation confidence intervals, success-rate estimation with Wilson
intervals, and a generic multi-trial runner used by the benchmarks so
every experiment reports means over independent seeds rather than single
runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["Summary", "summarize", "success_rate", "wilson_interval", "run_trials"]

T = TypeVar("T")


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean."""
        if self.count <= 1:
            return (self.mean, self.mean)
        half = z * self.std / math.sqrt(self.count)
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.mean:.3g} ± {self.std:.2g} (n={self.count})"


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; raises on empty input."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    count = len(data)
    mean = sum(data) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in data) / (count - 1)
    else:
        variance = 0.0
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def success_rate(outcomes: Sequence[bool]) -> tuple[float, tuple[float, float]]:
    """Empirical rate plus its Wilson interval."""
    if not outcomes:
        raise ValueError("cannot compute a rate over no outcomes")
    successes = sum(1 for outcome in outcomes if outcome)
    return successes / len(outcomes), wilson_interval(successes, len(outcomes))


def run_trials(trial: Callable[[int], T], trials: int, seed0: int = 0) -> list[T]:
    """Run ``trial(seed)`` for ``trials`` distinct seeds and collect results."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    return [trial(seed0 + index) for index in range(trials)]
