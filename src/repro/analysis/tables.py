"""ASCII table rendering for benchmark output.

The benchmark harness prints the paper-shaped rows (one table or figure
series per experiment) through these helpers so the EXPERIMENTS.md
entries and the console output stay consistent.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_cell", "print_table"]


def format_cell(value: object) -> str:
    """Render one cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> None:
    """Print :func:`format_table` output, framed by blank lines."""
    print()
    print(format_table(headers, rows, title=title))
    print()
