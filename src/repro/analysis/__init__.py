"""Experiment-running helpers: statistics and table rendering."""

from .stats import Summary, run_trials, success_rate, summarize, wilson_interval
from .tables import format_cell, format_table, print_table

__all__ = [
    "Summary",
    "run_trials",
    "success_rate",
    "summarize",
    "wilson_interval",
    "format_cell",
    "format_table",
    "print_table",
]
