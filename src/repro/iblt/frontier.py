"""Shared peeling-frontier machinery for the IBLT family.

Peeling is the core-emergence process of XORSAT / cuckoo-hashing
threshold analyses: decode succeeds by repeatedly stripping degree-1
(pure) cells, and each strip can only change the cells its key hashes
to.  The process is therefore inherently *incremental* — after the
initial pure scan, the only cells whose purity can have changed are the
ones actually touched by a peel.  Every decoder in this package tracks
that frontier instead of rescanning the table, and they all share the
engine pieces defined here:

* :class:`PeelQueue` — the deduplicated candidate queue the scalar
  decoders drive (FIFO for the breadth-first sum-cell decoders whose
  error-propagation analysis depends on peel order, RIBLT Lemma 3.10;
  LIFO for the classic IBLT's stack-based python reference).
* :class:`PeelScratch` — preallocated round work buffers for the
  vectorised numpy decoder (``IBLT._decode_numpy_frontier``): a flag
  array that dedupes the touched-cell stream in ``O(m + touched)``
  without any sort, plus reusable purity-scan scratch.  One scratch is
  shared by a table and every clone ``subtract``/``copy`` derive from
  it, so repeated ``decode()`` calls never reallocate.
* :class:`KeyHashCache` — memoised ``key -> (checksum, cell indices)``
  evaluations, batch-filled with the vectorised Mersenne hashes and
  consulted by the sum-cell decoders (:class:`~repro.iblt.riblt.RIBLT`,
  :class:`~repro.iblt.counting.MultisetIBLT`) *inside* their exact
  sequential FIFO loops.  The cached values are pure functions of the
  key, so the peel sequence — hence the decode output, including the
  value-error propagation the RIBLT analysis charges — is bit-identical
  to uncached scalar evaluation.

The peel frontier shrinks geometrically (the supercritical branching
process dies out), so a fixed-cost vectorised round is exactly wrong at
the tail: the numpy decoder *adapts*, processing any round whose
candidate set is at most :data:`PEEL_TAIL_THRESHOLD` cells with plain
scalar arithmetic (cached hashes, no array round-trips), and the cache
only batch-primes when at least :data:`CACHE_PRIME_THRESHOLD` keys are
missing.  Both thresholds are behaviour-preserving knobs: any value
produces bit-identical output, only the crossover cost changes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..hashing import Checksum, PairwiseHash

__all__ = [
    "CACHE_PRIME_THRESHOLD",
    "PEEL_TAIL_THRESHOLD",
    "KeyHashCache",
    "PeelQueue",
    "PeelScratch",
    "divisible_key",
    "seed_sum_cell_queue",
]

#: Candidate-set size at or below which the adaptive numpy decoder runs a
#: round with scalar arithmetic instead of vectorised array passes.  At
#: tail sizes the fixed per-call overhead of each numpy operation (~µs)
#: exceeds the whole round's useful work; measured on CPython 3.11 the
#: crossover sits near ~200 candidate cells, so 128 keeps every bulk
#: round vectorised while the geometric tail runs scalar.
PEEL_TAIL_THRESHOLD = 128

#: Minimum number of *missing* keys for which :meth:`KeyHashCache.prime`
#: uses the vectorised batch hashes; smaller batches fall through to the
#: memoised scalar fill where the fixed array-call overhead (key-array
#: construction, two Mersenne passes, the index matrix transpose) would
#: cost more than it saves.  Measured crossover on CPython 3.11 is
#: ~50-100 missing keys.
CACHE_PRIME_THRESHOLD = 64

#: Entry cap for :class:`KeyHashCache`; reaching it clears the cache (the
#: memoised values are recomputable, so wholesale eviction is always
#: safe — simpler than LRU bookkeeping on the hot path).  Caches live as
#: long as their table (clones share them), so the cap also bounds
#: resident memory: 2^17 entries is ~10 MB across both stores, far above
#: any single decode's working set.
_CACHE_MAX_ENTRIES = 1 << 17


def divisible_key(count: int, key_total: int, key_limit: int) -> int | None:
    """The candidate key of a sum cell, before its checksum test.

    Section 2.2 item 5: a cell holding ``C`` copies of one key has a key
    sum divisible by its count with an in-range quotient.  This is the
    cheap integer half of the sum-cell purity test shared by
    :class:`~repro.iblt.riblt.RIBLT` and
    :class:`~repro.iblt.counting.MultisetIBLT`; the caller still owns
    the checksum half (``checksum(key) * count == check_sum``).
    """
    if count == 0:
        return None
    if key_total % count != 0:
        return None
    key = key_total // count
    if not 0 <= key < key_limit:
        return None
    return key


def seed_sum_cell_queue(
    counts: "list[int]",
    key_sum: "list[int]",
    check_sum: "list[int]",
    key_bits: int,
    queue: "PeelQueue",
    cache: "KeyHashCache | None",
    checksum: "Checksum",
) -> None:
    """Seed a sum-cell decoder's candidate queue in one scan.

    Shared by :class:`~repro.iblt.riblt.RIBLT` and
    :class:`~repro.iblt.counting.MultisetIBLT`: every cell passing the
    integer half of the purity test (:func:`divisible_key`) is a
    candidate; with a cache the candidates' checksums are batch-primed
    with one vectorised pass *before* the checksum half runs, so the
    seeding scan performs zero scalar Mersenne evaluations beyond cache
    misses.  Cells are pushed in ascending index order either way — the
    queue the FIFO peel starts from is identical with or without the
    cache.  (Keys wider than 61 bits skip priming; they cannot ride the
    ``uint64`` batch hashes.)
    """
    key_limit = 1 << key_bits
    if cache is not None and key_bits <= 61:
        seeds = [
            (index, key)
            for index in range(len(counts))
            if (key := divisible_key(counts[index], key_sum[index], key_limit)) is not None
        ]
        # Checksums first, for every candidate; cell indices only for
        # the keys that survive the checksum test — garbage candidates
        # (impure cells whose sums happen to divide into range) never
        # get peeled, so their indices would be pure waste.
        cache.prime([key for _, key in seeds], want_indices=False)
        survivors = []
        for index, key in seeds:
            if cache.check(key) * counts[index] == check_sum[index]:
                queue.push(index)
                survivors.append(key)
        cache.prime(survivors, want_indices=True)
        return
    for index in range(len(counts)):
        key = divisible_key(counts[index], key_sum[index], key_limit)
        if key is None:
            continue
        check = checksum(key) if cache is None else cache.check(key)
        if check * counts[index] == check_sum[index]:
            queue.push(index)


class PeelQueue:
    """A deduplicated queue of candidate cell indices.

    A cell index is held at most once; pushing an enqueued index is a
    no-op.  ``fifo`` selects breadth-first (popleft) or depth-first
    (pop) order.  Membership is tracked with a flat flag table over the
    ``m`` cells, so push/pop are O(1) regardless of table size.
    """

    def __init__(self, m: int, fifo: bool = True):
        self._queue: deque[int] = deque()
        self._enqueued = bytearray(m)
        self._fifo = fifo

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def pending(self, index: int) -> bool:
        """Whether ``index`` is currently enqueued.

        Decoders check this *before* their purity test: the flag lookup
        is O(1) while purity costs a checksum evaluation, and a pending
        cell will be re-tested at pop time anyway.
        """
        return bool(self._enqueued[index])

    def push(self, index: int) -> None:
        """Enqueue ``index`` unless it is already pending."""
        if not self._enqueued[index]:
            self._enqueued[index] = 1
            self._queue.append(index)

    def pop(self) -> int:
        """Remove and return the next candidate (per the queue order)."""
        index = self._queue.popleft() if self._fifo else self._queue.pop()
        self._enqueued[index] = 0
        return index


class PeelScratch:
    """Reusable work buffers for the vectorised round-based decoder.

    Created empty (no arrays) so a table can allocate it eagerly and
    share the *same* object with every clone it spawns — ``subtract``
    returns a fresh table per reconciliation, and without sharing each
    decode would pay the allocations again.  Buffers materialise on the
    first decode and are reused across rounds and across repeated
    ``decode()`` calls; they are plain work state, so the engine is not
    re-entrant (nothing in this package decodes concurrently).
    """

    __slots__ = ("_flags", "_scratch_i64", "_scratch_mask")

    def __init__(self) -> None:
        self._flags: np.ndarray | None = None
        self._scratch_i64: np.ndarray | None = None
        self._scratch_mask: np.ndarray | None = None

    def _ensure(self, m: int) -> None:
        if self._flags is None or self._flags.shape[0] != m:
            self._flags = np.zeros(m, dtype=bool)
            self._scratch_i64 = np.empty(m, dtype=np.int64)
            self._scratch_mask = np.empty(m, dtype=bool)

    def unique_cells(self, indices: np.ndarray, m: int) -> np.ndarray:
        """Deduplicate a touched-cell index matrix into sorted cell ids.

        Bincount-style counting dedup: scatter ones into a preallocated
        flag array, harvest the set bits, reset only what was touched —
        ``O(m + touched)`` with no sort and no per-round allocation
        beyond the result, replacing the ``np.unique``/fancy-indexing
        pass over the duplicated ``(q, n)`` stream.  The ascending
        result order is load-bearing: it reproduces the rescan oracle's
        ``np.flatnonzero`` candidate order, which fixes which cell a
        multiply-pure key's sign is read from.
        """
        self._ensure(m)
        flags = self._flags
        flags[indices.ravel()] = True
        cells = np.flatnonzero(flags)
        flags[cells] = False
        return cells

    def ones_candidates(self, counts: np.ndarray) -> np.ndarray:
        """Indices of cells with ``|count| == 1`` (the seeding scan),
        computed into reusable scratch instead of fresh temporaries."""
        self._ensure(counts.shape[0])
        np.absolute(counts, out=self._scratch_i64)
        np.equal(self._scratch_i64, 1, out=self._scratch_mask)
        return np.flatnonzero(self._scratch_mask)


class KeyHashCache:
    """Memoised checksum / cell-index evaluations for one hash context.

    The expensive half of every peel step is hashing: the purity test
    needs ``checksum(key)`` and the peel itself needs the key's ``q``
    cell indices.  Both are pure functions of the key under the table's
    public coins, so one table and all its clones (which share hash
    objects) can share one cache.  :meth:`prime` fills it with the
    vectorised Mersenne batch hashes; :meth:`check` / :meth:`indices`
    fall back to scalar evaluation (and memoise) on a miss, which keeps
    every consumer bit-identical to uncached scalar hashing while
    collapsing the repeated evaluations the sequential decoders perform
    — each key is tested once per incident cell and peeled once.
    """

    __slots__ = ("_block_size", "_cell_hashes", "_checks", "_checksum", "_indices")

    def __init__(
        self,
        checksum: "Checksum",
        cell_hashes: "list[PairwiseHash]",
        block_size: int,
    ):
        self._checksum = checksum
        self._cell_hashes = cell_hashes
        self._block_size = block_size
        self._checks: dict[int, int] = {}
        self._indices: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._checks)

    def prime(self, keys: "list[int]", want_indices: bool = True) -> None:
        """Batch-fill the cache for ``keys`` (all below ``2^61``).

        One vectorised checksum pass (and, with ``want_indices``, one
        broadcast cell-index pass) replaces ``len(keys)`` scalar
        Mersenne evaluations.  The two stores are primed independently:
        a seeding scan can prime checksums for every *candidate* first
        and come back for the cell indices of only the keys that
        survived the checksum test — indices are only ever consumed at
        peel time, so priming them for garbage candidates would be
        wasted work and cache pollution.  Below
        :data:`CACHE_PRIME_THRESHOLD` missing keys per store the batch
        overhead is not worth it (the adaptive tail) and misses are
        left to the scalar fallbacks.
        """
        from .iblt import partitioned_cell_indices  # local: import cycle

        unique = list(dict.fromkeys(keys))
        missing = [key for key in unique if key not in self._checks]
        if len(missing) >= CACHE_PRIME_THRESHOLD:
            if len(self._checks) + len(missing) > _CACHE_MAX_ENTRIES:
                self._checks.clear()
            key_array = np.array(missing, dtype=np.uint64)
            self._checks.update(zip(missing, self._checksum.hash_array(key_array).tolist()))
        if not want_indices:
            return
        missing = [key for key in unique if key not in self._indices]
        if len(missing) < CACHE_PRIME_THRESHOLD:
            return
        if len(self._indices) + len(missing) > _CACHE_MAX_ENTRIES:
            self._indices.clear()
        key_array = np.array(missing, dtype=np.uint64)
        matrix = partitioned_cell_indices(self._cell_hashes, self._block_size, key_array)
        self._indices.update(zip(missing, matrix.T.tolist()))

    def check(self, key: int) -> int:
        """``checksum(key)``, memoised."""
        check = self._checks.get(key)
        if check is None:
            if len(self._checks) >= _CACHE_MAX_ENTRIES:
                self._checks.clear()
            check = self._checksum(key)
            self._checks[key] = check
        return check

    def indices(self, key: int) -> list[int]:
        """The key's ``q`` partitioned cell indices, memoised."""
        cells = self._indices.get(key)
        if cells is None:
            if len(self._indices) >= _CACHE_MAX_ENTRIES:
                self._indices.clear()
            block_size = self._block_size
            cells = [
                j * block_size + cell_hash(key) % block_size
                for j, cell_hash in enumerate(self._cell_hashes)
            ]
            self._indices[key] = cells
        return cells
