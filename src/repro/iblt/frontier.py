"""Shared peeling-frontier machinery for the IBLT family.

Peeling is the core-emergence process of XORSAT / cuckoo-hashing
threshold analyses: decode succeeds by repeatedly stripping degree-1
(pure) cells, and each strip can only change the cells its key hashes
to.  The process is therefore inherently *incremental* — after the
initial pure scan, the only cells whose purity can have changed are the
ones actually touched by a peel.  Every decoder in this package tracks
that frontier instead of rescanning the table:

* the scalar decoders (:class:`~repro.iblt.iblt.IBLT` on the python
  backend, :class:`~repro.iblt.counting.MultisetIBLT`,
  :class:`~repro.iblt.riblt.RIBLT`) drive a :class:`PeelQueue` of
  candidate cell indices, seeded once and fed by the neighbours of each
  peeled key;
* the vectorised numpy decoder (``IBLT._decode_numpy_frontier``)
  maintains the same frontier as an index *array*, re-testing purity
  only on the cells touched by the previous batch peel.

The queue preserves each decoder's historical peel discipline exactly —
FIFO for the breadth-first decoders whose error-propagation analysis
depends on peel order (RIBLT Lemma 3.10), LIFO for the classic IBLT's
stack-based reference decoder — so decode output stays bit-identical to
the pre-frontier implementations.
"""

from __future__ import annotations

from collections import deque

__all__ = ["PeelQueue"]


class PeelQueue:
    """A deduplicated queue of candidate cell indices.

    A cell index is held at most once; pushing an enqueued index is a
    no-op.  ``fifo`` selects breadth-first (popleft) or depth-first
    (pop) order.  Membership is tracked with a flat flag table over the
    ``m`` cells, so push/pop are O(1) regardless of table size.
    """

    def __init__(self, m: int, fifo: bool = True):
        self._queue: deque[int] = deque()
        self._enqueued = bytearray(m)
        self._fifo = fifo

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def pending(self, index: int) -> bool:
        """Whether ``index`` is currently enqueued.

        Decoders check this *before* their purity test: the flag lookup
        is O(1) while purity costs a checksum evaluation, and a pending
        cell will be re-tested at pop time anyway.
        """
        return bool(self._enqueued[index])

    def push(self, index: int) -> None:
        """Enqueue ``index`` unless it is already pending."""
        if not self._enqueued[index]:
            self._enqueued[index] = 1
            self._queue.append(index)

    def pop(self) -> int:
        """Remove and return the next candidate (per the queue order)."""
        index = self._queue.popleft() if self._fifo else self._queue.pop()
        self._enqueued[index] = 0
        return index
