"""Robust Invertible Bloom Lookup Tables (Section 2.2 of the paper).

The RIBLT is the paper's main data-structure contribution.  It differs
from a classic IBLT in five ways (numbered as in the paper):

1. Peeling is *breadth-first* (FIFO): a cell that became peelable earlier
   is peeled earlier.  The error-propagation analysis (Lemma 3.10) depends
   on this order.
2. The table is *sparser*: callers size it so the load ``c = pairs/m``
   satisfies ``c < 1/(q(q-1))``, making the underlying hypergraph all trees
   and unicyclic components w.h.p. (Lemma B.3).
3. Cells hold a *sum* of keys (not an XOR) so duplicate keys can be
   recognised and so insert/delete are exact inverses over the integers.
4. Cells hold a *sum* of values: a ``d``-vector of integers in
   ``{-nΔ, ..., nΔ}`` (Python ints never overflow, so the paper's widened
   cell representation is automatic; the serializer accounts for the extra
   ``O(d log(nΔ))`` bits per cell).
5. A cell containing ``C`` copies of the *same* key is recognised by
   divisibility plus the checksum test ``checksum(K/C)·C == S`` and peeled
   in one step: each extracted pair's value is the clamped average ``V/C``
   with independent randomized rounding of fractional coordinates.

Because two *different* points with the same key don't cancel exactly,
peeling leaves residual "error" in the value sums which is swept along to
later extractions -- exactly the propagation of Figure 1 that Lemma 3.10
bounds.  The ``decode`` here implements those semantics faithfully:
peeling a cell subtracts the *entire cell snapshot* (count, key sum,
checksum sum, value sum) from every cell the key hashes to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import MalformedPayloadError
from ..hashing import Checksum, PairwiseHash, PublicCoins
from ..metric.spaces import Point
from .frontier import KeyHashCache, PeelQueue, divisible_key, seed_sum_cell_queue
from .iblt import (
    _active_kernels,
    kernel_hash_params,
    partitioned_cell_indices,
    validate_cell_ints,
)

__all__ = ["RIBLT", "RIBLTDecodeResult", "riblt_cells_for_pairs"]

#: Bound on untrusted cell sums accepted by :meth:`RIBLT.load_arrays`.
#: RIBLT sums are unbounded Python ints in memory, but nothing larger
#: than the serializer's varint cap (133 payload bits) can legitimately
#: cross a wire, so snapshots beyond it are rejected as malformed.
_SUM_LIMIT = (1 << 133) - 1


def riblt_cells_for_pairs(pairs: int, q: int = 3) -> int:
    """Paper sizing: ``m = 4·q²·k`` cells for up to ``4k`` decoded pairs.

    Algorithm 1 uses ``m = 4q²k`` and accepts decodes of at most ``4k``
    pairs, giving load ``c <= 4k / (4q²k) = 1/q² < 1/(q(q-1))`` as item 2
    requires.  ``pairs`` here is the *acceptance cap* (``4k``), so
    ``m = q² · pairs``.
    """
    if pairs < 1:
        raise ValueError(f"pairs must be >= 1, got {pairs}")
    if q < 3:
        raise ValueError(f"RIBLT requires q >= 3, got {q}")
    return q * q * pairs


@dataclass
class RIBLTDecodeResult:
    """Signed key-value pairs recovered from a subtracted RIBLT.

    ``inserted`` holds pairs contributed (net) by the inserting party
    (Alice in Algorithm 1); ``deleted`` pairs by the deleting party (Bob).
    Values are points of the space and may carry accumulated error relative
    to what was originally inserted -- that is the point of the analysis.
    """

    success: bool
    inserted: list[tuple[int, Point]] = field(default_factory=list)
    deleted: list[tuple[int, Point]] = field(default_factory=list)
    peel_rounds: int = 0

    @property
    def pair_count(self) -> int:
        return len(self.inserted) + len(self.deleted)


class RIBLT:
    """A robust IBLT over (key, point-value) pairs.

    Parameters
    ----------
    coins, label:
        Shared randomness; Alice's and Bob's tables must agree structurally.
    cells:
        Total cell count ``m`` (rounded up to a multiple of ``q``).
    q:
        Hash-function count; the paper requires ``q >= 3`` for the sparse
        hypergraph regime.
    key_bits:
        Key width; keys lie in ``[0, 2^key_bits)``.
    dim:
        Value dimension ``d``.
    side:
        Per-coordinate range ``Δ``: extracted values are clamped into
        ``[0, side-1]``.
    """

    def __init__(
        self,
        coins: PublicCoins,
        label: object,
        cells: int,
        q: int,
        key_bits: int,
        dim: int,
        side: int,
    ):
        if q < 3:
            raise ValueError(f"RIBLT requires q >= 3, got {q}")
        if cells < q:
            raise ValueError(f"cells must be >= q, got {cells}")
        self.q = q
        self.block_size = (cells + q - 1) // q
        self.m = self.block_size * q
        self.key_bits = key_bits
        self.dim = dim
        self.side = side
        self.label = label
        self._cell_hashes = [
            PairwiseHash(coins, ("riblt-cell", label, j), bits=61) for j in range(q)
        ]
        self.checksum = Checksum(coins, ("riblt-checksum", label), bits=61)
        # Decode hash cache, shared with every clone (`subtract` hands a
        # fresh clone to each reconciliation round; the cached values
        # are pure functions of the key under the shared coins).
        self._hash_cache = KeyHashCache(self.checksum, self._cell_hashes, self.block_size)
        self._kernel_params: tuple | None | bool = None  # lazy; False = ineligible
        self.counts = [0] * self.m
        self.key_sum = [0] * self.m
        self.check_sum = [0] * self.m
        self.value_sum = [[0] * dim for _ in range(self.m)]

    # -- structure ---------------------------------------------------------
    def cell_indices(self, key: int) -> list[int]:
        """The ``q`` distinct cells (one per block) that ``key`` maps to."""
        return [
            j * self.block_size + self._cell_hashes[j](key) % self.block_size
            for j in range(self.q)
        ]

    def _check_pair(self, key: int, value: Point) -> tuple[int, tuple[int, ...]]:
        key = int(key)
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key} outside [0, 2^{self.key_bits})")
        value = tuple(int(v) for v in value)
        if len(value) != self.dim:
            raise ValueError(f"value has dimension {len(value)}, expected {self.dim}")
        return key, value

    # -- updates -----------------------------------------------------------
    def insert(self, key: int, value: Point) -> None:
        """Add a key-value pair (Alice's operation in Algorithm 1)."""
        self._update(key, value, +1)

    def delete(self, key: int, value: Point) -> None:
        """Subtract a key-value pair (Bob's operation)."""
        self._update(key, value, -1)

    def _update(self, key: int, value: Point, sign: int) -> None:
        key, value = self._check_pair(key, value)
        check = self.checksum(key)
        for index in self.cell_indices(key):
            self.counts[index] += sign
            self.key_sum[index] += sign * key
            self.check_sum[index] += sign * check
            cell_value = self.value_sum[index]
            for coordinate in range(self.dim):
                cell_value[coordinate] += sign * value[coordinate]

    def cell_index_matrix(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cell_indices`: the ``(q, n)`` index matrix."""
        return partitioned_cell_indices(self._cell_hashes, self.block_size, keys)

    def insert_pairs(self, pairs: Iterable[tuple[int, Point]]) -> None:
        self._update_pairs(pairs, +1)

    def delete_pairs(self, pairs: Iterable[tuple[int, Point]]) -> None:
        self._update_pairs(pairs, -1)

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Array-native :meth:`insert`: ``uint64`` keys, ``(n, dim)`` values."""
        self._update_batch(keys, values, +1)

    def delete_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Array-native :meth:`delete`: ``uint64`` keys, ``(n, dim)`` values."""
        self._update_batch(keys, values, -1)

    def _update_batch(self, keys: np.ndarray, values: np.ndarray, sign: int) -> None:
        """Batched update without per-pair Python tuples on the hot path.

        ``keys`` is a 1-d ``uint64`` array (one key per pair, e.g. one
        column of :meth:`~repro.lsh.keys.PrefixKeyBuilder.keys_for`);
        ``values`` an ``(n, dim)`` integer matrix of point coordinates.
        Checksums and cell indices come from the vectorised Mersenne
        hashes, and the per-cell deltas are accumulated with ``np.add.at``
        — keys and checksums split into 32-bit limbs so every int64
        accumulator stays exact — then merged into the unbounded Python-int
        cell sums once per *touched cell* instead of once per pair.
        Bit-identical to a :meth:`_update_pairs` loop over the same pairs.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-d, got shape {keys.shape}")
        if values.shape != (keys.size, self.dim):
            raise ValueError(
                f"values must have shape {(keys.size, self.dim)}, got {values.shape}"
            )
        if keys.size == 0:
            return
        if self.key_bits < 64 and bool(
            (keys >> np.uint64(self.key_bits)).any()
        ):
            raise ValueError(f"keys outside [0, 2^{self.key_bits})")
        max_coordinate = int(np.abs(values).max()) if values.size else 0
        if keys.size >= (1 << 31) or max_coordinate * keys.size >= (1 << 62):
            # int64 delta accumulators could overflow; stay exact per pair.
            self._update_pairs(
                zip(keys.tolist(), map(tuple, values.tolist())), sign
            )
            return
        checks = self.checksum.hash_array(keys)
        indices = self.cell_index_matrix(keys)  # (q, n)
        low_mask = np.uint64(0xFFFFFFFF)
        shift = np.uint64(32)
        # One flat int64 accumulator holding `lanes` slots per cell (4
        # key/checksum limbs + dim value coordinates), so every scatter
        # is a single fast-path 1-d np.add.at — a 2-d `.at` on the value
        # matrix falls off numpy's unbuffered fast path and dominated
        # this function's profile.
        lanes = 4 + self.dim
        lane_values = np.concatenate(
            [
                (keys & low_mask).astype(np.int64)[None, :],
                (keys >> shift).astype(np.int64)[None, :],
                (checks & low_mask).astype(np.int64)[None, :],
                (checks >> shift).astype(np.int64)[None, :],
                values.T,
            ],
            axis=0,
        )  # (lanes, n)
        lane_offsets = np.arange(lanes, dtype=np.int64)[:, None]
        delta = np.zeros(self.m * lanes, dtype=np.int64)
        for j in range(self.q):
            flat = (indices[j] * lanes)[None, :] + lane_offsets
            np.add.at(delta, flat.ravel(), lane_values.ravel())
        count_delta = np.bincount(indices.reshape(-1), minlength=self.m)
        touched = np.flatnonzero(count_delta)
        # Merge once per touched cell, through plain Python lists — the
        # limb recombination shifts must run on Python ints (a cell's
        # int64 lane sums can exceed 2^31 in the high limb, and the
        # unbounded cell sums are exact by contract), and list indexing
        # beats ndarray scalar extraction several-fold in this loop.
        counts, key_sum, check_sum = self.counts, self.key_sum, self.check_sum
        count_list = count_delta[touched].tolist()
        lane_rows = delta.reshape(self.m, lanes)[touched].tolist()
        dim = self.dim
        for position, index in enumerate(touched.tolist()):
            row = lane_rows[position]
            counts[index] += sign * count_list[position]
            key_sum[index] += sign * (row[0] + (row[1] << 32))
            check_sum[index] += sign * (row[2] + (row[3] << 32))
            cell_value = self.value_sum[index]
            for coordinate in range(dim):
                cell_value[coordinate] += sign * row[4 + coordinate]

    def _update_pairs(self, pairs: Iterable[tuple[int, Point]], sign: int) -> None:
        """Batched insert/delete: cell indices and checksums are computed
        with the vectorised Mersenne hashes (the dominant per-pair cost);
        the unbounded cell sums are then updated exactly per pair."""
        pairs = [self._check_pair(key, value) for key, value in pairs]
        if not pairs:
            return
        if self.key_bits > 61:  # too wide for uint64 hashing; stay exact
            for key, value in pairs:
                self._update(key, value, sign)
            return
        keys = np.fromiter((key for key, _ in pairs), dtype=np.uint64, count=len(pairs))
        checks = self.checksum.hash_array(keys).tolist()
        indices = self.cell_index_matrix(keys)
        counts, key_sum, check_sum = self.counts, self.key_sum, self.check_sum
        for j in range(self.q):
            for index, (key, value), check in zip(indices[j].tolist(), pairs, checks):
                counts[index] += sign
                key_sum[index] += sign * key
                check_sum[index] += sign * check
                cell_value = self.value_sum[index]
                for coordinate in range(self.dim):
                    cell_value[coordinate] += sign * value[coordinate]

    # -- combination ---------------------------------------------------------
    def subtract(self, other: "RIBLT") -> "RIBLT":
        """Cell-wise ``self - other`` for two structurally identical tables."""
        self._check_compatible(other)
        result = self._empty_clone()
        for index in range(self.m):
            result.counts[index] = self.counts[index] - other.counts[index]
            result.key_sum[index] = self.key_sum[index] - other.key_sum[index]
            result.check_sum[index] = self.check_sum[index] - other.check_sum[index]
            result.value_sum[index] = [
                a - b
                for a, b in zip(self.value_sum[index], other.value_sum[index])
            ]
        return result

    def _check_compatible(self, other: "RIBLT") -> None:
        if (
            self.m != other.m
            or self.q != other.q
            or self.key_bits != other.key_bits
            or self.dim != other.dim
            or self.side != other.side
            or self.label != other.label
        ):
            raise ValueError("RIBLTs are structurally incompatible")

    def _empty_clone(self) -> "RIBLT":
        clone = object.__new__(RIBLT)
        clone.q = self.q
        clone.block_size = self.block_size
        clone.m = self.m
        clone.key_bits = self.key_bits
        clone.dim = self.dim
        clone.side = self.side
        clone.label = self.label
        clone._cell_hashes = self._cell_hashes
        clone.checksum = self.checksum
        clone._hash_cache = self._hash_cache
        clone._kernel_params = self._kernel_params
        clone.counts = [0] * self.m
        clone.key_sum = [0] * self.m
        clone.check_sum = [0] * self.m
        clone.value_sum = [[0] * self.dim for _ in range(self.m)]
        return clone

    def copy(self) -> "RIBLT":
        clone = self._empty_clone()
        clone.counts = list(self.counts)
        clone.key_sum = list(self.key_sum)
        clone.check_sum = list(self.check_sum)
        clone.value_sum = [list(cell) for cell in self.value_sum]
        return clone

    # -- array snapshots -----------------------------------------------------
    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cell state as ``(counts, key_sum, check_sum, value_sum)`` arrays.

        ``counts`` is ``int64``; the sums are ``object``-dtype arrays
        (``value_sum`` of shape ``(m, dim)``) because RIBLT cell sums are
        unbounded Python ints.  Always fresh arrays — the interchange
        format for persistence and transport, mirroring
        :meth:`IBLT.to_arrays`.
        """
        value_sum = np.empty((self.m, self.dim), dtype=object)
        for index in range(self.m):
            for coordinate in range(self.dim):
                value_sum[index, coordinate] = self.value_sum[index][coordinate]
        return (
            np.array(self.counts, dtype=np.int64),
            np.array(self.key_sum, dtype=object),
            np.array(self.check_sum, dtype=object),
            value_sum,
        )

    def load_arrays(
        self,
        counts: np.ndarray,
        key_sum: np.ndarray,
        check_sum: np.ndarray,
        value_sum: np.ndarray,
    ) -> "RIBLT":
        """Load a :meth:`to_arrays` snapshot into this (empty) table.

        The snapshot is untrusted: shapes, dtypes and value magnitudes
        are validated and inconsistencies raise
        :class:`~repro.errors.MalformedPayloadError` instead of building
        a table that silently misdecodes later.
        """
        if not self.is_empty():
            raise ValueError("table must be empty before loading cell arrays")
        count_list = validate_cell_ints(
            counts, "counts", self.m, -(1 << 63), (1 << 63) - 1
        )
        key_list = validate_cell_ints(key_sum, "key_sum", self.m, -_SUM_LIMIT, _SUM_LIMIT)
        check_list = validate_cell_ints(
            check_sum, "check_sum", self.m, -_SUM_LIMIT, _SUM_LIMIT
        )
        values = (
            value_sum
            if isinstance(value_sum, np.ndarray)
            else np.asarray(list(value_sum), dtype=object)
        )
        if values.shape != (self.m, self.dim):
            raise MalformedPayloadError(
                f"value_sum must have shape ({self.m}, {self.dim}), got {values.shape}"
            )
        value_list = validate_cell_ints(
            values.ravel(), "value_sum", self.m * self.dim, -_SUM_LIMIT, _SUM_LIMIT
        )
        self.counts = count_list
        self.key_sum = key_list
        self.check_sum = check_list
        self.value_sum = [
            value_list[index * self.dim : (index + 1) * self.dim]
            for index in range(self.m)
        ]
        return self

    def to_payload(self) -> tuple[bytes, int]:
        """Serialize this sketch; returns ``(payload, exact_bit_count)``.

        Part of the uniform sketch wire surface shared with
        :meth:`IBLT.to_payload <repro.iblt.iblt.IBLT.to_payload>`.
        """
        from ..protocol.tables import riblt_payload

        return riblt_payload(self)

    def from_payload(self, payload: bytes) -> "RIBLT":
        """Load a :meth:`to_payload` buffer into this (empty) shell.

        The payload is untrusted; damage raises the typed
        :class:`~repro.errors.DecodeError` hierarchy.
        """
        from ..protocol.serialize import BitReader
        from ..protocol.tables import read_riblt_cells

        return read_riblt_cells(BitReader(payload), self)

    # -- purity --------------------------------------------------------------
    def _pure_key(self, index: int, cache: KeyHashCache | None = None) -> int | None:
        """Return the key if cell ``index`` passes the multi-copy purity test.

        Section 2.2 item 5: the cell holds ``C`` copies of one key when the
        key sum is divisible by the count, the quotient is a valid key, and
        ``checksum(K/C) · C == S``.  ``cache`` memoises the checksum
        evaluation (a pure function of the key), which never changes the
        verdict — only the cost of reaching it.
        """
        key = divisible_key(self.counts[index], self.key_sum[index], 1 << self.key_bits)
        if key is None:
            return None
        check = self.checksum(key) if cache is None else cache.check(key)
        if check * self.counts[index] != self.check_sum[index]:
            return None
        return key

    # -- extraction helpers ----------------------------------------------------
    def _extract_values(
        self, value_total: Sequence[int], copies: int, rng: random.Random
    ) -> list[Point]:
        """Materialise ``copies`` values from a value sum (item 5 semantics).

        Each coordinate of ``value_total / copies`` is clamped into
        ``[0, side-1]`` and fractional coordinates are independently
        randomly rounded, once per extracted copy, with probability equal
        to the fractional remainder of rounding up.
        """
        top = self.side - 1
        points: list[Point] = []
        for _ in range(copies):
            coordinates: list[int] = []
            for total in value_total:
                if total <= 0:
                    coordinates.append(0)
                    continue
                if total >= top * copies:
                    coordinates.append(top)
                    continue
                floor_value, remainder = divmod(total, copies)
                if remainder and rng.random() < remainder / copies:
                    floor_value += 1
                coordinates.append(floor_value)
            points.append(tuple(coordinates))
        return points

    # -- decoding ------------------------------------------------------------
    def _sum_kernel_params(self) -> "tuple | None":
        """Kernel hash coefficients for this table (lazy, clone-shared)."""
        params = self._kernel_params
        if params is None:
            if self.key_bits <= 61:
                params = kernel_hash_params(self.checksum, self._cell_hashes)
            params = self._kernel_params = params if params is not None else False
        return params or None

    def _decode_compiled(
        self, kernels, rng: random.Random
    ) -> RIBLTDecodeResult | None:
        """Run the FIFO peel through the compiled kernel, or bail.

        Returns ``None`` whenever the table cannot be decoded compiled —
        keys wider than 61 bits, any cell sum at or beyond the kernels'
        guarded ``int64`` range (entry check here, per-subtraction checks
        in-kernel), or a record-capacity blowout.  Bailing is free of
        side effects: the kernel mutates only ``int64`` copies, and the
        randomized-rounding ``rng`` is consumed during the *replay* of
        the peel records, which only happens on success — so the caller
        falls back to the interpreter on bit-identical state.
        """
        params = self._sum_kernel_params()
        if params is None:
            return None
        from ._kernels import SUM_BOUND

        try:
            counts = np.array(self.counts, dtype=np.int64)
            key_sum = np.array(self.key_sum, dtype=np.int64)
            check_sum = np.array(self.check_sum, dtype=np.int64)
            values = np.array(self.value_sum, dtype=np.int64).reshape(self.m, self.dim)
        except (OverflowError, ValueError):
            return None
        for array in (counts, key_sum, check_sum, values):
            if array.size and max(-int(array.min()), int(array.max())) >= SUM_BOUND:
                return None
        a2, a1, b, ha, hb = params
        capacity = 4 * self.m + 64
        peel_keys = np.empty(capacity, dtype=np.int64)
        peel_counts = np.empty(capacity, dtype=np.int64)
        peel_values = np.empty((capacity, self.dim), dtype=np.int64)
        status, n_peeled = kernels.riblt_fifo_peel(
            counts,
            key_sum,
            check_sum,
            values,
            a2,
            a1,
            b,
            ha,
            hb,
            np.uint64(self.block_size),
            np.int64(1 << self.key_bits),
            np.empty(self.m + 1, dtype=np.int64),
            np.zeros(self.m, dtype=np.uint8),
            peel_keys,
            peel_counts,
            peel_values,
        )
        if status != 0:
            return None
        # Replay the peel records in FIFO order: value extraction (and
        # with it every rng draw) happens here, exactly as the
        # interpreter interleaves it with the peel sequence.
        result = RIBLTDecodeResult(success=False)
        records = zip(
            peel_keys[:n_peeled].tolist(),
            peel_counts[:n_peeled].tolist(),
            peel_values[:n_peeled].tolist(),
        )
        for key, count, value_row in records:
            copies = -count if count < 0 else count
            sign = 1 if count > 0 else -1
            value_total = [sign * coordinate for coordinate in value_row]
            target = result.inserted if sign > 0 else result.deleted
            for value in self._extract_values(value_total, copies, rng):
                target.append((key, value))
        result.peel_rounds = n_peeled
        self.counts = counts.tolist()
        self.key_sum = key_sum.tolist()
        self.check_sum = check_sum.tolist()
        self.value_sum = values.tolist()
        result.success = bool(
            not counts.any() and not key_sum.any() and not check_sum.any()
        )
        return result

    def decode(
        self, rng: random.Random | None = None, engine: str | None = None
    ) -> RIBLTDecodeResult:
        """Breadth-first peeling of the (subtracted) table.

        Destructive.  ``rng`` drives the randomized rounding of averaged
        values (the decoder's private randomness; defaults to a fixed
        seed for reproducibility).

        ``engine`` selects how the peel is evaluated: ``"cached"``
        batch-primes the shared
        :class:`~repro.iblt.frontier.KeyHashCache` with one vectorised
        Mersenne pass and memoises everything else; ``"scalar"`` is the
        pre-engine reference that hashes scalar-per-step;
        ``"compiled"`` requires the nopython FIFO kernel
        (:mod:`repro.iblt._kernels`), raising ``RuntimeError`` when the
        compiled layer is unavailable.  ``None`` (the default) uses the
        compiled kernel when ``REPRO_KERNELS`` resolves to it and the
        cached engine otherwise.  The peel *sequence* — FIFO order,
        snapshot subtraction, value rounding — is identical in every
        engine (the cache and the kernel evaluate the same pure
        functions and replay the same discipline), so all of them
        produce bit-identical results; tests pin this.  A table the
        kernel cannot hold (keys wider than 61 bits, any cell sum
        beyond its guarded ``int64`` range) falls back to the cached
        engine on untouched state.

        ``success`` requires every cell to end with zero count, key sum and
        checksum sum; *value* residue may remain -- that is the error the
        protocol's analysis charges to the in-bucket matching.
        """
        if engine not in (None, "cached", "scalar", "compiled"):
            raise ValueError(
                f"engine must be 'cached', 'scalar' or 'compiled', got {engine!r}"
            )
        if rng is None:
            rng = random.Random(0x5EED)
        kernels = None
        if engine == "compiled":
            from . import _kernels

            kernels = _kernels.require()
        elif engine is None:
            kernels = _active_kernels()
        if kernels is not None:
            result = self._decode_compiled(kernels, rng)
            if result is not None:
                return result
        result = RIBLTDecodeResult(success=False)
        cache = self._hash_cache if engine != "scalar" else None

        # Breadth-first frontier (item 1: FIFO order, which Lemma 3.10's
        # error-propagation analysis depends on), fed incrementally with
        # the cells each peel touches; the seeding scan batch-primes the
        # cache in the same pass.
        queue = PeelQueue(self.m, fifo=True)
        seed_sum_cell_queue(
            self.counts, self.key_sum, self.check_sum, self.key_bits,
            queue, cache, self.checksum,
        )

        while queue:
            index = queue.pop()
            key = self._pure_key(index, cache)
            if key is None:
                continue
            result.peel_rounds += 1
            count = self.counts[index]
            copies = abs(count)
            sign = 1 if count > 0 else -1
            # Normalise sums to the positive orientation for extraction.
            value_total = [sign * coordinate for coordinate in self.value_sum[index]]
            values = self._extract_values(value_total, copies, rng)
            target = result.inserted if sign > 0 else result.deleted
            for value in values:
                target.append((key, value))

            # Subtract the *whole cell snapshot* from every cell of the key;
            # this removes the copies and propagates any residual value
            # error the cell had absorbed (Figure 1 semantics).
            snapshot_count = count
            snapshot_key = self.key_sum[index]
            snapshot_check = self.check_sum[index]
            snapshot_value = list(self.value_sum[index])
            neighbors = (
                self.cell_indices(key) if cache is None else cache.indices(key)
            )
            for neighbor in neighbors:
                self.counts[neighbor] -= snapshot_count
                self.key_sum[neighbor] -= snapshot_key
                self.check_sum[neighbor] -= snapshot_check
                neighbor_value = self.value_sum[neighbor]
                for coordinate in range(self.dim):
                    neighbor_value[coordinate] -= snapshot_value[coordinate]
                if (
                    not queue.pending(neighbor)
                    and self._pure_key(neighbor, cache) is not None
                ):
                    queue.push(neighbor)

        result.success = all(
            self.counts[index] == 0
            and self.key_sum[index] == 0
            and self.check_sum[index] == 0
            for index in range(self.m)
        )
        return result

    # -- introspection ---------------------------------------------------------
    def is_empty(self) -> bool:
        for count, key in zip(self.counts, self.key_sum):
            if count != 0 or key != 0:
                return False
        return True

    def residual_value_mass(self) -> int:
        """Total absolute value residue left in cells (post-decode noise)."""
        return sum(
            abs(coordinate) for cell in self.value_sum for coordinate in cell
        )
