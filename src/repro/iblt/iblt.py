"""Classic Invertible Bloom Lookup Tables (Goodrich & Mitzenmacher [13]).

An IBLT stores keys in ``m`` cells using ``q`` hash functions; each cell
keeps a signed count, an XOR of the keys hashed to it, and an XOR of their
checksums.  Insertions and deletions are symmetric, so the table of
``S_B`` minus the table of ``S_A`` contains exactly the symmetric
difference, which a peeling process recovers in ``O(m)`` time whenever the
number of differences is below ``c·m`` for a constant ``c`` (Theorem 2.6).

This is the standard-set-reconciliation workhorse the paper builds on; the
robust variant for noisy values lives in :mod:`repro.iblt.riblt`.

The table is *partitioned*: hash function ``j`` maps into the ``j``-th
block of ``m/q`` cells, guaranteeing the ``q`` cell indices of a key are
distinct (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..hashing import Checksum, PairwiseHash, PublicCoins

__all__ = ["IBLT", "IBLTDecodeResult", "cells_for_differences"]

#: Conservative cells-per-difference ratio; q=3 peeling succeeds w.h.p.
#: below load ~0.81, so 2x headroom keeps the failure probability tiny
#: at the small table sizes experiments use.
DEFAULT_HEADROOM = 2.0


def cells_for_differences(expected_differences: int, q: int = 3, headroom: float = DEFAULT_HEADROOM) -> int:
    """A table size ``m`` (multiple of ``q``) for an expected difference count."""
    if expected_differences < 0:
        raise ValueError("expected_differences must be >= 0")
    raw = max(q, int(headroom * max(1, expected_differences)) + q)
    return ((raw + q - 1) // q) * q


@dataclass
class IBLTDecodeResult:
    """Outcome of peeling an IBLT difference table.

    Attributes
    ----------
    success:
        True iff the table fully emptied (no 2-core remained).
    inserted:
        Keys recovered with positive sign (present in the *inserting*
        party's set only).
    deleted:
        Keys recovered with negative sign.
    """

    success: bool
    inserted: list[int] = field(default_factory=list)
    deleted: list[int] = field(default_factory=list)

    @property
    def difference_count(self) -> int:
        return len(self.inserted) + len(self.deleted)


class IBLT:
    """An invertible Bloom lookup table over integer keys.

    Parameters
    ----------
    coins, label:
        Shared randomness: both parties must build structurally identical
        tables (same cell hashes, same checksum function) to subtract them.
    cells:
        Total cell count ``m`` (rounded up to a multiple of ``q``).
    q:
        Number of hash functions / blocks.
    key_bits:
        Width of stored keys; keys must lie in ``[0, 2^key_bits)``.
    """

    def __init__(
        self,
        coins: PublicCoins,
        label: object,
        cells: int,
        q: int = 3,
        key_bits: int = 61,
    ):
        if q < 2:
            raise ValueError(f"q must be >= 2, got {q}")
        if cells < q:
            raise ValueError(f"cells must be >= q, got {cells}")
        self.q = q
        self.block_size = (cells + q - 1) // q
        self.m = self.block_size * q
        self.key_bits = key_bits
        self.label = label
        self._cell_hashes = [
            PairwiseHash(coins, ("iblt-cell", label, j), bits=61) for j in range(q)
        ]
        self.checksum = Checksum(coins, ("iblt-checksum", label), bits=61)
        self.counts = [0] * self.m
        self.key_xor = [0] * self.m
        self.check_xor = [0] * self.m

    # -- structure ---------------------------------------------------------
    def cell_indices(self, key: int) -> list[int]:
        """The ``q`` distinct cells ``key`` maps to (one per block)."""
        return [
            j * self.block_size + self._cell_hashes[j](key) % self.block_size
            for j in range(self.q)
        ]

    def _check_key(self, key: int) -> int:
        key = int(key)
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key} outside [0, 2^{self.key_bits})")
        return key

    # -- updates -----------------------------------------------------------
    def insert(self, key: int) -> None:
        """Add a key (count +1 in each of its cells)."""
        self._update(key, +1)

    def delete(self, key: int) -> None:
        """Remove a key (count -1); valid even if the key was never added."""
        self._update(key, -1)

    def _update(self, key: int, sign: int) -> None:
        key = self._check_key(key)
        check = self.checksum(key)
        for index in self.cell_indices(key):
            self.counts[index] += sign
            self.key_xor[index] ^= key
            self.check_xor[index] ^= check

    def insert_all(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.insert(key)

    def delete_all(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.delete(key)

    # -- combination ---------------------------------------------------------
    def subtract(self, other: "IBLT") -> "IBLT":
        """Cell-wise difference ``self - other`` (for reconciliation).

        Both tables must have been built from the same coins/label/shape.
        After subtraction the table holds the symmetric difference of the
        two key multisets, inserted keys positive and the other side's
        negative.
        """
        self._check_compatible(other)
        result = self._empty_clone()
        for index in range(self.m):
            result.counts[index] = self.counts[index] - other.counts[index]
            result.key_xor[index] = self.key_xor[index] ^ other.key_xor[index]
            result.check_xor[index] = self.check_xor[index] ^ other.check_xor[index]
        return result

    def _check_compatible(self, other: "IBLT") -> None:
        if (
            self.m != other.m
            or self.q != other.q
            or self.key_bits != other.key_bits
            or self.label != other.label
        ):
            raise ValueError("IBLTs are structurally incompatible")

    def _empty_clone(self) -> "IBLT":
        clone = object.__new__(IBLT)
        clone.q = self.q
        clone.block_size = self.block_size
        clone.m = self.m
        clone.key_bits = self.key_bits
        clone.label = self.label
        clone._cell_hashes = self._cell_hashes
        clone.checksum = self.checksum
        clone.counts = [0] * self.m
        clone.key_xor = [0] * self.m
        clone.check_xor = [0] * self.m
        return clone

    def copy(self) -> "IBLT":
        clone = self._empty_clone()
        clone.counts = list(self.counts)
        clone.key_xor = list(self.key_xor)
        clone.check_xor = list(self.check_xor)
        return clone

    # -- decoding ------------------------------------------------------------
    def _is_pure(self, index: int) -> bool:
        count = self.counts[index]
        if count not in (1, -1):
            return False
        key = self.key_xor[index]
        return self.check_xor[index] == self.checksum(key)

    def decode(self) -> IBLTDecodeResult:
        """Peel the table, recovering the signed symmetric difference.

        Destructive: the table is emptied of whatever could be peeled.
        ``success`` is True iff every cell ended at count 0 with zero key
        and checksum XORs (i.e. the hypergraph had an empty 2-core and no
        checksum anomalies).
        """
        result = IBLTDecodeResult(success=False)
        queue = [index for index in range(self.m) if self._is_pure(index)]
        seen_in_queue = set(queue)
        while queue:
            index = queue.pop()
            seen_in_queue.discard(index)
            if not self._is_pure(index):
                continue
            sign = self.counts[index]
            key = self.key_xor[index]
            if sign > 0:
                result.inserted.append(key)
            else:
                result.deleted.append(key)
            self._update(key, -sign)
            for neighbor in self.cell_indices(key):
                if neighbor not in seen_in_queue and self._is_pure(neighbor):
                    queue.append(neighbor)
                    seen_in_queue.add(neighbor)
        result.success = all(
            self.counts[index] == 0
            and self.key_xor[index] == 0
            and self.check_xor[index] == 0
            for index in range(self.m)
        )
        return result

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        """Net number of (signed) items currently in the table."""
        return abs(sum(self.counts)) // self.q if self.q else 0

    def is_empty(self) -> bool:
        return all(count == 0 for count in self.counts) and all(
            x == 0 for x in self.key_xor
        )

    def nonzero_cells(self) -> Iterator[int]:
        for index in range(self.m):
            if self.counts[index] != 0 or self.key_xor[index] != 0:
                yield index
