"""Classic Invertible Bloom Lookup Tables (Goodrich & Mitzenmacher [13]).

An IBLT stores keys in ``m`` cells using ``q`` hash functions; each cell
keeps a signed count, an XOR of the keys hashed to it, and an XOR of their
checksums.  Insertions and deletions are symmetric, so the table of
``S_B`` minus the table of ``S_A`` contains exactly the symmetric
difference, which a peeling process recovers in ``O(m)`` time whenever the
number of differences is below ``c·m`` for a constant ``c`` (Theorem 2.6).

This is the standard-set-reconciliation workhorse the paper builds on; the
robust variant for noisy values lives in :mod:`repro.iblt.riblt`.

The table is *partitioned*: hash function ``j`` maps into the ``j``-th
block of ``m/q`` cells, guaranteeing the ``q`` cell indices of a key are
distinct (Section 2.2).

Two backends are available (see :mod:`repro.iblt.backend`): the default
``"numpy"`` backend keeps ``counts``/``key_xor``/``check_xor`` in flat
arrays and runs inserts, subtraction and peeling as vectorised ``uint64``
operations; the ``"python"`` backend is the original list-of-int
reference path.  Both produce bit-identical tables and decode output for
the same public coins.  Because all XOR/add cell updates commute, the
numpy decoder peels the table in *rounds* — the current frontier of pure
cells is removed with one batched scatter per round — which recovers
exactly the same key set as sequential peeling (the unpeelable 2-core of
the hypergraph is order-independent).

The round frontier itself is tracked *incrementally* (decode mode
``"frontier"``, the default): peeling a pure cell's key can only change
the cells that key hashes to, so after the one seeding scan each round
re-tests purity only on the cells touched by the previous batch peel —
``O(q)`` cells per peeled key instead of a full ``m``-cell rescan per
round.  Any cell that stays pure across a round was itself peeled (its
key maps to it), hence touched, so the incremental candidate set always
contains every pure cell and the round sequence is bit-identical to the
pre-frontier ``"rescan"`` decoder retained in
:meth:`IBLT._decode_numpy_rescan`.  The decoder is additionally
*adaptive* (see :mod:`repro.iblt.frontier`): touched cells are deduped
through a preallocated flag array shared across rounds and repeated
``decode()`` calls, and any round whose candidate set falls to at most
``tail_threshold`` cells runs in scalar arithmetic — the peel frontier
shrinks geometrically, so the tail of every decode is dominated by
fixed numpy call overhead unless the engine switches gears.  That argument assumes every cell
passing the purity test holds a real key; a 61-bit checksum *collision*
(a cell whose garbage ``key_xor`` happens to satisfy the checksum test
without hashing to that cell) breaks it — the rescan decoder re-peels
such a cell every round while the frontier peels it once.  Both modes
still report ``success=False`` there; only the garbage output differs,
with probability ``~2^-61`` per cell under random coins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..errors import MalformedPayloadError
from ..hashing import Checksum, PairwiseHash, PublicCoins
from ..hashing.mersenne import affine_mod_p, fold_bits, to_field
from .backend import resolve_backend, resolve_decode_mode
from .frontier import PEEL_TAIL_THRESHOLD, KeyHashCache, PeelQueue, PeelScratch


def _active_kernels():
    """The compiled kernel namespace, or None (probe cached per env)."""
    from . import _kernels

    return _kernels.active()


def kernel_hash_params(
    checksum: Checksum, cell_hashes: "list[PairwiseHash]"
) -> "tuple | None":
    """Hash coefficients in the uint64 form the compiled kernels consume.

    Returns ``(a2, a1, b, ha, hb)`` — checksum polynomial coefficients
    plus per-block affine coefficient vectors — or ``None`` when any
    hash folds below 61 bits (the kernels assume the fold is the
    identity, which holds for every table this package builds).
    """
    if checksum.bits != 61 or any(h.bits != 61 for h in cell_hashes):
        return None
    return (
        np.uint64(checksum.a2),
        np.uint64(checksum.a1),
        np.uint64(checksum.b),
        np.array([h.a for h in cell_hashes], dtype=np.uint64),
        np.array([h.b for h in cell_hashes], dtype=np.uint64),
    )

__all__ = [
    "IBLT",
    "IBLTDecodeResult",
    "cells_for_differences",
    "coerce_key_array",
    "partitioned_cell_indices",
    "validate_cell_ints",
]


def validate_cell_ints(
    values: "np.ndarray | Iterable[int]",
    name: str,
    length: int,
    minimum: int,
    maximum: int,
) -> list[int]:
    """Validate an untrusted cell-array snapshot into a list of ints.

    Shared by :meth:`IBLT.load_arrays` and :meth:`RIBLT.load_arrays`:
    the input must be a 1-d integer array (or iterable of Python ints —
    ``object`` dtype is accepted for unbounded RIBLT sums) of exactly
    ``length`` elements, every value inside ``[minimum, maximum]``.
    Anything else — float or bool dtypes that would silently truncate or
    misdecode later, wrong shapes, out-of-range cells — raises
    :class:`~repro.errors.MalformedPayloadError`.
    """
    arr = values if isinstance(values, np.ndarray) else np.asarray(list(values))
    if arr.shape != (length,):
        raise MalformedPayloadError(
            f"{name} must have shape ({length},), got {arr.shape}"
        )
    if arr.dtype.kind == "O":
        items = arr.tolist()
        for value in items:
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise MalformedPayloadError(
                    f"{name} must contain integers, got {type(value).__name__}"
                )
        items = [int(value) for value in items]
    elif arr.dtype.kind in ("i", "u"):
        items = [int(value) for value in arr.tolist()]
    else:
        raise MalformedPayloadError(
            f"{name} must be an integer array, got dtype {arr.dtype}"
        )
    for value in items:
        if not minimum <= value <= maximum:
            raise MalformedPayloadError(
                f"{name} cell value {value} outside [{minimum}, {maximum}]"
            )
    return items

#: Conservative cells-per-difference ratio; q=3 peeling succeeds w.h.p.
#: below load ~0.81, so 2x headroom keeps the failure probability tiny
#: at the small table sizes experiments use.
DEFAULT_HEADROOM = 2.0

#: Widest key the numpy backend can store: uint64 cells hold 61-bit field
#: elements; wider keys silently fall back to the python backend.
_MAX_NUMPY_KEY_BITS = 61


def coerce_key_array(keys: "np.ndarray | Iterable[int]", key_bits: int) -> np.ndarray:
    """Validate keys into a flat ``uint64`` array; ``ValueError`` otherwise.

    Accepts integer ndarrays or iterables of ints.  Negative keys and keys
    at or above ``2^key_bits`` raise the same ``ValueError`` the scalar
    insert path raises — batch and scalar inserts must reject identically
    (a silent two's-complement wrap would corrupt the table instead).
    """
    arr = keys if isinstance(keys, np.ndarray) else np.asarray(list(keys))
    if arr.ndim != 1:
        raise ValueError(f"expected a flat key array, got shape {arr.shape}")
    if arr.size == 0:
        return np.empty(0, dtype=np.uint64)
    if arr.dtype.kind == "O":  # oversized Python ints; validate element-wise
        values = [int(v) for v in arr.tolist()]
        for value in values:
            if not 0 <= value < (1 << key_bits):
                raise ValueError(f"key {value} outside [0, 2^{key_bits})")
        return np.array(values, dtype=np.uint64)
    if arr.dtype.kind not in ("i", "u"):
        raise ValueError(f"expected an integer key array, got dtype {arr.dtype}")
    if arr.dtype.kind == "i" and int(arr.min()) < 0:
        raise ValueError(f"key {int(arr.min())} outside [0, 2^{key_bits})")
    arr = np.ascontiguousarray(arr, dtype=np.uint64)
    if key_bits < 64 and int(arr.max()) >= (1 << key_bits):
        raise ValueError(f"key {int(arr.max())} outside [0, 2^{key_bits})")
    return arr


def partitioned_cell_indices(
    cell_hashes: list[PairwiseHash], block_size: int, keys: np.ndarray
) -> np.ndarray:
    """Vectorised partitioned-table cell indexing: the ``(q, n)`` matrix.

    Hash ``j`` maps each key into the ``j``-th block of ``block_size``
    cells — the shared indexing scheme of every IBLT variant here.  When
    all hashes share an output width (always true for the tables in this
    package) the ``q`` Carter–Wegman evaluations run as one broadcast
    ``(q, n)`` affine pass, which matters for the decoder where ``n`` is
    a small peel frontier and per-call overhead would dominate.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    widths = {cell_hash.bits for cell_hash in cell_hashes}
    if len(widths) == 1:
        a = np.array([cell_hash.a for cell_hash in cell_hashes], dtype=np.uint64)
        b = np.array([cell_hash.b for cell_hash in cell_hashes], dtype=np.uint64)
        width = widths.pop()
        if width == 61:  # fold is the identity; eligible for the fused kernel
            kernels = _active_kernels()
            if kernels is not None:
                return kernels.cell_index_matrix(
                    a, b, to_field(keys), np.uint64(block_size)
                )
        hashed = fold_bits(
            affine_mod_p(a[:, None], b[:, None], to_field(keys)[None, :]),
            width,
        )
        indices = (hashed % np.uint64(block_size)).astype(np.int64)
        indices += (np.arange(len(cell_hashes), dtype=np.int64) * block_size)[:, None]
        return indices
    indices = np.empty((len(cell_hashes), keys.shape[0]), dtype=np.int64)
    for j, cell_hash in enumerate(cell_hashes):
        hashed = cell_hash.hash_array(keys) % np.uint64(block_size)
        indices[j] = hashed.astype(np.int64) + j * block_size
    return indices


def cells_for_differences(expected_differences: int, q: int = 3, headroom: float = DEFAULT_HEADROOM) -> int:
    """A table size ``m`` (multiple of ``q``) for an expected difference count."""
    if expected_differences < 0:
        raise ValueError("expected_differences must be >= 0")
    raw = max(q, int(headroom * max(1, expected_differences)) + q)
    return ((raw + q - 1) // q) * q


@dataclass
class IBLTDecodeResult:
    """Outcome of peeling an IBLT difference table.

    Attributes
    ----------
    success:
        True iff the table fully emptied (no 2-core remained).
    inserted:
        Keys recovered with positive sign (present in the *inserting*
        party's set only).
    deleted:
        Keys recovered with negative sign.
    """

    success: bool
    inserted: list[int] = field(default_factory=list)
    deleted: list[int] = field(default_factory=list)

    @property
    def difference_count(self) -> int:
        return len(self.inserted) + len(self.deleted)


class IBLT:
    """An invertible Bloom lookup table over integer keys.

    Parameters
    ----------
    coins, label:
        Shared randomness: both parties must build structurally identical
        tables (same cell hashes, same checksum function) to subtract them.
    cells:
        Total cell count ``m`` (rounded up to a multiple of ``q``).
    q:
        Number of hash functions / blocks.
    key_bits:
        Width of stored keys; keys must lie in ``[0, 2^key_bits)``.
    backend:
        ``"numpy"`` or ``"python"`` (default: the process-wide default,
        see :mod:`repro.iblt.backend`).  Keys wider than 61 bits force
        the python backend unless ``"numpy"`` was requested explicitly.
    decode_mode:
        ``"frontier"`` (incremental candidate tracking, the default) or
        ``"rescan"`` (full pure-mask rescan per round, the pre-frontier
        oracle).  Only affects the numpy decoder; both modes produce
        identical output.
    """

    def __init__(
        self,
        coins: PublicCoins,
        label: object,
        cells: int,
        q: int = 3,
        key_bits: int = 61,
        backend: str | None = None,
        decode_mode: str | None = None,
    ):
        if q < 2:
            raise ValueError(f"q must be >= 2, got {q}")
        if cells < q:
            raise ValueError(f"cells must be >= q, got {cells}")
        if backend == "numpy" and key_bits > _MAX_NUMPY_KEY_BITS:
            raise ValueError(
                f"the numpy backend holds keys of <= {_MAX_NUMPY_KEY_BITS} bits, "
                f"got key_bits={key_bits}"
            )
        self.q = q
        self.block_size = (cells + q - 1) // q
        self.m = self.block_size * q
        self.key_bits = key_bits
        self.label = label
        self.backend = resolve_backend(backend)
        if key_bits > _MAX_NUMPY_KEY_BITS:
            self.backend = "python"
        self.decode_mode = resolve_decode_mode(decode_mode)
        self._cell_hashes = [
            PairwiseHash(coins, ("iblt-cell", label, j), bits=61) for j in range(q)
        ]
        self.checksum = Checksum(coins, ("iblt-checksum", label), bits=61)
        #: Candidate-set size at or below which the adaptive frontier
        #: decoder runs a round in scalar arithmetic.  Behaviour-neutral
        #: (any value decodes bit-identically); exposed for tests and
        #: tuning.
        self.tail_threshold = PEEL_TAIL_THRESHOLD
        # Decode work state, shared with every clone this table spawns
        # (`subtract` hands a fresh clone to each reconciliation, and the
        # buffers/caches are pure functions of the shared hash context),
        # so repeated decodes reuse one allocation.  Not thread-safe.
        self._scratch = PeelScratch()
        self._hash_cache = KeyHashCache(self.checksum, self._cell_hashes, self.block_size)
        self._kernel_params: tuple | None | bool = None  # lazy; False = ineligible
        self._alloc_cells()

    def _alloc_cells(self) -> None:
        if self.backend == "numpy":
            self.counts: np.ndarray | list[int] = np.zeros(self.m, dtype=np.int64)
            self.key_xor: np.ndarray | list[int] = np.zeros(self.m, dtype=np.uint64)
            self.check_xor: np.ndarray | list[int] = np.zeros(self.m, dtype=np.uint64)
        else:
            self.counts = [0] * self.m
            self.key_xor = [0] * self.m
            self.check_xor = [0] * self.m

    # -- structure ---------------------------------------------------------
    def cell_indices(self, key: int) -> list[int]:
        """The ``q`` distinct cells ``key`` maps to (one per block)."""
        return [
            j * self.block_size + self._cell_hashes[j](key) % self.block_size
            for j in range(self.q)
        ]

    def cell_index_matrix(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cell_indices`: the ``(q, n)`` index matrix."""
        return partitioned_cell_indices(self._cell_hashes, self.block_size, keys)

    def _check_key(self, key: int) -> int:
        key = int(key)
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key} outside [0, 2^{self.key_bits})")
        return key

    def _check_key_array(self, keys: np.ndarray) -> np.ndarray:
        return coerce_key_array(keys, self.key_bits)

    # -- updates -----------------------------------------------------------
    def insert(self, key: int) -> None:
        """Add a key (count +1 in each of its cells)."""
        self._update(key, +1)

    def delete(self, key: int) -> None:
        """Remove a key (count -1); valid even if the key was never added."""
        self._update(key, -1)

    def _update(self, key: int, sign: int) -> None:
        key = self._check_key(key)
        check = self.checksum(key)
        for index in self.cell_indices(key):
            self.counts[index] += sign
            self.key_xor[index] ^= key
            self.check_xor[index] ^= check

    def insert_batch(self, keys: np.ndarray) -> None:
        """Add a whole key array in one vectorised pass (numpy backend).

        On the python backend this degrades gracefully to a loop, so
        callers can batch unconditionally.
        """
        self._update_batch(keys, +1)

    def delete_batch(self, keys: np.ndarray) -> None:
        """Remove a whole key array in one vectorised pass."""
        self._update_batch(keys, -1)

    def _update_batch(self, keys: np.ndarray, sign: int) -> None:
        if self.backend != "numpy":
            # Validate the whole batch before mutating anything, so an
            # invalid key leaves the table untouched on both backends.
            key_list = [
                self._check_key(key) for key in np.asarray(keys).ravel().tolist()
            ]
            for key in key_list:
                self._update(key, sign)
            return
        keys = self._check_key_array(keys)
        if keys.size == 0:
            return
        self._scatter(keys, sign)

    def _scatter(self, keys: np.ndarray, signed_counts: int | np.ndarray) -> None:
        """Apply one ±1-signed update per key to its cells (numpy)."""
        self._scatter_at(
            self.cell_index_matrix(keys),
            keys,
            self.checksum.hash_array(keys),
            signed_counts,
        )

    def _scatter_at(
        self,
        indices: np.ndarray,
        keys: np.ndarray,
        checks: np.ndarray,
        signed_counts: int | np.ndarray,
    ) -> None:
        """Scatter updates through precomputed indices and checksums.

        ``signed_counts`` entries must be ±1: counts are scaled by them
        but the key/checksum XORs flip exactly once per key regardless,
        so larger magnitudes would desynchronise counts from XORs.  The
        decoder reuses ``indices`` as the touched-cell frontier and
        reads ``checks`` straight out of the pure cells it peels, which
        is why both are parameters rather than recomputed here.
        """
        assert np.all(np.abs(signed_counts) == 1), "scatter updates must be ±1"
        for j in range(self.q):
            row = indices[j]
            np.add.at(self.counts, row, signed_counts)
            np.bitwise_xor.at(self.key_xor, row, keys)
            np.bitwise_xor.at(self.check_xor, row, checks)

    def insert_all(self, keys: Iterable[int]) -> None:
        if self.backend == "numpy":
            self.insert_batch(coerce_key_array(keys, self.key_bits))
            return
        for key in keys:
            self.insert(key)

    def delete_all(self, keys: Iterable[int]) -> None:
        if self.backend == "numpy":
            self.delete_batch(coerce_key_array(keys, self.key_bits))
            return
        for key in keys:
            self.delete(key)

    def apply_mutations(
        self,
        inserts: "np.ndarray | Iterable[int]" = (),
        deletes: "np.ndarray | Iterable[int]" = (),
    ) -> None:
        """Apply an insert/delete delta in one combined signed pass.

        Cell updates are commuting exact integer/XOR operations, so the
        result is pinned bit-identical to ``insert_batch(inserts)``
        followed by ``delete_batch(deletes)`` — warm-snapshot
        maintainers (the sketch store) rely on that.  On the numpy
        backend both deltas share a single scatter; either side may be
        empty.  Invalid keys in either delta leave the table untouched.
        """
        if self.backend != "numpy":
            ins = [
                self._check_key(key) for key in np.asarray(list(inserts)).ravel().tolist()
            ]
            dels = [
                self._check_key(key) for key in np.asarray(list(deletes)).ravel().tolist()
            ]
            for key in ins:
                self._update(key, +1)
            for key in dels:
                self._update(key, -1)
            return
        ins = self._check_key_array(inserts)
        dels = self._check_key_array(deletes)
        if ins.size == 0 and dels.size == 0:
            return
        keys = np.concatenate([ins, dels])
        signs = np.concatenate(
            [
                np.ones(ins.size, dtype=np.int64),
                -np.ones(dels.size, dtype=np.int64),
            ]
        )
        self._scatter(keys, signs)

    # -- combination ---------------------------------------------------------
    def subtract(self, other: "IBLT") -> "IBLT":
        """Cell-wise difference ``self - other`` (for reconciliation).

        Both tables must have been built from the same coins/label/shape.
        After subtraction the table holds the symmetric difference of the
        two key multisets, inserted keys positive and the other side's
        negative.
        """
        self._check_compatible(other)
        result = self._empty_clone()
        if self.backend == "numpy":
            result.counts = self.counts - other.counts
            result.key_xor = self.key_xor ^ other.key_xor
            result.check_xor = self.check_xor ^ other.check_xor
            return result
        for index in range(self.m):
            result.counts[index] = self.counts[index] - other.counts[index]
            result.key_xor[index] = self.key_xor[index] ^ other.key_xor[index]
            result.check_xor[index] = self.check_xor[index] ^ other.check_xor[index]
        return result

    def _check_compatible(self, other: "IBLT") -> None:
        if (
            self.m != other.m
            or self.q != other.q
            or self.key_bits != other.key_bits
            or self.label != other.label
        ):
            raise ValueError("IBLTs are structurally incompatible")
        if self.backend != other.backend:
            raise ValueError(
                f"cannot combine {self.backend!r} and {other.backend!r} backends"
            )

    def _empty_clone(self) -> "IBLT":
        clone = object.__new__(IBLT)
        clone.q = self.q
        clone.block_size = self.block_size
        clone.m = self.m
        clone.key_bits = self.key_bits
        clone.label = self.label
        clone.backend = self.backend
        clone.decode_mode = self.decode_mode
        clone._cell_hashes = self._cell_hashes
        clone.checksum = self.checksum
        clone.tail_threshold = self.tail_threshold
        clone._scratch = self._scratch
        clone._hash_cache = self._hash_cache
        clone._kernel_params = self._kernel_params
        clone._alloc_cells()
        return clone

    def copy(self) -> "IBLT":
        clone = self._empty_clone()
        if self.backend == "numpy":
            clone.counts = self.counts.copy()
            clone.key_xor = self.key_xor.copy()
            clone.check_xor = self.check_xor.copy()
        else:
            clone.counts = list(self.counts)
            clone.key_xor = list(self.key_xor)
            clone.check_xor = list(self.check_xor)
        return clone

    # -- array snapshots -----------------------------------------------------
    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cell state as ``(counts int64, key_xor uint64, check_xor uint64)``.

        Always returns fresh arrays regardless of backend — the
        ndarray-native interchange format for persistence and transport.
        """
        if self.backend == "numpy":
            return self.counts.copy(), self.key_xor.copy(), self.check_xor.copy()
        return (
            np.array(self.counts, dtype=np.int64),
            np.array(self.key_xor, dtype=np.uint64),
            np.array(self.check_xor, dtype=np.uint64),
        )

    def load_arrays(
        self, counts: np.ndarray, key_xor: np.ndarray, check_xor: np.ndarray
    ) -> "IBLT":
        """Load a :meth:`to_arrays` snapshot into this (empty) table.

        The snapshot is untrusted input (it may have crossed a wire or a
        cache): shapes, dtypes and value ranges are validated, and any
        inconsistency raises :class:`~repro.errors.MalformedPayloadError`
        rather than silently truncating floats or wrapping out-of-range
        cells into a table that misdecodes later.
        """
        if not self.is_empty():
            raise ValueError("table must be empty before loading cell arrays")
        count_list = validate_cell_ints(
            counts, "counts", self.m, -(1 << 63), (1 << 63) - 1
        )
        key_list = validate_cell_ints(
            key_xor, "key_xor", self.m, 0, (1 << self.key_bits) - 1
        )
        check_list = validate_cell_ints(
            check_xor, "check_xor", self.m, 0, (1 << 61) - 1
        )
        if self.backend == "numpy":
            self.counts = np.array(count_list, dtype=np.int64)
            self.key_xor = np.array(key_list, dtype=np.uint64)
            self.check_xor = np.array(check_list, dtype=np.uint64)
        else:
            self.counts = count_list
            self.key_xor = key_list
            self.check_xor = check_list
        return self

    def to_payload(self) -> tuple[bytes, int]:
        """Serialize this sketch; returns ``(payload, exact_bit_count)``.

        The uniform sketch wire surface: every sketch type
        (:class:`IBLT`, :class:`~repro.iblt.riblt.RIBLT`,
        :class:`~repro.iblt.counting.MultisetIBLT`,
        :class:`~repro.reconcile.strata.StrataEstimator`) exposes the
        same ``to_payload``/:meth:`from_payload` pair, so the wire layer
        and snapshot stores can treat them interchangeably.
        """
        from ..protocol.tables import iblt_payload

        return iblt_payload(self)

    def from_payload(self, payload: bytes) -> "IBLT":
        """Load a :meth:`to_payload` buffer into this (empty) shell.

        The payload is untrusted; damage raises the typed
        :class:`~repro.errors.DecodeError` hierarchy.
        """
        from ..protocol.serialize import BitReader
        from ..protocol.tables import read_iblt_cells

        return read_iblt_cells(BitReader(payload), self)

    # -- decoding ------------------------------------------------------------
    def _is_pure(self, index: int) -> bool:
        count = self.counts[index]
        if count not in (1, -1):
            return False
        key = self.key_xor[index]
        return self.check_xor[index] == self.checksum(key)

    def _pure_mask(self) -> np.ndarray:
        """Vectorised pure-cell detection over the whole table (numpy)."""
        return (np.abs(self.counts) == 1) & (
            self.check_xor == self.checksum.hash_array(self.key_xor)
        )

    def _pure_with_keys(self, cells: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pure cells among ``cells`` plus the keys they hold.

        The adaptive frontier decoder always passes deduplicated,
        ascending candidate arrays (see
        :meth:`~repro.iblt.frontier.PeelScratch.unique_cells`); the keys
        gathered for the checksum test are returned alongside so the
        peel round does not gather them a second time.
        """
        cells = cells[np.abs(self.counts[cells]) == 1]
        keys = self.key_xor[cells]
        mask = self.check_xor[cells] == self.checksum.hash_array(keys)
        return cells[mask], keys[mask]

    def decode(self) -> IBLTDecodeResult:
        """Peel the table, recovering the signed symmetric difference.

        Destructive: the table is emptied of whatever could be peeled.
        ``success`` is True iff every cell ended at count 0 with zero key
        and checksum XORs (i.e. the hypergraph had an empty 2-core and no
        checksum anomalies).
        """
        if self.backend == "numpy":
            if self.decode_mode == "rescan":
                return self._decode_numpy_rescan()
            return self._decode_numpy_frontier()
        return self._decode_python()

    def _peel_round(
        self,
        result: IBLTDecodeResult,
        pure_cells: np.ndarray,
        pure_keys: np.ndarray | None = None,
    ) -> np.ndarray:
        """Peel one round's pure cells; returns the touched-cell matrix.

        A key with count ±1 is simultaneously pure in up to q cells; each
        *distinct* signed key is peeled exactly once per round, appended
        in ``np.unique`` (sorted) order.  Batched removal is
        order-independent (XOR/add updates commute), and the returned
        ``(q, n)`` index matrix of the peeled keys is exactly the set of
        cells whose purity can have changed.  The checksums to scatter
        are read straight out of the pure cells — the purity test just
        proved ``check_xor == checksum(key)`` there — saving a hash pass.
        ``pure_keys`` (``key_xor[pure_cells]``, if the caller already
        gathered it for the purity test) likewise saves a re-gather.
        """
        if pure_keys is None:
            pure_keys = self.key_xor[pure_cells]
        keys, first = np.unique(pure_keys, return_index=True)
        picked = pure_cells[first]
        signs = self.counts[picked]
        checks = self.check_xor[picked]
        result.inserted.extend(keys[signs > 0].tolist())
        result.deleted.extend(keys[signs < 0].tolist())
        indices = self.cell_index_matrix(keys)
        self._scatter_at(indices, keys, checks, -signs)
        return indices

    def _peel_round_scalar(self, result: IBLTDecodeResult, candidates: list[int]) -> list[int]:
        """One adaptive-tail round: the same round discipline as
        :meth:`_peel_round`, in scalar arithmetic.

        ``candidates`` must be sorted ascending (the rescan candidate
        order): the first candidate cell that passes the purity test for
        a key is the cell its sign and checksum are read from, exactly
        as ``np.unique``'s first-occurrence pick over the ascending pure
        array.  Distinct keys are then peeled in ascending key order
        (``sorted`` over Python ints == ``np.unique`` over ``uint64``),
        so the appended output and the cell mutations are bit-identical
        to a vectorised round — only the constant factor changes, which
        is the point: at tail frontier sizes the fixed per-call overhead
        of each array operation exceeds the round's useful work.
        """
        counts, key_xor, check_xor = self.counts, self.key_xor, self.check_xor
        cache = self._hash_cache
        peeled: dict[int, tuple[int, int]] = {}
        for index in candidates:
            count = counts[index]
            if count != 1 and count != -1:
                continue
            key = int(key_xor[index])
            if key in peeled:  # sign already fixed by an earlier pure cell
                continue
            check = cache.check(key)
            if int(check_xor[index]) != check:
                continue
            peeled[key] = (int(count), check)
        touched: set[int] = set()
        for key in sorted(peeled):
            sign, check = peeled[key]
            if sign > 0:
                result.inserted.append(key)
            else:
                result.deleted.append(key)
            key_u64, check_u64 = np.uint64(key), np.uint64(check)
            for cell in cache.indices(key):
                counts[cell] -= sign
                key_xor[cell] ^= key_u64
                check_xor[cell] ^= check_u64
                touched.add(cell)
        return sorted(touched)

    def _tail_kernel_params(self) -> "tuple | None":
        """Kernel hash coefficients for this table (lazy, clone-shared)."""
        params = self._kernel_params
        if params is None:
            if self.key_bits <= _MAX_NUMPY_KEY_BITS:
                params = kernel_hash_params(self.checksum, self._cell_hashes)
            params = self._kernel_params = params if params is not None else False
        return params or None

    def _peel_round_scalar_compiled(
        self, kernels, params: tuple, result: IBLTDecodeResult, candidates: np.ndarray
    ) -> np.ndarray:
        """:meth:`_peel_round_scalar` through the compiled tail kernel.

        Bit-identical by construction (the kernel replays the scan/peel
        discipline on the same live cell arrays); returns the sorted
        deduplicated touched cells as the next round's candidate array.
        """
        a2, a1, b, ha, hb = params
        size = candidates.shape[0]
        keys = np.empty(size, dtype=np.uint64)
        signs = np.empty(size, dtype=np.int64)
        checks = np.empty(size, dtype=np.uint64)
        touched = np.empty(size * self.q, dtype=np.int64)
        n_peeled, n_touched = kernels.iblt_tail_round(
            candidates,
            self.counts,
            self.key_xor,
            self.check_xor,
            a2,
            a1,
            b,
            ha,
            hb,
            np.uint64(self.block_size),
            keys,
            signs,
            checks,
            touched,
        )
        for position in range(n_peeled):
            key = int(keys[position])
            if signs[position] > 0:
                result.inserted.append(key)
            else:
                result.deleted.append(key)
        return touched[:n_touched]

    def _decode_numpy_frontier(self) -> IBLTDecodeResult:
        """Adaptive round-based peeling with incremental frontier tracking.

        The candidate set is seeded from one ``|count| == 1`` scan;
        thereafter each round re-tests only the cells touched by the
        previous batch peel, deduplicated through the shared
        :class:`~repro.iblt.frontier.PeelScratch` flag array instead of
        a sort-based ``np.unique`` over the duplicated ``(q, n)``
        stream.  Every cell that is pure at round ``r+1`` was touched at
        round ``r`` (a cell pure in both rounds had its own key peeled,
        and that key maps to it), so the candidates always cover the
        full pure set and the round sequence — hence the decode output —
        is bit-identical to :meth:`_decode_numpy_rescan`.

        Rounds adapt to the frontier: once the candidate set is at most
        :attr:`tail_threshold` cells the round runs through
        :meth:`_peel_round_scalar` (and returns to vectorised rounds if
        the frontier regrows), so the geometric tail of the peel pays
        scalar constants instead of array-call overhead.
        """
        result = IBLTDecodeResult(success=False)
        scratch = self._scratch
        kernels = _active_kernels()
        tail_params = self._tail_kernel_params() if kernels is not None else None
        candidates = scratch.ones_candidates(self.counts)
        # Round cap as in the rescan decoder: peeling depth is O(log m)
        # w.h.p.; the cap only guards against checksum-fluke cycles (the
        # success check below still decides the outcome).
        rounds_left = 2 * self.m + 64
        while rounds_left > 0 and candidates.size:
            rounds_left -= 1
            if candidates.size <= self.tail_threshold:
                if tail_params is not None:
                    candidates = self._peel_round_scalar_compiled(
                        kernels, tail_params, result, candidates
                    )
                    continue
                touched_cells = self._peel_round_scalar(result, candidates.tolist())
                candidates = np.asarray(touched_cells, dtype=np.int64)
                continue
            pure_cells, pure_keys = self._pure_with_keys(candidates)
            if pure_cells.size == 0:
                break
            touched = self._peel_round(result, pure_cells, pure_keys)
            candidates = scratch.unique_cells(touched, self.m)
        result.success = bool(
            not self.counts.any()
            and not self.key_xor.any()
            and not self.check_xor.any()
        )
        return result

    def _decode_numpy_rescan(self) -> IBLTDecodeResult:
        """The pre-frontier decoder: full pure-mask rescan every round.

        Kept as the bit-identical oracle for the frontier decoder (see
        ``tests/test_frontier_decoder.py``) and as the baseline the
        decode benchmarks measure the frontier win against.
        """
        result = IBLTDecodeResult(success=False)
        for _round in range(2 * self.m + 64):
            pure_cells = np.flatnonzero(self._pure_mask())
            if pure_cells.size == 0:
                break
            self._peel_round(result, pure_cells)
        result.success = bool(
            not self.counts.any()
            and not self.key_xor.any()
            and not self.check_xor.any()
        )
        return result

    def _decode_python(self) -> IBLTDecodeResult:
        result = IBLTDecodeResult(success=False)
        # Depth-first frontier (the historical reference discipline);
        # candidates beyond the one seeding scan are only the cells
        # touched by a peel.
        queue = PeelQueue(self.m, fifo=False)
        for index in range(self.m):
            if self._is_pure(index):
                queue.push(index)
        while queue:
            index = queue.pop()
            if not self._is_pure(index):
                continue
            sign = self.counts[index]
            key = self.key_xor[index]
            if sign > 0:
                result.inserted.append(key)
            else:
                result.deleted.append(key)
            self._update(key, -sign)
            for neighbor in self.cell_indices(key):
                if not queue.pending(neighbor) and self._is_pure(neighbor):
                    queue.push(neighbor)
        # Single pass over the cells (not one scan per field).
        result.success = True
        for index in range(self.m):
            if (
                self.counts[index] != 0
                or self.key_xor[index] != 0
                or self.check_xor[index] != 0
            ):
                result.success = False
                break
        return result

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        """Net number of (signed) items currently in the table."""
        if not self.q:
            return 0
        if self.backend == "numpy":
            return abs(int(self.counts.sum())) // self.q
        return abs(sum(self.counts)) // self.q

    def is_empty(self) -> bool:
        if self.backend == "numpy":
            return bool(not self.counts.any() and not self.key_xor.any())
        for count, key in zip(self.counts, self.key_xor):
            if count != 0 or key != 0:
                return False
        return True

    def nonzero_cells(self) -> Iterator[int]:
        for index in range(self.m):
            if self.counts[index] != 0 or self.key_xor[index] != 0:
                yield index
