"""Compiled peel loops: the IBLT scalar tail and the sum-cell FIFO peels.

Three decode inner loops in this package are intrinsically sequential and
therefore interpreter-bound on the numpy paths:

* the adaptive frontier decoder's scalar tail
  (:meth:`IBLT._peel_round_scalar`) — :func:`iblt_tail_round`;
* the RIBLT's exact breadth-first peel (Lemma 3.10's FIFO discipline,
  including value-error propagation) — :func:`riblt_fifo_peel`;
* the MultisetIBLT's FIFO peel — :func:`multiset_fifo_peel`.

Each kernel replays its interpreter counterpart's control flow *exactly*
— same candidate order, same purity tests, same snapshot subtraction —
so the peel sequence, hence the decode output, is bit-identical.  The
wrappers in ``iblt.py``/``riblt.py``/``counting.py`` pin this against
``engine="cached"`` and ``engine="scalar"`` in the parity tests.

The sum-cell tables hold *unbounded* Python-int sums, which a compiled
kernel cannot.  The contract is **bail, never approximate**: the wrapper
converts cells to ``int64`` copies (refusing if any magnitude reaches
:data:`SUM_BOUND`), every in-kernel subtraction re-checks the bound, and
any violation returns a nonzero status — the wrapper then discards the
copies and re-runs the untouched original lists through the interpreter.
Purity's ``checksum·count == check_sum`` product test is guarded the
same way: when ``|count| > SUM_BOUND // checksum`` the product already
exceeds every representable cell sum, so the cell is impure without
multiplying (and otherwise the product fits ``int64`` exactly).

Keys are at most 61 bits (wrappers fall back for wider tables), so a
key needs one conditional subtract to become a Mersenne field element,
and checksum/cell hashes all use ``bits=61`` (no fold).
"""

from __future__ import annotations

import numpy as np

from .compat import jit
from .mersenne_kernels import P, affine, quad

#: Magnitude ceiling for sum cells inside a kernel.  One subtraction step
#: changes a sum by at most another in-bound sum, so ``2^62`` keeps every
#: intermediate strictly inside ``int64`` with headroom for the purity
#: product guard.
SUM_BOUND = 1 << 62


@jit
def _divisible_key(count, key_total, key_limit):
    """:func:`repro.iblt.frontier.divisible_key`, with ``-1`` for None.

    numba compiles Python's floored ``//``/``%`` semantics for int64 (as
    does numpy in the uncompiled fallback), matching the interpreter's
    arbitrary-precision arithmetic exactly on in-bound sums.
    """
    if count == 0:
        return np.int64(-1)
    if key_total % count != 0:
        return np.int64(-1)
    key = key_total // count
    if key < 0 or key >= key_limit:
        return np.int64(-1)
    return key


@jit
def _sum_cell_key(counts, key_sum, check_sum, index, key_limit, a2, a1, b):
    """The full sum-cell purity test: the cell's key, or ``-1`` if impure.

    Mirrors ``_pure_key`` (divisibility + range + ``checksum·count ==
    check_sum``) with the overflow-guarded product described in the
    module docstring.
    """
    count = counts[index]
    key = _divisible_key(count, key_sum[index], key_limit)
    if key < 0:
        return np.int64(-1)
    x = np.uint64(key)
    if x >= P:
        x -= P
    check = np.int64(quad(a2, a1, b, x))
    if check == 0:
        if check_sum[index] != 0:
            return np.int64(-1)
        return key
    acount = count if count >= 0 else -count
    if acount > SUM_BOUND // check:
        # product > SUM_BOUND > |check_sum|: impure, and multiplying
        # would overflow int64.
        return np.int64(-1)
    if check * count != check_sum[index]:
        return np.int64(-1)
    return key


@jit
def iblt_tail_round(
    candidates,
    counts,
    key_xor,
    check_xor,
    a2,
    a1,
    b,
    ha,
    hb,
    block_size,
    keys_out,
    signs_out,
    checks_out,
    touched_out,
):
    """One adaptive-tail round of ``IBLT._peel_round_scalar``, compiled.

    ``candidates`` is the round's ascending candidate array; the cell
    arrays are the live ``int64``/``uint64`` numpy-backend cells (mutated
    in place, exactly as the interpreter mutates them).  Scan phase:
    every candidate with ``|count| == 1`` whose key was not already
    claimed by an earlier candidate (the ``key in peeled`` test runs
    *before* the checksum test, as in the interpreter) and whose checksum
    matches is recorded.  Records are then ordered by ascending key
    (``sorted(peeled)`` over non-negative ints == uint64 order) and
    peeled: each key's ``q`` cells get the count/XOR updates, and every
    mutated cell lands in ``touched_out``, which is returned sorted and
    deduplicated (the interpreter's ``sorted(set(...))``).

    Returns ``(n_peeled, n_touched)``; the caller reads
    ``keys_out/signs_out[:n_peeled]`` for the decode output and
    ``touched_out[:n_touched]`` as the next round's candidates.
    """
    n_peeled = 0
    for position in range(candidates.shape[0]):
        index = candidates[position]
        count = counts[index]
        if count != 1 and count != -1:
            continue
        key = key_xor[index]
        duplicate = False
        for t in range(n_peeled):
            if keys_out[t] == key:
                duplicate = True
                break
        if duplicate:  # sign already fixed by an earlier pure cell
            continue
        x = key
        if x >= P:
            x -= P
        check = quad(a2, a1, b, x)
        if check_xor[index] != check:
            continue
        keys_out[n_peeled] = key
        signs_out[n_peeled] = count
        checks_out[n_peeled] = check
        n_peeled += 1
    # Ascending-key peel order (insertion sort: records are <= the tail
    # threshold, and the scan order is near-sorted already).
    for i in range(1, n_peeled):
        key = keys_out[i]
        sign = signs_out[i]
        check = checks_out[i]
        j = i - 1
        while j >= 0 and keys_out[j] > key:
            keys_out[j + 1] = keys_out[j]
            signs_out[j + 1] = signs_out[j]
            checks_out[j + 1] = checks_out[j]
            j -= 1
        keys_out[j + 1] = key
        signs_out[j + 1] = sign
        checks_out[j + 1] = check
    q = ha.shape[0]
    bs_i = np.int64(block_size)
    n_touched = 0
    for t in range(n_peeled):
        key = keys_out[t]
        sign = signs_out[t]
        check = checks_out[t]
        x = key
        if x >= P:
            x -= P
        for j in range(q):
            h = affine(ha[j], hb[j], x)
            cell = np.int64(j) * bs_i + np.int64(h % block_size)
            counts[cell] -= sign
            key_xor[cell] ^= key
            check_xor[cell] ^= check
            touched_out[n_touched] = cell
            n_touched += 1
    for i in range(1, n_touched):
        cell = touched_out[i]
        j = i - 1
        while j >= 0 and touched_out[j] > cell:
            touched_out[j + 1] = touched_out[j]
            j -= 1
        touched_out[j + 1] = cell
    unique = 0
    for i in range(n_touched):
        cell = touched_out[i]
        if unique == 0 or touched_out[unique - 1] != cell:
            touched_out[unique] = cell
            unique += 1
    return n_peeled, unique


@jit
def riblt_fifo_peel(
    counts,
    key_sum,
    check_sum,
    values,
    a2,
    a1,
    b,
    ha,
    hb,
    block_size,
    key_limit,
    queue,
    pending,
    peel_keys,
    peel_counts,
    peel_values,
):
    """The RIBLT's exact breadth-first peel (``RIBLT.decode``'s loop).

    Operates on ``int64`` copies of the cell lists; ``queue`` is an
    ``m+1``-slot ring buffer and ``pending`` the ``PeelQueue`` dedup
    flags.  The seeding scan pushes cells in ascending index order (the
    ``seed_sum_cell_queue`` order, cache or not), then the FIFO loop
    re-tests purity at pop time, records the peel snapshot (count + value
    row — the randomized-rounding value extraction is *deferred*: the
    wrapper replays the records in order against the caller's ``rng``, so
    the random stream is untouched unless the kernel succeeds), and
    subtracts the whole snapshot from the key's ``q`` cells, pushing
    neighbours that became pure.

    Returns ``(status, n_peeled)``: status 0 on completion, 1 when a sum
    would leave the guarded ``int64`` range, 2 when the record arrays
    filled up (pathological fluke cycles).  Nonzero status means the
    caller must discard the arrays and decode the untouched original
    cells with the interpreter.
    """
    m = counts.shape[0]
    q = ha.shape[0]
    dim = values.shape[1]
    bs_i = np.int64(block_size)
    cap = queue.shape[0]
    out_cap = peel_keys.shape[0]
    head = 0
    tail = 0
    for index in range(m):
        if _sum_cell_key(counts, key_sum, check_sum, index, key_limit, a2, a1, b) >= 0:
            queue[tail] = index
            tail += 1
            pending[index] = 1
    n_peeled = 0
    while head != tail:
        index = queue[head]
        head += 1
        if head == cap:
            head = 0
        pending[index] = 0
        key = _sum_cell_key(counts, key_sum, check_sum, index, key_limit, a2, a1, b)
        if key < 0:
            continue
        if n_peeled == out_cap:
            return 2, n_peeled
        count = counts[index]
        peel_keys[n_peeled] = key
        peel_counts[n_peeled] = count
        for d in range(dim):
            peel_values[n_peeled, d] = values[index, d]
        snap_key = key_sum[index]
        snap_check = check_sum[index]
        x = np.uint64(key)
        if x >= P:
            x -= P
        for j in range(q):
            h = affine(ha[j], hb[j], x)
            neighbor = np.int64(j) * bs_i + np.int64(h % block_size)
            new_count = counts[neighbor] - count
            new_key = key_sum[neighbor] - snap_key
            new_check = check_sum[neighbor] - snap_check
            if (
                new_count >= SUM_BOUND
                or new_count <= -SUM_BOUND
                or new_key >= SUM_BOUND
                or new_key <= -SUM_BOUND
                or new_check >= SUM_BOUND
                or new_check <= -SUM_BOUND
            ):
                return 1, n_peeled
            counts[neighbor] = new_count
            key_sum[neighbor] = new_key
            check_sum[neighbor] = new_check
            for d in range(dim):
                new_value = values[neighbor, d] - peel_values[n_peeled, d]
                if new_value >= SUM_BOUND or new_value <= -SUM_BOUND:
                    return 1, n_peeled
                values[neighbor, d] = new_value
            if pending[neighbor] == 0 and (
                _sum_cell_key(
                    counts, key_sum, check_sum, neighbor, key_limit, a2, a1, b
                )
                >= 0
            ):
                pending[neighbor] = 1
                queue[tail] = neighbor
                tail += 1
                if tail == cap:
                    tail = 0
        n_peeled += 1
    return 0, n_peeled


@jit
def multiset_fifo_peel(
    counts,
    key_sum,
    check_sum,
    a2,
    a1,
    b,
    ha,
    hb,
    block_size,
    key_limit,
    queue,
    pending,
    peel_keys,
    peel_counts,
):
    """``MultisetIBLT.decode``'s FIFO peel, compiled (no value cells).

    The interpreter subtracts ``count·key`` and ``count·check`` per
    neighbour; for a cell that just passed the purity test those equal
    the cell's own ``key_sum``/``check_sum``, so the snapshot subtraction
    is identical and overflow-free.  Same ring-buffer discipline, status
    codes and bail contract as :func:`riblt_fifo_peel`; the wrapper
    replays ``(key, count)`` records into the multiplicity dict in peel
    order (dict insertion order is part of the pinned output).
    """
    m = counts.shape[0]
    q = ha.shape[0]
    bs_i = np.int64(block_size)
    cap = queue.shape[0]
    out_cap = peel_keys.shape[0]
    head = 0
    tail = 0
    for index in range(m):
        if _sum_cell_key(counts, key_sum, check_sum, index, key_limit, a2, a1, b) >= 0:
            queue[tail] = index
            tail += 1
            pending[index] = 1
    n_peeled = 0
    while head != tail:
        index = queue[head]
        head += 1
        if head == cap:
            head = 0
        pending[index] = 0
        key = _sum_cell_key(counts, key_sum, check_sum, index, key_limit, a2, a1, b)
        if key < 0:
            continue
        if n_peeled == out_cap:
            return 2, n_peeled
        count = counts[index]
        peel_keys[n_peeled] = key
        peel_counts[n_peeled] = count
        snap_key = key_sum[index]
        snap_check = check_sum[index]
        x = np.uint64(key)
        if x >= P:
            x -= P
        for j in range(q):
            h = affine(ha[j], hb[j], x)
            neighbor = np.int64(j) * bs_i + np.int64(h % block_size)
            new_count = counts[neighbor] - count
            new_key = key_sum[neighbor] - snap_key
            new_check = check_sum[neighbor] - snap_check
            if (
                new_count >= SUM_BOUND
                or new_count <= -SUM_BOUND
                or new_key >= SUM_BOUND
                or new_key <= -SUM_BOUND
                or new_check >= SUM_BOUND
                or new_check <= -SUM_BOUND
            ):
                return 1, n_peeled
            counts[neighbor] = new_count
            key_sum[neighbor] = new_key
            check_sum[neighbor] = new_check
            if pending[neighbor] == 0 and (
                _sum_cell_key(
                    counts, key_sum, check_sum, neighbor, key_limit, a2, a1, b
                )
                >= 0
            ):
                pending[neighbor] = 1
                queue[tail] = neighbor
                tail += 1
                if tail == cap:
                    tail = 0
        n_peeled += 1
    return 0, n_peeled
