"""Capability probe and dispatch surface for the compiled kernel layer.

``REPRO_KERNELS`` selects the backing for the hot peel/hash loops:

* ``auto`` (default) — compiled kernels when numba is importable *and*
  the kernel self-test passes; otherwise the existing numpy paths,
  which stay pinned bit-identical.
* ``compiled`` — require the compiled kernels; raises ``RuntimeError``
  when numba is missing or the self-test fails (never a silent
  degrade).
* ``numpy`` — force the pure numpy/interpreter paths even when numba
  is available.

Hot paths call :func:`active`, which returns this package (whose
namespace re-exports every kernel) when the resolved mode is
``compiled`` and ``None`` otherwise.  The resolution is cached per
``(REPRO_KERNELS value, numba availability)`` so the per-call cost is a
dict hit; :func:`reset_probe_cache` clears it for tests that flip the
environment or monkeypatch :mod:`.compat`.

Bit-identity across modes is structural, not incidental: the Mersenne
kernels return canonical residues (the numpy expressions do too), and
the peel kernels replay their interpreters' exact control flow — see
:mod:`.mersenne_kernels` and :mod:`.peel_kernels`.  The self-test run on
first activation exercises *every* kernel once, so with numba a compile
failure surfaces as a clean degrade (or an explicit error under
``compiled``) instead of an exception mid-decode.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from . import compat
from .mersenne_kernels import (  # noqa: F401  (re-exported dispatch surface)
    affine,
    affine_ssv,
    affine_svv,
    affine_vvs,
    cell_index_matrix,
    mul_sv,
    mul_vv,
    mulmod,
    quad,
    quad_v,
)
from .peel_kernels import (  # noqa: F401  (re-exported dispatch surface)
    SUM_BOUND,
    iblt_tail_round,
    multiset_fifo_peel,
    riblt_fifo_peel,
)

__all__ = [
    "KERNEL_NAMES",
    "SUM_BOUND",
    "active",
    "available",
    "kernel_status",
    "require",
    "reset_probe_cache",
    "resolve_kernel_mode",
]

#: The public kernels, in the order the CLI reports them.
KERNEL_NAMES = (
    "mul_vv",
    "mul_sv",
    "affine_ssv",
    "affine_svv",
    "affine_vvs",
    "quad_v",
    "cell_index_matrix",
    "iblt_tail_round",
    "riblt_fifo_peel",
    "multiset_fifo_peel",
)

_MERSENNE_P = (1 << 61) - 1

#: (REPRO_KERNELS raw value, numba availability) -> resolved mode.
_probe_cache: dict[tuple[str | None, bool], str] = {}

#: None = not yet run; otherwise the cached self-test verdict.
_self_test_verdict: bool | None = None


def available() -> bool:
    """Whether the compiled implementation can back the kernels."""
    return bool(compat.HAVE_NUMBA)


def reset_probe_cache() -> None:
    """Forget cached probe results (tests flip env/availability)."""
    global _self_test_verdict
    _probe_cache.clear()
    _self_test_verdict = None


def _run_self_test() -> None:
    """Run every kernel once against Python-int references.

    Doubles as the compile warm-up: with numba this triggers (or loads
    from the on-disk cache) every ``@njit`` compilation up front, so a
    toolchain problem is caught at probe time rather than mid-decode.
    """
    p = _MERSENNE_P
    values = [0, 1, 3, p - 1, 0x1234_5678_9ABC_DEF0 % p]
    xs = np.array(values, dtype=np.uint64)
    a = 0x0F1E_2D3C_4B5A_6978 % p
    b = 0x1122_3344_5566_7788 % p
    c = 12345
    au, bu, cu = np.uint64(a), np.uint64(b), np.uint64(c)
    checks = (
        (mul_sv(au, xs), [(a * x) % p for x in values]),
        (mul_vv(xs, xs), [(x * x) % p for x in values]),
        (affine_ssv(au, bu, xs), [(a * x + b) % p for x in values]),
        (affine_svv(au, xs, xs), [(a * x + x) % p for x in values]),
        (affine_vvs(xs, xs, au), [(x * a + x) % p for x in values]),
        (quad_v(au, bu, cu, xs), [(a * x * x + b * x + c) % p for x in values]),
    )
    for got, expected in checks:
        if got.tolist() != expected:
            raise RuntimeError("mersenne kernel self-test mismatch")
    block_size = 7
    matrix = cell_index_matrix(
        np.array([a, b], dtype=np.uint64),
        np.array([b, c], dtype=np.uint64),
        xs,
        np.uint64(block_size),
    )
    expected_matrix = [
        [j * block_size + ((coeff * x + off) % p) % block_size for x in values]
        for j, (coeff, off) in enumerate(((a, b), (b, c)))
    ]
    if matrix.tolist() != expected_matrix:
        raise RuntimeError("cell_index_matrix self-test mismatch")
    # Peel kernels: trivial empty-table runs compile the full loops and
    # must terminate cleanly with nothing peeled.
    m, q, dim = 6, 2, 1
    ha = np.array([a, b], dtype=np.uint64)
    hb = np.array([b, c], dtype=np.uint64)
    peeled, touched = iblt_tail_round(
        np.empty(0, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.uint64),
        np.zeros(m, dtype=np.uint64),
        au,
        bu,
        cu,
        ha,
        hb,
        np.uint64(m // q),
        np.empty(0, dtype=np.uint64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.uint64),
        np.empty(0, dtype=np.int64),
    )
    if (peeled, touched) != (0, 0):
        raise RuntimeError("iblt_tail_round self-test mismatch")
    status, peeled = riblt_fifo_peel(
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros((m, dim), dtype=np.int64),
        au,
        bu,
        cu,
        ha,
        hb,
        np.uint64(m // q),
        np.int64(1 << 61),
        np.empty(m + 1, dtype=np.int64),
        np.zeros(m, dtype=np.uint8),
        np.empty(4, dtype=np.int64),
        np.empty(4, dtype=np.int64),
        np.empty((4, dim), dtype=np.int64),
    )
    if (status, peeled) != (0, 0):
        raise RuntimeError("riblt_fifo_peel self-test mismatch")
    status, peeled = multiset_fifo_peel(
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        au,
        bu,
        cu,
        ha,
        hb,
        np.uint64(m // q),
        np.int64(1 << 61),
        np.empty(m + 1, dtype=np.int64),
        np.zeros(m, dtype=np.uint8),
        np.empty(4, dtype=np.int64),
        np.empty(4, dtype=np.int64),
    )
    if (status, peeled) != (0, 0):
        raise RuntimeError("multiset_fifo_peel self-test mismatch")


def _self_test_passes() -> bool:
    global _self_test_verdict
    if _self_test_verdict is None:
        try:
            _run_self_test()
        except Exception:
            _self_test_verdict = False
        else:
            _self_test_verdict = True
    return _self_test_verdict


def resolve_kernel_mode(mode: str | None = None) -> str:
    """Resolve a requested kernel mode to ``"compiled"`` or ``"numpy"``.

    ``None`` reads ``REPRO_KERNELS`` (see
    :func:`repro.iblt.backend.default_kernel_mode`).  ``"compiled"``
    raises ``RuntimeError`` when the compiled layer cannot be used;
    ``"auto"`` degrades silently to ``"numpy"``.
    """
    from ..backend import KERNEL_MODES, default_kernel_mode

    requested = default_kernel_mode() if mode is None else mode
    if requested not in KERNEL_MODES:
        raise ValueError(
            f"kernel mode must be one of {KERNEL_MODES}, got {requested!r}"
        )
    if requested == "numpy":
        return "numpy"
    if requested == "compiled":
        if not available():
            raise RuntimeError(
                "REPRO_KERNELS=compiled requires numba "
                "(pip install 'repro[fast]'), which is not importable"
            )
        if not _self_test_passes():
            raise RuntimeError("compiled kernels failed their self-test")
        return "compiled"
    if available() and _self_test_passes():
        return "compiled"
    return "numpy"


def active():
    """The kernel namespace when the resolved mode is compiled, else None.

    The per-environment resolution (including the one-time self-test) is
    cached, so hot dispatch sites can call this on every operation.
    Raises like :func:`resolve_kernel_mode` for explicit-but-unusable
    ``REPRO_KERNELS=compiled`` (errors are never cached).
    """
    key = (os.environ.get("REPRO_KERNELS"), bool(compat.HAVE_NUMBA))
    mode = _probe_cache.get(key)
    if mode is None:
        mode = resolve_kernel_mode()
        _probe_cache[key] = mode
    if mode == "compiled":
        return sys.modules[__name__]
    return None


def require():
    """The kernel namespace, or ``RuntimeError`` when unavailable.

    Used by the explicit ``engine="compiled"`` decode paths, which must
    fail loudly rather than silently fall back.
    """
    resolve_kernel_mode("compiled")
    return sys.modules[__name__]


def kernel_status() -> dict:
    """Resolved-mode and per-kernel compile report for the CLI.

    Never raises for an unusable ``compiled`` request — the report is
    diagnostics, so the failure is folded into the ``resolved`` field.
    """
    from ..backend import default_kernel_mode

    requested = default_kernel_mode()
    try:
        resolved = resolve_kernel_mode(requested)
    except RuntimeError as exc:
        resolved = f"error: {exc}"
    module = sys.modules[__name__]
    kernels = {}
    for name in KERNEL_NAMES:
        func = getattr(module, name)
        if not compat.is_compiled(func):
            kernels[name] = "python"
        elif getattr(func, "signatures", None):
            kernels[name] = "compiled"
        else:
            kernels[name] = "compiled (lazy)"
    return {
        "requested": requested,
        "resolved": resolved,
        "numba": compat.NUMBA_VERSION,
        "kernels": kernels,
    }
