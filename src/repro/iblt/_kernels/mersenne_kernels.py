"""Nopython Mersenne-61 field kernels (scalar cores + batch loops).

These mirror :mod:`repro.hashing.mersenne` exactly: the same limb-split
mulmod with a shared Mersenne fold, the same fused Horner form for the
checksum quadratic.  Every function returns the *canonical* residue in
``[0, P)``, which is why dispatching between this module and the numpy
expressions is bit-identical by construction — both compute the unique
representative of ``a·b mod P``.

All scalars are ``uint64``; batch kernels take 1-d contiguous ``uint64``
arrays whose elements already lie in ``[0, P)`` (callers run
``to_field`` first, as the numpy paths do).  Under numba the loops
compile nopython/nogil; without numba the identical source runs under
the interpreter on numpy scalar types, whose uint64 wraparound matches
compiled semantics — that is what the no-numba parity tests exercise.
"""

from __future__ import annotations

import numpy as np

from .compat import jit

P = np.uint64((1 << 61) - 1)
MASK32 = np.uint64(0xFFFFFFFF)
MASK29 = np.uint64((1 << 29) - 1)
S3 = np.uint64(3)
S29 = np.uint64(29)
S32 = np.uint64(32)
S61 = np.uint64(61)


@jit
def mulmod(a, b):
    """Scalar ``(a * b) mod P`` for ``a, b`` in ``[0, P)`` — exact uint64."""
    a_hi = a >> S32
    a_lo = a & MASK32
    b_hi = b >> S32
    b_lo = b & MASK32
    mid = a_hi * b_lo + a_lo * b_hi  # < 2^62
    low = a_lo * b_lo  # < 2^64
    high = a_hi * b_hi  # < 2^58
    s = (high << S3) + (mid >> S29) + ((mid & MASK29) << S32)  # < 2^63
    r = (s >> S61) + (s & P) + (low >> S61) + (low & P)  # < 2^62 + 16
    r = (r >> S61) + (r & P)  # < 2P
    if r >= P:
        r -= P
    return r


@jit
def affine(a, b, x):
    """Scalar ``(a*x + b) mod P`` for operands in ``[0, P)``."""
    t = mulmod(a, x) + b  # < 2^62
    t = (t >> S61) + (t & P)
    if t >= P:
        t -= P
    return t


@jit
def quad(a2, a1, b, x):
    """Scalar ``(a2·x² + a1·x + b) mod P`` in Horner form, ``x`` in ``[0, P)``."""
    return affine(affine(a2, a1, x), b, x)


@jit
def mul_vv(a, b):
    """Elementwise ``(a[i] * b[i]) mod P`` over matching 1-d arrays."""
    out = np.empty_like(a)
    for i in range(a.shape[0]):
        out[i] = mulmod(a[i], b[i])
    return out


@jit
def mul_sv(a, b):
    """``(a * b[i]) mod P`` for scalar ``a`` over a 1-d array."""
    out = np.empty_like(b)
    for i in range(b.shape[0]):
        out[i] = mulmod(a, b[i])
    return out


@jit
def affine_ssv(a, b, x):
    """``(a*x[i] + b) mod P`` — scalar coefficients over a key batch.

    This is ``PairwiseHash.hash_array``'s shape (one hash row, many keys).
    """
    out = np.empty_like(x)
    for i in range(x.shape[0]):
        out[i] = affine(a, b, x[i])
    return out


@jit
def affine_svv(a, b, x):
    """``(a*x[i] + b[i]) mod P`` — ``VectorHash.hash_rows``'s accumulator step."""
    out = np.empty_like(x)
    for i in range(x.shape[0]):
        out[i] = affine(a, b[i], x[i])
    return out


@jit
def affine_vvs(a, b, x):
    """``(a[i]*x + b[i]) mod P`` — ``PrefixHasher``'s per-stream extension step."""
    out = np.empty_like(a)
    for i in range(a.shape[0]):
        out[i] = affine(a[i], b[i], x)
    return out


@jit
def quad_v(a2, a1, b, x):
    """Batch checksum polynomial over field elements ``x`` (1-d)."""
    out = np.empty_like(x)
    for i in range(x.shape[0]):
        out[i] = quad(a2, a1, b, x[i])
    return out


@jit
def cell_index_matrix(a, b, x, block_size):
    """Fused partitioned cell indices: the ``(q, n)`` int64 matrix
    ``j*block_size + ((a[j]*x[i] + b[j]) mod P) % block_size``.

    Replaces the broadcasted ``affine_mod_p`` + modulo + offset pipeline in
    ``partitioned_cell_indices`` with one pass and no temporaries.  All
    table hashes use ``bits=61``, so no fold is applied between the field
    hash and the modulo (the numpy path's ``fold_bits`` is the identity).
    """
    q = a.shape[0]
    n = x.shape[0]
    out = np.empty((q, n), dtype=np.int64)
    for j in range(q):
        aj = a[j]
        bj = b[j]
        base = np.int64(j) * np.int64(block_size)
        for i in range(n):
            h = affine(aj, bj, x[i])
            out[j, i] = base + np.int64(h % block_size)
    return out
