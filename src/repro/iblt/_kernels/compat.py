"""Optional-numba shim shared by every compiled kernel module.

The kernels in this package are written as plain Python functions over
numpy scalars/arrays.  When numba is importable, :func:`jit` wraps them
with ``numba.njit(cache=True, nogil=True)`` so they compile to GIL-free
machine code; when numba is absent, :func:`jit` is the identity and the
same source runs (slowly) under the interpreter.  Keeping both spellings
identical is what lets the parity suite force the dispatch layer on and
verify bit-identity without numba installed, and it keeps the kernel
implementation swappable (a Cython backend would only need to replace
this decorator and re-export the same function names).

``HAVE_NUMBA`` is consulted at probe time, not import time, by
``repro.iblt._kernels.active`` — tests monkeypatch it to exercise the
full dispatch path on hosts without numba.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover - the local/default environment
    _numba = None

#: True when numba imported successfully.  The probe in ``__init__`` reads
#: this attribute dynamically so tests can monkeypatch it.
HAVE_NUMBA = _numba is not None

#: ``numba.__version__`` when available, else None (reported by the CLI).
NUMBA_VERSION = getattr(_numba, "__version__", None)


def jit(func):
    """``numba.njit(cache=True, nogil=True)`` or the identity decorator."""
    if _numba is None:
        return func
    return _numba.njit(cache=True, nogil=True)(func)


def is_compiled(func) -> bool:
    """True when ``func`` is a numba dispatcher (vs. the plain function)."""
    return hasattr(func, "py_func")
