"""Invertible Bloom lookup tables: classic IBLT, robust RIBLT, hypergraphs."""

from .hypergraph import (
    Component,
    classify_component,
    component_census,
    components,
    molloy_threshold,
    peel_order,
    random_hypergraph,
    riblt_sparsity_threshold,
    two_core,
)
from .backend import (
    BACKENDS,
    DECODE_MODES,
    default_backend,
    default_decode_mode,
    resolve_backend,
    resolve_decode_mode,
)
from .counting import MultisetDecodeResult, MultisetIBLT
from .frontier import PeelQueue
from .iblt import IBLT, IBLTDecodeResult, cells_for_differences
from .riblt import RIBLT, RIBLTDecodeResult, riblt_cells_for_pairs

__all__ = [
    "BACKENDS",
    "DECODE_MODES",
    "default_backend",
    "default_decode_mode",
    "resolve_backend",
    "resolve_decode_mode",
    "PeelQueue",
    "Component",
    "classify_component",
    "component_census",
    "components",
    "molloy_threshold",
    "peel_order",
    "random_hypergraph",
    "riblt_sparsity_threshold",
    "two_core",
    "MultisetDecodeResult",
    "MultisetIBLT",
    "IBLT",
    "IBLTDecodeResult",
    "cells_for_differences",
    "RIBLT",
    "RIBLTDecodeResult",
    "riblt_cells_for_pairs",
]
