"""Random hypergraph model underlying IBLT peeling.

An IBLT with ``m`` cells and ``q`` hash functions storing ``cm`` keys is a
random ``q``-uniform hypergraph ``G^q_{m,cm}``: cells are vertices, keys
are hyperedges (Section 2.2).  Peeling succeeds iff the 2-core is empty
(Theorem 2.6), and the RIBLT analysis additionally needs the hypergraph to
consist of only *trees and unicyclic components* when
``c < 1/(q(q-1))`` (Lemma B.3, citing [28, 17]).

This module provides the model and the structural analyses the
experiments (E1, E2) use: 2-core computation by peeling, component
extraction and classification, and the sub-threshold density ``c*_q`` of
Molloy [26] quoted in Lemma B.4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = [
    "random_hypergraph",
    "two_core",
    "peel_order",
    "components",
    "classify_component",
    "component_census",
    "molloy_threshold",
    "riblt_sparsity_threshold",
    "Component",
]


def random_hypergraph(
    m: int, edges: int, q: int, rng: np.random.Generator
) -> list[tuple[int, ...]]:
    """Draw ``edges`` hyperedges of ``G^q_{m, edges}``.

    Each edge is a uniformly random set of ``q`` distinct vertices from
    ``[m]`` (matching the partitioned-IBLT guarantee that a key's cells are
    distinct).
    """
    if q < 2:
        raise ValueError(f"q must be >= 2, got {q}")
    if m < q:
        raise ValueError(f"need m >= q, got m={m}, q={q}")
    result = []
    for _ in range(edges):
        result.append(tuple(int(v) for v in rng.choice(m, size=q, replace=False)))
    return result


def two_core(m: int, edges: list[tuple[int, ...]]) -> list[int]:
    """Indices of the edges remaining in the 2-core after peeling.

    Peeling repeatedly removes an edge incident to a degree-1 vertex --
    exactly the IBLT peel.  The surviving edges form the 2-core; an empty
    result means the IBLT would decode.
    """
    order, survivors = _peel(m, edges)
    del order
    return survivors


def peel_order(m: int, edges: list[tuple[int, ...]]) -> list[int]:
    """The breadth-first (FIFO) order in which edges get peeled.

    Returns edge indices in peel order; edges stuck in the 2-core are not
    listed.  This is the order the RIBLT decoder uses (Section 2.2 item 1).
    """
    order, _ = _peel(m, edges)
    return order


def _peel(m: int, edges: list[tuple[int, ...]]) -> tuple[list[int], list[int]]:
    incident: list[list[int]] = [[] for _ in range(m)]
    for edge_index, edge in enumerate(edges):
        for vertex in edge:
            incident[vertex].append(edge_index)
    degree = [len(edge_list) for edge_list in incident]
    alive = [True] * len(edges)

    queue: deque[int] = deque(
        vertex for vertex in range(m) if degree[vertex] == 1
    )
    order: list[int] = []
    while queue:
        vertex = queue.popleft()
        if degree[vertex] != 1:
            continue
        edge_index = next(
            (candidate for candidate in incident[vertex] if alive[candidate]), None
        )
        if edge_index is None:
            continue
        alive[edge_index] = False
        order.append(edge_index)
        for other in edges[edge_index]:
            degree[other] -= 1
            if degree[other] == 1:
                queue.append(other)
    survivors = [index for index, still in enumerate(alive) if still]
    return order, survivors


@dataclass(frozen=True)
class Component:
    """A connected component of a hypergraph."""

    vertices: frozenset[int]
    edge_indices: tuple[int, ...]

    @property
    def order(self) -> int:
        return len(self.vertices)

    @property
    def size(self) -> int:
        return len(self.edge_indices)


def components(m: int, edges: list[tuple[int, ...]]) -> list[Component]:
    """Connected components (isolated vertices omitted)."""
    incident: list[list[int]] = [[] for _ in range(m)]
    for edge_index, edge in enumerate(edges):
        for vertex in edge:
            incident[vertex].append(edge_index)
    visited_vertex = [False] * m
    visited_edge = [False] * len(edges)
    result: list[Component] = []
    for start in range(m):
        if visited_vertex[start] or not incident[start]:
            continue
        stack = [start]
        visited_vertex[start] = True
        component_vertices = {start}
        component_edges: list[int] = []
        while stack:
            vertex = stack.pop()
            for edge_index in incident[vertex]:
                if visited_edge[edge_index]:
                    continue
                visited_edge[edge_index] = True
                component_edges.append(edge_index)
                for other in edges[edge_index]:
                    if not visited_vertex[other]:
                        visited_vertex[other] = True
                        component_vertices.add(other)
                        stack.append(other)
        result.append(
            Component(frozenset(component_vertices), tuple(sorted(component_edges)))
        )
    return result


def classify_component(component: Component, q: int) -> str:
    """Classify as ``"tree"``, ``"unicyclic"`` or ``"complex"``.

    Following the hypertree conventions of [11]: a component with ``e``
    ``q``-edges and ``v`` vertices has excess ``e·(q-1) - (v-1)``;
    excess 0 is a (hyper)tree, excess 1 unicyclic, more is complex.
    """
    excess = component.size * (q - 1) - (component.order - 1)
    if excess < 0:
        raise ValueError("component excess cannot be negative for connected graphs")
    if excess == 0:
        return "tree"
    if excess == 1:
        return "unicyclic"
    return "complex"


def component_census(m: int, edges: list[tuple[int, ...]], q: int) -> dict[str, int]:
    """Counts of tree / unicyclic / complex components (Lemma B.3 check)."""
    census = {"tree": 0, "unicyclic": 0, "complex": 0}
    for component in components(m, edges):
        census[classify_component(component, q)] += 1
    return census


def molloy_threshold(q: int, grid: int = 4096) -> float:
    """Molloy's peelability threshold ``c*_q = min_{x>0} x / (q(1-e^{-x})^{q-1})``.

    Below this edge density the 2-core is empty w.h.p. (quoted after
    Lemma B.4).  Computed by a fine 1-D minimisation; accurate to ~1e-4,
    e.g. ``c*_3 ≈ 0.818``.
    """
    if q < 3:
        raise ValueError(f"threshold defined for q >= 3, got {q}")
    xs = np.linspace(1e-4, 10.0, grid)
    values = xs / (q * (1.0 - np.exp(-xs)) ** (q - 1))
    return float(values.min())


def riblt_sparsity_threshold(q: int) -> float:
    """The RIBLT's tree/unicyclic density bound ``1/(q(q-1))`` (item 2)."""
    if q < 2:
        raise ValueError(f"q must be >= 2, got {q}")
    return 1.0 / (q * (q - 1))
