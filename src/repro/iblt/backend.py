"""Backend selection for the IBLT family.

Every table in :mod:`repro.iblt` supports two interchangeable backends:

``"numpy"`` (default)
    Cell state lives in flat numpy arrays and the hot paths — hashing,
    batch insert/delete, subtraction, pure-cell detection — run as
    vectorised ``uint64`` operations (exact Mersenne-61 arithmetic via
    :mod:`repro.hashing.mersenne`).

``"python"``
    The original pure-Python reference implementation: cell state in
    lists, arbitrary-precision integers everywhere.  Kept as the ground
    truth the property tests pin the numpy backend against, and as the
    fallback for key widths beyond what ``uint64`` cells can hold.

Both backends are bit-identical for the same :class:`~repro.hashing.PublicCoins`
(``tests/test_backend_parity.py``).  The process-wide default comes from
the ``REPRO_BACKEND`` environment variable when set, else ``"numpy"``;
individual tables can override it via their ``backend=`` parameter.

The numpy backend additionally exposes two *decode modes* for its
vectorised peeler (see :mod:`repro.iblt.frontier`):

``"frontier"`` (default)
    Incremental frontier tracking: the pure-cell candidate set is seeded
    once and thereafter only the cells touched by each batch peel are
    re-tested.

``"rescan"``
    The pre-frontier decoder that re-derives the full pure mask from the
    whole cell array every round.  Kept as the regression oracle the
    frontier decoder is pinned bit-identical against
    (``tests/test_frontier_decoder.py``) and for decode benchmarking.

The process-wide default comes from ``REPRO_DECODE`` when set, else
``"frontier"``; individual tables can override it via ``decode_mode=``.
Both modes produce identical output for any collision-free table state
— i.e. unless some cell's garbage XOR passes the checksum purity test,
a ``~2^-61``-per-cell fluke under random coins (see the caveat in
:mod:`repro.iblt.iblt`); on such a cell only the garbage output
differs, never the ``success`` verdict.

Orthogonal to both knobs, ``REPRO_KERNELS`` selects the *kernel mode*:
whether the intrinsically sequential peel/hash inner loops run through
the optional compiled layer in :mod:`repro.iblt._kernels` (numba
``@njit(nogil=True)``) or the pure numpy/interpreter paths.  ``"auto"``
(default) uses the compiled kernels when numba is importable and falls
back silently otherwise; ``"compiled"`` requires them (``RuntimeError``
when numba is missing); ``"numpy"`` forces the fallback.  Every mode is
bit-identical — the compiled kernels replay the interpreter control
flow exactly and bail back to it rather than ever approximating
(``tests/test_kernels.py``).
"""

from __future__ import annotations

import os

__all__ = [
    "BACKENDS",
    "DECODE_MODES",
    "KERNEL_MODES",
    "default_backend",
    "default_decode_mode",
    "default_kernel_mode",
    "resolve_backend",
    "resolve_decode_mode",
    "resolve_kernel_mode",
]

BACKENDS = ("numpy", "python")

DECODE_MODES = ("frontier", "rescan")

KERNEL_MODES = ("auto", "compiled", "numpy")


def default_backend() -> str:
    """The process-wide default backend (``REPRO_BACKEND`` or ``"numpy"``)."""
    backend = os.environ.get("REPRO_BACKEND", "numpy").strip().lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend choice, or fall back to the default."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def default_decode_mode() -> str:
    """The process-wide decode mode (``REPRO_DECODE`` or ``"frontier"``)."""
    mode = os.environ.get("REPRO_DECODE", "frontier").strip().lower()
    if mode not in DECODE_MODES:
        raise ValueError(f"REPRO_DECODE must be one of {DECODE_MODES}, got {mode!r}")
    return mode


def resolve_decode_mode(decode_mode: str | None) -> str:
    """Validate an explicit decode-mode choice, or fall back to the default."""
    if decode_mode is None:
        return default_decode_mode()
    if decode_mode not in DECODE_MODES:
        raise ValueError(
            f"decode_mode must be one of {DECODE_MODES}, got {decode_mode!r}"
        )
    return decode_mode


def default_kernel_mode() -> str:
    """The *requested* kernel mode (``REPRO_KERNELS`` or ``"auto"``).

    This only parses the environment; capability probing (is numba
    importable, do the kernels self-test) happens in
    :func:`resolve_kernel_mode`, so that merely importing this module
    never pays a numba import.
    """
    mode = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    if mode not in KERNEL_MODES:
        raise ValueError(f"REPRO_KERNELS must be one of {KERNEL_MODES}, got {mode!r}")
    return mode


def resolve_kernel_mode(mode: str | None = None) -> str:
    """Resolve a kernel-mode request to ``"compiled"`` or ``"numpy"``.

    ``None`` reads :func:`default_kernel_mode`.  ``"auto"`` degrades
    silently when the compiled layer is unusable; ``"compiled"`` raises
    ``RuntimeError`` instead.  The first resolution to ``"compiled"``
    runs the kernel self-test (and, with numba, the compile warm-up) —
    see :mod:`repro.iblt._kernels`.
    """
    from . import _kernels

    return _kernels.resolve_kernel_mode(mode)
