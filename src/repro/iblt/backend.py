"""Backend selection for the IBLT family.

Every table in :mod:`repro.iblt` supports two interchangeable backends:

``"numpy"`` (default)
    Cell state lives in flat numpy arrays and the hot paths — hashing,
    batch insert/delete, subtraction, pure-cell detection — run as
    vectorised ``uint64`` operations (exact Mersenne-61 arithmetic via
    :mod:`repro.hashing.mersenne`).

``"python"``
    The original pure-Python reference implementation: cell state in
    lists, arbitrary-precision integers everywhere.  Kept as the ground
    truth the property tests pin the numpy backend against, and as the
    fallback for key widths beyond what ``uint64`` cells can hold.

Both backends are bit-identical for the same :class:`~repro.hashing.PublicCoins`
(``tests/test_backend_parity.py``).  The process-wide default comes from
the ``REPRO_BACKEND`` environment variable when set, else ``"numpy"``;
individual tables can override it via their ``backend=`` parameter.
"""

from __future__ import annotations

import os

__all__ = ["BACKENDS", "default_backend", "resolve_backend"]

BACKENDS = ("numpy", "python")


def default_backend() -> str:
    """The process-wide default backend (``REPRO_BACKEND`` or ``"numpy"``)."""
    backend = os.environ.get("REPRO_BACKEND", "numpy").strip().lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend choice, or fall back to the default."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend
