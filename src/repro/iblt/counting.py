"""Counting (multiset) IBLT: sum-based cells without values.

The sets-of-sets reconciliation behind the Gap protocol needs to reconcile
*multisets* of key entries: the same (vector-index, hash-value) pair can
occur in many keys, and cancellation must respect multiplicity.  XOR-based
IBLTs cannot represent multiplicity, so this table uses the RIBLT's
sum-cell idea (Section 2.2 items 3 and 5) restricted to keys: a cell with
count ``C`` whose key sum is ``C`` times a single key -- verified via the
checksum -- peels all ``C`` copies at once.

Decoding returns *signed multiplicities*: positive for net insertions,
negative for net deletions, which is exactly the view a subtracted table
of two multisets gives.

Backends: cell *sums* here are unbounded integers (a pre-subtraction cell
accumulates ``Θ(n·q/m)`` 61-bit items), so unlike the XOR-based
:class:`~repro.iblt.iblt.IBLT` they cannot live in fixed-width numpy
arrays without overflow.  The ``"numpy"`` backend therefore keeps exact
Python-int cells but batch-computes the expensive part — cell indices and
checksums — with the vectorised Mersenne hashes, which is where nearly
all of the insert cost goes; decode likewise batch-primes a shared
:class:`~repro.iblt.frontier.KeyHashCache` over the seeding scan while
preserving the exact FIFO peel sequence.  Both backends are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..hashing import Checksum, PairwiseHash, PublicCoins
from .backend import resolve_backend
from .frontier import KeyHashCache, PeelQueue, divisible_key, seed_sum_cell_queue
from .iblt import (
    _active_kernels,
    coerce_key_array,
    kernel_hash_params,
    partitioned_cell_indices,
)

__all__ = ["MultisetIBLT", "MultisetDecodeResult"]


@dataclass
class MultisetDecodeResult:
    """Signed multiplicities recovered from a subtracted multiset table."""

    success: bool
    #: key -> net signed multiplicity (never zero).
    multiplicities: dict[int, int] = field(default_factory=dict)

    @property
    def positive(self) -> dict[int, int]:
        """Keys with net positive multiplicity (inserting side's surplus)."""
        return {k: c for k, c in self.multiplicities.items() if c > 0}

    @property
    def negative(self) -> dict[int, int]:
        """Keys with net negative multiplicity, as positive counts."""
        return {k: -c for k, c in self.multiplicities.items() if c < 0}

    @property
    def total_difference(self) -> int:
        return sum(abs(c) for c in self.multiplicities.values())


class MultisetIBLT:
    """A sum-cell IBLT over integer keys with multiplicities."""

    def __init__(
        self,
        coins: PublicCoins,
        label: object,
        cells: int,
        q: int = 3,
        key_bits: int = 61,
        backend: str | None = None,
    ):
        if q < 2:
            raise ValueError(f"q must be >= 2, got {q}")
        if cells < q:
            raise ValueError(f"cells must be >= q, got {cells}")
        self.q = q
        self.block_size = (cells + q - 1) // q
        self.m = self.block_size * q
        self.key_bits = key_bits
        self.label = label
        if backend == "numpy" and key_bits > 61:
            raise ValueError(
                f"the numpy backend hashes keys of <= 61 bits, got key_bits={key_bits}"
            )
        self.backend = resolve_backend(backend)
        if key_bits > 61:
            self.backend = "python"
        self._cell_hashes = [
            PairwiseHash(coins, ("mset-cell", label, j), bits=61) for j in range(q)
        ]
        self.checksum = Checksum(coins, ("mset-checksum", label), bits=61)
        # Decode hash cache, shared with clones (see repro.iblt.frontier).
        self._hash_cache = KeyHashCache(self.checksum, self._cell_hashes, self.block_size)
        self._kernel_params: tuple | None | bool = None  # lazy; False = ineligible
        self.counts = [0] * self.m
        self.key_sum = [0] * self.m
        self.check_sum = [0] * self.m

    def cell_indices(self, key: int) -> list[int]:
        return [
            j * self.block_size + self._cell_hashes[j](key) % self.block_size
            for j in range(self.q)
        ]

    def cell_index_matrix(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cell_indices`: the ``(q, n)`` index matrix."""
        return partitioned_cell_indices(self._cell_hashes, self.block_size, keys)

    def _check_key(self, key: int) -> int:
        key = int(key)
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key} outside [0, 2^{self.key_bits})")
        return key

    def insert(self, key: int, multiplicity: int = 1) -> None:
        self._update(key, multiplicity)

    def delete(self, key: int, multiplicity: int = 1) -> None:
        self._update(key, -multiplicity)

    def _update(self, key: int, signed_multiplicity: int) -> None:
        key = self._check_key(key)
        if signed_multiplicity == 0:
            return
        check = self.checksum(key)
        for index in self.cell_indices(key):
            self.counts[index] += signed_multiplicity
            self.key_sum[index] += signed_multiplicity * key
            self.check_sum[index] += signed_multiplicity * check

    def insert_batch(
        self, keys: np.ndarray, multiplicities: np.ndarray | int = 1
    ) -> None:
        """Insert a key array with per-key (or scalar) multiplicities.

        On the numpy backend the cell indices and checksums — the
        dominant insert cost — are computed in one vectorised pass; the
        unbounded cell sums are then updated exactly.  Falls back to the
        scalar path on the python backend.
        """
        self._update_batch(keys, multiplicities, +1)

    def delete_batch(
        self, keys: np.ndarray, multiplicities: np.ndarray | int = 1
    ) -> None:
        """Delete a key array with per-key (or scalar) multiplicities."""
        self._update_batch(keys, multiplicities, -1)

    def _update_batch(
        self, keys: np.ndarray, multiplicities: np.ndarray | int, sign: int
    ) -> None:
        if self.backend != "numpy":
            # Validate the whole batch before mutating anything; keys stay
            # Python ints so widths beyond uint64 remain exact.
            key_list = [
                self._check_key(key) for key in np.asarray(keys).ravel().tolist()
            ]
            mult_list = np.broadcast_to(
                np.asarray(multiplicities, dtype=np.int64), (len(key_list),)
            ).tolist()
            for key, mult in zip(key_list, mult_list):
                self._update(key, sign * mult)
            return
        keys = coerce_key_array(keys, self.key_bits)
        if keys.size == 0:
            return
        mults = np.broadcast_to(
            np.asarray(multiplicities, dtype=np.int64), keys.shape
        )
        checks = self.checksum.hash_array(keys)
        indices = self.cell_index_matrix(keys)
        key_list = keys.tolist()
        check_list = checks.tolist()
        mult_list = (sign * mults).tolist()
        counts, key_sum, check_sum = self.counts, self.key_sum, self.check_sum
        for j in range(self.q):
            for index, key, check, mult in zip(
                indices[j].tolist(), key_list, check_list, mult_list
            ):
                counts[index] += mult
                key_sum[index] += mult * key
                check_sum[index] += mult * check

    def insert_all(self, keys: Iterable[int]) -> None:
        if self.backend == "numpy":
            self.insert_batch(coerce_key_array(keys, self.key_bits))
            return
        for key in keys:
            self.insert(key)

    def delete_all(self, keys: Iterable[int]) -> None:
        if self.backend == "numpy":
            self.delete_batch(coerce_key_array(keys, self.key_bits))
            return
        for key in keys:
            self.delete(key)

    def subtract(self, other: "MultisetIBLT") -> "MultisetIBLT":
        self._check_compatible(other)
        result = self._empty_clone()
        for index in range(self.m):
            result.counts[index] = self.counts[index] - other.counts[index]
            result.key_sum[index] = self.key_sum[index] - other.key_sum[index]
            result.check_sum[index] = self.check_sum[index] - other.check_sum[index]
        return result

    def _check_compatible(self, other: "MultisetIBLT") -> None:
        if (
            self.m != other.m
            or self.q != other.q
            or self.key_bits != other.key_bits
            or self.label != other.label
        ):
            raise ValueError("MultisetIBLTs are structurally incompatible")

    def _empty_clone(self) -> "MultisetIBLT":
        clone = object.__new__(MultisetIBLT)
        clone.q = self.q
        clone.block_size = self.block_size
        clone.m = self.m
        clone.key_bits = self.key_bits
        clone.label = self.label
        clone.backend = self.backend
        clone._cell_hashes = self._cell_hashes
        clone.checksum = self.checksum
        clone._hash_cache = self._hash_cache
        clone._kernel_params = self._kernel_params
        clone.counts = [0] * self.m
        clone.key_sum = [0] * self.m
        clone.check_sum = [0] * self.m
        return clone

    def copy(self) -> "MultisetIBLT":
        clone = self._empty_clone()
        clone.counts = list(self.counts)
        clone.key_sum = list(self.key_sum)
        clone.check_sum = list(self.check_sum)
        return clone

    def is_empty(self) -> bool:
        for count, key in zip(self.counts, self.key_sum):
            if count != 0 or key != 0:
                return False
        return True

    def to_payload(self) -> tuple[bytes, int]:
        """Serialize this sketch; returns ``(payload, exact_bit_count)``.

        Part of the uniform sketch wire surface shared with
        :meth:`IBLT.to_payload <repro.iblt.iblt.IBLT.to_payload>`.
        """
        from ..protocol.tables import multiset_payload

        return multiset_payload(self)

    def from_payload(self, payload: bytes) -> "MultisetIBLT":
        """Load a :meth:`to_payload` buffer into this (empty) shell.

        The payload is untrusted; damage raises the typed
        :class:`~repro.errors.DecodeError` hierarchy.
        """
        from ..protocol.serialize import BitReader
        from ..protocol.tables import read_multiset_cells

        return read_multiset_cells(BitReader(payload), self)

    def _pure_key(self, index: int, cache: KeyHashCache | None = None) -> int | None:
        key = divisible_key(self.counts[index], self.key_sum[index], 1 << self.key_bits)
        if key is None:
            return None
        check = self.checksum(key) if cache is None else cache.check(key)
        if check * self.counts[index] != self.check_sum[index]:
            return None
        return key

    def _sum_kernel_params(self) -> "tuple | None":
        """Kernel hash coefficients for this table (lazy, clone-shared)."""
        params = self._kernel_params
        if params is None:
            if self.key_bits <= 61:
                params = kernel_hash_params(self.checksum, self._cell_hashes)
            params = self._kernel_params = params if params is not None else False
        return params or None

    def _decode_compiled(self, kernels) -> MultisetDecodeResult | None:
        """Run the FIFO peel through the compiled kernel, or bail.

        Same contract as :meth:`RIBLT._decode_compiled
        <repro.iblt.riblt.RIBLT._decode_compiled>`: ``None`` (with the
        table untouched) when keys are too wide, any sum is at or beyond
        the guarded ``int64`` range, or the kernel bails mid-peel; the
        caller then runs the interpreter on identical state.
        """
        params = self._sum_kernel_params()
        if params is None:
            return None
        from ._kernels import SUM_BOUND

        try:
            counts = np.array(self.counts, dtype=np.int64)
            key_sum = np.array(self.key_sum, dtype=np.int64)
            check_sum = np.array(self.check_sum, dtype=np.int64)
        except (OverflowError, ValueError):
            return None
        for array in (counts, key_sum, check_sum):
            if array.size and max(-int(array.min()), int(array.max())) >= SUM_BOUND:
                return None
        a2, a1, b, ha, hb = params
        capacity = 4 * self.m + 64
        peel_keys = np.empty(capacity, dtype=np.int64)
        peel_counts = np.empty(capacity, dtype=np.int64)
        status, n_peeled = kernels.multiset_fifo_peel(
            counts,
            key_sum,
            check_sum,
            a2,
            a1,
            b,
            ha,
            hb,
            np.uint64(self.block_size),
            np.int64(1 << self.key_bits),
            np.empty(self.m + 1, dtype=np.int64),
            np.zeros(self.m, dtype=np.uint8),
            peel_keys,
            peel_counts,
        )
        if status != 0:
            return None
        result = MultisetDecodeResult(success=False)
        # Replay the (key, count) records in peel order: multiplicity
        # accumulation and the zero-sum deletions reproduce the
        # interpreter's dict insertion order exactly.
        multiplicities = result.multiplicities
        for key, count in zip(
            peel_keys[:n_peeled].tolist(), peel_counts[:n_peeled].tolist()
        ):
            multiplicities[key] = multiplicities.get(key, 0) + count
            if multiplicities[key] == 0:
                del multiplicities[key]
        self.counts = counts.tolist()
        self.key_sum = key_sum.tolist()
        self.check_sum = check_sum.tolist()
        result.success = bool(
            not counts.any() and not key_sum.any() and not check_sum.any()
        )
        return result

    def decode(self, engine: str | None = None) -> MultisetDecodeResult:
        """Breadth-first peel; destructive.

        The candidate frontier is seeded with one pure scan; afterwards
        only the cells a peel touches can change purity, so only those
        are pushed (see :mod:`repro.iblt.frontier`).  ``engine`` is
        ``"cached"`` (default: batch-primed hash cache on the numpy
        backend — the python backend always runs the scalar reference),
        ``"scalar"`` (the pre-engine scalar-per-step reference), or
        ``"compiled"`` (the nopython FIFO kernel; ``RuntimeError`` when
        unavailable).  ``None`` uses the compiled kernel when
        ``REPRO_KERNELS`` resolves to it on the numpy backend, else
        ``"cached"``.  All engines produce bit-identical results; the
        kernel bails back to the interpreter on untouched state for
        tables it cannot hold (wide keys, sums beyond its guarded
        ``int64`` range).
        """
        if engine not in (None, "cached", "scalar", "compiled"):
            raise ValueError(
                f"engine must be 'cached', 'scalar' or 'compiled', got {engine!r}"
            )
        kernels = None
        if engine == "compiled":
            from . import _kernels

            kernels = _kernels.require()
        elif engine is None and self.backend == "numpy":
            kernels = _active_kernels()
        if kernels is not None:
            compiled = self._decode_compiled(kernels)
            if compiled is not None:
                return compiled
        result = MultisetDecodeResult(success=False)
        cache = (
            self._hash_cache
            if engine != "scalar" and self.backend == "numpy"
            else None
        )
        queue = PeelQueue(self.m, fifo=True)
        seed_sum_cell_queue(
            self.counts, self.key_sum, self.check_sum, self.key_bits,
            queue, cache, self.checksum,
        )
        while queue:
            index = queue.pop()
            key = self._pure_key(index, cache)
            if key is None:
                continue
            count = self.counts[index]
            result.multiplicities[key] = result.multiplicities.get(key, 0) + count
            if result.multiplicities[key] == 0:
                del result.multiplicities[key]
            # Remove all `count` copies and test each neighbour in one
            # pass (each of the q partitioned cells is distinct, so a
            # neighbour's purity only depends on its own, already
            # subtracted, state — identical to updating all cells first).
            check = self.checksum(key) if cache is None else cache.check(key)
            neighbors = (
                self.cell_indices(key) if cache is None else cache.indices(key)
            )
            key_delta = count * key
            check_delta = count * check
            for neighbor in neighbors:
                self.counts[neighbor] -= count
                self.key_sum[neighbor] -= key_delta
                self.check_sum[neighbor] -= check_delta
                if (
                    not queue.pending(neighbor)
                    and self._pure_key(neighbor, cache) is not None
                ):
                    queue.push(neighbor)
        result.success = self.is_empty() and all(
            check == 0 for check in self.check_sum
        )
        return result
