"""Command-line demo driver: ``python -m repro.cli <command> [options]``.

Runs the paper's protocols on generated noisy-replica workloads and
prints measured outcomes — handy for quick experimentation without
writing a script.

Commands
--------
``emd``        Algorithm 1 on Hamming or grid data.
``gap``        The Gap Guarantee protocol (general or low-dimensional).
``exact``      Exact baselines: IBLT, auto-sized IBLT, char. polynomial.
``scenarios``  The seeded scenario matrix (every protocol family) as
               deterministic JSON — what CI's smoke job runs.
``sweep``      A parameter-sweep campaign: many seeded trials per grid
               point, optionally on a process or thread pool (``--pool``),
               aggregated into a ``repro.sweeps/v1`` curve report.
``kernels``    Capability report for the optional compiled kernel layer:
               requested/resolved ``REPRO_KERNELS`` mode, numba version,
               per-kernel compile status.
``serve``      The asyncio reconciliation server (Bob as a service) on a
               TCP port, speaking the framed wire protocol; ``--store``
               attaches a sharded sketch store for warm repeat serves.
``client``     Run N concurrent reconciliation sessions against a
               server, optionally over a seeded simulated lossy link,
               and emit a canonical ``repro.recon-service/v1`` report.
``stream``     ``record`` a seeded Zipf-churn stream into a crc-stamped
               ``repro.events/v1`` event log; ``replay`` a log through
               per-party sketch stores over a gossip topology and emit
               a canonical ``repro.stream/v1`` report.

Examples
--------
::

    python -m repro.cli emd --space hamming --dim 64 --n 32 --k 2
    python -m repro.cli gap --space l1 --side 4096 --dim 2 --n 48 --k 3 \\
        --r1 4 --r2 512 --lowdim
    python -m repro.cli exact --method cpi --n 100 --delta 8
    python -m repro.cli scenarios --seed 7 --backend numpy --output out.json
    python -m repro.cli sweep --campaign iblt-threshold --seed 7 --jobs 2
    python -m repro.cli serve --port 8377 --store
    python -m repro.cli client --port 8377 --sessions 8 --seed 7 \\
        --loss-rate 0.1 --duplicate-rate 0.05 --reorder-rate 0.1
    python -m repro.cli stream record --output churn.ndjson --seed 7 \\
        --n 32 --windows 3 --rate 6 --skew 1.2 --sources 5
    python -m repro.cli stream replay --input churn.ndjson --seed 7 \\
        --topology ring --parties 5
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from .analysis import format_table
from .core import (
    EMDProtocol,
    GapProtocol,
    low_dimensional_gap_protocol,
    verify_gap_guarantee,
)
from .experiments import (
    ScenarioRunner,
    SweepRunner,
    builtin_campaigns,
    builtin_scenarios,
    render_report,
    render_sweep_report,
)
from .experiments.sweeps import POOL_MODES, with_trials
from .hashing import PublicCoins
from .iblt.backend import BACKENDS, DECODE_MODES
from .lsh import BitSamplingMLSH, GridMLSH
from .metric import GridSpace, HammingSpace, MetricSpace, emd, emd_k
from .reconcile import cpi_reconcile, exact_iblt_reconcile, exact_iblt_reconcile_auto
from .workloads import noisy_replica_pair

__all__ = ["main", "build_parser"]


def _make_space(args: argparse.Namespace) -> MetricSpace:
    if args.space == "hamming":
        return HammingSpace(args.dim)
    if args.space == "l1":
        return GridSpace(side=args.side, dim=args.dim, p=1.0)
    if args.space == "l2":
        return GridSpace(side=args.side, dim=args.dim, p=2.0)
    raise ValueError(f"unknown space {args.space!r}")


def _make_workload(space: MetricSpace, args: argparse.Namespace):
    rng = np.random.default_rng(args.seed)
    return noisy_replica_pair(
        space,
        n=args.n,
        k=args.k,
        close_radius=args.close_radius,
        far_radius=args.far_radius,
        rng=rng,
    )


def _cmd_emd(args: argparse.Namespace) -> int:
    space = _make_space(args)
    workload = _make_workload(space, args)
    protocol = EMDProtocol.for_instance(space, n=args.n, k=args.k)
    result = protocol.run(workload.alice, workload.bob, PublicCoins(args.seed))
    rows = [
        ("success", result.success),
        ("rounds", result.rounds),
        ("bits", result.total_bits),
        ("decoded level", result.decoded_level),
        ("EMD before", emd(space, workload.alice, workload.bob)),
        ("EMD_k reference", emd_k(space, workload.alice, workload.bob, args.k)),
    ]
    if result.success:
        rows.append(("EMD after", emd(space, workload.alice, result.bob_final)))
    print(format_table(["metric", "value"], rows, title="EMD protocol (Alg. 1)"))
    return 0 if result.success else 1


def _cmd_gap(args: argparse.Namespace) -> int:
    space = _make_space(args)
    if args.lowdim:
        if not isinstance(space, GridSpace):
            print("--lowdim requires a grid space", file=sys.stderr)
            return 2
        protocol = low_dimensional_gap_protocol(
            space, n=args.n, k=args.k, r1=args.r1, r2=args.r2
        )
    else:
        if isinstance(space, HammingSpace):
            family = BitSamplingMLSH(space, w=float(space.dim))
        elif isinstance(space, GridSpace) and space.p == 1.0:
            family = GridMLSH(space, w=args.r2)
        else:
            print("general gap CLI supports hamming or l1 spaces", file=sys.stderr)
            return 2
        params = family.derived_lsh_params(r1=args.r1, r2=args.r2)
        protocol = GapProtocol(space, family, params, n=args.n, k=args.k)
    workload = _make_workload(space, args)
    result = protocol.run(workload.alice, workload.bob, PublicCoins(args.seed))
    rows = [
        ("success", result.success),
        ("rounds", result.rounds),
        ("bits", result.total_bits),
        ("points transmitted", len(result.transmitted)),
        ("planted far points", args.k),
    ]
    if result.success:
        rows.append(
            (
                "gap guarantee holds",
                verify_gap_guarantee(space, workload.alice, result.bob_final, args.r2),
            )
        )
    print(format_table(["metric", "value"], rows, title="Gap Guarantee protocol"))
    return 0 if result.success else 1


def _cmd_exact(args: argparse.Namespace) -> int:
    space = HammingSpace(args.dim)
    rng = np.random.default_rng(args.seed)
    shared = space.sample(rng, args.n)
    alice = shared + space.sample(rng, args.delta // 2)
    bob = shared + space.sample(rng, args.delta - args.delta // 2)
    coins = PublicCoins(args.seed)
    if args.method == "iblt":
        result = exact_iblt_reconcile(space, alice, bob, args.delta * 2, coins)
    elif args.method == "auto":
        result = exact_iblt_reconcile_auto(space, alice, bob, coins)
    elif args.method == "cpi":
        result = cpi_reconcile(space, alice, bob, args.delta * 2, coins)
    else:
        print(f"unknown method {args.method!r}", file=sys.stderr)
        return 2
    rows = [
        ("method", args.method),
        ("success", result.success),
        ("rounds", result.rounds),
        ("bits", result.total_bits),
        ("alice-only found", len(result.alice_only)),
        ("bob-only found", len(result.bob_only)),
        ("union reached", set(result.bob_final) == set(alice) | set(bob)),
    ]
    print(format_table(["metric", "value"], rows, title="Exact reconciliation"))
    return 0 if result.success else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    specs = builtin_scenarios(args.seed)
    if args.only:
        wanted = set(args.only)
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            print(f"unknown scenarios: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        specs = [spec for spec in specs if spec.name in wanted]
    if args.list:
        for spec in specs:
            print(f"{spec.name:22s} {spec.protocol}")
        return 0

    runner = ScenarioRunner(backend=args.backend, decode_mode=args.decode_mode)
    results = runner.run_all(specs)
    # Human-readable progress goes to stderr; stdout (or --output) carries
    # only the canonical JSON so same-seed runs stay byte-identical.
    for result in results:
        status = "ok" if result.success else "FAIL"
        print(
            f"  {result.spec.name:22s} [{result.backend}] {status:4s} "
            f"bits={result.metrics.get('bits', '-'):>8} "
            f"rounds={result.metrics.get('rounds', '-')} "
            f"({result.wall_time_s * 1e3:.1f} ms)",
            file=sys.stderr,
        )
    report = render_report(results, seed=args.seed, include_timings=args.timings)
    if args.output is not None:
        args.output.write_text(report)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(report)
    failures = [result.spec.name for result in results if not result.success]
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    campaigns = builtin_campaigns()
    if args.list:
        for name, campaign in campaigns.items():
            grid = " x ".join(
                f"{axis}[{len(values)}]" for axis, values in sorted(campaign.axes.items())
            )
            print(f"{name:20s} {campaign.protocol:12s} {grid} x {campaign.trials} trials")
        return 0
    if not args.campaign:
        print("--campaign is required (or --list)", file=sys.stderr)
        return 2
    selected = list(dict.fromkeys(args.campaign))  # preserve order, dedupe
    if args.output is not None and args.output_dir is not None:
        print("--output and --output-dir are mutually exclusive", file=sys.stderr)
        return 2
    if len(selected) > 1 and args.output_dir is None:
        # Concatenated JSON documents on stdout (or in one --output file)
        # would be unparseable as canonical output.
        print(
            "multiple campaigns need --output-dir (one report file per "
            "campaign); --output and stdout hold a single report",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.trials is not None and args.trials < 1:
        print(f"--trials must be >= 1, got {args.trials}", file=sys.stderr)
        return 2
    if args.output_dir is not None:
        args.output_dir.mkdir(parents=True, exist_ok=True)

    # One runner for every requested campaign: with --jobs > 1 the
    # persistent worker pool spins up once and every campaign reuses
    # the warm workers.
    with SweepRunner(
        backend=args.backend,
        decode_mode=args.decode_mode,
        jobs=args.jobs,
        pool=args.pool,
    ) as runner:
        for name in selected:
            sweep = campaigns[name]
            if args.trials is not None:
                sweep = with_trials(sweep, args.trials)
            point_results = runner.run(sweep, seed=args.seed)
            # Progress goes to stderr; stdout (or --output) carries only
            # the canonical JSON, which never depends on --jobs.
            print(f"campaign {name}:", file=sys.stderr)
            for point_result in point_results:
                rate = point_result.successes / len(point_result.results)
                bits = [result.metrics.get("bits") for result in point_result.results]
                mean_bits = (
                    sum(bits) / len(bits) if all(b is not None for b in bits) else None
                )
                label = ", ".join(
                    f"{k}={v}" for k, v in sorted(point_result.point.items())
                )
                print(
                    f"  {label:28s} success {rate:5.0%} "
                    f"({point_result.successes}/{len(point_result.results)})"
                    + (f"  mean bits {mean_bits:10.0f}" if mean_bits is not None else ""),
                    file=sys.stderr,
                )
            report = render_sweep_report(sweep, point_results, seed=args.seed)
            if args.output is not None:
                args.output.write_text(report)
                print(f"wrote {args.output}", file=sys.stderr)
            elif args.output_dir is not None:
                path = args.output_dir / f"sweep-{name}.json"
                path.write_text(report)
                print(f"wrote {path}", file=sys.stderr)
            else:
                sys.stdout.write(report)
    # Decode failures are measured outcomes here (the curves include the
    # over-threshold regime), so completion is success.
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from .iblt import _kernels

    status = _kernels.kernel_status()
    rows = [
        ("requested mode", status["requested"]),
        ("resolved mode", status["resolved"]),
        ("numba", status["numba"] or "not installed"),
    ]
    rows += [(f"kernel {name}", state) for name, state in sorted(status["kernels"].items())]
    print(format_table(["kernel layer", "status"], rows, title="Compiled kernels"))
    # "error: ..." resolutions (REPRO_KERNELS=compiled without numba, or a
    # failed self-test) exit non-zero so CI legs can assert availability.
    return 0 if not str(status["resolved"]).startswith("error") else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import ReconcileServer

    store = None
    if args.store:
        from .store import SketchStore, StoreConfig

        store = SketchStore(
            StoreConfig(
                seed=args.seed,
                shards=args.store_shards,
                capacity=args.store_capacity,
            )
        )

    async def run() -> None:
        server = ReconcileServer(store=store)
        tcp_server = await server.serve_tcp(args.host, args.port)
        bound = tcp_server.sockets[0].getsockname()
        mode = "store-backed" if store is not None else "stateless"
        # Readiness line on stderr: CI's server-smoke gate waits for it.
        print(f"recon-service ({mode}) listening on {bound[0]}:{bound[1]}",
              file=sys.stderr, flush=True)
        async with tcp_server:
            await tcp_server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .hashing import derive_seed
    from .server import (
        FrameConnection,
        NetworkConfig,
        ReconcileClient,
        SessionConfig,
        SimulatedNetwork,
        render_session_reports,
    )

    configs = [
        SessionConfig(
            session_id=session_id,
            seed=args.seed,
            protocol=args.protocol,
            dim=args.dim,
            n_shared=args.n,
            delta=args.delta,
            delta_bound=args.delta_bound,
            max_attempts=args.max_attempts,
            max_escalations=args.max_escalations,
        )
        for session_id in range(1, args.sessions + 1)
    ]
    network = SimulatedNetwork(
        NetworkConfig(
            seed=derive_seed(args.seed, "recon-service-cli"),
            loss_rate=args.loss_rate,
            corrupt_rate=args.corrupt_rate,
            duplicate_rate=args.duplicate_rate,
            reorder_rate=args.reorder_rate,
            base_latency_ms=args.base_latency_ms,
            jitter_ms=args.jitter_ms,
        )
    )

    async def run():
        reader, writer = await asyncio.open_connection(args.host, args.port)
        client = ReconcileClient(
            FrameConnection(reader, writer), network=network, timeout=args.timeout
        )
        client.start()
        try:
            return await client.run_sessions(configs)
        finally:
            await client.aclose()

    reports = asyncio.run(run())
    for report in sorted(reports, key=lambda r: r.session_id):
        status = "ok" if (report.success and report.union_ok) else "FAIL"
        print(
            f"  session {report.session_id:3d} {status:4s} "
            f"attempts={report.attempts} rerequests={report.rerequests} "
            f"bits={report.transcript_bits} wire={report.wire.wire_bytes}B",
            file=sys.stderr,
        )
    document = render_session_reports(reports, seed=args.seed)
    if args.output is not None:
        args.output.write_text(document)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(document)
    return 0 if all(r.success and r.union_ok for r in reports) else 1


def _cmd_stream_record(args: argparse.Namespace) -> int:
    from .stream import write_event_log
    from .workloads import ChurnGenerator

    coins = PublicCoins(args.seed).child("stream-record")
    workload = ChurnGenerator(coins, key_bits=args.key_bits).generate(
        n=args.n,
        windows=args.windows,
        rate=args.rate,
        skew=args.skew,
        insert_fraction=args.insert_fraction,
        sources=args.sources,
    )
    count = write_event_log(
        args.output,
        workload.events,
        key_bits=args.key_bits,
        meta={
            "seed": args.seed,
            "n": args.n,
            "windows": args.windows,
            "rate": args.rate,
            "skew": args.skew,
            "insert_fraction": args.insert_fraction,
            "sources": args.sources,
        },
    )
    print(
        f"recorded {count} events over {workload.windows} windows "
        f"(final membership {len(workload.final_membership)}) -> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_stream_replay(args: argparse.Namespace) -> int:
    from .core import Topology
    from .stream import EventLogReader, StreamReplayer, render_replay_report

    reader = EventLogReader.open(args.input)
    header = reader.header()
    events = reader.read_all()
    coins = PublicCoins(args.seed)
    topology = Topology.build(
        args.topology,
        args.parties,
        coins=coins.child("stream-topology"),
        branching=args.branching,
        k=args.k_regular,
    )
    replayer = StreamReplayer(
        topology,
        coins.child("stream-replay"),
        key_bits=header["key_bits"],
        delta_bound=args.delta_bound,
        q=args.q,
        max_attempts=args.max_attempts,
    )
    report = replayer.replay(events)
    print(
        f"replayed {report.events} events over {args.topology} "
        f"(depth {report.depth}): converged={report.converged} "
        f"warm==cold={report.matches_cold_rebuild} bits={report.total_bits}",
        file=sys.stderr,
    )
    document = render_replay_report(report, seed=args.seed, meta=dict(header["meta"]))
    if args.output is not None:
        args.output.write_text(document)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(document)
    return 0 if report.success else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robust set reconciliation via LSH — protocol demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--space", choices=("hamming", "l1", "l2"), default="hamming")
        p.add_argument("--dim", type=int, default=64)
        p.add_argument("--side", type=int, default=4096, help="grid side Δ")
        p.add_argument("--n", type=int, default=32)
        p.add_argument("--k", type=int, default=2)
        p.add_argument("--close-radius", type=float, default=2.0)
        p.add_argument("--far-radius", type=float, default=None)
        p.add_argument("--seed", type=int, default=0)

    emd_parser = sub.add_parser("emd", help="run Algorithm 1")
    common(emd_parser)
    emd_parser.set_defaults(handler=_cmd_emd)

    gap_parser = sub.add_parser("gap", help="run the Gap Guarantee protocol")
    common(gap_parser)
    gap_parser.add_argument("--r1", type=float, default=2.0)
    gap_parser.add_argument("--r2", type=float, default=32.0)
    gap_parser.add_argument("--lowdim", action="store_true",
                            help="use the one-sided Theorem 4.5 variant")
    gap_parser.set_defaults(handler=_cmd_gap)

    exact_parser = sub.add_parser("exact", help="run exact baselines")
    exact_parser.add_argument("--method", choices=("iblt", "auto", "cpi"),
                              default="iblt")
    exact_parser.add_argument("--dim", type=int, default=40)
    exact_parser.add_argument("--n", type=int, default=100)
    exact_parser.add_argument("--delta", type=int, default=8)
    exact_parser.add_argument("--seed", type=int, default=0)
    exact_parser.set_defaults(handler=_cmd_exact)

    scen_parser = sub.add_parser(
        "scenarios", help="run the seeded scenario matrix, emit canonical JSON"
    )
    scen_parser.add_argument("--seed", type=int, default=0)
    scen_parser.add_argument("--backend", choices=BACKENDS, default=None,
                             help="force a backend (default: process default)")
    scen_parser.add_argument("--decode-mode", choices=DECODE_MODES, default=None,
                             help="force an IBLT decode mode")
    scen_parser.add_argument("--only", action="append", metavar="NAME",
                             help="run only the named scenario (repeatable)")
    scen_parser.add_argument("--list", action="store_true",
                             help="list scenario names and exit")
    scen_parser.add_argument("--timings", action="store_true",
                             help="include wall times (breaks byte-determinism)")
    scen_parser.add_argument("--output", type=Path, default=None,
                             help="write the JSON report here instead of stdout")
    scen_parser.set_defaults(handler=_cmd_scenarios)

    sweep_parser = sub.add_parser(
        "sweep", help="run parameter-sweep campaigns, emit canonical JSON"
    )
    sweep_parser.add_argument("--campaign", action="append",
                              choices=sorted(builtin_campaigns()), default=None,
                              help="built-in campaign to run (repeatable; one "
                                   "persistent worker pool serves all of them)")
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker count (1 = serial, in-process)")
    sweep_parser.add_argument("--pool", choices=POOL_MODES, default="auto",
                              help="dispatch strategy for --jobs > 1: thread "
                                   "(zero-pickle; scales when compiled kernels "
                                   "are active), process, serial, or auto "
                                   "(reports are byte-identical regardless)")
    sweep_parser.add_argument("--trials", type=int, default=None,
                              help="override the campaigns' trials per grid point")
    sweep_parser.add_argument("--backend", choices=BACKENDS, default=None,
                              help="force a backend (default: process default)")
    sweep_parser.add_argument("--decode-mode", choices=DECODE_MODES, default=None,
                              help="force an IBLT decode mode")
    sweep_parser.add_argument("--list", action="store_true",
                              help="list campaigns and exit")
    sweep_parser.add_argument("--output", type=Path, default=None,
                              help="write the JSON report here instead of stdout "
                                   "(single campaign only)")
    sweep_parser.add_argument("--output-dir", type=Path, default=None,
                              help="write one sweep-<campaign>.json per campaign "
                                   "into this directory")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    kernels_parser = sub.add_parser(
        "kernels", help="show the resolved kernel mode and per-kernel status"
    )
    kernels_parser.set_defaults(handler=_cmd_kernels)

    serve_parser = sub.add_parser(
        "serve", help="run the reconciliation server (Bob as a service)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8377)
    serve_parser.add_argument("--store", action="store_true",
                              help="attach a sketch store: repeat sketch requests "
                                   "for unchanged workloads become warm cache hits "
                                   "(wire bytes are pinned identical to stateless)")
    serve_parser.add_argument("--store-shards", type=int, default=8,
                              help="key-range shards in the store")
    serve_parser.add_argument("--store-capacity", type=int, default=32,
                              help="LRU entry capacity per shard")
    serve_parser.add_argument("--seed", type=int, default=0,
                              help="store identity seed (shard routing)")
    serve_parser.set_defaults(handler=_cmd_serve)

    client_parser = sub.add_parser(
        "client", help="reconcile N sessions against a running server"
    )
    client_parser.add_argument("--host", default="127.0.0.1")
    client_parser.add_argument("--port", type=int, default=8377)
    client_parser.add_argument("--sessions", type=int, default=4,
                               help="concurrent sessions on one connection")
    client_parser.add_argument("--seed", type=int, default=0)
    client_parser.add_argument("--protocol", choices=("exact", "resilient"),
                               default="resilient")
    client_parser.add_argument("--dim", type=int, default=48)
    client_parser.add_argument("--n", type=int, default=96,
                               help="shared points per session")
    client_parser.add_argument("--delta", type=int, default=12,
                               help="true symmetric difference per session")
    client_parser.add_argument("--delta-bound", type=int, default=8,
                               help="Alice's initial difference bound")
    client_parser.add_argument("--max-attempts", type=int, default=10)
    client_parser.add_argument("--max-escalations", type=int, default=2)
    client_parser.add_argument("--loss-rate", type=float, default=0.0)
    client_parser.add_argument("--corrupt-rate", type=float, default=0.0)
    client_parser.add_argument("--duplicate-rate", type=float, default=0.0)
    client_parser.add_argument("--reorder-rate", type=float, default=0.0)
    client_parser.add_argument("--base-latency-ms", type=float, default=0.2)
    client_parser.add_argument("--jitter-ms", type=float, default=0.0)
    client_parser.add_argument("--timeout", type=float, default=30.0,
                               help="per-receive timeout in seconds")
    client_parser.add_argument("--output", type=Path, default=None,
                               help="write the JSON report here instead of stdout")
    client_parser.set_defaults(handler=_cmd_client)

    stream_parser = sub.add_parser(
        "stream", help="record / replay append-only churn event logs"
    )
    stream_sub = stream_parser.add_subparsers(dest="stream_command", required=True)

    record_parser = stream_sub.add_parser(
        "record", help="generate a seeded churn stream and write an event log"
    )
    record_parser.add_argument("--output", type=Path, required=True,
                               help="event-log path (repro.events/v1 NDJSON)")
    record_parser.add_argument("--seed", type=int, default=0)
    record_parser.add_argument("--n", type=int, default=32,
                               help="initial population (window 0 inserts)")
    record_parser.add_argument("--windows", type=int, default=3,
                               help="churn windows after the population")
    record_parser.add_argument("--rate", type=int, default=6,
                               help="mutations per churn window")
    record_parser.add_argument("--skew", type=float, default=1.0,
                               help="Zipf skew of delete victims over recency "
                                    "(0 = uniform)")
    record_parser.add_argument("--insert-fraction", type=float, default=0.5,
                               help="probability a mutation is a fresh insert")
    record_parser.add_argument("--sources", type=int, default=4,
                               help="observing parties events are attributed to")
    record_parser.add_argument("--key-bits", type=int, default=55)
    record_parser.set_defaults(handler=_cmd_stream_record)

    replay_parser = stream_sub.add_parser(
        "replay", help="replay an event log through per-party stores over gossip"
    )
    replay_parser.add_argument("--input", type=Path, required=True,
                               help="event-log path to replay")
    replay_parser.add_argument("--topology",
                               choices=("star", "ring", "tree", "random"),
                               default="star")
    replay_parser.add_argument("--parties", type=int, default=4)
    replay_parser.add_argument("--branching", type=int, default=2,
                               help="tree topology branching factor")
    replay_parser.add_argument("--k-regular", type=int, default=2,
                               help="degree of the random regular topology")
    replay_parser.add_argument("--delta-bound", type=int, default=8,
                               help="initial per-edge ID-sketch difference bound")
    replay_parser.add_argument("--q", type=int, default=3)
    replay_parser.add_argument("--max-attempts", type=int, default=6,
                               help="ID-sketch escalation attempts per sync")
    replay_parser.add_argument("--seed", type=int, default=0)
    replay_parser.add_argument("--output", type=Path, default=None,
                               help="write the JSON report here instead of stdout")
    replay_parser.set_defaults(handler=_cmd_stream_replay)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "far_radius", None) is None and hasattr(args, "far_radius"):
        # Default far radius: a third of the diameter-ish scale, beyond r2.
        if args.command == "gap":
            args.far_radius = args.r2 * 1.25
        else:
            space = _make_space(args)
            args.far_radius = max(8.0, space.diameter / 4)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
