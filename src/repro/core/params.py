"""Parameter derivation for Algorithm 1 (the EMD protocol).

Algorithm 1's inputs (Section 3):

* ``D1 <= EMD_k(S_A, S_B) <= D2`` — prior bounds on the excluded earth
  mover's distance (absent prior knowledge, ``D1 = 1`` and
  ``D2 = n·d·Δ`` for ``ℓ1``; footnote before Theorem 3.4).
* ``M > max f(a, b)`` — a bound on the diameter of the data.
* an MLSH family with ``r >= min(M, D2)`` and ``p >= e^{-k/(24·D2)}``
  (footnote 4: ``p`` is raised by *widening* the family, e.g. bit
  sampling with ``w = 48·D2/k``).

From these the protocol derives:

* ``t = ceil(log2(D2/D1)) + 1`` resolution levels (so the coarsest level's
  effective scale ``D1·2^{t-1}`` reaches ``D2``);
* level ``i`` keys hash the first
  ``c_i = 2^{i-1}·s·D1/D2 = 2^{i-4}·k/(D2·ln(1/p))`` MLSH values
  (``s = k/(8·D1·ln(1/p))``), so at the exact ``p`` bound ``c_1 = 3``
  and counts double per level — Equation (1)'s
  ``2^{i'-4}k/(D2 ln(1/p)) >= 3`` invariant;
* each RIBLT has ``m = 4·q²·k`` cells and accepts decodes of at most
  ``4k`` pairs, keeping the load under ``1/(q(q-1))``.

:func:`derive_emd_parameters` performs this derivation for the three
supported spaces, constructing the appropriately widened MLSH family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..lsh.base import MLSHFamily
from ..lsh.bit_sampling import BitSamplingMLSH
from ..lsh.grid import GridMLSH
from ..lsh.keys import key_bits_for
from ..lsh.pstable import PStableMLSH
from ..metric.spaces import GridSpace, HammingSpace, MetricSpace

__all__ = ["EMDParameters", "derive_emd_parameters", "default_distance_bounds"]


def default_distance_bounds(space: MetricSpace, n: int) -> tuple[float, float, float]:
    """The no-prior-knowledge ``(D1, D2, M)`` of Section 3.

    ``D1 = 1``, ``D2 = n · diameter``, ``M = diameter``.
    """
    return 1.0, float(n) * space.diameter, space.diameter


@dataclass(frozen=True)
class EMDParameters:
    """Everything Algorithm 1 needs, shared by both parties."""

    family: MLSHFamily
    n: int
    k: int
    d1: float
    d2: float
    m_bound: float
    levels: int
    hash_counts: tuple[int, ...]
    cells: int
    q: int
    key_bits: int

    @property
    def total_hashes(self) -> int:
        """``c_t`` — MLSH functions evaluated per point."""
        return self.hash_counts[-1]

    @property
    def accept_pairs(self) -> int:
        """Decode acceptance cap: ``4k`` pairs (Algorithm 1)."""
        return 4 * self.k


def _mlsh_width_for(
    space: MetricSpace, k: int, d2: float, m_bound: float
) -> tuple[MLSHFamily, float]:
    """Build the widened MLSH family meeting both footnote-4 constraints.

    ``p >= e^{-k/(24 D2)}`` requires width ``w >= beta·D2/k`` where
    ``beta`` is 48 for the exponent-2 families and ``48·sqrt(2/π)`` for
    p-stable; ``r >= min(M, D2)`` requires ``w >= min(M, D2)/r_factor``.
    """
    target_r = min(m_bound, d2)
    if isinstance(space, HammingSpace):
        w = max(float(space.dim), 48.0 * d2 / k, target_r / 0.79)
        return BitSamplingMLSH(space, w=w), w
    if isinstance(space, GridSpace) and space.p == 1.0:
        w = max(48.0 * d2 / k, target_r / 0.79)
        return GridMLSH(space, w=w), w
    if isinstance(space, GridSpace) and space.p == 2.0:
        w = max(48.0 * math.sqrt(2.0 / math.pi) * d2 / k, target_r / 0.99)
        return PStableMLSH(space, w=w), w
    raise TypeError(f"no MLSH family known for {space!r}")


def derive_emd_parameters(
    space: MetricSpace,
    n: int,
    k: int,
    d1: float | None = None,
    d2: float | None = None,
    m_bound: float | None = None,
    q: int = 3,
    max_total_hashes: int | None = None,
) -> EMDParameters:
    """Derive Algorithm 1's shared parameters.

    Parameters
    ----------
    space, n, k:
        The instance: ``|S_A| = |S_B| = n``, outlier budget ``k``.
    d1, d2, m_bound:
        Optional prior knowledge (defaults to Section 3's trivial
        bounds).  Tighter bounds mean fewer levels and fewer hash
        evaluations — Corollaries 3.5/3.6 exploit this by interval
        subdivision.
    q:
        RIBLT hash count (>= 3).
    max_total_hashes:
        Optional computational cap on ``c_t``; when hit, the finest
        levels share the cap (communication is unaffected; resolution of
        the finest levels degrades, which only matters when
        ``EMD_k`` is tiny relative to ``D2``).

    Raises
    ------
    ValueError
        On infeasible inputs (``k < 1``, ``D1 > D2``...).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    default_d1, default_d2, default_m = default_distance_bounds(space, n)
    d1 = default_d1 if d1 is None else float(d1)
    d2 = default_d2 if d2 is None else float(d2)
    m_bound = default_m if m_bound is None else float(m_bound)
    if not 0 < d1 <= d2:
        raise ValueError(f"need 0 < D1 <= D2, got D1={d1}, D2={d2}")

    family, _ = _mlsh_width_for(space, k, d2, m_bound)
    # ceil, not floor: with t = ceil(log2(D2/D1)) + 1 levels the coarsest
    # level's effective scale D1·2^{t-1} reaches D2, so the level set covers
    # all of [D1, D2] as Theorem 3.4 assumes even when D2/D1 is not a power
    # of two (floor under-covered the top of the range in that case).
    levels = max(1, math.ceil(math.log2(d2 / d1)) + 1)

    # c_i = 2^{i-1} * k / (8 * D2 * ln(1/p)); at the exact p bound this is
    # 3 * 2^{i-1}.
    log_inverse_p = -math.log(family.p)
    base = k / (8.0 * d2 * log_inverse_p)
    hash_counts: list[int] = []
    for level in range(1, levels + 1):
        count = max(1, round(2 ** (level - 1) * base))
        if hash_counts:
            count = max(count, hash_counts[-1])
        if max_total_hashes is not None:
            count = min(count, max_total_hashes)
        hash_counts.append(count)

    cells = 4 * q * q * k
    return EMDParameters(
        family=family,
        n=n,
        k=k,
        d1=d1,
        d2=d2,
        m_bound=m_bound,
        levels=levels,
        hash_counts=tuple(hash_counts),
        cells=cells,
        q=q,
        key_bits=key_bits_for(n),
    )
