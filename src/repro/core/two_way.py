"""Two-way reconciliation and reliability wrappers.

Section 1 ("One-way reconciliation") observes that both models extend to
two-way variants by running the protocol once in each direction — the
parties will generally *not* end with identical sets, which is inherent
to robust reconciliation.  These wrappers implement that construction,
plus the standard success-probability amplification the paper's
constant-probability guarantees invite: rerun with fresh public coins
until success, boosting ``1 - 1/8``-style bounds to ``1 - δ`` at an
expected constant-factor cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..hashing import PublicCoins
from ..metric.spaces import Point
from ..protocol.channel import Channel
from .emd_protocol import EMDProtocol, EMDResult
from .gap_protocol import GapProtocol, GapResult

__all__ = [
    "TwoWayEMDResult",
    "two_way_emd",
    "TwoWayGapResult",
    "two_way_gap",
    "run_emd_with_retries",
    "run_gap_with_retries",
    "retries_for_confidence",
]


def retries_for_confidence(single_failure: float, delta: float) -> int:
    """Attempts needed so overall failure ``single_failure^t <= delta``."""
    if not 0 < single_failure < 1:
        raise ValueError(f"single_failure must be in (0,1), got {single_failure}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return max(1, math.ceil(math.log(delta) / math.log(single_failure)))


# ---------------------------------------------------------------------------
# Retry wrappers
# ---------------------------------------------------------------------------

def run_emd_with_retries(
    protocol: EMDProtocol,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    coins: PublicCoins,
    attempts: int = 4,
    channel: Channel | None = None,
    matcher: str = "hungarian",
) -> EMDResult:
    """Re-run Algorithm 1 with fresh coins until it stops reporting failure.

    Theorem 3.4's failure probability is at most 1/8 per run (when
    ``EMD_k <= D2``), so ``attempts = 4`` already gives ``< 0.03%``.
    All attempts' communication accumulates on the shared channel (each
    retry is a real extra round in practice).
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    channel = channel if channel is not None else Channel()
    result: EMDResult | None = None
    for attempt in range(attempts):
        result = protocol.run(
            alice_points,
            bob_points,
            coins.child("emd-retry", attempt),
            channel,
            matcher=matcher,
        )
        if result.success:
            break
    assert result is not None
    return EMDResult(
        success=result.success,
        bob_final=result.bob_final,
        decoded_level=result.decoded_level,
        decoded_pairs=result.decoded_pairs,
        total_bits=channel.total_bits,
        rounds=channel.rounds,
    )


def run_gap_with_retries(
    protocol: GapProtocol,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    coins: PublicCoins,
    attempts: int = 3,
    channel: Channel | None = None,
) -> GapResult:
    """Re-run the Gap protocol with fresh coins on sketch-decode failure."""
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    channel = channel if channel is not None else Channel()
    result: GapResult | None = None
    for attempt in range(attempts):
        result = protocol.run(
            alice_points, bob_points, coins.child("gap-retry", attempt), channel
        )
        if result.success:
            break
    assert result is not None
    return GapResult(
        success=result.success,
        bob_final=result.bob_final,
        transmitted=result.transmitted,
        sos_unresolved=result.sos_unresolved,
        pair_difference=result.pair_difference,
        total_bits=channel.total_bits,
        rounds=channel.rounds,
    )


# ---------------------------------------------------------------------------
# Two-way variants
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TwoWayEMDResult:
    """Both directions of the EMD protocol.

    ``alice_final`` approximates Bob's original set and vice versa; per
    Section 1 the two final sets need not coincide.
    """

    success: bool
    alice_final: list[Point]
    bob_final: list[Point]
    total_bits: int
    rounds: int


def two_way_emd(
    protocol: EMDProtocol,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    coins: PublicCoins,
    channel: Channel | None = None,
    attempts: int = 4,
) -> TwoWayEMDResult:
    """Run Algorithm 1 in both directions over one channel."""
    channel = channel if channel is not None else Channel()
    forward = run_emd_with_retries(
        protocol, alice_points, bob_points, coins.child("fwd"),
        attempts=attempts, channel=channel,
    )
    backward = run_emd_with_retries(
        protocol, bob_points, alice_points, coins.child("bwd"),
        attempts=attempts, channel=channel,
    )
    return TwoWayEMDResult(
        success=forward.success and backward.success,
        alice_final=backward.bob_final,
        bob_final=forward.bob_final,
        total_bits=channel.total_bits,
        rounds=channel.rounds,
    )


@dataclass(frozen=True)
class TwoWayGapResult:
    """Both directions of the Gap protocol.

    After the exchange, every point of ``S_A ∪ S_B`` is within ``r2`` of
    *both* parties' final sets (each direction's guarantee covers one
    side's additions; own points cover the rest).
    """

    success: bool
    alice_final: list[Point]
    bob_final: list[Point]
    total_bits: int
    rounds: int


def two_way_gap(
    protocol: GapProtocol,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    coins: PublicCoins,
    channel: Channel | None = None,
    attempts: int = 3,
) -> TwoWayGapResult:
    """Run the Gap protocol in both directions over one channel."""
    channel = channel if channel is not None else Channel()
    forward = run_gap_with_retries(
        protocol, alice_points, bob_points, coins.child("fwd"),
        attempts=attempts, channel=channel,
    )
    backward = run_gap_with_retries(
        protocol, bob_points, alice_points, coins.child("bwd"),
        attempts=attempts, channel=channel,
    )
    return TwoWayGapResult(
        success=forward.success and backward.success,
        alice_final=backward.bob_final,
        bob_final=forward.bob_final,
        total_bits=channel.total_bits,
        rounds=channel.rounds,
    )
