"""Multi-party robust reconciliation (extension; cf. [23]).

The paper's related work cites simple multi-party set reconciliation
(Mitzenmacher & Pagh [23]).  This module lifts the *robust* Gap
Guarantee model to ``P >= 2`` parties with the natural star
construction the two-party protocol invites:

1. a coordinator is chosen (party 0);
2. every other party runs the two-party Gap protocol *toward* the
   coordinator (the coordinator plays Bob), so the coordinator ends
   with a set within ``r2`` of every point any party holds;
3. the coordinator runs the protocol once *back* toward each party
   (the party plays Bob), delivering everything they miss.

Every pairwise run reuses the measured channel, so the reported
communication is the true total over all ``2(P-1)`` protocol
executions.  The resulting guarantee: every input point of every party
is within ``2·r2`` of every party's final set (one ``r2`` hop into the
coordinator's set, one hop out — the triangle inequality; the
coordinator itself enjoys plain ``r2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hashing import PublicCoins
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import Channel
from .gap_protocol import GapProtocol, verify_gap_guarantee

__all__ = ["MultiPartyGapResult", "multi_party_gap"]


@dataclass(frozen=True)
class MultiPartyGapResult:
    """Outcome of the star-topology multi-party reconciliation."""

    success: bool
    final_sets: list[list[Point]]
    coordinator: int
    total_bits: int
    protocol_runs: int

    def party_final(self, party: int) -> list[Point]:
        return self.final_sets[party]


def multi_party_gap(
    protocol: GapProtocol,
    party_sets: Sequence[Sequence[Point]],
    coins: PublicCoins,
    coordinator: int = 0,
    channel: Channel | None = None,
) -> MultiPartyGapResult:
    """Reconcile ``P`` parties' point sets through a coordinator.

    Parameters
    ----------
    protocol:
        A configured two-party :class:`GapProtocol`; its ``n`` should be
        sized for the largest party set (it is only used for sketch
        sizing, so a generous value is safe).
    party_sets:
        One point sequence per party.
    coordinator:
        Index of the hub party.

    Notes
    -----
    Inbound phase: party ``i``'s points that are far from the (growing)
    coordinator set get shipped in; outbound phase: each party receives
    the coordinator points far from *their* set.  Each phase is a
    faithful two-party protocol run over the shared channel.
    """
    parties = [list(points) for points in party_sets]
    if len(parties) < 2:
        raise ValueError(f"need at least 2 parties, got {len(parties)}")
    if not 0 <= coordinator < len(parties):
        raise ValueError(f"coordinator index {coordinator} out of range")
    channel = channel if channel is not None else Channel()

    hub = list(parties[coordinator])
    runs = 0
    all_success = True

    # ---- inbound: everyone -> coordinator --------------------------------
    for index, points in enumerate(parties):
        if index == coordinator:
            continue
        result = protocol.run(points, hub, coins.child("in", index), channel)
        runs += 1
        if not result.success:
            all_success = False
            continue
        hub = result.bob_final

    # ---- outbound: coordinator -> everyone --------------------------------
    finals = [list(points) for points in parties]
    finals[coordinator] = hub
    for index, points in enumerate(parties):
        if index == coordinator:
            continue
        result = protocol.run(hub, points, coins.child("out", index), channel)
        runs += 1
        if not result.success:
            all_success = False
            continue
        finals[index] = result.bob_final

    return MultiPartyGapResult(
        success=all_success,
        final_sets=finals,
        coordinator=coordinator,
        total_bits=channel.total_bits,
        protocol_runs=runs,
    )


def verify_multi_party_guarantee(
    space: MetricSpace,
    party_sets: Sequence[Sequence[Point]],
    result: MultiPartyGapResult,
    r2: float,
) -> bool:
    """Check the multi-party postcondition.

    Every input point of every party must be within ``r2`` of the
    coordinator's final set and within ``2·r2`` of every party's final
    set.
    """
    hub_final = result.final_sets[result.coordinator]
    for points in party_sets:
        if not verify_gap_guarantee(space, list(points), hub_final, r2):
            return False
    for final in result.final_sets:
        for points in party_sets:
            if not verify_gap_guarantee(space, list(points), final, 2.0 * r2):
                return False
    return True
