"""Multi-party robust reconciliation over general gossip topologies.

The paper's related work cites simple multi-party set reconciliation
(Mitzenmacher & Pagh [23]).  This module lifts the *robust* Gap
Guarantee model to ``P >= 2`` parties.  Historically it hard-coded the
star construction; it now runs over any connected :class:`Topology`
(``star``, ``ring``, ``tree``, ``random_k_regular``), executing the
two-party protocol along a BFS spanning tree of the topology rooted at
the coordinator:

1. **Convergecast** (deepest nodes first): every non-root party runs
   the two-party Gap protocol *toward* its tree parent (the parent
   plays Bob), so accumulated knowledge flows up and the coordinator
   ends with a set within ``depth * r2`` of every point any party
   holds (one ``r2`` hop per tree level, by the triangle inequality).
2. **Broadcast** (shallowest first): each parent runs the protocol
   once *back* toward each child (the child plays Bob), delivering
   everything the child's subtree missed.

For a star the spanning tree is the star itself (every leaf at depth
1), the hop orders reduce to ascending party index, and the per-run
coin labels are unchanged — so star results are bit-identical to the
pre-topology implementation (pinned by the scenario goldens).

Every pairwise run reuses the measured channel and the transcript is
itemised *per topology edge* (:attr:`MultiPartyGapResult.edge_bits`);
topology edges outside the spanning tree carry zero bits.  The
resulting guarantee: every input point of every party is within
``2 * depth * r2`` of every party's final set (``depth`` hops into the
coordinator's set, ``depth`` hops out; the coordinator itself enjoys
``depth * r2``), which for the star is the familiar ``2 * r2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hashing import PublicCoins
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import Channel
from .gap_protocol import GapProtocol, verify_gap_guarantee

__all__ = [
    "MultiPartyGapResult",
    "Topology",
    "multi_party_gap",
    "verify_multi_party_guarantee",
]

#: The topology kinds :meth:`Topology.build` accepts.
TOPOLOGY_KINDS = ("star", "ring", "tree", "random")


def _edge(u: int, v: int) -> tuple[int, int]:
    """The canonical (sorted) form of an undirected edge."""
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Topology:
    """A connected undirected gossip graph over ``parties`` nodes.

    ``edges`` is canonical: each edge is ``(u, v)`` with ``u < v``, the
    tuple is sorted, and duplicates are rejected — so two topologies
    compare equal iff they are the same graph, regardless of how their
    edges were produced.
    """

    kind: str
    parties: int
    edges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.parties < 2:
            raise ValueError(f"need at least 2 parties, got {self.parties}")
        seen: set[tuple[int, int]] = set()
        for edge in self.edges:
            u, v = edge
            if not (0 <= u < self.parties and 0 <= v < self.parties):
                raise ValueError(f"edge {edge} out of range for {self.parties} parties")
            if u >= v:
                raise ValueError(f"edge {edge} is not canonical (need u < v)")
            if edge in seen:
                raise ValueError(f"duplicate edge {edge}")
            seen.add(edge)
        if tuple(sorted(self.edges)) != self.edges:
            raise ValueError("edges must be sorted")
        if not self._connected():
            raise ValueError(f"{self.kind} topology on {self.parties} parties is not connected")

    # -- constructors --------------------------------------------------------
    @classmethod
    def star(cls, parties: int, hub: int = 0) -> "Topology":
        """Every party linked to the ``hub`` (the legacy construction)."""
        if not 0 <= hub < parties:
            raise ValueError(f"hub index {hub} out of range")
        edges = tuple(sorted(_edge(hub, i) for i in range(parties) if i != hub))
        return cls("star", parties, edges)

    @classmethod
    def ring(cls, parties: int) -> "Topology":
        """Party ``i`` linked to ``(i + 1) mod parties``."""
        edges = {_edge(i, (i + 1) % parties) for i in range(parties)}
        return cls("ring", parties, tuple(sorted(edges)))

    @classmethod
    def tree(cls, parties: int, branching: int = 2) -> "Topology":
        """A complete ``branching``-ary tree (node ``i``'s parent is
        ``(i - 1) // branching``)."""
        if branching < 1:
            raise ValueError(f"branching must be >= 1, got {branching}")
        edges = tuple(sorted(_edge((i - 1) // branching, i) for i in range(1, parties)))
        return cls("tree", parties, edges)

    @classmethod
    def random_k_regular(
        cls, parties: int, k: int, coins: PublicCoins, max_tries: int = 256
    ) -> "Topology":
        """A connected ``k``-regular graph, deterministic from ``coins``.

        Uses the pairing (configuration) model: ``k`` stubs per node are
        shuffled by a coins-derived generator and paired off; draws with
        self-loops, parallel edges or a disconnected result are rejected
        and redrawn under a new sub-label, so the same coins always
        yield the same graph.
        """
        if k < 1 or k >= parties:
            raise ValueError(f"need 1 <= k < parties, got k={k}, parties={parties}")
        if (parties * k) % 2 != 0:
            raise ValueError(f"parties * k must be even, got {parties} * {k}")
        for attempt in range(max_tries):
            rng = coins.numpy_rng("topology-k-regular", parties, k, attempt)
            stubs = [node for node in range(parties) for _ in range(k)]
            order = rng.permutation(len(stubs))
            edges: set[tuple[int, int]] = set()
            ok = True
            for index in range(0, len(stubs), 2):
                u = stubs[int(order[index])]
                v = stubs[int(order[index + 1])]
                if u == v or _edge(u, v) in edges:
                    ok = False
                    break
                edges.add(_edge(u, v))
            if not ok:
                continue
            try:
                return cls("random", parties, tuple(sorted(edges)))
            except ValueError:
                continue  # disconnected draw: reject and redraw
        raise RuntimeError(
            f"no connected {k}-regular graph on {parties} nodes after {max_tries} draws"
        )

    @classmethod
    def build(
        cls,
        kind: str,
        parties: int,
        coins: PublicCoins | None = None,
        hub: int = 0,
        branching: int = 2,
        k: int = 2,
    ) -> "Topology":
        """Construct a topology by kind name (the CLI/scenario surface)."""
        if kind == "star":
            return cls.star(parties, hub=hub)
        if kind == "ring":
            return cls.ring(parties)
        if kind == "tree":
            return cls.tree(parties, branching=branching)
        if kind == "random":
            if coins is None:
                raise ValueError("random topology needs PublicCoins for its edge draw")
            return cls.random_k_regular(parties, k, coins)
        raise ValueError(f"unknown topology kind {kind!r} (expected one of {TOPOLOGY_KINDS})")

    # -- structure -----------------------------------------------------------
    def neighbors(self, node: int) -> tuple[int, ...]:
        """The node's neighbours in ascending order."""
        out = [v for u, v in self.edges if u == node]
        out += [u for u, v in self.edges if v == node]
        return tuple(sorted(out))

    def _connected(self) -> bool:
        parents, _ = self._bfs(0)
        return all(parents[node] is not None or node == 0 for node in range(self.parties))

    def _bfs(self, root: int) -> tuple[list, list]:
        """BFS parents and depths (sorted-neighbour visit order)."""
        parents: list = [None] * self.parties
        depths: list = [None] * self.parties
        depths[root] = 0
        frontier = [root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if depths[neighbor] is None:
                        depths[neighbor] = depths[node] + 1
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return parents, depths

    def spanning_tree(self, root: int) -> tuple[dict[int, int], dict[int, int]]:
        """BFS spanning tree: ``(parent_of, depth_of)`` maps.

        Deterministic — neighbours are visited in ascending order — so
        every party derives the identical tree from the shared topology.
        """
        if not 0 <= root < self.parties:
            raise ValueError(f"root index {root} out of range")
        parents, depths = self._bfs(root)
        parent_of = {node: parents[node] for node in range(self.parties) if node != root}
        depth_of = {node: depths[node] for node in range(self.parties)}
        return parent_of, depth_of

    def depth(self, root: int) -> int:
        """The eccentricity of ``root`` in the BFS tree (max hop count)."""
        _, depth_of = self.spanning_tree(root)
        return max(depth_of.values())

    def gossip_schedule(self, root: int) -> tuple[list[int], list[int]]:
        """Convergecast and broadcast node orders for the tree wave.

        Convergecast runs deepest-first (ascending index within a
        level); broadcast runs shallowest-first.  For a star rooted at
        the hub both reduce to ascending party index — the legacy order.
        """
        parent_of, depth_of = self.spanning_tree(root)
        nodes = sorted(parent_of)
        up = sorted(nodes, key=lambda node: (-depth_of[node], node))
        down = sorted(nodes, key=lambda node: (depth_of[node], node))
        return up, down


@dataclass(frozen=True)
class MultiPartyGapResult:
    """Outcome of a multi-party reconciliation over a gossip topology.

    ``edge_bits`` itemises the transcript per canonical topology edge as
    ``(u, v, bits)`` triples (additive to the legacy total); edges the
    spanning tree skipped carry zero bits.  ``depth`` is the spanning
    tree's maximum hop count — the factor the guarantee radius scales
    by (1 for the legacy star).
    """

    success: bool
    final_sets: list[list[Point]]
    coordinator: int
    total_bits: int
    protocol_runs: int
    topology: str = "star"
    depth: int = 1
    edge_bits: tuple[tuple[int, int, int], ...] = ()

    def party_final(self, party: int) -> list[Point]:
        return self.final_sets[party]

    def edge_bits_map(self) -> dict[tuple[int, int], int]:
        """Per-edge transcript bits keyed by canonical edge."""
        return {(u, v): bits for u, v, bits in self.edge_bits}


def multi_party_gap(
    protocol: GapProtocol,
    party_sets: Sequence[Sequence[Point]],
    coins: PublicCoins,
    coordinator: int = 0,
    channel: Channel | None = None,
    topology: Topology | None = None,
) -> MultiPartyGapResult:
    """Reconcile ``P`` parties' point sets over a gossip topology.

    Parameters
    ----------
    protocol:
        A configured two-party :class:`GapProtocol`; its ``n`` should be
        sized for the largest party set (it is only used for sketch
        sizing, so a generous value is safe).
    party_sets:
        One point sequence per party.
    coordinator:
        The spanning-tree root (the hub of the default star).
    topology:
        The gossip graph; ``None`` means the legacy star centred on the
        coordinator, whose results are bit-identical to the
        pre-topology implementation.

    Notes
    -----
    Convergecast phase: each party's accumulated set flows toward its
    tree parent (deepest levels first), so the coordinator absorbs
    every subtree.  Broadcast phase: each party receives the points its
    subtree missed from its parent (shallowest first).  Each hop is a
    faithful two-party protocol run over the shared channel, with coin
    labels ``("in", child)`` / ``("out", child)`` — exactly the legacy
    star labels when the topology is a star.
    """
    parties = [list(points) for points in party_sets]
    if len(parties) < 2:
        raise ValueError(f"need at least 2 parties, got {len(parties)}")
    if not 0 <= coordinator < len(parties):
        raise ValueError(f"coordinator index {coordinator} out of range")
    if topology is None:
        topology = Topology.star(len(parties), hub=coordinator)
    elif topology.parties != len(parties):
        raise ValueError(
            f"topology has {topology.parties} parties but {len(parties)} sets were given"
        )
    channel = channel if channel is not None else Channel()

    parent_of, depth_of = topology.spanning_tree(coordinator)
    up_order, down_order = topology.gossip_schedule(coordinator)
    edge_bits = {edge: 0 for edge in topology.edges}
    runs = 0
    all_success = True

    # ---- convergecast: subtrees -> coordinator ----------------------------
    accumulated = [list(points) for points in parties]
    for child in up_order:
        parent = parent_of[child]
        before = channel.total_bits
        result = protocol.run(
            accumulated[child], accumulated[parent], coins.child("in", child), channel
        )
        runs += 1
        edge_bits[_edge(parent, child)] += channel.total_bits - before
        if not result.success:
            all_success = False
            continue
        accumulated[parent] = result.bob_final

    # ---- broadcast: coordinator -> subtrees --------------------------------
    finals = [list(points) for points in parties]
    finals[coordinator] = accumulated[coordinator]
    for child in down_order:
        parent = parent_of[child]
        before = channel.total_bits
        result = protocol.run(
            finals[parent], parties[child], coins.child("out", child), channel
        )
        runs += 1
        edge_bits[_edge(parent, child)] += channel.total_bits - before
        if not result.success:
            all_success = False
            continue
        finals[child] = result.bob_final

    return MultiPartyGapResult(
        success=all_success,
        final_sets=finals,
        coordinator=coordinator,
        total_bits=channel.total_bits,
        protocol_runs=runs,
        topology=topology.kind,
        depth=max(depth_of.values()),
        edge_bits=tuple((u, v, edge_bits[(u, v)]) for u, v in topology.edges),
    )


def verify_multi_party_guarantee(
    space: MetricSpace,
    party_sets: Sequence[Sequence[Point]],
    result: MultiPartyGapResult,
    r2: float,
) -> bool:
    """Check the multi-party postcondition at the result's gossip depth.

    Every input point of every party must be within ``depth * r2`` of
    the coordinator's final set and within ``2 * depth * r2`` of every
    party's final set (one ``r2`` per tree hop in, one per hop out).
    For the star (``depth == 1``) this is the legacy ``r2`` / ``2 * r2``
    guarantee.
    """
    depth = max(1, result.depth)
    hub_final = result.final_sets[result.coordinator]
    for points in party_sets:
        if not verify_gap_guarantee(space, list(points), hub_final, depth * r2):
            return False
    for final in result.final_sets:
        for points in party_sets:
            if not verify_gap_guarantee(space, list(points), final, 2.0 * depth * r2):
                return False
    return True
