"""The paper's protocols: Algorithm 1 (EMD) and the Gap Guarantee family."""

from .emd_protocol import EMDProtocol, EMDResult
from .emd_scaled import ScaledEMDProtocol, ScaledEMDResult
from .gap_lowdim import low_dim_entries, low_dimensional_gap_protocol
from .gap_protocol import GapProtocol, GapResult, verify_gap_guarantee
from .index_lower_bound import (
    IndexInstance,
    greedy_binary_code,
    make_index_instance,
    one_round_subset_protocol,
    required_dimension,
    solve_index_via_gap,
)
from .multiparty import (
    MultiPartyGapResult,
    Topology,
    multi_party_gap,
    verify_multi_party_guarantee,
)
from .params import EMDParameters, default_distance_bounds, derive_emd_parameters
from .repair import repair_point_set
from .two_way import (
    TwoWayEMDResult,
    TwoWayGapResult,
    retries_for_confidence,
    run_emd_with_retries,
    run_gap_with_retries,
    two_way_emd,
    two_way_gap,
)

__all__ = [
    "EMDProtocol",
    "EMDResult",
    "ScaledEMDProtocol",
    "ScaledEMDResult",
    "low_dim_entries",
    "low_dimensional_gap_protocol",
    "GapProtocol",
    "GapResult",
    "verify_gap_guarantee",
    "IndexInstance",
    "greedy_binary_code",
    "make_index_instance",
    "one_round_subset_protocol",
    "required_dimension",
    "solve_index_via_gap",
    "MultiPartyGapResult",
    "Topology",
    "multi_party_gap",
    "verify_multi_party_guarantee",
    "EMDParameters",
    "default_distance_bounds",
    "derive_emd_parameters",
    "repair_point_set",
    "TwoWayEMDResult",
    "TwoWayGapResult",
    "retries_for_confidence",
    "run_emd_with_retries",
    "run_gap_with_retries",
    "two_way_emd",
    "two_way_gap",
]
