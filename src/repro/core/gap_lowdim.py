"""The low-dimensional Gap protocol (Theorem 4.5, Appendix E.1).

In a low-dimensional ``ℓ_p`` grid space a randomly shifted grid of cell
width ``r2/d^{1/p}`` has *one-sided* error: far points never share a cell
(``p2 = 0``), while close points share one with probability at least
``1 - ρ̂`` where ``ρ̂ = r1·d/r2``.

The construction removes the need for per-entry replication: the key
vector uses ``m = 1`` LSH value per entry and only
``h = Θ(log n / log(1/ρ̂))`` entries, and Alice classifies a point as
close as soon as *any* entry of its key matches the corresponding entry
of any Bob key (match threshold 1).  This improves over Theorem 4.2 by
roughly a ``log(r2/r1)`` factor in communication for constant ``d``.
"""

from __future__ import annotations

import math

from ..lsh.onesided import OneSidedGridLSH
from ..metric.spaces import GridSpace
from .gap_protocol import GapProtocol

__all__ = ["low_dimensional_gap_protocol", "low_dim_entries"]


def low_dim_entries(n: int, rho_hat: float, slack: int = 2) -> int:
    """``h = Θ(log n / log(1/ρ̂))``: entries so a close pair misses all
    ``h`` grids with probability ``ρ̂^h <= 1/poly(n)``."""
    if not 0 < rho_hat < 1:
        raise ValueError(f"rho_hat must be in (0, 1), got {rho_hat}")
    denominator = math.log(1.0 / rho_hat)
    return max(2, math.ceil(2.0 * math.log(max(n, 2)) / denominator) + slack)


def low_dimensional_gap_protocol(
    space: GridSpace,
    n: int,
    k: int,
    r1: float,
    r2: float,
    entries: int | None = None,
    sos_size_multiplier: float = 4.0,
) -> GapProtocol:
    """Build Theorem 4.5's protocol as a configured :class:`GapProtocol`.

    Raises ``ValueError`` when ``ρ̂ = r1·d/r2 >= 1`` (the construction
    needs low dimension / a wide enough gap).
    """
    lsh = OneSidedGridLSH(space, r1=r1, r2=r2)
    h = entries if entries is not None else low_dim_entries(n, lsh.rho_hat)
    return GapProtocol(
        space,
        lsh,
        lsh.params,
        n=n,
        k=k,
        entries=h,
        per_entry=1,
        match_threshold=1,
        sos_size_multiplier=sos_size_multiplier,
    )
