"""The Gap Guarantee protocol (Section 4.1, Theorem 4.2).

Bob must end with ``S'_B = S_B ∪ T_A`` such that every point of
``S_A ∪ S_B`` has a point of ``S'_B`` within ``r2``, given that all but
``k`` points per side are within ``r1`` of the other side.

Protocol (4 rounds):

1–3.  Each party builds a *key* per point: a vector of ``h = Θ(log n)``
      entries, each a pairwise-independent hash of a batch of
      ``m = log_{p2}(1/2)`` LSH values.  The parties reconcile key
      multisets via the sets-of-sets protocol so Alice learns Bob's keys.
4.    Alice transmits every point whose key matches *every* Bob key in
      fewer than ``τ = h(1/2 + ε/6)`` entries (``ρ <= 1 - ε``); far pairs
      match in fewer, close pairs in more, w.h.p. (Appendix E).

The same class also drives Theorem 4.5's low-dimensional variant
(``m = 1``, one-sided LSH, match threshold 1) via
:func:`repro.core.gap_lowdim.low_dimensional_gap_protocol`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..lsh.base import LSHFamily, LSHParams, batches_for_p2_half
from ..lsh.keys import BatchKeyBuilder, key_bits_for
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import ALICE, Channel
from ..protocol.serialize import BitReader, BitWriter, read_points, write_points
from ..setsofsets.protocol import SetsOfSetsReconciler

__all__ = ["GapResult", "GapProtocol", "verify_gap_guarantee"]


def verify_gap_guarantee(
    space: MetricSpace,
    alice_points: Sequence[Point],
    bob_final: Sequence[Point],
    r2: float,
) -> bool:
    """Check the model's postcondition: every ``a ∈ S_A`` is within ``r2``
    of some point of ``S'_B`` (Definition 4.1; Bob's own points are in
    ``S'_B`` by construction)."""
    if not alice_points:
        return True
    if not bob_final:
        return False
    distances = space.distance_matrix(list(alice_points), list(bob_final))
    return bool((distances.min(axis=1) <= r2 + 1e-9).all())


@dataclass(frozen=True)
class GapResult:
    """Outcome of the Gap protocol."""

    success: bool
    bob_final: list[Point]
    transmitted: list[Point]
    sos_unresolved: int
    pair_difference: int
    total_bits: int
    rounds: int


class GapProtocol:
    """Theorem 4.2's protocol for an arbitrary LSH family.

    Parameters
    ----------
    space:
        The metric space.
    lsh:
        Any :class:`~repro.lsh.base.LSHFamily` (an MLSH family works via
        its derived parameters).
    params:
        The ``(r1, r2, p1, p2)`` guarantee to use for this run (pass
        ``lsh.params`` or derive at custom scales).
    n, k:
        Instance size and far-point budget.
    entries:
        ``h``: key-vector length; defaults to ``Θ(log n)``.
    per_entry:
        ``m``: LSH values per entry; defaults to ``log_{p2}(1/2)``.
    match_threshold:
        ``τ``; defaults to ``ceil(h·(1/2 + ε/6))`` with ``ε = 1 - ρ``.
    sos_size_multiplier:
        Headroom for the sets-of-sets counting IBLT.
    """

    def __init__(
        self,
        space: MetricSpace,
        lsh: LSHFamily,
        params: LSHParams,
        n: int,
        k: int,
        entries: int | None = None,
        per_entry: int | None = None,
        match_threshold: int | None = None,
        sos_size_multiplier: float = 4.0,
    ):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.space = space
        self.lsh = lsh
        self.params = params
        self.n = n
        self.k = k
        self.rho = params.rho
        epsilon = 1.0 - self.rho
        if epsilon <= 0:
            raise ValueError(
                f"the protocol requires rho <= 1 - eps < 1, got rho={self.rho:.4f}"
            )
        self.epsilon = epsilon
        self.entries = (
            entries
            if entries is not None
            else max(8, math.ceil(6 * math.log2(max(n, 2))))
        )
        if per_entry is not None:
            self.per_entry = per_entry
        elif params.p2 == 0.0:
            self.per_entry = 1
        else:
            self.per_entry = batches_for_p2_half(params.p2)
        self.match_threshold = (
            match_threshold
            if match_threshold is not None
            else max(1, math.ceil(self.entries * (0.5 + epsilon / 6.0)))
        )
        self.key_bits = key_bits_for(n)
        self.sos_size_multiplier = sos_size_multiplier

    # -- derived quantities ----------------------------------------------------
    @property
    def per_entry_close_probability(self) -> float:
        """Lower bound on a close pair agreeing on one key entry: ``p1^m``."""
        return self.params.p1**self.per_entry

    def expected_entry_differences(self) -> int:
        """Sizing estimate ``z``: pairwise differing entries across keys.

        Each of the ``<= 2k`` far points differs everywhere
        (``h`` entries); each close pair differs in expectation in
        ``h·(1 - p1^m)`` entries; the internal signature entry at most
        doubles the count.
        """
        close_mismatch = self.entries * (1.0 - self.per_entry_close_probability)
        estimate = 2.0 * (
            2.0 * self.k * (self.entries + 1)
            + self.n * (close_mismatch + 1.0)
        )
        return max(self.entries + 1, math.ceil(estimate))

    def _key_builder(self, coins: PublicCoins) -> BatchKeyBuilder:
        total = self.entries * self.per_entry
        batch = self.lsh.sample_batch(coins, "gap-lsh", total)
        return BatchKeyBuilder(
            batch,
            entries=self.entries,
            per_entry=self.per_entry,
            coins=coins,
            label="gap-keys",
            key_bits=self.key_bits,
        )

    # -- the protocol ----------------------------------------------------------
    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        coins: PublicCoins,
        channel: Channel | None = None,
    ) -> GapResult:
        """Execute the 4-round protocol; Bob ends with ``S_B ∪ T_A``."""
        channel = channel if channel is not None else Channel()
        builder = self._key_builder(coins)
        # Key vectors stay (n, h) uint64 matrices end-to-end: built with
        # vectorised entry hashes, reconciled as matrices, matched as
        # matrices — no per-point Python loops on the hot path.
        alice_keys = builder.key_matrix_for(list(alice_points))
        bob_keys = builder.key_matrix_for(list(bob_points))

        # ---- Rounds 1-3: Alice learns Bob's key multiset ------------------
        reconciler = SetsOfSetsReconciler(
            coins,
            "gap-sos",
            entries=self.entries,
            entry_bits=self.key_bits,
            expected_differences=self.expected_entry_differences(),
            size_multiplier=self.sos_size_multiplier,
        )
        sos = reconciler.run(alice_keys, bob_keys, channel)
        if not sos.success:
            return GapResult(
                success=False,
                bob_final=list(bob_points),
                transmitted=[],
                sos_unresolved=0,
                pair_difference=0,
                total_bits=channel.total_bits,
                rounds=channel.rounds,
            )
        candidates = sos.bob_key_view

        # ---- Alice: find far keys ------------------------------------------
        candidate_matrix = np.asarray(candidates, dtype=np.uint64).reshape(
            len(candidates), self.entries
        )
        best = BatchKeyBuilder.best_matches(alice_keys, candidate_matrix)
        transmitted = [
            point
            for point, matches in zip(alice_points, best.tolist())
            if matches < self.match_threshold
        ]

        # ---- Round 4: Alice -> Bob — the far elements ---------------------
        writer = BitWriter()
        write_points(writer, self.space, transmitted)
        payload = channel.send(
            ALICE, "gap-far-points", writer.getvalue(), writer.bit_length
        )
        received = read_points(BitReader(payload), self.space)
        bob_final = list(bob_points)
        existing = set(bob_final)
        for point in received:
            if point not in existing:
                bob_final.append(point)
                existing.add(point)

        return GapResult(
            success=True,
            bob_final=bob_final,
            transmitted=transmitted,
            sos_unresolved=sos.unresolved,
            pair_difference=sos.pair_difference,
            total_bits=channel.total_bits,
            rounds=channel.rounds,
        )
