"""Bob's point-set repair step (the last line of Algorithm 1).

After decoding level ``i*``, Bob holds ``X_A`` (approximations of Alice's
unmatched points) and ``X_B`` (approximations of his own unmatched
points).  He computes ``Y_B``, the subset of ``S_B`` matched in the
min-cost matching between ``X_B`` and ``S_B``, and outputs
``S'_B = (S_B \\ Y_B) ∪ X_A``.

The matching is the rectangular Hungarian problem (|X_B| <= 2k rows
against n columns).  A greedy variant is provided for the E4 ablation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..metric.matching import greedy_matching, hungarian
from ..metric.spaces import MetricSpace, Point

__all__ = ["repair_point_set"]

Matcher = Callable[[np.ndarray], list[int]]


def _hungarian_matcher(cost: np.ndarray) -> list[int]:
    return hungarian(cost)


def _greedy_matcher(cost: np.ndarray) -> list[int]:
    assignment, _ = greedy_matching(cost)
    return assignment


def repair_point_set(
    space: MetricSpace,
    bob_points: Sequence[Point],
    decoded_alice: Sequence[Point],
    decoded_bob: Sequence[Point],
    matcher: str = "hungarian",
) -> list[Point]:
    """Compute ``S'_B = (S_B \\ Y_B) ∪ X_A``.

    Parameters
    ----------
    bob_points:
        ``S_B``.
    decoded_alice:
        ``X_A`` — values decoded from Alice's side of the RIBLT.
    decoded_bob:
        ``X_B`` — values decoded from Bob's side.
    matcher:
        ``"hungarian"`` (exact, the paper's choice) or ``"greedy"``
        (ablation).

    Notes
    -----
    On a successful decode ``|X_A| = |X_B|`` (insert/delete counts
    balance), so ``|S'_B| = |S_B|``.  If the decode produced unbalanced
    sides anyway, the surplus is trimmed so the output size stays ``n``:
    extra ``X_A`` points are dropped, or extra ``S_B`` points removed,
    preferring the configuration of minimum matching cost.
    """
    if matcher == "hungarian":
        match: Matcher = _hungarian_matcher
    elif matcher == "greedy":
        match = _greedy_matcher
    else:
        raise ValueError(f"matcher must be 'hungarian' or 'greedy', got {matcher!r}")

    bob_points = list(bob_points)
    decoded_alice = list(decoded_alice)
    decoded_bob = list(decoded_bob)
    n = len(bob_points)

    # Keep sizes consistent: replace exactly as many of Bob's points as we
    # add from Alice's side.
    replace_count = min(len(decoded_alice), len(decoded_bob), n)
    decoded_alice = decoded_alice[:replace_count] if replace_count < len(decoded_alice) else decoded_alice
    decoded_bob = decoded_bob[:replace_count] if replace_count < len(decoded_bob) else decoded_bob
    if replace_count == 0:
        return bob_points

    cost = space.distance_matrix(decoded_bob, bob_points)
    assignment = match(cost)
    replaced = set(assignment)
    result = [point for index, point in enumerate(bob_points) if index not in replaced]
    result.extend(decoded_alice)
    return result
