"""Interval-scaled EMD protocol (Corollaries 3.5 and 3.6).

Running Algorithm 1 once with the trivial bounds ``D1 = 1``,
``D2 = n·d·Δ`` forces one MLSH family to cover every scale.  The paper
instead divides ``[D1, D2]`` into ``I = O(log(D2/D1))`` geometric
intervals with constant ratio, runs Algorithm 1 *in parallel* for each
(each instance gets an MLSH family tuned to its interval, e.g. p-stable
width ``w = Θ(min(M, D2^{(j)}) + D2^{(j)}/k)``), and has Bob use the
output of the smallest-index interval that did not report failure.

This file implements that wrapper for any supported space.  All the
per-interval messages travel in the protocol's single round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..hashing import PublicCoins
from ..lsh.keys import PrefixKeyBuilder
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import ALICE, Channel
from ..protocol.serialize import BitReader, BitWriter
from ..protocol.tables import read_riblt_cells, write_riblt_cells
from .emd_protocol import EMDProtocol, point_matrix
from .params import default_distance_bounds, derive_emd_parameters
from .repair import repair_point_set

__all__ = ["ScaledEMDResult", "ScaledEMDProtocol"]


@dataclass(frozen=True)
class ScaledEMDResult:
    """Outcome of the interval-scaled protocol."""

    success: bool
    bob_final: list[Point]
    chosen_interval: int | None
    decoded_level: int | None
    decoded_pairs: int
    total_bits: int
    rounds: int
    interval_bounds: tuple[tuple[float, float], ...]


class ScaledEMDProtocol:
    """Corollary 3.5/3.6 wrapper around :class:`EMDProtocol`.

    Parameters
    ----------
    space, n, k:
        The instance.
    d1, d2, m_bound:
        Overall distance bounds (defaults per Section 3).
    ratio:
        Geometric interval ratio ``D2^{(j)}/D1^{(j)}`` (the paper's
        ``O(1)``; default 8).
    q, max_total_hashes:
        Passed through to each interval's parameter derivation.
    """

    def __init__(
        self,
        space: MetricSpace,
        n: int,
        k: int,
        d1: float | None = None,
        d2: float | None = None,
        m_bound: float | None = None,
        ratio: float = 8.0,
        q: int = 3,
        max_total_hashes: int | None = None,
    ):
        if ratio <= 1.0:
            raise ValueError(f"ratio must be > 1, got {ratio}")
        default_d1, default_d2, default_m = default_distance_bounds(space, n)
        d1 = default_d1 if d1 is None else float(d1)
        d2 = default_d2 if d2 is None else float(d2)
        m_bound = default_m if m_bound is None else float(m_bound)
        if not 0 < d1 <= d2:
            raise ValueError(f"need 0 < D1 <= D2, got D1={d1}, D2={d2}")
        self.space = space
        self.n = n
        self.k = k
        self.ratio = float(ratio)

        bounds: list[tuple[float, float]] = []
        low = d1
        while True:
            high = min(low * self.ratio, d2)
            bounds.append((low, high))
            if high >= d2:
                break
            low = high
        self.interval_bounds = tuple(bounds)
        self.instances = [
            EMDProtocol(
                space,
                derive_emd_parameters(
                    space,
                    n,
                    k,
                    d1=low,
                    d2=high,
                    m_bound=m_bound,
                    q=q,
                    max_total_hashes=max_total_hashes,
                ),
            )
            for low, high in bounds
        ]

    @property
    def intervals(self) -> int:
        return len(self.instances)

    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        coins: PublicCoins,
        channel: Channel | None = None,
        matcher: str = "hungarian",
        decode_rng: random.Random | None = None,
    ) -> ScaledEMDResult:
        """All intervals in one round; Bob adopts the smallest success."""
        channel = channel if channel is not None else Channel()
        decode_rng = decode_rng if decode_rng is not None else random.Random(0xB0B)

        # ---- Alice: every interval's tables in one message ----------------
        writer = BitWriter()
        builders: list[PrefixKeyBuilder] = []
        alice_values = point_matrix(alice_points, self.space.dim)
        for j, instance in enumerate(self.instances):
            interval_coins = coins.child("scaled-emd", j)
            builder = instance._key_builder(interval_coins)
            builders.append(builder)
            keys = builder.keys_for(alice_points)
            for level in range(instance.parameters.levels):
                table = instance._table(interval_coins, level)
                table.insert_batch(keys[:, level], alice_values)
                write_riblt_cells(writer, table)
        payload = channel.send(
            ALICE, "scaled-emd-riblts", writer.getvalue(), writer.bit_length
        )

        # ---- Bob: decode per interval, smallest index wins ----------------
        reader = BitReader(payload)
        bob_values = point_matrix(bob_points, self.space.dim)
        outcome_per_interval: list[tuple[int, list[Point], list[Point], int] | None] = []
        for j, instance in enumerate(self.instances):
            interval_coins = coins.child("scaled-emd", j)
            p = instance.parameters
            loaded = [
                read_riblt_cells(reader, instance._table(interval_coins, level))
                for level in range(p.levels)
            ]
            bob_keys = builders[j].keys_for(bob_points)
            found: tuple[int, list[Point], list[Point], int] | None = None
            for level in range(p.levels - 1, -1, -1):
                table = loaded[level]
                table.delete_batch(bob_keys[:, level], bob_values)
                outcome = table.decode(decode_rng)
                if outcome.success and outcome.pair_count <= p.accept_pairs:
                    found = (
                        level + 1,
                        [value for _, value in outcome.inserted],
                        [value for _, value in outcome.deleted],
                        outcome.pair_count,
                    )
                    break
            outcome_per_interval.append(found)

        for j, found in enumerate(outcome_per_interval):
            if found is None:
                continue
            level, decoded_alice, decoded_bob, pairs = found
            bob_final = repair_point_set(
                self.space, bob_points, decoded_alice, decoded_bob, matcher=matcher
            )
            return ScaledEMDResult(
                success=True,
                bob_final=bob_final,
                chosen_interval=j,
                decoded_level=level,
                decoded_pairs=pairs,
                total_bits=channel.total_bits,
                rounds=channel.rounds,
                interval_bounds=self.interval_bounds,
            )
        return ScaledEMDResult(
            success=False,
            bob_final=list(bob_points),
            chosen_interval=None,
            decoded_level=None,
            decoded_pairs=0,
            total_bits=channel.total_bits,
            rounds=channel.rounds,
            interval_bounds=self.interval_bounds,
        )
