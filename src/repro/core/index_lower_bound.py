"""The one-round lower bound construction (Theorem 4.6, Appendix F).

Theorem 4.6: no one-round ``O(n)``-bit protocol solves the Gap Guarantee
on ``({0,1}^d, f_H)`` with ``d = Ω(log n + r2)``, ``r1 = 1``, ``k = 1``
with success probability 2/3.  The proof reduces from the *index
problem*: Alice holds ``x ∈ {0,1}^n``, Bob an index ``i``, and a
one-round message letting Bob learn ``x_i`` must have ``Ω(n)`` bits.

The reduction embeds ``x`` into a Gap instance using ``n+1`` codewords
``c_1..c_{n+1} ∈ {0,1}^{d-1}`` at pairwise distance >= ``r2``:

* ``S_A = { c_j || x_j : j in [n] }``
* ``S_B = { c_j || 0 : j != i }``

Only ``c_i || x_i`` is far from ``S_B``, so a correct Gap protocol
delivers it and Bob reads ``x_i`` off the delivered point's last bit.

This module provides the code construction (a greedy random binary code
standing in for the paper's Reed–Muller citation — only the pairwise
distance property is used), the instance builder, the reduction via the
real 4-round :class:`~repro.core.gap_protocol.GapProtocol`, and the
budgeted one-round strawman the lower-bound experiment (E9) sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..lsh.bit_sampling import BitSamplingMLSH
from ..metric.spaces import HammingSpace, Point
from ..protocol.channel import Channel
from .gap_protocol import GapProtocol

__all__ = [
    "greedy_binary_code",
    "required_dimension",
    "IndexInstance",
    "make_index_instance",
    "solve_index_via_gap",
    "one_round_subset_protocol",
]


def required_dimension(n: int, r2: int, slack: int = 8) -> int:
    """A codeword length comfortably supporting ``n+1`` words at distance
    >= ``r2``: random length-``L`` words have expected pairwise distance
    ``L/2`` with ``O(sqrt(L))`` fluctuations, so ``L = 2·r2 + c·log n``
    suffices (the theorem's ``d = Ω(log n + r2)`` regime)."""
    import math

    return 4 * r2 + 8 * math.ceil(math.log2(max(n + 1, 2))) + slack


def greedy_binary_code(
    count: int,
    length: int,
    min_distance: int,
    rng: np.random.Generator,
    max_tries: int = 200_000,
) -> list[tuple[int, ...]]:
    """``count`` binary words of ``length`` bits at pairwise Hamming
    distance >= ``min_distance`` via randomized greedy selection."""
    if min_distance > length:
        raise ValueError(
            f"min_distance {min_distance} cannot exceed length {length}"
        )
    words: list[np.ndarray] = []
    tries = 0
    while len(words) < count:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(
                f"failed to build a ({count}, {length}, {min_distance}) code; "
                "increase the length"
            )
        candidate = rng.integers(0, 2, size=length)
        if all(int((candidate != word).sum()) >= min_distance for word in words):
            words.append(candidate)
    return [tuple(int(v) for v in word) for word in words]


@dataclass(frozen=True)
class IndexInstance:
    """A Gap instance encoding an index-problem input."""

    space: HammingSpace
    alice_points: list[Point]
    bob_points: list[Point]
    codewords: list[tuple[int, ...]]
    x: tuple[int, ...]
    i: int
    r2: int

    @property
    def answer(self) -> int:
        """Ground truth ``x_i``."""
        return self.x[self.i]


def make_index_instance(
    x: Sequence[int],
    i: int,
    r2: int,
    rng: np.random.Generator,
) -> IndexInstance:
    """Build the Theorem 4.6 reduction instance for input ``(x, i)``."""
    n = len(x)
    if not 0 <= i < n:
        raise ValueError(f"index i must be in [0, {n}), got {i}")
    length = required_dimension(n, r2)
    codewords = greedy_binary_code(n + 1, length, r2 + 2, rng)
    space = HammingSpace(length + 1)
    alice_points = [codewords[j] + (int(x[j]),) for j in range(n)]
    bob_points = [codewords[j] + (0,) for j in range(n + 1) if j != i]
    return IndexInstance(
        space=space,
        alice_points=alice_points,
        bob_points=bob_points,
        codewords=codewords,
        x=tuple(int(b) for b in x),
        i=i,
        r2=r2,
    )


def solve_index_via_gap(
    instance: IndexInstance,
    coins: PublicCoins,
    channel: Channel | None = None,
    entries: int | None = None,
) -> tuple[int | None, int, int]:
    """Run the (multi-round) Gap protocol on the reduction instance.

    Returns ``(answer, total_bits, rounds)``; ``answer`` is Bob's
    reading of ``x_i`` (None if, against the guarantee, no delivered
    point carries codeword ``c_i``).
    """
    channel = channel if channel is not None else Channel()
    space = instance.space
    # Bit-sampling MLSH widened so rho = 2*r1/r2 < 1.
    family = BitSamplingMLSH(space, w=float(space.dim))
    params = family.derived_lsh_params(r1=1.0, r2=float(instance.r2))
    protocol = GapProtocol(
        space,
        family,
        params,
        n=len(instance.alice_points) + 1,
        k=1,
        entries=entries,
    )
    result = protocol.run(instance.alice_points, instance.bob_points, coins, channel)
    if not result.success:
        return None, channel.total_bits, channel.rounds
    target = instance.codewords[instance.i]
    for point in result.bob_final:
        if point[:-1] == target:
            return int(point[-1]), channel.total_bits, channel.rounds
    return None, channel.total_bits, channel.rounds


def one_round_subset_protocol(
    x: Sequence[int],
    i: int,
    budget_bits: int,
    coins: PublicCoins,
    trial: int = 0,
) -> bool:
    """The budgeted one-round strawman for the index problem.

    With public coins, Alice and Bob agree on a uniformly random subset
    ``R`` of ``budget_bits`` positions; Alice's single message is
    ``x|_R``.  Bob answers exactly when ``i ∈ R`` and guesses otherwise:
    success probability ``b/n + (1 - b/n)/2``, which reaches 2/3 only at
    ``b >= n/3`` — the ``Ω(n)`` wall the experiment exhibits.  (Up to
    constants this is the best one-round strategy; the communication-
    complexity lower bound [19] says *no* strategy beats ``Ω(n)``.)
    """
    n = len(x)
    budget = min(max(budget_bits, 0), n)
    rng = coins.numpy_rng("one-round-subset", trial)
    subset = rng.choice(n, size=budget, replace=False) if budget else np.array([], int)
    if i in set(int(j) for j in subset):
        return True  # Bob reads x_i from the message: always correct.
    return bool(rng.integers(0, 2) == x[i])  # fair guess
