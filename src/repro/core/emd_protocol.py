"""Algorithm 1: the Earth Mover's Distance reconciliation protocol.

One round, Alice to Bob.  Alice builds ``t`` RIBLTs, one per resolution
level; the level-``i`` key of a point is a pairwise-independent hash of
its first ``c_i`` MLSH values, and the stored value is the point itself.
Bob deletes his own (key, point) pairs from each table, finds ``i*`` (the
largest level that decodes to at most ``4k`` pairs), and repairs his point
set with the decoded values: ``S'_B = (S_B \\ Y_B) ∪ X_A`` where ``Y_B``
is his side of the min-cost matching between the decoded ``X_B`` and
``S_B``.

Guarantee (Theorem 3.4): with probability at least 5/8,
``EMD(S_A, S'_B) <= O(α^{-1} log n) · EMD_k(S_A, S_B)`` using
``O(k·d·log(Δn)·log(D2/D1))`` bits — which experiment E4/E5 measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..iblt.riblt import RIBLT
from ..lsh.keys import PrefixKeyBuilder
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import ALICE, Channel
from ..protocol.serialize import BitReader, BitWriter
from ..protocol.tables import read_riblt_cells, write_riblt_cells
from .params import EMDParameters, derive_emd_parameters
from .repair import repair_point_set

__all__ = ["EMDResult", "EMDProtocol"]


def point_matrix(points: Sequence[Point], dim: int) -> np.ndarray:
    """Points as the ``(n, dim)`` int64 matrix the RIBLT batch path takes."""
    return np.asarray(points, dtype=np.int64).reshape(len(points), dim)


@dataclass(frozen=True)
class EMDResult:
    """Outcome of one EMD-protocol run.

    Attributes
    ----------
    success:
        False iff *no* level decoded within the ``4k``-pair budget (the
        protocol "reports failure"; Theorem 3.4 bounds this by 1/8 when
        ``EMD_k <= D2``).
    bob_final:
        ``S'_B`` (equal to ``S_B`` on failure).
    decoded_level:
        ``i*`` (1-indexed, as in the paper), or None on failure.
    decoded_pairs:
        ``|X_A| + |X_B|`` at the accepted level.
    """

    success: bool
    bob_final: list[Point]
    decoded_level: int | None
    decoded_pairs: int
    total_bits: int
    rounds: int


class EMDProtocol:
    """Algorithm 1, parameterised by :class:`EMDParameters`.

    Construct either from explicit parameters or via the convenience
    class method :meth:`for_instance` (which derives them per Section 3).

    All levels are keyed through the single vectorised Mersenne-61
    :class:`~repro.lsh.keys.PrefixKeyBuilder` stream at the
    ``Θ(log n)``-bit width of :attr:`EMDParameters.key_bits`; the
    resulting ``uint64`` key matrix feeds the per-level RIBLTs through
    their array-native batch insert/delete path.
    """

    def __init__(self, space: MetricSpace, parameters: EMDParameters):
        self.space = space
        self.parameters = parameters

    @classmethod
    def for_instance(
        cls,
        space: MetricSpace,
        n: int,
        k: int,
        d1: float | None = None,
        d2: float | None = None,
        m_bound: float | None = None,
        q: int = 3,
        max_total_hashes: int | None = None,
    ) -> "EMDProtocol":
        """Derive parameters (see :func:`derive_emd_parameters`) and build."""
        parameters = derive_emd_parameters(
            space,
            n,
            k,
            d1=d1,
            d2=d2,
            m_bound=m_bound,
            q=q,
            max_total_hashes=max_total_hashes,
        )
        return cls(space, parameters)

    # -- shared machinery ----------------------------------------------------
    def _key_builder(self, coins: PublicCoins) -> PrefixKeyBuilder:
        p = self.parameters
        batch = p.family.sample_batch(coins, "emd-mlsh", p.total_hashes)
        return PrefixKeyBuilder(
            batch,
            p.hash_counts,
            coins,
            "emd-keys",
            key_bits=p.key_bits,
        )

    def _table(self, coins: PublicCoins, level: int) -> RIBLT:
        p = self.parameters
        return RIBLT(
            coins,
            ("emd-riblt", level),
            cells=p.cells,
            q=p.q,
            key_bits=p.key_bits,
            dim=self.space.dim,
            side=self.space.side,
        )

    # -- the protocol ----------------------------------------------------------
    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        coins: PublicCoins,
        channel: Channel | None = None,
        matcher: str = "hungarian",
        decode_rng: random.Random | None = None,
    ) -> EMDResult:
        """Execute Algorithm 1 end to end.

        ``matcher`` selects Bob's repair matching ("hungarian" per the
        paper, "greedy" for the E4 ablation); ``decode_rng`` drives the
        RIBLT's randomized rounding (Bob's private coins).
        """
        p = self.parameters
        if len(alice_points) != len(bob_points):
            raise ValueError(
                "the EMD model requires |S_A| = |S_B| "
                f"(got {len(alice_points)}, {len(bob_points)})"
            )
        channel = channel if channel is not None else Channel()
        builder = self._key_builder(coins)

        # ---- Alice: build and send all t RIBLTs --------------------------
        alice_keys = builder.keys_for(alice_points)  # (n, t) uint64
        alice_values = point_matrix(alice_points, self.space.dim)
        writer = BitWriter()
        for level in range(p.levels):
            table = self._table(coins, level)
            table.insert_batch(alice_keys[:, level], alice_values)
            write_riblt_cells(writer, table)
        payload = channel.send(ALICE, "emd-riblts", writer.getvalue(), writer.bit_length)

        # ---- Bob: load, delete, decode the finest feasible level ---------
        reader = BitReader(payload)
        loaded = [
            read_riblt_cells(reader, self._table(coins, level))
            for level in range(p.levels)
        ]
        bob_keys = builder.keys_for(bob_points)
        bob_values = point_matrix(bob_points, self.space.dim)
        decode_rng = decode_rng if decode_rng is not None else random.Random(0xB0B)

        decoded_level: int | None = None
        decoded_alice: list[Point] = []
        decoded_bob: list[Point] = []
        decoded_pairs = 0
        for level in range(p.levels - 1, -1, -1):
            table = loaded[level]
            table.delete_batch(bob_keys[:, level], bob_values)
            outcome = table.decode(decode_rng)
            if outcome.success and outcome.pair_count <= p.accept_pairs:
                decoded_level = level
                decoded_alice = [value for _, value in outcome.inserted]
                decoded_bob = [value for _, value in outcome.deleted]
                decoded_pairs = outcome.pair_count
                break

        if decoded_level is None:
            return EMDResult(
                success=False,
                bob_final=list(bob_points),
                decoded_level=None,
                decoded_pairs=0,
                total_bits=channel.total_bits,
                rounds=channel.rounds,
            )

        bob_final = repair_point_set(
            self.space, bob_points, decoded_alice, decoded_bob, matcher=matcher
        )
        return EMDResult(
            success=True,
            bob_final=bob_final,
            decoded_level=decoded_level + 1,  # paper's levels are 1-indexed
            decoded_pairs=decoded_pairs,
            total_bits=channel.total_bits,
            rounds=channel.rounds,
        )
