"""Sharded warm-sketch store: cross-session caches for the service path.

See :mod:`repro.store.store` for the design; the public surface is
:class:`SketchStore` plus its config/stats companions.
"""

from .store import ShardRouter, SketchStore, StoreConfig, StoreEntry, StoreStats

__all__ = [
    "ShardRouter",
    "SketchStore",
    "StoreConfig",
    "StoreEntry",
    "StoreStats",
]
