"""A sharded, LRU-bounded store of warm sketch state.

The service path (PR 7) rebuilds every sketch from scratch: each
request re-hashes the full key set even when the set has not changed
since the last session.  :class:`SketchStore` turns that repeated work
into cache hits under a bounded memory budget — the choice–memory
trade-off of PAPERS.md's "Choice-Memory Tradeoff in Allocations",
spent where it saves the most hashing:

* **Sharding** — store keys are routed to shards by *key range on the
  Mersenne-61 hash line*: one :class:`~repro.hashing.PairwiseHash`
  maps the key to ``[0, 2^61)`` and contiguous ranges of that line map
  to shards.  The hash is exact integer arithmetic seeded by
  :func:`~repro.hashing.derive_seed` (SHA-256), so routing is stable
  across Python versions, platforms and processes (pinned by tests).
* **Warm entries** — each shard keeps an LRU-bounded map of
  :class:`StoreEntry` values: the key set itself, live IBLT tables with
  their serialised payload bytes, strata estimates, and primed
  :class:`~repro.iblt.frontier.KeyHashCache`\\ s.  Serving a repeat
  sketch for an unchanged entry is a dictionary lookup — **zero fresh
  Mersenne hash passes** (asserted via :class:`StoreStats`).
* **Incremental maintenance** — :meth:`SketchStore.apply_mutations`
  applies an insert/delete delta to every cached sketch *in place*
  through the ``apply_mutations`` APIs of
  :class:`~repro.iblt.iblt.IBLT` and
  :class:`~repro.reconcile.strata.StrataEstimator`.  IBLT cell updates
  are commuting exact operations with exact inverses, so a mutated
  snapshot is pinned bit-identical to a cold rebuild of the mutated
  set; only the delta is hashed.
* **Untrusted snapshots** — externally supplied cell arrays go through
  the validating ``load_arrays`` paths and damage raises the typed
  :class:`~repro.errors.DecodeError` hierarchy, never corrupts a
  served payload.
* **Peer memory** — the PR-6 circuit breaker's learning is persisted
  per peer as a serialisable
  :class:`~repro.reconcile.resilient.BreakerState`, so a flaky peer's
  next session starts at its last escalated bound.

Determinism: the store only ever changes *where* bytes come from
(cache vs. rebuild), never the bytes themselves.  Cache hits land in
the accounting, not on the wire.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..hashing import PairwiseHash, PublicCoins, derive_seed
from ..iblt.iblt import IBLT
from ..iblt.riblt import RIBLT
from ..reconcile.resilient import BreakerState
from ..reconcile.strata import StrataEstimator
from ..stream.events import MutationEvent, split_mutations

__all__ = ["ShardRouter", "SketchStore", "StoreConfig", "StoreEntry", "StoreStats"]

#: Output span of the 61-bit routing hash; shard ``i`` owns the range
#: ``[i * width, (i + 1) * width)`` of this line.
MERSENNE_SPAN = 1 << 61

#: Keys at or above 62 bits cannot ride the vectorised uint64 paths.
_VECTOR_KEY_BITS = 61


@dataclass(frozen=True)
class StoreConfig:
    """Shape and budget of a :class:`SketchStore`.

    Parameters
    ----------
    seed:
        Root seed for the routing hash (and nothing else — the store
        never influences sketch contents).
    shards:
        Number of key-range shards.
    capacity:
        LRU entry budget *per shard*.
    sketches_per_entry:
        LRU budget for distinct warm sketches (per shape/coins) held by
        one entry; escalation retries at new table sizes stay bounded.
    breaker_capacity:
        Per-shard budget for persisted per-peer breaker states.
    """

    seed: int = 0
    shards: int = 8
    capacity: int = 32
    sketches_per_entry: int = 8
    breaker_capacity: int = 256

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.sketches_per_entry < 1:
            raise ValueError(
                f"sketches_per_entry must be >= 1, got {self.sketches_per_entry}"
            )
        if self.breaker_capacity < 1:
            raise ValueError(
                f"breaker_capacity must be >= 1, got {self.breaker_capacity}"
            )


@dataclass
class StoreStats:
    """Cache accounting; every counter is exact and deterministic."""

    hits: int = 0  #: warm serves (sketch or strata already cached)
    misses: int = 0  #: cold serves (sketch or strata built from the key set)
    rebuilds_avoided: int = 0  #: hits that replaced a full rebuild
    incremental_refreshes: int = 0  #: cached sketches updated in place
    keys_hashed: int = 0  #: keys run through fresh Mersenne hash passes
    evictions: int = 0  #: entries dropped by shard LRU pressure
    sketch_evictions: int = 0  #: per-entry sketch slots dropped
    snapshot_loads: int = 0  #: validated external snapshots accepted
    riblt_snapshots_dropped: int = 0  #: value-carrying snapshots invalidated

    @property
    def hit_rate(self) -> float:
        served = self.hits + self.misses
        return self.hits / served if served else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rebuilds_avoided": self.rebuilds_avoided,
            "incremental_refreshes": self.incremental_refreshes,
            "keys_hashed": self.keys_hashed,
            "evictions": self.evictions,
            "sketch_evictions": self.sketch_evictions,
            "snapshot_loads": self.snapshot_loads,
            "riblt_snapshots_dropped": self.riblt_snapshots_dropped,
        }


class ShardRouter:
    """Stable key-range routing on the Mersenne-61 hash line.

    ``shard_of`` is a pure function of ``(seed, key)`` built from exact
    integer arithmetic (SHA-256 seed derivation + pairwise Mersenne
    hashing), so the same key lands on the same shard on every Python
    version, platform and process — the property that lets warm state
    survive across sessions and machines.
    """

    def __init__(self, coins: PublicCoins, shards: int):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self._hash = PairwiseHash(coins, "store-shard", bits=61)
        self._width = -(-MERSENNE_SPAN // shards)  # ceil: last range may be short

    def position(self, store_key: int) -> int:
        """The key's position on the ``[0, 2^61)`` routing line."""
        key = int(store_key)
        if key < 0:
            raise ValueError(f"store keys must be >= 0, got {key}")
        return self._hash(key)

    def shard_of(self, store_key: int) -> int:
        return self.position(store_key) // self._width


class _SketchSlot:
    """One warm sketch: the live table plus its lazily cached payload."""

    __slots__ = ("payload", "sketch")

    def __init__(self, sketch: "IBLT | RIBLT"):
        self.sketch = sketch
        self.payload: "tuple[bytes, int] | None" = None

    def serve(self) -> tuple[bytes, int]:
        if self.payload is None:
            self.payload = self.sketch.to_payload()
        return self.payload


class StoreEntry:
    """Warm state for one keyed set: membership, sketches, estimates."""

    def __init__(self, store_key: int, keys: Iterable[int], key_bits: int):
        if key_bits < 1:
            raise ValueError(f"key_bits must be >= 1, got {key_bits}")
        self.store_key = store_key
        self.key_bits = key_bits
        self.keys: set[int] = {int(key) for key in keys}
        limit = 1 << key_bits
        for key in self.keys:
            if not 0 <= key < limit:
                raise ValueError(f"key {key} outside [0, 2^{key_bits})")
        self._sorted: "list[int] | np.ndarray | None" = None
        self.iblts: "OrderedDict[tuple, _SketchSlot]" = OrderedDict()
        self.riblts: "OrderedDict[tuple, _SketchSlot]" = OrderedDict()
        self.stratas: "OrderedDict[tuple, StrataEstimator]" = OrderedDict()

    def sorted_keys(self) -> "list[int] | np.ndarray":
        """The membership as a sorted array (uint64 when it fits).

        Cached between mutations so cold sketch builds share one sort
        and one dtype conversion.  Sorting is for reproducibility of the
        *work*; cell contents are order-independent either way.
        """
        if self._sorted is None:
            ordered = sorted(self.keys)
            if self.key_bits <= _VECTOR_KEY_BITS:
                self._sorted = np.array(ordered, dtype=np.uint64)
            else:
                self._sorted = ordered
        return self._sorted

    def invalidate_order(self) -> None:
        self._sorted = None


class _Shard:
    """One shard's LRU maps (entries and per-peer breaker states)."""

    __slots__ = ("breakers", "entries")

    def __init__(self) -> None:
        self.entries: "OrderedDict[int, StoreEntry]" = OrderedDict()
        self.breakers: "OrderedDict[int, BreakerState]" = OrderedDict()


class SketchStore:
    """Sharded LRU store of warm sketch state (see module docstring).

    All serving methods are keyed by ``(coins, label, shape)`` so two
    sessions agreeing on public coins share warm state, while sessions
    with different coins can never be served each other's bytes.
    """

    def __init__(self, config: StoreConfig = StoreConfig()):
        self.config = config
        self.coins = PublicCoins(derive_seed(config.seed, "sketch-store"))
        self.router = ShardRouter(self.coins, config.shards)
        self._shards = [_Shard() for _ in range(config.shards)]
        self.stats = StoreStats()

    # -- entry lifecycle -----------------------------------------------------
    def _shard(self, store_key: int) -> _Shard:
        return self._shards[self.router.shard_of(store_key)]

    def contains(self, store_key: int) -> bool:
        """Membership test; does *not* touch LRU recency."""
        return int(store_key) in self._shard(store_key).entries

    def put_set(
        self, store_key: int, keys: Iterable[int], key_bits: int = 61
    ) -> StoreEntry:
        """(Re)register a keyed set; replaces any existing entry whole."""
        store_key = int(store_key)
        entry = StoreEntry(store_key, keys, key_bits)
        shard = self._shard(store_key)
        shard.entries[store_key] = entry
        shard.entries.move_to_end(store_key)
        while len(shard.entries) > self.config.capacity:
            shard.entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

    def _entry(self, store_key: int) -> StoreEntry:
        shard = self._shard(store_key)
        entry = shard.entries.get(int(store_key))
        if entry is None:
            raise KeyError(f"store key {store_key} is not resident")
        shard.entries.move_to_end(int(store_key))
        return entry

    def keys_of(self, store_key: int) -> set[int]:
        """A copy of the entry's current membership."""
        return set(self._entry(store_key).keys)

    # -- mutation ------------------------------------------------------------
    def apply_mutations(
        self,
        store_key: int,
        inserts: Iterable[int] = (),
        deletes: Iterable[int] = (),
    ) -> None:
        """Apply an insert/delete delta to the entry and all warm state.

        Set discipline is strict — inserting a resident key or deleting
        an absent one raises ``ValueError`` *before* anything mutates,
        because it would silently desynchronise every cached sketch
        from the membership.  Each cached IBLT and strata estimate is
        updated in place (hashing only the delta); RIBLT snapshots
        carry values the store does not know, so they are dropped
        rather than silently served stale.
        """
        entry = self._entry(store_key)
        ins = [int(key) for key in inserts]
        dels = [int(key) for key in deletes]
        limit = 1 << entry.key_bits
        for key in ins + dels:
            if not 0 <= key < limit:
                raise ValueError(f"key {key} outside [0, 2^{entry.key_bits})")
        if len(set(ins)) != len(ins) or len(set(dels)) != len(dels):
            raise ValueError("mutation delta contains duplicate keys")
        for key in ins:
            if key in entry.keys:
                raise ValueError(f"insert of resident key {key}")
        for key in dels:
            if key not in entry.keys:
                raise ValueError(f"delete of absent key {key}")
        if not ins and not dels:
            return

        entry.keys.update(ins)
        entry.keys.difference_update(dels)
        entry.invalidate_order()
        delta = len(ins) + len(dels)
        for slot in entry.iblts.values():
            slot.sketch.apply_mutations(ins, dels)
            slot.payload = None
            self.stats.incremental_refreshes += 1
            self.stats.keys_hashed += delta
        for estimator in entry.stratas.values():
            estimator.apply_mutations(ins, dels)
            self.stats.incremental_refreshes += 1
            self.stats.keys_hashed += delta
        if entry.riblts:
            self.stats.riblt_snapshots_dropped += len(entry.riblts)
            entry.riblts.clear()

    def apply_events(self, store_key: int, events: Iterable[MutationEvent]) -> int:
        """Apply a batch of :class:`~repro.stream.events.MutationEvent`\\ s.

        The unified mutation surface: the event log, the churn
        generator and live callers all speak events, and this method
        reduces them to the raw ``(inserts, deletes)`` delta that
        :meth:`apply_mutations` has always taken — same validation,
        same in-place refreshes, same bytes.  Returns the number of
        events applied.
        """
        inserts, deletes = split_mutations(events)
        self.apply_mutations(store_key, inserts=inserts, deletes=deletes)
        return len(inserts) + len(deletes)

    # -- serving -------------------------------------------------------------
    def _slot_key(self, coins: PublicCoins, label: object, *shape: int) -> tuple:
        return (coins.seed, repr(label), *shape)

    def _bound_slots(self, slots: "OrderedDict[tuple, object]") -> None:
        while len(slots) > self.config.sketches_per_entry:
            slots.popitem(last=False)
            self.stats.sketch_evictions += 1

    def serve_iblt(
        self,
        store_key: int,
        coins: PublicCoins,
        label: object,
        cells: int,
        q: int = 3,
    ) -> tuple[bytes, int]:
        """The entry's IBLT payload for this shape — warm if possible.

        Byte-identical to building a fresh table over the entry's keys
        and serialising it; a warm serve just skips the hashing.
        """
        entry = self._entry(store_key)
        slot_key = self._slot_key(coins, label, cells, q)
        slot = entry.iblts.get(slot_key)
        if slot is None:
            table = IBLT(coins, label, cells=cells, q=q, key_bits=entry.key_bits)
            keys = entry.sorted_keys()
            table.insert_all(keys)
            self.stats.misses += 1
            self.stats.keys_hashed += len(entry.keys)
            if entry.key_bits <= _VECTOR_KEY_BITS and len(entry.keys):
                # Warm the decode-side hash cache too (shared by every
                # clone `subtract` hands out); behaviour-neutral.
                key_list = [int(key) for key in keys]
                table._hash_cache.prime(key_list)
                self.stats.keys_hashed += len(key_list)
            slot = _SketchSlot(table)
            entry.iblts[slot_key] = slot
            self._bound_slots(entry.iblts)
        else:
            entry.iblts.move_to_end(slot_key)
            self.stats.hits += 1
            self.stats.rebuilds_avoided += 1
        return slot.serve()

    def serve_strata(
        self,
        store_key: int,
        coins: PublicCoins,
        label: object,
        strata: int = 24,
        cells: int = 48,
    ) -> StrataEstimator:
        """The entry's strata estimator — warm if possible.

        The returned estimator is shared warm state: callers must treat
        it as read-only (``subtract`` already returns a fresh result).
        """
        entry = self._entry(store_key)
        slot_key = self._slot_key(coins, label, strata, cells)
        estimator = entry.stratas.get(slot_key)
        if estimator is None:
            estimator = StrataEstimator(
                coins, label, strata=strata, cells=cells, key_bits=entry.key_bits
            )
            keys = entry.sorted_keys()
            if isinstance(keys, np.ndarray):
                estimator.insert_batch(keys)
            else:
                estimator.insert_all(keys)
            self.stats.misses += 1
            self.stats.keys_hashed += len(entry.keys)
            entry.stratas[slot_key] = estimator
            self._bound_slots(entry.stratas)
        else:
            entry.stratas.move_to_end(slot_key)
            self.stats.hits += 1
            self.stats.rebuilds_avoided += 1
        return estimator

    # -- untrusted snapshots -------------------------------------------------
    def export_iblt_arrays(
        self,
        store_key: int,
        coins: PublicCoins,
        label: object,
        cells: int,
        q: int = 3,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``to_arrays()`` of the (possibly cold-built) warm sketch."""
        self.serve_iblt(store_key, coins, label, cells=cells, q=q)
        entry = self._entry(store_key)
        slot = entry.iblts[self._slot_key(coins, label, cells, q)]
        return slot.sketch.to_arrays()

    def load_iblt_snapshot(
        self,
        store_key: int,
        coins: PublicCoins,
        label: object,
        cells: int,
        q: int,
        counts: np.ndarray,
        key_xor: np.ndarray,
        check_xor: np.ndarray,
    ) -> None:
        """Adopt an externally produced cell snapshot as warm state.

        The arrays are untrusted input: they run through the validating
        :meth:`~repro.iblt.iblt.IBLT.load_arrays`, and damage raises
        the typed :class:`~repro.errors.DecodeError` hierarchy without
        touching existing warm state.  The caller asserts the snapshot
        encodes the entry's *current* membership; from then on
        :meth:`apply_mutations` keeps it in step like any cold-built
        sketch.
        """
        entry = self._entry(store_key)
        shell = IBLT(coins, label, cells=cells, q=q, key_bits=entry.key_bits)
        shell.load_arrays(counts, key_xor, check_xor)  # raises DecodeError
        slot_key = self._slot_key(coins, label, cells, q)
        entry.iblts[slot_key] = _SketchSlot(shell)
        entry.iblts.move_to_end(slot_key)
        self._bound_slots(entry.iblts)
        self.stats.snapshot_loads += 1

    def load_riblt_snapshot(
        self,
        store_key: int,
        shell: RIBLT,
        counts: np.ndarray,
        key_sum: np.ndarray,
        check_sum: np.ndarray,
        value_sum: np.ndarray,
    ) -> None:
        """Adopt a validated RIBLT snapshot (static warm state).

        RIBLT cells carry value sums the store has no way to maintain
        incrementally, so these slots serve warm payloads only until
        the next mutation drops them.
        """
        entry = self._entry(store_key)
        shell.load_arrays(counts, key_sum, check_sum, value_sum)  # raises DecodeError
        slot_key = ("riblt", repr(shell.label), shell.m, shell.q, shell.dim)
        entry.riblts[slot_key] = _SketchSlot(shell)
        entry.riblts.move_to_end(slot_key)
        self._bound_slots(entry.riblts)
        self.stats.snapshot_loads += 1

    def serve_riblt(
        self, store_key: int, label: object, cells: int, q: int, dim: int
    ) -> tuple[bytes, int]:
        """Payload of a previously loaded RIBLT snapshot (warm only).

        Raises ``KeyError`` when no live snapshot matches — the caller
        rebuilds cold; the store cannot (it has no values).
        """
        entry = self._entry(store_key)
        block_size = (cells + q - 1) // q
        slot_key = ("riblt", repr(label), block_size * q, q, dim)
        slot = entry.riblts.get(slot_key)
        if slot is None:
            self.stats.misses += 1
            raise KeyError(f"no warm RIBLT snapshot for {slot_key}")
        entry.riblts.move_to_end(slot_key)
        self.stats.hits += 1
        self.stats.rebuilds_avoided += 1
        return slot.serve()

    # -- per-peer breaker persistence ----------------------------------------
    def _peer_slot(self, peer: object) -> tuple[_Shard, int]:
        routed = derive_seed(self.config.seed, "breaker-peer", peer) & (
            MERSENNE_SPAN - 1
        )
        return self._shards[self.router.shard_of(routed)], routed

    def save_breaker(self, peer: object, state: BreakerState) -> None:
        """Persist a peer's final breaker state for its next session."""
        if not isinstance(state, BreakerState):
            raise TypeError(f"expected BreakerState, got {type(state).__name__}")
        shard, routed = self._peer_slot(peer)
        shard.breakers[routed] = state
        shard.breakers.move_to_end(routed)
        while len(shard.breakers) > self.config.breaker_capacity:
            shard.breakers.popitem(last=False)
            self.stats.evictions += 1

    def load_breaker(self, peer: object) -> "BreakerState | None":
        """The peer's persisted breaker state, or ``None`` if unknown."""
        shard, routed = self._peer_slot(peer)
        state = shard.breakers.get(routed)
        if state is not None:
            shard.breakers.move_to_end(routed)
        return state
