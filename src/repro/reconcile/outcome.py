"""One result surface for every reconciler.

Each reconciliation entry point historically returned its own dataclass
(:class:`~repro.reconcile.exact_iblt.ExactReconcileResult`,
:class:`~repro.reconcile.resilient.ResilientReconcileResult`,
:class:`~repro.reconcile.cpi.CPIResult`, and now the wire service's
:class:`~repro.server.client.SessionResult`), and every consumer — the
scenario drivers, the sweeps, the new session server — re-read the same
four facts off each one by name.  :class:`ReconcileOutcome` is the
shared mixin: any result with ``success``, ``alice_only``, ``bob_only``,
``bob_final``, ``total_bits`` and ``rounds`` fields exposes a uniform
minimal interface (missing-at-Alice / missing-at-Bob, a transcript
summary, and the ``ok`` flag), so generic code stops special-casing the
concrete dataclasses.

``outcome_metrics`` is the scenario-driver half of the bargain: the flat
JSON-safe metrics dict every exact-reconciliation driver shares.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from ..protocol.channel import TranscriptSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..metric.spaces import Point

__all__ = ["ReconcileOutcome", "outcome_metrics"]


class ReconcileOutcome:
    """Mixin exposing the minimal shared reconciliation-result surface.

    Host classes provide the underlying fields; the mixin adds the
    uniform vocabulary:

    * :attr:`ok` — did the run reconcile end-to-end;
    * :attr:`missing_at_alice` — points only Bob held (Alice lacks them);
    * :attr:`missing_at_bob` — points only Alice held (what round 2
      ships to Bob);
    * :meth:`transcript_summary` — the measured communication cost as a
      :class:`~repro.protocol.channel.TranscriptSummary`.
    """

    # Fields the host dataclass supplies.
    success: bool
    alice_only: "list[Point]"
    bob_only: "list[Point]"
    bob_final: "list[Point]"
    total_bits: int
    rounds: int

    @property
    def ok(self) -> bool:
        """``success`` under the protocol-wide name."""
        return bool(self.success)

    @property
    def missing_at_alice(self) -> "list[Point]":
        """Points Alice was missing (Bob-only side of the difference)."""
        return list(self.bob_only)

    @property
    def missing_at_bob(self) -> "list[Point]":
        """Points Bob was missing (Alice-only side of the difference)."""
        return list(self.alice_only)

    def transcript_summary(self) -> TranscriptSummary:
        """The measured cost of the run as a transcript summary.

        The base implementation carries totals only (results hold
        aggregate bits/rounds, not per-message breakdowns); transports
        that kept the full transcript override this with the real
        per-label/per-sender split.
        """
        return TranscriptSummary(total_bits=int(self.total_bits), rounds=int(self.rounds))


def outcome_metrics(
    result: ReconcileOutcome,
    alice: "Sequence[Point]",
    bob: "Sequence[Point]",
) -> "dict[str, Any]":
    """The flat metrics every exact-reconciliation scenario driver shares.

    Works on *any* :class:`ReconcileOutcome` — exact, auto, resilient,
    CPI, or a wire-service session — which is exactly why the drivers no
    longer special-case the concrete result dataclasses.
    """
    return {
        "success": result.ok,
        "rounds": int(result.rounds),
        "bits": int(result.total_bits),
        "alice_only": len(result.missing_at_bob),
        "bob_only": len(result.missing_at_alice),
        "union_reached": bool(set(result.bob_final) == set(alice) | set(bob)),
    }
