"""Exact set reconciliation via IBLTs (Eppstein et al. [10], Section 2.2).

The classic application the paper builds on: when the symmetric difference
has size at most ``delta_bound``, two parties synchronise exactly with
``O(delta_bound · log|U|)`` bits.  In the robust setting this is the right
tool whenever ``EMD_k(S_A, S_B) = 0`` (footnote before Theorem 3.4), and
it is the inner engine of the quadtree baseline.

Point encoding: a point of ``[Δ]^d`` maps to the mixed-radix integer
``Σ_j x_j · Δ^j``, a bijection onto ``[Δ^d]`` — exactly ``log2|U|`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hashing import PublicCoins
from ..iblt.iblt import IBLT, cells_for_differences
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import ALICE, BOB, Channel
from ..protocol.serialize import BitReader, BitWriter, read_points, write_points
from .outcome import ReconcileOutcome

__all__ = [
    "encode_point",
    "decode_point",
    "encode_points",
    "ExactReconcileResult",
    "exact_iblt_reconcile",
    "exact_iblt_reconcile_auto",
]


def encode_point(space: MetricSpace, point: Point) -> int:
    """Bijective mixed-radix encoding of a point into ``[0, Δ^d)``."""
    value = 0
    for coordinate in reversed(point):
        if not 0 <= coordinate < space.side:
            raise ValueError(f"coordinate {coordinate} outside [0, {space.side})")
        value = value * space.side + coordinate
    return value


def encode_points(space: MetricSpace, points: Sequence[Point]) -> np.ndarray:
    """Vectorised :func:`encode_point` over a whole point set (``uint64``).

    Only valid when the encoded universe fits 64 bits (``side^dim < 2^64``);
    callers with wider universes must fall back to the scalar encoder.
    """
    if not len(points):
        return np.empty(0, dtype=np.uint64)
    coordinates = np.asarray(points, dtype=np.int64)
    if coordinates.ndim != 2 or coordinates.shape[1] != space.dim:
        raise ValueError(
            f"expected points of dimension {space.dim}, got shape {coordinates.shape}"
        )
    if coordinates.size and (
        int(coordinates.min()) < 0 or int(coordinates.max()) >= space.side
    ):
        raise ValueError(f"coordinate outside [0, {space.side})")
    side = np.uint64(space.side)
    values = np.zeros(coordinates.shape[0], dtype=np.uint64)
    for column in range(space.dim - 1, -1, -1):
        values = values * side + coordinates[:, column].astype(np.uint64)
    return values


def decode_point(space: MetricSpace, value: int) -> Point:
    """Inverse of :func:`encode_point`."""
    if value < 0:
        raise ValueError(f"encoded value must be >= 0, got {value}")
    coordinates = []
    for _ in range(space.dim):
        value, coordinate = divmod(value, space.side)
        coordinates.append(coordinate)
    if value != 0:
        raise ValueError("encoded value out of range for this space")
    return tuple(coordinates)


@dataclass(frozen=True)
class ExactReconcileResult(ReconcileOutcome):
    """Outcome of exact one-way reconciliation (also returned by the
    auto-sized variant); implements the shared
    :class:`~repro.reconcile.outcome.ReconcileOutcome` surface."""

    success: bool
    bob_final: list[Point]
    alice_only: list[Point]
    bob_only: list[Point]
    total_bits: int
    rounds: int


def exact_iblt_reconcile(
    space: MetricSpace,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    delta_bound: int,
    coins: PublicCoins,
    channel: Channel | None = None,
    q: int = 3,
) -> ExactReconcileResult:
    """Two-round exact one-way reconciliation: Bob ends with ``S_A ∪ S_B``.

    Round 1 (Bob -> Alice): Bob's IBLT of his encoded points, sized for
    ``delta_bound`` differences.  Alice deletes her elements, decodes the
    symmetric difference.  Round 2 (Alice -> Bob): the points only she
    holds.  ``success=False`` (with Bob's set unchanged) when peeling
    fails, i.e. the difference exceeded what the table supports.
    """
    channel = channel if channel is not None else Channel()
    key_bits = max(1, space.dim * max(1, (space.side - 1).bit_length()))
    cells = cells_for_differences(delta_bound, q=q)

    # The encoded universe fits uint64 whenever the IBLT can hash it as a
    # field element; otherwise stay on the exact scalar path.
    vectorizable = key_bits <= 61

    bob_table = IBLT(coins, "exact-reconcile", cells=cells, q=q, key_bits=key_bits)
    if vectorizable:
        bob_table.insert_batch(encode_points(space, bob_points))
    else:
        for point in bob_points:
            bob_table.insert(encode_point(space, point))
    payload, bits = bob_table.to_payload()
    sent = channel.send(BOB, "iblt", payload, bits)

    # Alice: load, delete her elements, peel.
    alice_view = IBLT(
        coins, "exact-reconcile", cells=cells, q=q, key_bits=key_bits
    ).from_payload(sent)
    if vectorizable:
        alice_view.delete_batch(encode_points(space, alice_points))
    else:
        for point in alice_points:
            alice_view.delete(encode_point(space, point))
    decoded = alice_view.decode()
    if not decoded.success:
        return ExactReconcileResult(
            success=False,
            bob_final=list(bob_points),
            alice_only=[],
            bob_only=[],
            total_bits=channel.total_bits,
            rounds=channel.rounds,
        )
    # Positive counts were inserted by Bob (his surplus); negatives are
    # Alice-only and must be shipped to Bob.
    bob_only = [decode_point(space, key) for key in decoded.inserted]
    alice_only = [decode_point(space, key) for key in decoded.deleted]

    writer = BitWriter()
    write_points(writer, space, alice_only)
    reply = channel.send(ALICE, "alice-only-points", writer.getvalue(), writer.bit_length)
    shipped = read_points(BitReader(reply), space)

    bob_final = list(bob_points)
    existing = set(bob_final)
    for point in shipped:
        if point not in existing:
            bob_final.append(point)
            existing.add(point)
    return ExactReconcileResult(
        success=True,
        bob_final=bob_final,
        alice_only=alice_only,
        bob_only=bob_only,
        total_bits=channel.total_bits,
        rounds=channel.rounds,
    )


def exact_iblt_reconcile_auto(
    space: MetricSpace,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    coins: PublicCoins,
    channel: Channel | None = None,
    q: int = 3,
    max_attempts: int = 4,
) -> ExactReconcileResult:
    """Exact reconciliation with *no* prior difference bound ([10]).

    Adds a strata-estimator half-round in front of
    :func:`exact_iblt_reconcile`: Alice ships her fixed-size strata
    sketch, Bob subtracts his own, estimates the symmetric-difference
    size, and sizes the reconciliation IBLT accordingly.  Small tables
    occasionally draw a 2-core even below their load threshold, and the
    estimate itself can undershoot, so on decode failure the bound is
    doubled and the exchange retried (fresh coins) up to
    ``max_attempts`` times — the standard deployment loop of [10].
    Three rounds in the common case; two extra per retry.
    """
    from .strata import StrataEstimator

    channel = channel if channel is not None else Channel()
    key_bits = max(1, space.dim * max(1, (space.side - 1).bit_length()))

    vectorizable = key_bits <= 61

    # Round 1 (Alice -> Bob): her strata sketch.
    alice_sketch = StrataEstimator(coins, "auto-strata", key_bits=key_bits)
    if vectorizable:
        alice_sketch.insert_batch(encode_points(space, alice_points))
    else:
        for point in alice_points:
            alice_sketch.insert(encode_point(space, point))
    payload, bits = alice_sketch.to_payload()
    sent = channel.send(ALICE, "strata-sketch", payload, bits)

    # Bob: load, subtract his sketch, estimate the difference.
    shell = StrataEstimator(coins, "auto-strata", key_bits=key_bits)
    received = shell.from_payload(sent)
    bob_sketch = StrataEstimator(coins, "auto-strata", key_bits=key_bits)
    if vectorizable:
        bob_sketch.insert_batch(encode_points(space, bob_points))
    else:
        for point in bob_points:
            bob_sketch.insert(encode_point(space, point))
    delta_bound = max(4, received.subtract(bob_sketch).estimate())

    # Rounds 2-3 (+ doubling retries): the sized reconciliation.
    result = None
    for attempt in range(max_attempts):
        result = exact_iblt_reconcile(
            space,
            alice_points,
            bob_points,
            delta_bound=delta_bound << attempt,
            coins=coins.child("auto-exact", attempt),
            channel=channel,
            q=q,
        )
        if result.success:
            break
    assert result is not None
    return result
