"""Classical reconciliation baselines: naive, exact IBLT, quadtree ([7])."""

from .exact_iblt import (
    ExactReconcileResult,
    decode_point,
    encode_point,
    exact_iblt_reconcile,
    exact_iblt_reconcile_auto,
)
from .cpi import CPIResult, cpi_reconcile, evaluate_characteristic
from .outcome import ReconcileOutcome, outcome_metrics
from .resilient import (
    AttemptRecord,
    BreakerState,
    RecoveryReport,
    ResilienceConfig,
    ResilientReconcileResult,
    resilient_reconcile,
)
from .strata import StrataEstimator, read_strata, strata_payload
from .naive import NaiveTransferResult, naive_full_transfer, naive_union_transfer
from .quadtree import QuadtreeEMDProtocol, QuadtreeResult

__all__ = [
    "AttemptRecord",
    "BreakerState",
    "RecoveryReport",
    "ResilienceConfig",
    "ResilientReconcileResult",
    "resilient_reconcile",
    "ExactReconcileResult",
    "ReconcileOutcome",
    "outcome_metrics",
    "decode_point",
    "encode_point",
    "exact_iblt_reconcile",
    "exact_iblt_reconcile_auto",
    "StrataEstimator",
    "CPIResult",
    "cpi_reconcile",
    "evaluate_characteristic",
    "read_strata",
    "strata_payload",
    "NaiveTransferResult",
    "naive_full_transfer",
    "naive_union_transfer",
    "QuadtreeEMDProtocol",
    "QuadtreeResult",
]
