"""Naive full-transfer baselines.

The trivial solution to any one-way reconciliation problem: Alice sends her
whole point set, ``n · d · ceil(log2 Δ)`` bits in one round.  Both robust
models compare their communication against this ``Θ(n log |U|)`` cost
(Section 1's "improvement over the naive O(n log|U|) communication").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import ALICE, Channel
from ..protocol.serialize import BitReader, BitWriter, read_points, write_points

__all__ = ["NaiveTransferResult", "naive_full_transfer", "naive_union_transfer"]


@dataclass(frozen=True)
class NaiveTransferResult:
    """Outcome of the naive protocol."""

    bob_final: list[Point]
    total_bits: int
    rounds: int


def naive_full_transfer(
    space: MetricSpace,
    alice_points: Sequence[Point],
    channel: Channel | None = None,
) -> NaiveTransferResult:
    """Alice sends everything; Bob replaces his set with hers.

    This is the EMD-model baseline: it achieves ``EMD(S_A, S'_B) = 0``
    at ``n·log|U|`` bits.
    """
    channel = channel if channel is not None else Channel()
    writer = BitWriter()
    write_points(writer, space, list(alice_points))
    payload = channel.send(ALICE, "naive-points", writer.getvalue(), writer.bit_length)
    received = read_points(BitReader(payload), space)
    return NaiveTransferResult(
        bob_final=received, total_bits=channel.total_bits, rounds=channel.rounds
    )


def naive_union_transfer(
    space: MetricSpace,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    channel: Channel | None = None,
) -> NaiveTransferResult:
    """Alice sends everything; Bob keeps the union (Gap-model baseline).

    Satisfies the Gap Guarantee trivially for any ``r2 > 0``.
    """
    channel = channel if channel is not None else Channel()
    writer = BitWriter()
    write_points(writer, space, list(alice_points))
    payload = channel.send(ALICE, "naive-points", writer.getvalue(), writer.bit_length)
    received = read_points(BitReader(payload), space)
    union = list(bob_points)
    existing = set(union)
    for point in received:
        if point not in existing:
            union.append(point)
            existing.add(point)
    return NaiveTransferResult(
        bob_final=union, total_bits=channel.total_bits, rounds=channel.rounds
    )
