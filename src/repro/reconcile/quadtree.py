"""Randomly-offset quadtree baseline (Chen, Konrad, Yi, Yu, Zhang [7]).

The prior-work comparator for the EMD model.  Chen et al. round every
point to the centre of its cell in a randomly shifted quadtree and
reconcile the rounded points with IBLTs, one table per tree level; the
finest decodable level determines the precision of the recovered points.
Their approximation factor is ``O(d)`` — the gap to this paper's
``O(log n)`` is experiment E6.

Implementation notes
--------------------
* Levels ``i = 0, 1, ...`` use cell width ``Δ / 2^i`` with one shared
  random offset vector per level (nested offsets are not required for the
  guarantee; independent offsets match the analysis in [7] up to
  constants).
* Keys are folded cell ids; the stored value is the *cell centre*, a
  deterministic function of the key, so duplicate keys average without
  error and the RIBLT machinery can be reused as a faithful counting
  layer.  What distinguishes this baseline from Algorithm 1 is exactly
  what [7] differs in: points are *rounded* (value = centre) rather than
  carried exactly (value = point), so recovered points are off by up to a
  cell diameter — which scales with ``d`` under ``ℓ1``.
* Bob's repair step is the same as Algorithm 1's, keeping the comparison
  apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.repair import repair_point_set
from ..hashing import PublicCoins
from ..iblt.riblt import RIBLT, riblt_cells_for_pairs
from ..lsh.grid import _FOLD_PRIME_1, _FOLD_PRIME_2, fold_cells
from ..metric.spaces import GridSpace, Point
from ..protocol.channel import ALICE, Channel
from ..protocol.serialize import BitReader, BitWriter
from ..protocol.tables import read_riblt_cells, write_riblt_cells

__all__ = ["QuadtreeResult", "QuadtreeEMDProtocol"]


@dataclass(frozen=True)
class QuadtreeResult:
    """Outcome of the quadtree baseline run."""

    success: bool
    bob_final: list[Point]
    decoded_level: int | None
    total_bits: int
    rounds: int
    decoded_pairs: int


class _Level:
    """One quadtree level: width, offset, and fold coefficients."""

    def __init__(self, space: GridSpace, width: float, rng: np.random.Generator):
        self.space = space
        self.width = width
        self.offset = rng.uniform(0.0, width, size=space.dim)
        self.coeffs_1 = rng.integers(
            1, _FOLD_PRIME_1, size=(1, space.dim), dtype=np.int64
        )
        self.coeffs_2 = rng.integers(
            1, _FOLD_PRIME_2, size=(1, space.dim), dtype=np.int64
        )

    def cells_of(self, points: Sequence[Point]) -> np.ndarray:
        matrix = np.asarray(points, dtype=np.float64)
        return np.floor((matrix + self.offset[None, :]) / self.width).astype(np.int64)

    def keys_and_centres(
        self, points: Sequence[Point]
    ) -> tuple[list[int], list[Point]]:
        """Folded cell keys plus each point's cell-centre value."""
        if not points:
            return [], []
        cells = self.cells_of(points)  # (n, d)
        keys = fold_cells(cells[None, :, :], self.coeffs_1, self.coeffs_2)[:, 0]
        centres = []
        raw = (cells.astype(np.float64) + 0.5) * self.width - self.offset[None, :]
        for row in raw:
            centres.append(self.space.clamp(row))
        return [int(key) for key in keys], centres


class QuadtreeEMDProtocol:
    """One-round EMD-model reconciliation via quadtree rounding ([7]).

    Parameters
    ----------
    space:
        Grid space (``ℓ1`` or ``ℓ2``); Hamming is out of scope for the
        quadtree construction, which is one of the paper's motivations.
    k:
        Outlier budget; tables accept up to ``4k`` decoded pairs.
    q:
        RIBLT hash count.
    max_levels:
        Number of tree levels (default: down to unit cells).
    """

    def __init__(
        self,
        space: GridSpace,
        n: int,
        k: int,
        q: int = 3,
        max_levels: int | None = None,
    ):
        if not isinstance(space, GridSpace):
            raise TypeError(f"quadtree baseline requires a GridSpace, got {space!r}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.space = space
        self.n = n
        self.k = k
        self.q = q
        natural_levels = max(1, math.ceil(math.log2(space.side)) + 1)
        self.levels_count = (
            natural_levels if max_levels is None else min(max_levels, natural_levels)
        )
        self.cells = riblt_cells_for_pairs(4 * k, q=q)
        self.key_bits = 61

    def _levels(self, coins: PublicCoins) -> list[_Level]:
        rng = coins.numpy_rng("quadtree-levels")
        return [
            _Level(self.space, self.space.side / (1 << i), rng)
            for i in range(self.levels_count)
        ]

    def _table(self, coins: PublicCoins, level: int) -> RIBLT:
        return RIBLT(
            coins,
            ("quadtree", level),
            cells=self.cells,
            q=self.q,
            key_bits=self.key_bits,
            dim=self.space.dim,
            side=self.space.side,
        )

    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        coins: PublicCoins,
        channel: Channel | None = None,
        matcher: str = "hungarian",
    ) -> QuadtreeResult:
        """Execute the one-round protocol and Bob's repair step."""
        channel = channel if channel is not None else Channel()
        levels = self._levels(coins)

        # --- Alice: build and send one RIBLT per level -------------------
        writer = BitWriter()
        for index, level in enumerate(levels):
            table = self._table(coins, index)
            keys, centres = level.keys_and_centres(alice_points)
            for key, centre in zip(keys, centres):
                table.insert(key, centre)
            write_riblt_cells(writer, table)
        payload = channel.send(
            ALICE, "quadtree-riblts", writer.getvalue(), writer.bit_length
        )

        # --- Bob: load, delete, decode finest possible level -------------
        reader = BitReader(payload)
        loaded = []
        for index in range(len(levels)):
            loaded.append(read_riblt_cells(reader, self._table(coins, index)))
        decoded_level = None
        decoded_alice: list[Point] = []
        decoded_bob: list[Point] = []
        decoded_pairs = 0
        for index in range(len(levels) - 1, -1, -1):
            table = loaded[index]
            keys, centres = levels[index].keys_and_centres(bob_points)
            for key, centre in zip(keys, centres):
                table.delete(key, centre)
            outcome = table.decode()
            if outcome.success and outcome.pair_count <= 4 * self.k:
                decoded_level = index
                decoded_alice = [value for _, value in outcome.inserted]
                decoded_bob = [value for _, value in outcome.deleted]
                decoded_pairs = outcome.pair_count
                break
        if decoded_level is None:
            return QuadtreeResult(
                success=False,
                bob_final=list(bob_points),
                decoded_level=None,
                total_bits=channel.total_bits,
                rounds=channel.rounds,
                decoded_pairs=0,
            )
        bob_final = repair_point_set(
            self.space, bob_points, decoded_alice, decoded_bob, matcher=matcher
        )
        return QuadtreeResult(
            success=True,
            bob_final=bob_final,
            decoded_level=decoded_level,
            total_bits=channel.total_bits,
            rounds=channel.rounds,
            decoded_pairs=decoded_pairs,
        )
