"""Characteristic-polynomial set reconciliation (Minsky–Trachtenberg–Zippel [21]).

The other classic exact-reconciliation technology the paper cites:
communication-*optimal* (``~(d+1)·log|F|`` bits for ``d`` differences, no
constant-factor table overhead like IBLTs) at the price of polynomial
algebra for decoding instead of IBLTs' ``O(d)`` peeling.

Each party's set ``S`` is represented by its characteristic polynomial
``χ_S(z) = Π_{x in S} (z - x)`` over GF(p), ``p = 2^61 - 1``.  For
shared random evaluation points the ratio

``f(z) = χ_A(z) / χ_B(z) = Π_{a in A\\B}(z-a) / Π_{b in B\\A}(z-b)``

is a reduced rational function whose numerator/denominator degrees are
the two one-sided difference sizes.  Alice recovers it by rational
interpolation: knowing ``|A| - |B|`` (exchanged up front) fixes the
degree *difference*; she sweeps the degree up from zero and accepts the
first interpolant that validates on held-out evaluations — that minimal
interpolant is the reduced ratio, so its numerator's roots among her own
elements are exactly ``A \\ B`` (root-testing over known candidates is
[21]'s practical variant).

All linear algebra is exact over GF(p) (Gaussian elimination with
modular inverses).  This serves as the second exact baseline in the
ablation benches, head-to-head with the IBLT approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hashing import MERSENNE_P, PublicCoins
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import ALICE, BOB, Channel
from ..protocol.serialize import BitReader, BitWriter, read_points, write_points
from .exact_iblt import encode_point
from .outcome import ReconcileOutcome

__all__ = ["cpi_reconcile", "CPIResult", "evaluate_characteristic"]

_P = MERSENNE_P
_HOLDOUT = 8


def _inv(x: int) -> int:
    """Modular inverse in GF(p)."""
    return pow(x, _P - 2, _P)


def evaluate_characteristic(elements: Sequence[int], zs: Sequence[int]) -> list[int]:
    """Evaluate ``χ_S(z) = Π (z - x)`` at each ``z`` over GF(p)."""
    values = []
    for z in zs:
        acc = 1
        for x in elements:
            acc = acc * ((z - x) % _P) % _P
        values.append(acc)
    return values


def _poly_eval(coeffs: Sequence[int], z: int) -> int:
    acc = 0
    for coefficient in reversed(coeffs):
        acc = (acc * z + coefficient) % _P
    return acc


def _solve_rational(
    zs: Sequence[int], ratios: Sequence[int], deg_p: int, deg_q: int
) -> tuple[list[int], list[int]] | None:
    """Interpolate ``f = P/Q`` with exact degrees ``(deg_p, deg_q)``.

    Linearises ``P(z_i) - f(z_i)·Q(z_i) = 0`` with ``Q`` monic of degree
    ``deg_q``, using ``deg_p + deg_q + 1`` equations.  Returns ``None``
    when the system is singular (wrong degree guess).
    """
    unknowns = deg_p + deg_q + 1
    if len(zs) < unknowns:
        return None
    rows = []
    rhs = []
    for z, ratio in zip(zs[:unknowns], ratios[:unknowns]):
        row = []
        power = 1
        for _ in range(deg_p + 1):
            row.append(power)
            power = power * z % _P
        power = 1
        for _ in range(deg_q):
            row.append((-ratio * power) % _P)
            power = power * z % _P
        rows.append(row)
        rhs.append(ratio * pow(z, deg_q, _P) % _P)

    n = unknowns
    for col in range(n):
        pivot = next((r for r in range(col, n) if rows[r][col] % _P != 0), None)
        if pivot is None:
            return None
        rows[col], rows[pivot] = rows[pivot], rows[col]
        rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
        inv = _inv(rows[col][col] % _P)
        rows[col] = [value * inv % _P for value in rows[col]]
        rhs[col] = rhs[col] * inv % _P
        for r in range(n):
            if r != col and rows[r][col] % _P:
                factor = rows[r][col] % _P
                rows[r] = [
                    (a - factor * b) % _P for a, b in zip(rows[r], rows[col])
                ]
                rhs[r] = (rhs[r] - factor * rhs[col]) % _P
    solution = rhs
    return solution[: deg_p + 1], solution[deg_p + 1 :] + [1]


@dataclass(frozen=True)
class CPIResult(ReconcileOutcome):
    """Outcome of characteristic-polynomial reconciliation; implements
    the shared :class:`~repro.reconcile.outcome.ReconcileOutcome`
    surface."""

    success: bool
    bob_final: list[Point]
    alice_only: list[Point]
    bob_only: list[Point]
    total_bits: int
    rounds: int


def cpi_reconcile(
    space: MetricSpace,
    alice_points: Sequence[Point],
    bob_points: Sequence[Point],
    delta_bound: int,
    coins: PublicCoins,
    channel: Channel | None = None,
) -> CPIResult:
    """Two-round exact one-way reconciliation via polynomial evaluations.

    Round 1 (Bob -> Alice): his set size and characteristic-polynomial
    evaluations at ``2·delta_bound + 1 + holdout`` shared random points.
    Alice interpolates the *minimal-degree* rational ratio consistent
    with held-out evaluations, root-tests her own elements against its
    numerator to find ``A \\ B``, and Round 2 ships them.  Returns
    ``success=False`` when no degree up to ``delta_bound`` validates
    (the true difference exceeded the bound).

    Requires the point universe to fit in GF(2^61 - 1).
    """
    channel = channel if channel is not None else Channel()
    if space.dim * (space.side - 1).bit_length() > 60:
        raise ValueError(
            "CPI baseline requires the point universe to fit in GF(2^61-1); "
            "use the IBLT path for larger universes"
        )
    if delta_bound < 1:
        raise ValueError(f"delta_bound must be >= 1, got {delta_bound}")

    m = 2 * delta_bound + 1 + _HOLDOUT
    rng = coins.python_rng("cpi-evals")
    zs = [rng.randrange(_P // 2, _P) for _ in range(m)]  # away from encodings

    alice_encoded = [encode_point(space, point) for point in alice_points]
    bob_encoded = [encode_point(space, point) for point in bob_points]

    # ---- Round 1: Bob's size + evaluations ------------------------------
    bob_values = evaluate_characteristic(bob_encoded, zs)
    writer = BitWriter()
    writer.write_varuint(len(bob_encoded))
    for value in bob_values:
        writer.write_uint(value, 61)
    payload = channel.send(BOB, "cpi-evaluations", writer.getvalue(), writer.bit_length)

    reader = BitReader(payload)
    bob_size = reader.read_varuint()
    received = [reader.read_uint(61) for _ in range(m)]

    # ---- Alice: minimal-degree rational interpolation --------------------
    alice_values = evaluate_characteristic(alice_encoded, zs)
    ratios = [a * _inv(b) % _P for a, b in zip(alice_values, received)]
    size_gap = len(alice_encoded) - bob_size  # = deg P - deg Q of the ratio

    failure = CPIResult(
        success=False,
        bob_final=list(bob_points),
        alice_only=[],
        bob_only=[],
        total_bits=channel.total_bits,
        rounds=channel.rounds,
    )

    interpolant: tuple[list[int], list[int]] | None = None
    for deg_q in range(0, delta_bound + 1):
        deg_p = deg_q + size_gap
        if deg_p < 0 or deg_p > delta_bound:
            continue
        candidate = _solve_rational(zs, ratios, deg_p, deg_q)
        if candidate is None:
            continue
        p_coeffs, q_coeffs = candidate
        holdout_ok = True
        for z, ratio in zip(zs[-_HOLDOUT:], ratios[-_HOLDOUT:]):
            q_val = _poly_eval(q_coeffs, z)
            if q_val == 0 or _poly_eval(p_coeffs, z) * _inv(q_val) % _P != ratio:
                holdout_ok = False
                break
        if holdout_ok:
            interpolant = candidate
            break
    if interpolant is None:
        return failure
    p_coeffs, q_coeffs = interpolant

    # The reduced numerator vanishes exactly on A \ B.
    alice_only = [
        point
        for point, encoded in zip(alice_points, alice_encoded)
        if _poly_eval(p_coeffs, encoded) == 0
    ]
    bob_only = [
        point
        for point, encoded in zip(bob_points, bob_encoded)
        if _poly_eval(q_coeffs, encoded) == 0
    ]

    # ---- Round 2: Alice ships her side of the difference -----------------
    writer = BitWriter()
    write_points(writer, space, alice_only)
    reply = channel.send(ALICE, "cpi-alice-only", writer.getvalue(), writer.bit_length)
    shipped = read_points(BitReader(reply), space)

    bob_final = list(bob_points)
    existing = set(bob_final)
    for point in shipped:
        if point not in existing:
            bob_final.append(point)
            existing.add(point)
    return CPIResult(
        success=True,
        bob_final=bob_final,
        alice_only=alice_only,
        bob_only=bob_only,
        total_bits=channel.total_bits,
        rounds=channel.rounds,
    )
