"""Strata estimator for unknown difference sizes (Eppstein et al. [10]).

IBLT-based reconciliation needs an upper bound on the symmetric
difference to size its table.  "What's the Difference?" [10] — the
set-reconciliation work the paper builds on — pairs the IBLT with a
*strata estimator*: a log-universe stack of small IBLTs where stratum
``i`` receives each element independently with probability ``2^{-i}``
(by counting trailing zeros of a hash).  Subtracting two estimators and
peeling strata from the deepest up yields an unbiased difference
estimate from whatever strata decode.

This powers :func:`repro.reconcile.exact_iblt.exact_iblt_reconcile_auto`
— exact reconciliation with *no* prior difference bound, at the cost of
one extra half-round carrying ``O(log|U|)`` fixed-size sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..hashing import PairwiseHash, PublicCoins
from ..iblt.backend import resolve_backend
from ..iblt.iblt import IBLT, coerce_key_array
from ..protocol.serialize import BitReader, BitWriter
from ..protocol.tables import read_iblt_cells, write_iblt_cells

__all__ = ["StrataEstimator", "strata_payload", "read_strata"]

_DEFAULT_STRATA = 24
_CELLS_PER_STRATUM = 48
_CORRECTION = 2.0  # headroom multiplier applied by estimate()


@dataclass(frozen=True)
class _Shape:
    strata: int
    cells: int
    key_bits: int


class StrataEstimator:
    """A stack of small IBLTs estimating a symmetric-difference size.

    Parameters
    ----------
    coins, label:
        Shared randomness (both parties must agree).
    strata:
        Number of strata; stratum ``i`` samples elements w.p. ``2^{-i}``,
        so ``strata ~ log2 |U|`` suffices for any difference size.
    cells:
        Cells per stratum (small; each stratum only needs to decode its
        ~``d/2^i`` expected differences for *some* decodable ``i``).
    key_bits:
        Width of the element keys.
    """

    def __init__(
        self,
        coins: PublicCoins,
        label: object,
        strata: int = _DEFAULT_STRATA,
        cells: int = _CELLS_PER_STRATUM,
        key_bits: int = 61,
        backend: str | None = None,
    ):
        if strata < 1:
            raise ValueError(f"strata must be >= 1, got {strata}")
        if backend == "numpy" and key_bits > 61:
            raise ValueError(
                f"the numpy backend hashes keys of <= 61 bits, got key_bits={key_bits}"
            )
        self.coins = coins
        self.label = label
        self.shape = _Shape(strata=strata, cells=cells, key_bits=key_bits)
        self.backend = resolve_backend(backend)
        if key_bits > 61:
            self.backend = "python"
        self._stratum_hash = PairwiseHash(coins, ("strata-level", label), bits=61)
        self.tables = [
            IBLT(
                coins,
                ("strata", label, i),
                cells=cells,
                q=3,
                key_bits=key_bits,
                backend=self.backend,
            )
            for i in range(strata)
        ]

    def _stratum_of(self, key: int) -> int:
        """Trailing-one count of an independent hash of the key."""
        value = self._stratum_hash(key)
        stratum = 0
        while value & 1 and stratum < self.shape.strata - 1:
            stratum += 1
            value >>= 1
        return stratum

    def _strata_of_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_stratum_of` (trailing ones, capped)."""
        hashed = self._stratum_hash.hash_array(keys)
        # Trailing ones of h == position of the lowest *unset* bit: isolate
        # it (~h has bits 61..63 set, so it is never zero) and take its
        # exact float64 log2 — a power of two, so no popcount needed.
        inverted = ~hashed
        lowest = inverted & (np.uint64(0) - inverted)
        trailing = np.log2(lowest.astype(np.float64)).astype(np.int64)
        return np.minimum(trailing, self.shape.strata - 1)

    def insert(self, key: int) -> None:
        self.tables[self._stratum_of(key)].insert(key)

    def insert_batch(self, keys: np.ndarray) -> None:
        """Assign strata and fill every stratum table in vectorised passes.

        Degrades to the scalar path on the python backend, so callers can
        batch unconditionally.
        """
        if self.backend != "numpy":
            # Validate the whole batch before mutating anything; keys stay
            # Python ints so widths beyond uint64 remain exact.
            key_list = [int(key) for key in np.asarray(keys).ravel().tolist()]
            limit = 1 << self.shape.key_bits
            for key in key_list:
                if not 0 <= key < limit:
                    raise ValueError(
                        f"key {key} outside [0, 2^{self.shape.key_bits})"
                    )
            for key in key_list:
                self.insert(key)
            return
        keys = coerce_key_array(keys, self.shape.key_bits)
        if keys.size == 0:
            return
        strata = self._strata_of_batch(keys)
        for stratum in np.unique(strata).tolist():
            self.tables[stratum].insert_batch(keys[strata == stratum])

    def insert_all(self, keys: Iterable[int]) -> None:
        if self.backend == "numpy":
            self.insert_batch(coerce_key_array(keys, self.shape.key_bits))
            return
        for key in keys:
            self.insert(key)

    def delete(self, key: int) -> None:
        self.tables[self._stratum_of(key)].delete(key)

    def delete_batch(self, keys: np.ndarray) -> None:
        """Remove a whole key array, routing each key to its stratum."""
        if self.backend != "numpy":
            key_list = [int(key) for key in np.asarray(keys).ravel().tolist()]
            limit = 1 << self.shape.key_bits
            for key in key_list:
                if not 0 <= key < limit:
                    raise ValueError(
                        f"key {key} outside [0, 2^{self.shape.key_bits})"
                    )
            for key in key_list:
                self.delete(key)
            return
        keys = coerce_key_array(keys, self.shape.key_bits)
        if keys.size == 0:
            return
        strata = self._strata_of_batch(keys)
        for stratum in np.unique(strata).tolist():
            self.tables[stratum].delete_batch(keys[strata == stratum])

    def apply_mutations(
        self,
        inserts: "np.ndarray | Iterable[int]" = (),
        deletes: "np.ndarray | Iterable[int]" = (),
    ) -> None:
        """Apply an insert/delete delta to the stratum tables in place.

        Stratum routing is a pure hash of the key, so the result is
        pinned bit-identical to rebuilding the estimator from the
        mutated set — the sketch store maintains warm strata this way.
        """
        if self.backend == "numpy":
            self.insert_batch(coerce_key_array(inserts, self.shape.key_bits))
            self.delete_batch(coerce_key_array(deletes, self.shape.key_bits))
            return
        self.insert_batch(np.asarray(list(inserts)))
        self.delete_batch(np.asarray(list(deletes)))

    def subtract(self, other: "StrataEstimator") -> "StrataEstimator":
        if self.shape != other.shape or self.label != other.label:
            raise ValueError("strata estimators are structurally incompatible")
        result = StrataEstimator(
            self.coins,
            self.label,
            strata=self.shape.strata,
            cells=self.shape.cells,
            key_bits=self.shape.key_bits,
            backend=self.backend,
        )
        result.tables = [
            mine.subtract(theirs)
            for mine, theirs in zip(self.tables, other.tables)
        ]
        return result

    def to_payload(self) -> tuple[bytes, int]:
        """Serialize all strata; returns ``(payload, exact_bit_count)``.

        Part of the uniform sketch wire surface shared with
        :meth:`IBLT.to_payload <repro.iblt.iblt.IBLT.to_payload>`: the
        wire layer and snapshot stores treat every sketch type through
        the same ``to_payload``/:meth:`from_payload` pair.
        """
        writer = BitWriter()
        for table in self.tables:
            write_iblt_cells(writer, table)
        return writer.getvalue(), writer.bit_length

    def from_payload(self, payload: bytes) -> "StrataEstimator":
        """Load a transmitted payload into this structurally identical
        (empty) shell; damage raises the typed
        :class:`~repro.errors.DecodeError` hierarchy."""
        reader = BitReader(payload)
        for table in self.tables:
            read_iblt_cells(reader, table)
        return self

    def estimate(self) -> int:
        """Estimate the difference size of a *subtracted* estimator.

        Peels strata from the deepest (sparsest) down; once a stratum
        fails to decode, the count seen so far is scaled up by the
        sampling rate of the last decoded stratum.  Returns an upper
        bound-ish estimate (a 2x safety factor is applied, as in [10]'s
        deployment advice).
        """
        counted = 0
        for stratum in range(self.shape.strata - 1, -1, -1):
            outcome = self.tables[stratum].copy().decode()
            if not outcome.success:
                # Everything below stratum `stratum` (exclusive) decoded;
                # scale by the inverse sampling probability of stratum+1.
                scale = 2 ** (stratum + 1)
                return max(1, int(_CORRECTION * counted * scale))
            counted += outcome.difference_count
        return max(0, int(_CORRECTION * counted))


def strata_payload(estimator: StrataEstimator) -> tuple[bytes, int]:
    """Deprecated alias for :meth:`StrataEstimator.to_payload`."""
    return estimator.to_payload()


def read_strata(payload: bytes, shell: StrataEstimator) -> StrataEstimator:
    """Deprecated alias for :meth:`StrataEstimator.from_payload`."""
    return shell.from_payload(payload)
