"""Self-healing exact reconciliation: retries, escalation, circuit breaker.

:func:`resilient_reconcile` wraps the two-way exact IBLT reconciliation
(:func:`~repro.reconcile.exact_iblt.exact_iblt_reconcile`) in a
deterministic recovery loop driven by the typed
:class:`~repro.errors.DecodeError` surface:

* **Corrupted payload** (:class:`~repro.errors.TruncatedPayloadError` /
  :class:`~repro.errors.MalformedPayloadError`, e.g. from a
  :class:`~repro.protocol.faults.FaultyChannel`): the attempt is
  *re-requested* at the same table size with fresh coins — damage in
  flight says nothing about the sketch being undersized.
* **Sketch undecodable** (peeling failed on a well-formed table): the
  difference exceeded the table, so the cell count is *escalated*
  geometrically (``delta_bound × escalation_factor`` per step), with
  fresh coins per attempt so retries draw independent hypergraphs.
* **Circuit breaker**: after ``max_escalations`` sizing steps have
  failed, blind escalation is abandoned — the breaker trips *open* and
  the controller falls back to strata-estimated sizing ([10]'s
  deployment loop): one strata-estimator half-round measures the actual
  difference, and the remaining attempt budget runs at the measured
  bound (doubling on further failures).

Attempt 1 runs with the caller's coins **unchanged** and no wrapping of
any kind, so with faults disabled the wrapped run's protocol transcript
is byte-identical to calling ``exact_iblt_reconcile`` directly
(zero-overhead no-fault parity; pinned by tests).

Every attempt's outcome, table size, and measured bits land in a
:class:`RecoveryReport` whose canonical JSON is byte-deterministic for a
fixed fault seed — the artifact the fault-rate sweep campaign and CI's
fault-smoke gate aggregate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..errors import DecodeError, MalformedPayloadError
from ..hashing import PublicCoins
from ..iblt.iblt import cells_for_differences
from ..metric.spaces import MetricSpace, Point
from ..protocol.channel import ALICE, Channel
from ..protocol.faults import FaultyChannel
from .exact_iblt import (
    ExactReconcileResult,
    encode_point,
    encode_points,
    exact_iblt_reconcile,
)
from .outcome import ReconcileOutcome
from .strata import StrataEstimator

__all__ = [
    "ResilienceConfig",
    "BreakerState",
    "AttemptRecord",
    "RecoveryReport",
    "ResilientReconcileResult",
    "resilient_reconcile",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry budget and breaker policy for :func:`resilient_reconcile`.

    Parameters
    ----------
    max_attempts:
        Hard budget on reconciliation attempts (all phases combined).
    max_escalations:
        Blind sizing steps before the breaker trips: the bound grows
        ``delta_bound × factor^k`` for ``k = 1..max_escalations``; the
        failure after the last step opens the breaker.
    escalation_factor:
        Geometric growth factor for escalated (and fallback-doubled)
        bounds.
    q:
        Hash count for every attempt's IBLT.
    """

    max_attempts: int = 8
    max_escalations: int = 2
    escalation_factor: int = 2
    q: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.max_escalations < 0:
            raise ValueError(
                f"max_escalations must be >= 0, got {self.max_escalations}"
            )
        if self.escalation_factor < 2:
            raise ValueError(
                f"escalation_factor must be >= 2, got {self.escalation_factor}"
            )


@dataclass(frozen=True)
class BreakerState:
    """Serialisable circuit-breaker state of the recovery loop.

    Everything the escalation policy has learned about a peer — the
    current difference bound, the blind escalations consumed, whether
    the breaker is open, and the strata-measured fallback bound — in one
    frozen value.  :func:`resilient_reconcile` both consumes it (resume
    a returning peer where the last session left off) and produces it
    (:attr:`RecoveryReport.breaker`), and the sketch store persists it
    per peer, so a flaky peer's next session starts at its escalated
    bound instead of rediscovering the failure.
    """

    bound: int
    escalations: int = 0
    breaker_open: bool = False
    fallback_bound: int | None = None

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValueError(f"bound must be >= 1, got {self.bound}")
        if self.escalations < 0:
            raise ValueError(f"escalations must be >= 0, got {self.escalations}")
        if self.fallback_bound is not None and self.fallback_bound < 1:
            raise ValueError(
                f"fallback_bound must be >= 1, got {self.fallback_bound}"
            )

    # -- policy transitions --------------------------------------------------
    def after_undecodable(self, config: ResilienceConfig) -> "BreakerState":
        """The state after a well-formed but undecodable sketch.

        Closed breaker: escalate geometrically while blind steps remain,
        else trip open.  Open breaker with a measured fallback: double
        the fallback.  Open breaker awaiting measurement: unchanged (the
        strata half-round itself was lost; retry it wholesale).
        """
        if not self.breaker_open:
            if self.escalations < config.max_escalations:
                return replace(
                    self,
                    bound=self.bound * config.escalation_factor,
                    escalations=self.escalations + 1,
                )
            return replace(self, breaker_open=True)
        if self.fallback_bound is not None:
            grown = self.fallback_bound * config.escalation_factor
            return replace(self, bound=grown, fallback_bound=grown)
        return self

    def with_fallback(self, measured: int) -> "BreakerState":
        """Adopt a strata-measured bound as the fallback baseline."""
        return replace(self, bound=measured, fallback_bound=measured)

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "bound": self.bound,
            "escalations": self.escalations,
            "breaker_open": self.breaker_open,
            "fallback_bound": self.fallback_bound,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "BreakerState":
        """Restore persisted state, treating it as untrusted input.

        Damage raises :class:`~repro.errors.MalformedPayloadError` (the
        typed :class:`~repro.errors.DecodeError` surface), never a bare
        ``KeyError``/``TypeError`` — stores load these from disk or
        wire.
        """
        if not isinstance(payload, dict):
            raise MalformedPayloadError(
                f"breaker state must be a dict, got {type(payload).__name__}"
            )
        expected = {"bound", "escalations", "breaker_open", "fallback_bound"}
        if set(payload) != expected:
            raise MalformedPayloadError(
                f"breaker state keys {sorted(payload)} != {sorted(expected)}"
            )
        bound = payload["bound"]
        escalations = payload["escalations"]
        breaker_open = payload["breaker_open"]
        fallback_bound = payload["fallback_bound"]
        for name, value in (("bound", bound), ("escalations", escalations)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise MalformedPayloadError(f"breaker {name} must be an int")
        if not isinstance(breaker_open, bool):
            raise MalformedPayloadError("breaker breaker_open must be a bool")
        if fallback_bound is not None and (
            not isinstance(fallback_bound, int) or isinstance(fallback_bound, bool)
        ):
            raise MalformedPayloadError("breaker fallback_bound must be int or None")
        try:
            return cls(
                bound=bound,
                escalations=escalations,
                breaker_open=breaker_open,
                fallback_bound=fallback_bound,
            )
        except ValueError as exc:
            raise MalformedPayloadError(str(exc)) from exc


@dataclass(frozen=True)
class AttemptRecord:
    """One reconciliation attempt on the recovery path."""

    attempt: int  #: 1-based position in the attempt sequence
    phase: str  #: "primary" | "rerequest" | "escalated" | "fallback"
    breaker: str  #: breaker state entering the attempt: "closed" | "open"
    delta_bound: int  #: difference bound the table was sized for
    cells: int  #: actual cell count of that table
    outcome: str  #: "decoded" | "undecodable" | "corrupted"
    bits: int  #: bits this attempt added to the wire
    cumulative_bits: int  #: transcript total after the attempt
    rounds: int  #: messages this attempt added

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "phase": self.phase,
            "breaker": self.breaker,
            "delta_bound": self.delta_bound,
            "cells": self.cells,
            "outcome": self.outcome,
            "bits": self.bits,
            "cumulative_bits": self.cumulative_bits,
            "rounds": self.rounds,
        }


@dataclass
class RecoveryReport:
    """The full recovery path of one resilient reconciliation run."""

    success: bool
    attempts: list[AttemptRecord] = field(default_factory=list)
    escalations: int = 0
    rerequests: int = 0
    breaker_tripped: bool = False
    fallback_bound: int | None = None
    total_bits: int = 0
    rounds: int = 0
    faults: dict = field(default_factory=dict)
    breaker: "BreakerState | None" = None  #: final state; persist per peer

    @property
    def recovery_bits(self) -> int:
        """Bits spent beyond the first attempt (the cost of recovery)."""
        if not self.attempts:
            return 0
        return self.total_bits - self.attempts[0].bits

    def to_dict(self) -> dict:
        return {
            "success": self.success,
            "attempt_count": len(self.attempts),
            "attempts": [record.to_dict() for record in self.attempts],
            "escalations": self.escalations,
            "rerequests": self.rerequests,
            "breaker_tripped": self.breaker_tripped,
            "fallback_bound": self.fallback_bound,
            "total_bits": self.total_bits,
            "rounds": self.rounds,
            "recovery_bits": self.recovery_bits,
            "faults": dict(self.faults),
            "breaker": None if self.breaker is None else self.breaker.to_dict(),
        }

    def to_json(self) -> str:
        """Canonical byte-deterministic rendering (sorted keys, newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


@dataclass(frozen=True)
class ResilientReconcileResult(ReconcileOutcome):
    """Mirror of :class:`ExactReconcileResult` plus the recovery report;
    implements the shared
    :class:`~repro.reconcile.outcome.ReconcileOutcome` surface."""

    success: bool
    bob_final: list[Point]
    alice_only: list[Point]
    bob_only: list[Point]
    total_bits: int
    rounds: int
    report: RecoveryReport


def _strata_estimate(
    space: MetricSpace,
    alice_points: "list[Point]",
    bob_points: "list[Point]",
    coins: PublicCoins,
    channel: "Channel | FaultyChannel",
) -> int:
    """One strata half-round over ``channel``: Bob's measured bound.

    Mirrors the front half of
    :func:`~repro.reconcile.exact_iblt.exact_iblt_reconcile_auto`; the
    received sketch crosses the (possibly faulty) channel, so parsing it
    can raise :class:`~repro.errors.DecodeError`.
    """
    key_bits = max(1, space.dim * max(1, (space.side - 1).bit_length()))
    vectorizable = key_bits <= 61
    alice_sketch = StrataEstimator(coins, "resilient-strata", key_bits=key_bits)
    if vectorizable:
        alice_sketch.insert_batch(encode_points(space, alice_points))
    else:
        for point in alice_points:
            alice_sketch.insert(encode_point(space, point))
    payload, bits = alice_sketch.to_payload()
    sent = channel.send(ALICE, "strata-sketch", payload, bits)

    shell = StrataEstimator(coins, "resilient-strata", key_bits=key_bits)
    received = shell.from_payload(sent)
    bob_sketch = StrataEstimator(coins, "resilient-strata", key_bits=key_bits)
    if vectorizable:
        bob_sketch.insert_batch(encode_points(space, bob_points))
    else:
        for point in bob_points:
            bob_sketch.insert(encode_point(space, point))
    return max(4, received.subtract(bob_sketch).estimate())


def resilient_reconcile(
    space: MetricSpace,
    alice_points: "list[Point]",
    bob_points: "list[Point]",
    delta_bound: int,
    coins: PublicCoins,
    channel: "Channel | FaultyChannel | None" = None,
    config: ResilienceConfig = ResilienceConfig(),
    breaker: "BreakerState | None" = None,
) -> ResilientReconcileResult:
    """Exact two-way reconciliation with a deterministic recovery path.

    See the module docstring for the policy.  ``channel`` may be a plain
    :class:`~repro.protocol.channel.Channel` or a
    :class:`~repro.protocol.faults.FaultyChannel`; bits and rounds always
    come from the (inner) transcript, so recovery cost is *measured*.

    ``breaker`` resumes a persisted :class:`BreakerState` (e.g. from a
    sketch store): the first attempt runs at the persisted bound with
    the persisted escalation budget already consumed, so a returning
    flaky peer skips straight to where its last session ended.  Omitted,
    the loop starts fresh at ``delta_bound`` and behaves exactly as
    before (pinned by the no-fault parity tests).  Either way the final
    state lands in :attr:`RecoveryReport.breaker` for persisting.
    """
    channel = channel if channel is not None else Channel()
    report = RecoveryReport(success=False)
    final: ExactReconcileResult | None = None

    resumed = breaker is not None
    state = breaker if resumed else BreakerState(bound=delta_bound)
    phase = "resumed" if resumed else "primary"

    for attempt in range(1, config.max_attempts + 1):
        attempt_coins = (
            coins if attempt == 1 else coins.child("resilient-attempt", attempt)
        )
        bits_before = channel.total_bits
        rounds_before = channel.rounds
        outcome = "corrupted"
        try:
            if state.breaker_open and state.fallback_bound is None:
                measured = _strata_estimate(
                    space, alice_points, bob_points, attempt_coins, channel
                )
                state = state.with_fallback(measured)
                report.fallback_bound = measured
            result = exact_iblt_reconcile(
                space,
                alice_points,
                bob_points,
                delta_bound=state.bound,
                coins=attempt_coins,
                channel=channel,
                q=config.q,
            )
            if result.success:
                outcome = "decoded"
                final = result
            else:
                outcome = "undecodable"
        except DecodeError:
            outcome = "corrupted"

        report.attempts.append(
            AttemptRecord(
                attempt=attempt,
                phase=phase,
                breaker="open" if state.breaker_open else "closed",
                delta_bound=state.bound,
                cells=cells_for_differences(state.bound, q=config.q),
                outcome=outcome,
                bits=channel.total_bits - bits_before,
                cumulative_bits=channel.total_bits,
                rounds=channel.rounds - rounds_before,
            )
        )
        if outcome == "decoded":
            break
        if outcome == "corrupted":
            # Damage in flight: re-request at the same size (a corrupted
            # strata exchange retries the fallback entry wholesale).
            report.rerequests += 1
            if phase == "primary":
                phase = "rerequest"
        else:  # undecodable: the table was undersized for the difference
            advanced = state.after_undecodable(config)
            if advanced.escalations > state.escalations:
                report.escalations += 1
                phase = "escalated"
            elif advanced.breaker_open and not state.breaker_open:
                report.breaker_tripped = True
                phase = "fallback"
            state = advanced

    report.breaker = state
    report.success = final is not None
    report.total_bits = channel.total_bits
    report.rounds = channel.rounds
    if isinstance(channel, FaultyChannel):
        report.faults = channel.fault_summary().to_dict()

    if final is None:
        return ResilientReconcileResult(
            success=False,
            bob_final=list(bob_points),
            alice_only=[],
            bob_only=[],
            total_bits=channel.total_bits,
            rounds=channel.rounds,
            report=report,
        )
    return ResilientReconcileResult(
        success=True,
        bob_final=final.bob_final,
        alice_only=final.alice_only,
        bob_only=final.bob_only,
        total_bits=channel.total_bits,
        rounds=channel.rounds,
        report=report,
    )
