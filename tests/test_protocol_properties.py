"""Property-based tests of protocol-level invariants (hypothesis).

These complement the deterministic end-to-end tests by driving the
protocols across randomly generated instances and asserting the
*structural* invariants that must hold on every run, success or not:

* the EMD protocol preserves set sizes and never invents failure states;
* the Gap protocol's output is always ``S_B ∪ (subset of S_A)`` and its
  transmissions always cover the truly far points (the safety direction
  of every approximation in the pipeline);
* channel accounting matches result accounting exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EMDProtocol, GapProtocol
from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH
from repro.metric import HammingSpace
from repro.protocol import Channel
from repro.workloads import noisy_replica_pair

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=6, max_value=20),
    k=st.integers(min_value=1, max_value=2),
)
@_SETTINGS
def test_emd_protocol_structural_invariants(seed, n, k):
    rng = np.random.default_rng(seed)
    space = HammingSpace(48)
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=1, far_radius=16, rng=rng
    )
    protocol = EMDProtocol.for_instance(space, n=n, k=k)
    channel = Channel()
    result = protocol.run(workload.alice, workload.bob, PublicCoins(seed), channel)

    # Size preservation, always.
    assert len(result.bob_final) == n
    # Output points live in the space.
    assert all(space.contains(point) for point in result.bob_final)
    # Accounting agrees with the channel, one round only.
    assert result.total_bits == channel.total_bits
    assert channel.rounds == 1
    # Failure leaves Bob untouched.
    if not result.success:
        assert result.bob_final == workload.bob
    else:
        assert result.decoded_level is not None
        assert result.decoded_pairs <= protocol.parameters.accept_pairs


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=8, max_value=24),
    k=st.integers(min_value=1, max_value=3),
)
@_SETTINGS
def test_gap_protocol_structural_invariants(seed, n, k):
    rng = np.random.default_rng(seed)
    space = HammingSpace(96)
    r2 = 32.0
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=2, far_radius=r2 + 8, rng=rng
    )
    family = BitSamplingMLSH(space, w=96.0)
    params = family.derived_lsh_params(r1=2.0, r2=r2)
    protocol = GapProtocol(space, family, params, n=n, k=k)
    channel = Channel()
    result = protocol.run(workload.alice, workload.bob, PublicCoins(seed), channel)

    assert result.total_bits == channel.total_bits
    if not result.success:
        assert result.bob_final == workload.bob
        return
    assert channel.rounds == 4
    # S'_B = S_B ∪ T_A with T_A ⊆ S_A.
    assert set(workload.bob) <= set(result.bob_final)
    additions = set(result.bob_final) - set(workload.bob)
    assert additions <= set(workload.alice)
    assert additions <= set(result.transmitted)
    # Safety: every planted far point was transmitted.
    for outlier in workload.alice_far_points:
        assert outlier in set(result.transmitted)


@given(seed=st.integers(min_value=0, max_value=10_000))
@_SETTINGS
def test_emd_protocol_deterministic_given_coins(seed):
    """Same coins + same inputs => identical transcript and output."""
    rng = np.random.default_rng(seed)
    space = HammingSpace(48)
    workload = noisy_replica_pair(
        space, n=10, k=1, close_radius=1, far_radius=16, rng=rng
    )
    protocol = EMDProtocol.for_instance(space, n=10, k=1)
    import random as pyrandom

    first = protocol.run(
        workload.alice, workload.bob, PublicCoins(seed),
        decode_rng=pyrandom.Random(1),
    )
    second = protocol.run(
        workload.alice, workload.bob, PublicCoins(seed),
        decode_rng=pyrandom.Random(1),
    )
    assert first.success == second.success
    assert first.total_bits == second.total_bits
    assert sorted(first.bob_final) == sorted(second.bob_final)
