"""Tests for the baseline reconcilers (naive, exact IBLT, quadtree)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metric import GridSpace, HammingSpace, emd
from repro.protocol import Channel
from repro.reconcile import (
    QuadtreeEMDProtocol,
    decode_point,
    encode_point,
    exact_iblt_reconcile,
    naive_full_transfer,
    naive_union_transfer,
)
from repro.workloads import noisy_replica_pair


class TestPointEncoding:
    def test_roundtrip(self, rng):
        space = GridSpace(side=37, dim=4, p=1.0)
        for point in space.sample(rng, 30):
            assert decode_point(space, encode_point(space, point)) == point

    def test_bijective_range(self):
        space = GridSpace(side=3, dim=2, p=1.0)
        encodings = {
            encode_point(space, (a, b)) for a in range(3) for b in range(3)
        }
        assert encodings == set(range(9))

    def test_rejects_out_of_range(self):
        space = GridSpace(side=4, dim=2, p=1.0)
        with pytest.raises(ValueError):
            encode_point(space, (4, 0))
        with pytest.raises(ValueError):
            decode_point(space, 16)
        with pytest.raises(ValueError):
            decode_point(space, -1)


class TestNaive:
    def test_full_transfer(self, rng):
        space = HammingSpace(16)
        points = space.sample(rng, 10)
        result = naive_full_transfer(space, points)
        assert result.bob_final == points
        assert result.rounds == 1
        # n * d bits plus the length varint.
        assert result.total_bits == 10 * 16 + 8

    def test_union_transfer(self, rng):
        space = HammingSpace(16)
        alice = space.sample(rng, 5)
        bob = space.sample(rng, 5)
        result = naive_union_transfer(space, alice, bob)
        assert set(alice) <= set(result.bob_final)
        assert set(bob) <= set(result.bob_final)

    def test_union_no_duplicates(self, rng):
        space = HammingSpace(16)
        shared = space.sample(rng, 4)
        result = naive_union_transfer(space, shared, shared)
        assert result.bob_final == shared


class TestExactIBLT:
    def test_small_difference_reconciles(self, coins, rng):
        space = GridSpace(side=64, dim=3, p=1.0)
        shared = space.sample(rng, 40)
        alice = shared + space.sample(rng, 2)
        bob = shared + space.sample(rng, 3)
        result = exact_iblt_reconcile(space, alice, bob, delta_bound=10, coins=coins)
        assert result.success
        assert set(result.bob_final) == set(alice) | set(bob)
        assert result.rounds == 2

    def test_identical_sets(self, coins, rng):
        space = HammingSpace(20)
        points = space.sample(rng, 25)
        result = exact_iblt_reconcile(space, points, points, delta_bound=4, coins=coins)
        assert result.success
        assert result.alice_only == []
        assert result.bob_only == []

    def test_communication_scales_with_bound_not_n(self, coins, rng):
        space = HammingSpace(20)
        small = exact_iblt_reconcile(
            space, space.sample(rng, 10), space.sample(rng, 10),
            delta_bound=5, coins=coins,
        )
        large_shared = space.sample(rng, 300)
        large = exact_iblt_reconcile(
            space, large_shared, large_shared, delta_bound=5, coins=coins
        )
        # Table size depends on delta_bound only; shipped points differ.
        assert large.total_bits <= small.total_bits + 64

    def test_oversized_difference_fails_gracefully(self, coins, rng):
        space = HammingSpace(20)
        alice = space.sample(rng, 50)
        bob = space.sample(rng, 50)
        result = exact_iblt_reconcile(space, alice, bob, delta_bound=2, coins=coins)
        assert not result.success
        assert result.bob_final == bob


class TestQuadtree:
    def _workload(self, seed=0):
        rng = np.random.default_rng(seed)
        space = GridSpace(side=2048, dim=2, p=2.0)
        wl = noisy_replica_pair(
            space, n=24, k=2, close_radius=2, far_radius=300, rng=rng
        )
        return space, wl

    def test_runs_and_improves_emd(self, coins):
        space, wl = self._workload()
        protocol = QuadtreeEMDProtocol(space, n=24, k=2)
        result = protocol.run(wl.alice, wl.bob, coins)
        assert result.success
        assert result.rounds == 1
        before = emd(space, wl.alice, wl.bob)
        after = emd(space, wl.alice, result.bob_final)
        assert after < before
        assert len(result.bob_final) == 24

    def test_preserves_size(self, coins):
        space, wl = self._workload(seed=5)
        result = QuadtreeEMDProtocol(space, n=24, k=2).run(wl.alice, wl.bob, coins)
        assert len(result.bob_final) == len(wl.bob)

    def test_identical_sets_decode_finest(self, coins, rng):
        space = GridSpace(side=256, dim=2, p=2.0)
        points = space.sample(rng, 20)
        protocol = QuadtreeEMDProtocol(space, n=20, k=1)
        result = protocol.run(points, points, coins)
        assert result.success
        # Identical sets cancel everywhere: the finest level decodes (it
        # is empty), recovering zero pairs.
        assert result.decoded_pairs == 0
        assert sorted(result.bob_final) == sorted(points)

    def test_rejects_hamming(self):
        with pytest.raises(TypeError):
            QuadtreeEMDProtocol(HammingSpace(8), n=10, k=1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            QuadtreeEMDProtocol(GridSpace(64, 2, 2.0), n=10, k=0)

    def test_channel_accounting(self, coins):
        space, wl = self._workload(seed=9)
        channel = Channel()
        result = QuadtreeEMDProtocol(space, n=24, k=2).run(
            wl.alice, wl.bob, coins, channel
        )
        assert channel.total_bits == result.total_bits
        assert channel.rounds == 1
