"""The unified sketch payload surface and the shared result protocol.

Every sketch type exposes the same ``to_payload()`` / ``from_payload()``
pair, byte-compatible with the older free-function serializers (now
aliases), and every reconciliation result implements the shared
:class:`~repro.reconcile.outcome.ReconcileOutcome` vocabulary — the API
surface the wire service multiplexes over.
"""

from __future__ import annotations

import pytest

from repro.hashing import PublicCoins
from repro.iblt import IBLT, RIBLT, MultisetIBLT
from repro.metric import HammingSpace
from repro.protocol import (
    BitReader,
    iblt_payload,
    multiset_payload,
    read_iblt_cells,
    read_multiset_cells,
    read_riblt_cells,
    riblt_payload,
)
from repro.reconcile import (
    StrataEstimator,
    exact_iblt_reconcile,
    outcome_metrics,
    read_strata,
    resilient_reconcile,
    strata_payload,
)
from repro.reconcile.outcome import ReconcileOutcome

COINS = PublicCoins(0xFACE)


class TestUnifiedPayloadSurface:
    def _iblt(self) -> IBLT:
        return IBLT(COINS, "pay-iblt", cells=24, q=3, key_bits=30)

    def _riblt(self) -> RIBLT:
        return RIBLT(COINS, "pay-riblt", cells=12, q=3, key_bits=30, dim=3, side=64)

    def _multiset(self) -> MultisetIBLT:
        return MultisetIBLT(COINS, "pay-ms", cells=24, q=3, key_bits=30)

    def _strata(self) -> StrataEstimator:
        return StrataEstimator(COINS, "pay-strata", strata=6, cells=12, key_bits=30)

    def test_iblt_roundtrip_matches_free_function(self):
        table = self._iblt()
        for key in range(13):
            table.insert(key)
        payload, bits = table.to_payload()
        legacy_payload, legacy_bits = iblt_payload(table)
        assert (payload, bits) == (legacy_payload, legacy_bits)

        loaded = self._iblt().from_payload(payload).decode()
        legacy = read_iblt_cells(BitReader(payload), self._iblt()).decode()
        assert loaded.success and legacy.success
        assert sorted(loaded.inserted) == list(range(13))
        assert sorted(legacy.inserted) == list(range(13))

    def test_riblt_roundtrip_matches_free_function(self):
        table = self._riblt()
        for key in range(7):
            table.insert(key, (key % 64, (2 * key) % 64, (3 * key) % 64))
        payload, bits = table.to_payload()
        assert (payload, bits) == riblt_payload(table)
        loaded = self._riblt().from_payload(payload)
        legacy = read_riblt_cells(BitReader(payload), self._riblt())
        assert sorted(k for k, _v in loaded.decode().inserted) == list(range(7))
        assert sorted(k for k, _v in legacy.decode().inserted) == list(range(7))

    def test_multiset_roundtrip_matches_free_function(self):
        table = self._multiset()
        for key in range(9):
            table.insert(key, multiplicity=1 + key % 3)
        payload, bits = table.to_payload()
        assert (payload, bits) == multiset_payload(table)
        loaded = self._multiset().from_payload(payload)
        legacy = read_multiset_cells(BitReader(payload), self._multiset())
        assert loaded.decode().success and legacy.decode().success

    def test_strata_aliases_are_byte_compatible(self):
        estimator = self._strata()
        for key in range(40):
            estimator.insert(key)
        payload, bits = estimator.to_payload()
        assert (payload, bits) == strata_payload(estimator)

        other = self._strata()
        for key in range(20, 60):
            other.insert(key)
        via_method = self._strata().from_payload(payload)
        via_alias = read_strata(payload, self._strata())
        assert (
            via_method.subtract(other).estimate()
            == via_alias.subtract(other).estimate()
        )


class TestReconcileOutcomeProtocol:
    def _run(self, reconcile, **kwargs):
        space = HammingSpace(24)
        coins = PublicCoins(31)
        rng = coins.numpy_rng("workload")
        shared = space.sample(rng, 40)
        alice = shared + space.sample(rng, 3)
        bob = shared + space.sample(rng, 3)
        result = reconcile(space, alice, bob, 12, coins, **kwargs)
        return result, alice, bob

    def test_exact_result_implements_outcome(self):
        result, alice, bob = self._run(exact_iblt_reconcile)
        assert isinstance(result, ReconcileOutcome)
        assert result.ok is result.success
        assert set(result.missing_at_bob) == set(result.alice_only)
        assert set(result.missing_at_alice) == set(result.bob_only)
        summary = result.transcript_summary()
        assert summary.total_bits == result.total_bits
        assert summary.rounds == result.rounds

    def test_resilient_result_implements_outcome(self):
        result, _, _ = self._run(resilient_reconcile)
        assert isinstance(result, ReconcileOutcome)
        assert result.ok

    def test_outcome_metrics_is_driver_uniform(self):
        result, alice, bob = self._run(exact_iblt_reconcile)
        metrics = outcome_metrics(result, alice, bob)
        assert metrics == {
            "success": True,
            "rounds": result.rounds,
            "bits": result.total_bits,
            "alice_only": len(result.alice_only),
            "bob_only": len(result.bob_only),
            "union_reached": True,
        }

    def test_outcome_metrics_on_duck_typed_result(self):
        """Any object with the outcome fields works — no isinstance checks."""

        class WireResult(ReconcileOutcome):
            success = True
            alice_only = []
            bob_only = []
            bob_final = []
            total_bits = 128
            rounds = 2

        metrics = outcome_metrics(WireResult(), [], [])
        assert metrics["bits"] == 128
        assert metrics["union_reached"] is True


class TestPayloadErrorContract:
    def test_from_payload_rejects_damage_with_typed_errors(self):
        from repro.errors import DecodeError

        table = IBLT(COINS, "pay-err", cells=24, q=3, key_bits=30)
        for key in range(11):
            table.insert(key)
        payload, _ = table.to_payload()
        shell = IBLT(COINS, "pay-err", cells=24, q=3, key_bits=30)
        with pytest.raises(DecodeError):
            shell.from_payload(payload[: len(payload) // 2])
