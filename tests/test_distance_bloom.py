"""Tests for distance-sensitive Bloom filters ([18])."""

from __future__ import annotations

import pytest

from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH, DistanceSensitiveBloomFilter, GridMLSH
from repro.metric import GridSpace, HammingSpace
from repro.workloads import perturb_point


def _hamming_filter(coins, expected_items=32, **kwargs):
    space = HammingSpace(128)
    family = BitSamplingMLSH(space, w=128.0)
    params = family.derived_lsh_params(r1=2.0, r2=40.0)
    return space, DistanceSensitiveBloomFilter(
        space, family, params, coins,
        groups=48, row_bits=512, expected_items=expected_items, **kwargs,
    )


class TestConstruction:
    def test_derived_parameters(self, coins):
        _, bloom = _hamming_filter(coins)
        derived = bloom.derived
        assert derived.groups == 48
        assert derived.close_row_probability > derived.far_row_probability
        assert 1 <= derived.threshold <= derived.groups

    def test_per_group_scales_with_expected_items(self, coins):
        _, small = _hamming_filter(coins, expected_items=4)
        _, big = _hamming_filter(coins, expected_items=1024)
        assert big.per_group > small.per_group

    def test_rejects_bad_shape(self, coins):
        space = HammingSpace(16)
        family = BitSamplingMLSH(space, w=16.0)
        params = family.derived_lsh_params(r1=1.0, r2=8.0)
        with pytest.raises(ValueError):
            DistanceSensitiveBloomFilter(space, family, params, coins, groups=0)
        with pytest.raises(ValueError):
            DistanceSensitiveBloomFilter(space, family, params, coins, row_bits=1)
        with pytest.raises(ValueError):
            DistanceSensitiveBloomFilter(
                space, family, params, coins, expected_items=0
            )

    def test_inseparable_parameters_rejected(self, coins):
        space = HammingSpace(16)
        family = BitSamplingMLSH(space, w=16.0)
        params = family.derived_lsh_params(r1=1.0, r2=8.0)
        # Tiny rows with many expected items: fill exceeds the close rate.
        with pytest.raises(ValueError):
            DistanceSensitiveBloomFilter(
                space, family, params, coins, row_bits=2, expected_items=1000
            )

    def test_size_bits(self, coins):
        _, bloom = _hamming_filter(coins)
        assert bloom.size_bits == 48 * 512


class TestQueries:
    def test_members_always_positive(self, coins, rng):
        space, bloom = _hamming_filter(coins)
        members = space.sample(rng, 25)
        bloom.add_all(members)
        assert all(bloom.query(member) for member in members)

    def test_close_queries_positive(self, coins, rng):
        space, bloom = _hamming_filter(coins)
        members = space.sample(rng, 25)
        bloom.add_all(members)
        positives = sum(
            bloom.query(perturb_point(space, member, 2, rng))
            for member in members
        )
        assert positives >= 23

    def test_far_queries_negative(self, coins, rng):
        space, bloom = _hamming_filter(coins)
        bloom.add_all(space.sample(rng, 25))
        # Random points are ~64 bits away from everything.
        negatives = sum(not bloom.query(p) for p in space.sample(rng, 30))
        assert negatives >= 28

    def test_empty_filter_rejects_everything(self, coins, rng):
        space, bloom = _hamming_filter(coins)
        assert not any(bloom.query(p) for p in space.sample(rng, 10))

    def test_grid_family(self, coins, rng):
        space = GridSpace(side=4096, dim=2, p=1.0)
        family = GridMLSH(space, w=512.0)
        params = family.derived_lsh_params(r1=4.0, r2=512.0)
        bloom = DistanceSensitiveBloomFilter(
            space, family, params, coins,
            groups=48, row_bits=512, expected_items=32,
        )
        members = space.sample(rng, 25)
        bloom.add_all(members)
        close_hits = sum(
            bloom.query(perturb_point(space, m, 4, rng)) for m in members
        )
        far = [
            p for p in space.sample(rng, 80)
            if min(space.distance(p, m) for m in members) > 512
        ][:20]
        far_hits = sum(bloom.query(p) for p in far)
        assert close_hits >= 23
        assert far_hits <= 2


class TestMerge:
    def test_merge_unions(self, rng):
        coins = PublicCoins(0xAB)
        space, bloom_a = _hamming_filter(coins)
        _, bloom_b = _hamming_filter(coins)
        members_a = space.sample(rng, 10)
        members_b = space.sample(rng, 10)
        bloom_a.add_all(members_a)
        bloom_b.add_all(members_b)
        bloom_a.merge(bloom_b)
        assert all(bloom_a.query(m) for m in members_a + members_b)
        assert len(bloom_a) == 20

    def test_merge_incompatible_rejected(self, coins):
        space, bloom = _hamming_filter(coins)
        family = BitSamplingMLSH(space, w=128.0)
        params = family.derived_lsh_params(r1=2.0, r2=40.0)
        other = DistanceSensitiveBloomFilter(
            space, family, params, coins, groups=16, row_bits=512,
            expected_items=32,
        )
        with pytest.raises(ValueError):
            bloom.merge(other)

    def test_count(self, coins, rng):
        space, bloom = _hamming_filter(coins)
        bloom.add(space.sample(rng, 1)[0])
        assert len(bloom) == 1
