"""Seeded fault injection: determinism, accounting, fault semantics."""

from __future__ import annotations

import pytest

from repro.protocol import (
    ALICE,
    BOB,
    Channel,
    FaultSpec,
    FaultyChannel,
    TranscriptSummary,
)


def _run_sequence(channel):
    deliveries = []
    deliveries.append(channel.send(ALICE, "m1", b"hello world", 86))
    deliveries.append(channel.send(BOB, "m2", b"\x01\x02\x03\x04" * 8))
    deliveries.append(channel.send(ALICE, "m3", b"x" * 40))
    deliveries.append(channel.send(BOB, "m4", b""))
    return deliveries


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(truncate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(max_flip_bits=0)

    def test_any_faults(self):
        assert not FaultSpec().any_faults
        assert FaultSpec(flip_rate=0.01).any_faults


class TestDeterminism:
    def test_same_coins_same_faults(self, coins):
        spec = FaultSpec(drop_rate=0.3, truncate_rate=0.3, flip_rate=0.2,
                         duplicate_rate=0.2)
        a = FaultyChannel(Channel(), spec, coins.child("f"))
        b = FaultyChannel(Channel(), spec, coins.child("f"))
        assert _run_sequence(a) == _run_sequence(b)
        assert a.events == b.events
        assert a.inner.messages == b.inner.messages

    def test_faults_depend_only_on_message_index(self, coins):
        """Payload bytes never influence the fault stream."""
        spec = FaultSpec(drop_rate=0.5, truncate_rate=0.5)
        a = FaultyChannel(Channel(), spec, coins.child("f"))
        b = FaultyChannel(Channel(), spec, coins.child("f"))
        for i in range(12):
            a.send(ALICE, "m", bytes([i]) * 20)
            b.send(ALICE, "m", bytes([255 - i]) * 20)
        assert [e.kinds for e in a.events] == [e.kinds for e in b.events]
        assert [e.index for e in a.events] == [e.index for e in b.events]

    def test_different_coins_differ(self, coins):
        spec = FaultSpec(drop_rate=0.5)
        a = FaultyChannel(Channel(), spec, coins.child("f", 1))
        b = FaultyChannel(Channel(), spec, coins.child("f", 2))
        for channel in (a, b):
            for _ in range(32):
                channel.send(ALICE, "m", b"payload")
        assert [e.index for e in a.events] != [e.index for e in b.events]


class TestFaultKinds:
    def test_no_faults_is_passthrough(self, coins):
        plain = Channel()
        wrapped = FaultyChannel(Channel(), FaultSpec(), coins)
        assert _run_sequence(plain) == _run_sequence(wrapped)
        assert wrapped.events == []
        assert wrapped.inner.messages == plain.messages
        assert wrapped.total_bits == plain.total_bits
        assert wrapped.rounds == plain.rounds
        assert wrapped.summary() == plain.summary()

    def test_drop_delivers_empty_but_charges_sender(self, coins):
        channel = FaultyChannel(Channel(), FaultSpec(drop_rate=1.0), coins)
        delivered = channel.send(ALICE, "m", b"hello", 40)
        assert delivered == b""
        assert channel.total_bits == 40  # the sender still paid
        (event,) = channel.events
        assert event.kinds == ("drop",)
        assert event.sent_bits == 40
        assert event.delivered_bits == 0

    def test_truncate_delivers_strict_prefix(self, coins):
        channel = FaultyChannel(Channel(), FaultSpec(truncate_rate=1.0), coins)
        payload = bytes(range(64))
        for _ in range(16):
            delivered = channel.send(ALICE, "m", payload)
            assert len(delivered) < len(payload)
            assert payload.startswith(delivered)
        assert all(e.kinds == ("truncate",) for e in channel.events)
        assert channel.total_bits == 16 * 8 * 64

    def test_flip_preserves_length_and_bounds_flips(self, coins):
        spec = FaultSpec(flip_rate=1.0, max_flip_bits=3)
        channel = FaultyChannel(Channel(), spec, coins)
        payload = b"\x00" * 32
        for _ in range(16):
            delivered = channel.send(ALICE, "m", payload)
            assert len(delivered) == len(payload)
            flipped = sum(bin(byte).count("1") for byte in delivered)
            # Flips can coincide and cancel, so <= drawn flips.
            assert 0 <= flipped <= 3
        assert all(e.kinds == ("flip",) and 1 <= e.flipped_bits <= 3
                   for e in channel.events)

    def test_duplicate_pays_twice_delivers_once(self, coins):
        channel = FaultyChannel(Channel(), FaultSpec(duplicate_rate=1.0), coins)
        delivered = channel.send(BOB, "m", b"abc", 20)
        assert delivered == b"abc"
        assert channel.rounds == 2
        assert channel.total_bits == 40
        (event,) = channel.events
        assert event.kinds == ("duplicate",)

    def test_empty_payload_never_truncates_or_flips(self, coins):
        spec = FaultSpec(truncate_rate=1.0, flip_rate=1.0)
        channel = FaultyChannel(Channel(), spec, coins)
        assert channel.send(ALICE, "m", b"") == b""
        assert channel.events == []


class TestFaultSummary:
    def test_counts_and_bits_lost(self, coins):
        spec = FaultSpec(drop_rate=0.4, truncate_rate=0.4, duplicate_rate=0.2)
        channel = FaultyChannel(Channel(), spec, coins.child("s"))
        for _ in range(40):
            channel.send(ALICE, "m", b"0123456789")
        summary = channel.fault_summary()
        assert summary.messages == 40
        assert summary.faulted == len(channel.events)
        assert summary.dropped > 0
        assert summary.truncated > 0
        assert summary.bits_lost > 0
        document = summary.to_dict()
        assert document["messages"] == 40
        assert document["dropped"] == summary.dropped

    def test_channel_validation_still_applies(self, coins):
        channel = FaultyChannel(Channel(), FaultSpec(), coins)
        with pytest.raises(ValueError):
            channel.send("carol", "m", b"x")
        with pytest.raises(ValueError):
            channel.send(ALICE, "m", b"x", 9)


class TestTranscriptSummaryMerge:
    def test_merge_accumulates(self):
        first = Channel()
        first.send(ALICE, "iblt", b"\xff" * 4, 30)
        first.send(BOB, "reply", b"\x01", 3)
        second = Channel()
        second.send(ALICE, "iblt", b"\xff" * 8, 61)
        merged = TranscriptSummary.merge([first.summary(), second.summary()])
        assert merged.total_bits == 94
        assert merged.rounds == 3
        assert merged.by_label == {"iblt": 91, "reply": 3}
        assert merged.by_sender == {"alice": 91, "bob": 3}

    def test_merge_empty_is_zero(self):
        merged = TranscriptSummary.merge([])
        assert merged.total_bits == 0
        assert merged.rounds == 0
        assert merged.by_label == {}
