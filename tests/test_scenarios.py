"""The scenario harness: determinism, backend parity, report schema."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import (
    DRIVERS,
    ScenarioRunner,
    ScenarioSpec,
    builtin_scenarios,
    render_report,
)

SEED = 7

#: A cheap cross-backend subset (the python backend is ~10x slower on the
#: sketch-heavy scenarios; these cover multiset, strata and XOR tables).
CROSS_BACKEND = (
    "setsofsets-patch",
    "strata-estimate",
    "exact-iblt-hamming",
    "iblt-load-peel",
)

GOLDENS = Path(__file__).parent / "goldens"


@pytest.fixture(scope="module")
def numpy_results():
    return ScenarioRunner(backend="numpy").run_all(builtin_scenarios(SEED))


class TestSpec:
    def test_builtin_matrix_covers_every_driver(self):
        protocols = {spec.protocol for spec in builtin_scenarios(0)}
        assert protocols == set(DRIVERS)

    def test_names_are_unique(self):
        names = [spec.name for spec in builtin_scenarios(0)]
        assert len(names) == len(set(names))

    def test_rng_depends_on_seed_and_name(self):
        a = ScenarioSpec("x", "gap", seed=1).rng().integers(0, 1 << 30)
        b = ScenarioSpec("x", "gap", seed=2).rng().integers(0, 1 << 30)
        c = ScenarioSpec("y", "gap", seed=1).rng().integers(0, 1 << 30)
        same = ScenarioSpec("x", "gap", seed=1).rng().integers(0, 1 << 30)
        assert a == same
        assert len({int(a), int(b), int(c)}) == 3

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            ScenarioRunner().run(ScenarioSpec("nope", "no-such-protocol"))

    def test_invalid_backend_rejected_eagerly(self):
        with pytest.raises(ValueError):
            ScenarioRunner(backend="fortran")
        with pytest.raises(ValueError):
            ScenarioRunner(decode_mode="bogus")


class TestRunner:
    def test_matrix_succeeds_on_numpy(self, numpy_results):
        failures = [r.spec.name for r in numpy_results if not r.success]
        assert failures == []
        assert all(r.backend == "numpy" for r in numpy_results)

    def test_metrics_are_json_safe(self, numpy_results):
        for result in numpy_results:
            round_tripped = json.loads(json.dumps(result.metrics))
            assert round_tripped == dict(result.metrics)
            assert result.metrics["bits"] > 0
            assert result.metrics["rounds"] >= 1
            assert result.wall_time_s >= 0.0

    def test_rerun_is_identical(self, numpy_results):
        """Same seed, same backend: metrics (not timings) repeat exactly."""
        runner = ScenarioRunner(backend="numpy")
        for previous in numpy_results[:3]:
            again = runner.run(previous.spec)
            assert again.metrics == previous.metrics

    def test_cross_backend_metrics_identical(self, numpy_results):
        by_name = {r.spec.name: r for r in numpy_results}
        runner = ScenarioRunner(backend="python")
        for spec in builtin_scenarios(SEED):
            if spec.name not in CROSS_BACKEND:
                continue
            python_result = runner.run(spec)
            assert python_result.backend == "python"
            assert python_result.metrics == by_name[spec.name].metrics

    def test_decode_mode_rescan_matches(self, numpy_results):
        by_name = {r.spec.name: r for r in numpy_results}
        runner = ScenarioRunner(backend="numpy", decode_mode="rescan")
        for spec in builtin_scenarios(SEED):
            if spec.name != "exact-iblt-hamming":
                continue
            rescan = runner.run(spec)
            assert rescan.metrics == by_name[spec.name].metrics
            assert rescan.decode_mode == "rescan"

    def test_resolved_decode_mode_recorded(self, numpy_results):
        assert all(r.decode_mode in ("frontier", "rescan") for r in numpy_results)
        forced = ScenarioRunner(backend="numpy", decode_mode="frontier")
        result = forced.run(builtin_scenarios(SEED)[5])
        assert result.decode_mode == "frontier"


class TestReport:
    def test_byte_identical_across_renders(self, numpy_results):
        first = render_report(numpy_results, seed=SEED)
        second = render_report(numpy_results, seed=SEED)
        assert first == second
        assert first.endswith("\n")

    def test_schema(self, numpy_results):
        document = json.loads(render_report(numpy_results, seed=SEED))
        assert document["schema"] == "repro.scenarios/v1"
        assert document["seed"] == SEED
        assert document["backends"] == ["numpy"]
        assert document["decode_modes"] == sorted({r.decode_mode for r in numpy_results})
        assert document["failures"] == []
        assert document["scenario_count"] == len(numpy_results)
        for entry in document["scenarios"]:
            assert set(entry) == {
                "name", "protocol", "seed", "backend", "decode_mode",
                "params", "metrics",
            }
            assert entry["decode_mode"] in ("frontier", "rescan")
            assert "wall_time_s" not in entry

    def test_matches_committed_golden(self, numpy_results):
        """The in-repo golden pins the full report byte-for-byte.

        CI's goldens-drift job enforces the same invariant through the
        CLI; this test catches drift at ``pytest`` time.  The fixture
        leaves the decode mode at the process default, so compare against
        the matching golden.
        """
        from repro.iblt.backend import default_decode_mode

        golden = GOLDENS / f"scenarios-numpy-{default_decode_mode()}.json"
        report = render_report(numpy_results, seed=SEED)
        assert report == golden.read_text(), (
            "scenario report drifted from the golden; if the change is "
            "intentional, re-baseline with: PYTHONPATH=src python -m repro.cli "
            f"scenarios --seed {SEED} --backend numpy --decode-mode "
            f"{default_decode_mode()} --output {golden}"
        )

    def test_timings_are_opt_in(self, numpy_results):
        document = json.loads(
            render_report(numpy_results, seed=SEED, include_timings=True)
        )
        assert all("wall_time_s" in entry for entry in document["scenarios"])
