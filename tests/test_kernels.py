"""The compiled kernel layer: probe, dispatch, and bit-identity.

numba is an *optional* dependency and is absent from the default test
environment, so these tests exercise the full dispatch surface by
forcing the capability probe on (``compat.HAVE_NUMBA = True``): the
kernels are plain Python functions when numba is missing — the
``@njit`` decorator degrades to identity — so every dispatch site,
argument-marshalling path and control-flow replay runs exactly as it
would compiled, minus the machine code.  CI's compiled-kernels leg runs
this same suite (and the rest of tier 1) with real numba installed.

The load-bearing property throughout is *bit-identity*: for any table
state, ``REPRO_KERNELS=compiled`` and ``REPRO_KERNELS=numpy`` must
produce identical decode output, identical residual cell state, and
identical rendered reports.
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.hashing.mersenne import (
    MERSENNE_P,
    affine_mod_p,
    mul_mod_p,
    quadratic_mod_p,
)
from repro.iblt import (
    IBLT,
    RIBLT,
    MultisetIBLT,
    cells_for_differences,
    riblt_cells_for_pairs,
)
from repro.iblt import _kernels
from repro.iblt._kernels import compat
from repro.iblt.backend import KERNEL_MODES, default_kernel_mode, resolve_kernel_mode
from repro.iblt.frontier import PEEL_TAIL_THRESHOLD

SEED = 20260807

COINS = PublicCoins(SEED)


@pytest.fixture
def forced_kernels(monkeypatch):
    """Force the probe's availability bit on and request compiled mode.

    Without numba the kernels stay pure Python, so this exercises the
    whole dispatch layer (probe, argument marshalling, control-flow
    replay) with interpreter-speed kernels.
    """
    monkeypatch.setattr(compat, "HAVE_NUMBA", True)
    monkeypatch.setenv("REPRO_KERNELS", "compiled")
    _kernels.reset_probe_cache()
    yield _kernels
    _kernels.reset_probe_cache()


@pytest.fixture
def numpy_kernels(monkeypatch):
    """Pin the fallback mode regardless of the ambient environment."""
    monkeypatch.setenv("REPRO_KERNELS", "numpy")
    _kernels.reset_probe_cache()
    yield
    _kernels.reset_probe_cache()


def _with_mode(monkeypatch, mode: str, availability: bool, fn):
    """Run ``fn()`` with the probe pinned to one (mode, availability)."""
    monkeypatch.setattr(compat, "HAVE_NUMBA", availability)
    monkeypatch.setenv("REPRO_KERNELS", mode)
    _kernels.reset_probe_cache()
    try:
        return fn()
    finally:
        _kernels.reset_probe_cache()


# -- probe and mode resolution ----------------------------------------------


class TestProbe:
    def test_default_mode_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert default_kernel_mode() == "auto"

    def test_env_is_stripped_and_lowered(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "  Compiled ")
        assert default_kernel_mode() == "compiled"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "turbo")
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            default_kernel_mode()

    def test_invalid_explicit_mode_rejected(self):
        with pytest.raises(ValueError, match="kernel mode"):
            resolve_kernel_mode("turbo")

    def test_modes_tuple(self):
        assert KERNEL_MODES == ("auto", "compiled", "numpy")

    def test_compiled_without_numba_raises(self, monkeypatch):
        monkeypatch.setattr(compat, "HAVE_NUMBA", False)
        _kernels.reset_probe_cache()
        with pytest.raises(RuntimeError, match="repro\\[fast\\]"):
            resolve_kernel_mode("compiled")
        _kernels.reset_probe_cache()

    def test_auto_degrades_without_numba(self, monkeypatch):
        assert _with_mode(monkeypatch, "auto", False, _kernels.active) is None
        assert _with_mode(monkeypatch, "auto", False, lambda: resolve_kernel_mode()) == "numpy"

    def test_numpy_mode_wins_even_when_available(self, monkeypatch):
        assert _with_mode(monkeypatch, "numpy", True, _kernels.active) is None

    def test_forced_probe_activates(self, forced_kernels):
        assert forced_kernels.active() is forced_kernels
        assert forced_kernels.require() is forced_kernels

    def test_self_test_failure_degrades_auto_and_fails_compiled(self, monkeypatch):
        monkeypatch.setattr(compat, "HAVE_NUMBA", True)
        _kernels.reset_probe_cache()
        monkeypatch.setattr(
            _kernels, "_run_self_test", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        monkeypatch.setenv("REPRO_KERNELS", "auto")
        assert _kernels.active() is None
        with pytest.raises(RuntimeError, match="self-test"):
            resolve_kernel_mode("compiled")
        _kernels.reset_probe_cache()

    def test_kernel_status_reports_error_not_raise(self, monkeypatch):
        monkeypatch.setattr(compat, "HAVE_NUMBA", False)
        monkeypatch.setenv("REPRO_KERNELS", "compiled")
        _kernels.reset_probe_cache()
        status = _kernels.kernel_status()
        assert status["requested"] == "compiled"
        assert str(status["resolved"]).startswith("error:")
        assert status["numba"] is None
        assert set(status["kernels"]) == set(_kernels.KERNEL_NAMES)
        assert all(state == "python" for state in status["kernels"].values())
        _kernels.reset_probe_cache()

    def test_status_resolves_compiled_when_forced(self, forced_kernels):
        status = forced_kernels.kernel_status()
        assert (status["requested"], status["resolved"]) == ("compiled", "compiled")


# -- Mersenne batch kernels --------------------------------------------------


class TestMersenneParity:
    """Seeded fuzz: kernel batch ops vs Python-int modular arithmetic."""

    @pytest.fixture(scope="class")
    def field_batches(self):
        rng = np.random.default_rng(SEED)
        # Mostly uniform field elements, with the edge cases planted.
        edge = [0, 1, 2, MERSENNE_P - 1, MERSENNE_P - 2, (1 << 61) - 2]
        draws = rng.integers(0, MERSENNE_P, size=250, dtype=np.uint64)
        return np.concatenate([np.array(edge, dtype=np.uint64), draws])

    def test_mul_vector_vector(self, forced_kernels, field_batches):
        xs = field_batches
        got = mul_mod_p(xs, xs[::-1].copy())
        expected = [(int(a) * int(b)) % MERSENNE_P for a, b in zip(xs, xs[::-1])]
        assert got.tolist() == expected

    def test_mul_scalar_vector_both_orders(self, forced_kernels, field_batches):
        scalar = np.uint64(0x0DDB_A11C_0FFE_E000 % MERSENNE_P)
        expected = [(int(scalar) * int(x)) % MERSENNE_P for x in field_batches]
        assert mul_mod_p(scalar, field_batches).tolist() == expected
        assert mul_mod_p(field_batches, scalar).tolist() == expected

    def test_affine_shapes(self, forced_kernels, field_batches):
        xs = field_batches
        a = np.uint64(987_654_321_123_456_789 % MERSENNE_P)
        b = np.uint64(123_456_789_987_654_321 % MERSENNE_P)
        ssv = affine_mod_p(a, b, xs)
        assert ssv.tolist() == [
            (int(a) * int(x) + int(b)) % MERSENNE_P for x in xs
        ]
        svv = affine_mod_p(a, xs[::-1].copy(), xs)
        assert svv.tolist() == [
            (int(a) * int(x) + int(o)) % MERSENNE_P for o, x in zip(xs[::-1], xs)
        ]
        vvs = affine_mod_p(xs, xs[::-1].copy(), np.uint64(42))
        assert vvs.tolist() == [
            (int(c) * 42 + int(o)) % MERSENNE_P for c, o in zip(xs, xs[::-1])
        ]

    def test_quadratic(self, forced_kernels, field_batches):
        a2, a1, b = (x % MERSENNE_P for x in (0xDEAD_BEEF_CAFE, 0xF00D_4B1D, 0x7E57))
        got = quadratic_mod_p(a2, a1, b, field_batches)
        assert got.tolist() == [
            (a2 * int(x) * int(x) + a1 * int(x) + b) % MERSENNE_P
            for x in field_batches
        ]

    def test_cell_index_matrix(self, forced_kernels, field_batches):
        kernels = forced_kernels.active()
        rng = np.random.default_rng(SEED + 1)
        a = rng.integers(1, MERSENNE_P, size=3, dtype=np.uint64)
        b = rng.integers(0, MERSENNE_P, size=3, dtype=np.uint64)
        block_size = 37
        got = kernels.cell_index_matrix(a, b, field_batches, np.uint64(block_size))
        assert got.dtype == np.int64
        expected = [
            [
                j * block_size
                + ((int(a[j]) * int(x) + int(b[j])) % MERSENNE_P) % block_size
                for x in field_batches
            ]
            for j in range(3)
        ]
        assert got.tolist() == expected

    def test_dispatch_matches_fallback_bitwise(self, monkeypatch, field_batches):
        """The same call, probe on vs probe off, is bit-identical."""
        xs = field_batches
        a = np.uint64(55_555 % MERSENNE_P)
        b = np.uint64(77_777 % MERSENNE_P)

        def sample():
            return (
                mul_mod_p(xs, xs[::-1].copy()).tolist(),
                affine_mod_p(a, b, xs).tolist(),
                quadratic_mod_p(int(a), int(b), 99, xs).tolist(),
            )

        compiled = _with_mode(monkeypatch, "compiled", True, sample)
        fallback = _with_mode(monkeypatch, "numpy", False, sample)
        assert compiled == fallback


# -- decode parity: IBLT scalar tail ----------------------------------------


def _iblt_pair(differences: int, *, n_common: int = 400, seed: int = SEED):
    rng = random.Random(seed)
    cells = cells_for_differences(2 * differences)
    table_a = IBLT(COINS, "kernel-iblt", cells=cells, q=3, key_bits=55, backend="numpy")
    table_b = table_a._empty_clone()
    common = rng.sample(range(1 << 55), n_common)
    extra = rng.sample(range(1 << 55), 2 * differences)
    table_a.insert_batch(np.array(common + extra[:differences], dtype=np.uint64))
    table_b.insert_batch(np.array(common + extra[differences:], dtype=np.uint64))
    return table_a.subtract(table_b)


class TestIBLTTailParity:
    @pytest.mark.parametrize(
        "differences",
        [
            8,  # entire decode below the tail threshold: all-scalar rounds
            PEEL_TAIL_THRESHOLD,  # frontier starts at the switch boundary
            3 * PEEL_TAIL_THRESHOLD,  # vectorised rounds first, tail last
        ],
    )
    def test_decode_parity(self, monkeypatch, differences):
        def decode():
            result = _iblt_pair(differences).decode()
            return (result.success, sorted(result.inserted), sorted(result.deleted))

        compiled = _with_mode(monkeypatch, "compiled", True, decode)
        fallback = _with_mode(monkeypatch, "numpy", False, decode)
        assert compiled[0] is True
        assert compiled == fallback

    def test_residual_state_parity_on_failure(self, monkeypatch):
        """An over-loaded table leaves a 2-core: both modes must strand
        the *same* cells with the same contents."""

        def decode():
            rng = random.Random(3)
            table_a = IBLT(COINS, "kernel-core", cells=24, q=3, key_bits=55,
                           backend="numpy")
            table_b = table_a._empty_clone()
            table_a.insert_batch(
                np.array(rng.sample(range(1 << 55), 40), dtype=np.uint64)
            )
            delta = table_a.subtract(table_b)
            result = delta.decode()
            return (
                result.success,
                delta.counts.tolist(),
                delta.key_xor.tolist(),
                delta.check_xor.tolist(),
            )

        compiled = _with_mode(monkeypatch, "compiled", True, decode)
        fallback = _with_mode(monkeypatch, "numpy", False, decode)
        assert compiled == fallback
        assert compiled[0] is False


# -- decode parity: RIBLT / Multiset FIFO peel -------------------------------


def _riblt_delta(*, seed: int = SEED, duplicates: int = 3):
    rng = random.Random(seed)
    table_a = RIBLT(
        COINS, "kernel-riblt", cells=riblt_cells_for_pairs(90), q=3,
        key_bits=48, dim=4, side=256,
    )
    table_b = table_a._empty_clone()
    common = [
        (key, tuple(rng.randrange(256) for _ in range(4)))
        for key in rng.sample(range(1 << 48), 300)
    ]
    extra_a = [
        (key, tuple(rng.randrange(256) for _ in range(4)))
        for key in rng.sample(range(1 << 48), 25)
    ]
    # Duplicate pairs: the same (key, value) inserted more than once, so
    # the peel must recover multiplicities > 1 through value division.
    for index in range(duplicates):
        extra_a.append(extra_a[index])
    extra_b = [
        (key, tuple(rng.randrange(256) for _ in range(4)))
        for key in rng.sample(range(1 << 48), 20)
    ]
    table_a.insert_pairs(common + extra_a)
    table_b.insert_pairs(common + extra_b)
    return table_a.subtract(table_b)


class TestRIBLTParity:
    def test_fifo_parity_against_both_interpreter_engines(self, monkeypatch):
        def decode(engine):
            def run():
                result = _riblt_delta().decode(rng=random.Random(99), engine=engine)
                return (
                    result.success,
                    result.inserted,
                    result.deleted,
                    result.peel_rounds,
                )
            return run

        compiled = _with_mode(monkeypatch, "compiled", True, decode(None))
        explicit = _with_mode(monkeypatch, "compiled", True, decode("compiled"))
        cached = _with_mode(monkeypatch, "numpy", False, decode("cached"))
        scalar = _with_mode(monkeypatch, "numpy", False, decode("scalar"))
        assert compiled[0] is True
        # Value-error propagation order (Lemma 3.10's FIFO peel) pins not
        # just the set of recovered pairs but their *order* and the round
        # count — all three must agree exactly.
        assert compiled == explicit == cached == scalar

    def test_residual_state_parity(self, monkeypatch):
        def decode():
            delta = _riblt_delta()
            delta.decode(rng=random.Random(99))
            return (delta.counts, delta.key_sum, delta.check_sum, delta.value_sum)

        compiled = _with_mode(monkeypatch, "compiled", True, decode)
        fallback = _with_mode(monkeypatch, "numpy", False, decode)
        assert compiled == fallback

    def test_engine_compiled_requires_kernels(self, monkeypatch):
        monkeypatch.setattr(compat, "HAVE_NUMBA", False)
        _kernels.reset_probe_cache()
        with pytest.raises(RuntimeError, match="repro\\[fast\\]"):
            _riblt_delta().decode(engine="compiled")
        _kernels.reset_probe_cache()

    def test_invalid_engine_message_lists_compiled(self):
        with pytest.raises(ValueError, match="compiled"):
            _riblt_delta().decode(engine="warp")

    def test_overflow_bails_to_interpreter(self, forced_kernels, monkeypatch):
        """A value_sum cell at the kernel's magnitude bound must make the
        compiled path bail *before* touching table state, leaving decode
        to the interpreter — bit-identical to the fallback mode."""
        delta = _riblt_delta()
        delta.value_sum[0] = list(delta.value_sum[0])
        delta.value_sum[0] = [1 << 62] + list(delta.value_sum[0])[1:]
        assert delta._decode_compiled(forced_kernels, random.Random(1)) is None

        huge = _riblt_delta()
        huge.value_sum[1] = [-(1 << 70)] + list(huge.value_sum[1])[1:]
        assert huge._decode_compiled(forced_kernels, random.Random(1)) is None

        def decode():
            table = _riblt_delta()
            table.value_sum[0] = [1 << 62] + list(table.value_sum[0])[1:]
            result = table.decode(rng=random.Random(99))
            return (result.success, result.inserted, result.deleted)

        compiled = _with_mode(monkeypatch, "compiled", True, decode)
        fallback = _with_mode(monkeypatch, "numpy", False, decode)
        assert compiled == fallback


class TestMultisetParity:
    def test_multiplicity_parity(self, monkeypatch):
        def decode():
            rng = random.Random(5)
            table_a = MultisetIBLT(COINS, "kernel-mset", cells=256, backend="numpy")
            table_b = table_a._empty_clone()
            keys = rng.sample(range(1 << 55), 60)
            for key in keys[:40]:
                table_a.insert(key, rng.randrange(1, 6))
            for key in keys[20:]:
                table_b.insert(key, rng.randrange(1, 6))
            delta = table_a.subtract(table_b)
            result = delta.decode()
            # Insertion *order* of the multiplicity dict is part of the
            # contract (it is the peel order), so compare items, not sets.
            return (result.success, list(result.multiplicities.items()))

        compiled = _with_mode(monkeypatch, "compiled", True, decode)
        fallback = _with_mode(monkeypatch, "numpy", False, decode)
        assert compiled[0] is True
        assert compiled == fallback


# -- auto-degrade without numba ---------------------------------------------


class TestAutoDegrade:
    def test_degrades_cleanly_when_numba_import_is_blocked(self, tmp_path):
        """End-to-end in a subprocess: a meta-path blocker makes ``import
        numba`` raise, REPRO_KERNELS=auto must silently use the fallback
        and decode correctly."""
        script = tmp_path / "degrade.py"
        script.write_text(
            "\n".join(
                [
                    "import sys",
                    "class _Block:",
                    "    def find_spec(self, name, path=None, target=None):",
                    "        if name == 'numba' or name.startswith('numba.'):",
                    "            raise ImportError('numba blocked for test')",
                    "        return None",
                    "sys.meta_path.insert(0, _Block())",
                    "import os",
                    "os.environ['REPRO_KERNELS'] = 'auto'",
                    "import random",
                    "import numpy as np",
                    "from repro.hashing import PublicCoins",
                    "from repro.iblt import IBLT, _kernels, cells_for_differences",
                    "from repro.iblt._kernels import compat",
                    "assert compat.HAVE_NUMBA is False",
                    "assert _kernels.active() is None",
                    "rng = random.Random(1)",
                    "coins = PublicCoins(9)",
                    "a = IBLT(coins, 't', cells=cells_for_differences(32))",
                    "b = a._empty_clone()",
                    "keys = rng.sample(range(1 << 55), 216)",
                    "a.insert_batch(np.array(keys[:200], dtype=np.uint64))",
                    "b.insert_batch(np.array(keys[16:], dtype=np.uint64))",
                    "result = a.subtract(b).decode()",
                    "assert result.success and result.difference_count == 32",
                    "print('DEGRADE-OK')",
                ]
            )
        )
        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "DEGRADE-OK" in proc.stdout


# -- threaded sweeps ---------------------------------------------------------


class TestThreadedSweeps:
    @pytest.fixture(scope="class")
    def tiny_sweep(self):
        from repro.experiments import SweepSpec

        return SweepSpec(
            name="kernel-sweep",
            protocol="iblt-load",
            axes={"cells": (48, 96)},
            base_params={"n": 64, "differences": 12},
            trials=3,
        )

    def test_pool_validation(self):
        from repro.experiments import SweepRunner

        with pytest.raises(ValueError, match="pool"):
            SweepRunner(pool="fibers")

    def test_auto_resolution(self, forced_kernels, monkeypatch):
        from repro.experiments import SweepRunner

        runner = SweepRunner(jobs=2)
        try:
            # Compiled kernels active: always threads.
            assert runner._resolve_pool_mode(1000) == "thread"
            monkeypatch.setenv("REPRO_KERNELS", "numpy")
            _kernels.reset_probe_cache()
            # Fallback: threads only for small campaigns.
            assert runner._resolve_pool_mode(8) == "thread"
            assert runner._resolve_pool_mode(1000) == "process"
        finally:
            runner.close()
        from repro.experiments.sweeps import SweepRunner as _SR

        assert _SR(jobs=1, pool="thread")._resolve_pool_mode(8) == "serial"

    def test_reports_byte_identical_across_pools(self, tiny_sweep, numpy_kernels):
        from repro.experiments import SweepRunner, render_sweep_report

        reports = {}
        for pool in ("serial", "thread", "process"):
            with SweepRunner(backend="numpy", jobs=2, pool=pool) as runner:
                points = runner.run(tiny_sweep, seed=SEED)
                reports[pool] = render_sweep_report(tiny_sweep, points, seed=SEED)
        assert reports["serial"] == reports["thread"] == reports["process"]

    def test_thread_pool_with_forced_kernels_matches_serial(
        self, tiny_sweep, forced_kernels
    ):
        from repro.experiments import SweepRunner, render_sweep_report

        with SweepRunner(backend="numpy", jobs=1) as serial, SweepRunner(
            backend="numpy", jobs=2, pool="thread"
        ) as threaded:
            serial_report = render_sweep_report(
                tiny_sweep, serial.run(tiny_sweep, seed=SEED), seed=SEED
            )
            threaded_report = render_sweep_report(
                tiny_sweep, threaded.run(tiny_sweep, seed=SEED), seed=SEED
            )
        assert serial_report == threaded_report

    def test_thread_mode_restores_env(self, tiny_sweep, numpy_kernels, monkeypatch):
        import os

        from repro.experiments import SweepRunner

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with SweepRunner(backend="python", jobs=2, pool="thread") as runner:
            points = runner.run(tiny_sweep, seed=SEED)
        assert "REPRO_BACKEND" not in os.environ
        assert all(
            result.backend == "python"
            for point in points
            for result in point.results
        )


# -- CLI ---------------------------------------------------------------------


class TestKernelsCLI:
    def test_kernels_subcommand_fallback(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_KERNELS", "auto")
        _kernels.reset_probe_cache()
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "resolved mode" in out and "numpy" in out
        _kernels.reset_probe_cache()

    def test_kernels_subcommand_errors_nonzero(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setattr(compat, "HAVE_NUMBA", False)
        monkeypatch.setenv("REPRO_KERNELS", "compiled")
        _kernels.reset_probe_cache()
        assert main(["kernels"]) == 1
        assert "error" in capsys.readouterr().out
        _kernels.reset_probe_cache()

    def test_sweep_pool_flag(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        _kernels.reset_probe_cache()
        out_thread = tmp_path / "thread.json"
        out_serial = tmp_path / "serial.json"
        base = ["sweep", "--campaign", "iblt-threshold", "--seed", "3",
                "--trials", "1"]
        assert main(base + ["--jobs", "2", "--pool", "thread",
                            "--output", str(out_thread)]) == 0
        assert main(base + ["--pool", "serial", "--output", str(out_serial)]) == 0
        assert out_thread.read_bytes() == out_serial.read_bytes()
        _kernels.reset_probe_cache()
