"""Tests for the public-coin and universal-hashing substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    MERSENNE_P,
    Checksum,
    PairwiseHash,
    PrefixHasher,
    PublicCoins,
    VectorHash,
    derive_seed,
    fold_to_bits,
)


class TestPublicCoins:
    def test_same_seed_same_streams(self):
        a, b = PublicCoins(7), PublicCoins(7)
        assert a.integers("s", low=0, high=1000, size=10).tolist() == b.integers(
            "s", low=0, high=1000, size=10
        ).tolist()

    def test_different_seed_different_streams(self):
        a, b = PublicCoins(7), PublicCoins(8)
        assert a.integers("s", low=0, high=1 << 40, size=8).tolist() != b.integers(
            "s", low=0, high=1 << 40, size=8
        ).tolist()

    def test_different_labels_independent(self):
        coins = PublicCoins(3)
        assert coins.integers("a", low=0, high=1 << 40, size=8).tolist() != (
            coins.integers("b", low=0, high=1 << 40, size=8).tolist()
        )

    def test_draw_order_does_not_matter(self):
        first = PublicCoins(5)
        x1 = first.uniform("x", size=4)
        y1 = first.uniform("y", size=4)
        second = PublicCoins(5)
        y2 = second.uniform("y", size=4)
        x2 = second.uniform("x", size=4)
        assert np.allclose(x1, x2)
        assert np.allclose(y1, y2)

    def test_child_coins_deterministic(self):
        a = PublicCoins(1).child("proto", 3)
        b = PublicCoins(1).child("proto", 3)
        assert a == b
        assert a != PublicCoins(1).child("proto", 4)

    def test_derive_seed_stable(self):
        assert derive_seed(10, "x", 1) == derive_seed(10, "x", 1)
        assert derive_seed(10, "x", 1) != derive_seed(10, "x", 2)

    def test_equality_and_hash(self):
        assert PublicCoins(4) == PublicCoins(4)
        assert hash(PublicCoins(4)) == hash(PublicCoins(4))
        assert PublicCoins(4) != PublicCoins(5)

    def test_gaussians_shape(self):
        assert PublicCoins(0).gaussians("g", size=(3, 4)).shape == (3, 4)


class TestFoldToBits:
    def test_wide_passthrough(self):
        assert fold_to_bits(12345, 61) == 12345

    def test_truncation(self):
        assert fold_to_bits(0b1111, 2) == 0b11

    def test_zero(self):
        assert fold_to_bits(0, 8) == 0


class TestPairwiseHash:
    def test_deterministic_across_instances(self, coins):
        h1 = PairwiseHash(coins, "t", bits=32)
        h2 = PairwiseHash(coins, "t", bits=32)
        for x in [0, 1, 999, MERSENNE_P - 1, MERSENNE_P + 5]:
            assert h1(x) == h2(x)

    def test_range(self, coins):
        h = PairwiseHash(coins, "r", bits=16)
        for x in range(100):
            assert 0 <= h(x) < (1 << 16)

    def test_distinct_labels_differ(self, coins):
        h1 = PairwiseHash(coins, "a", bits=61)
        h2 = PairwiseHash(coins, "b", bits=61)
        assert any(h1(x) != h2(x) for x in range(16))

    def test_hash_array_matches_scalar(self, coins):
        h = PairwiseHash(coins, "arr", bits=48)
        xs = np.array([0, 5, 12345, 1 << 40], dtype=np.int64)
        assert h.hash_array(xs).tolist() == [h(int(x)) for x in xs]

    def test_hash_array_exact_uint64(self, coins):
        """The limb-split uint64 path returns a native unsigned array."""
        h = PairwiseHash(coins, "dtype", bits=61)
        out = h.hash_array(np.arange(16, dtype=np.uint64))
        assert out.dtype == np.uint64

    @pytest.mark.parametrize("bits", [16, 40, 61])
    def test_hash_array_matches_scalar_edges(self, coins, bits):
        """Regression: batch evaluation must agree with ``__call__`` on
        random 61-bit inputs *and* the field edge values."""
        h = PairwiseHash(coins, ("edges", bits), bits=bits)
        rng = np.random.default_rng(0xED6E)
        xs = np.concatenate(
            [
                rng.integers(0, 1 << 61, size=2000, dtype=np.int64).astype(np.uint64),
                np.array(
                    [0, 1, MERSENNE_P - 1, (1 << 61) - 1, 1 << 61, (1 << 64) - 1],
                    dtype=np.uint64,
                ),
            ]
        )
        assert h.hash_array(xs).tolist() == [h(int(x)) for x in xs.tolist()]

    def test_hash_array_matches_scalar_negative(self, coins):
        """Signed inputs (e.g. p-stable LSH cells) use floored modulo."""
        h = PairwiseHash(coins, "neg", bits=61)
        xs = np.array([-1, -2, -MERSENNE_P, -(1 << 62), -(1 << 63)], dtype=np.int64)
        assert h.hash_array(xs).tolist() == [h(int(x)) for x in xs.tolist()]

    def test_rejects_bad_bits(self, coins):
        with pytest.raises(ValueError):
            PairwiseHash(coins, "x", bits=0)
        with pytest.raises(ValueError):
            PairwiseHash(coins, "x", bits=62)

    def test_uniformity_rough(self, coins):
        h = PairwiseHash(coins, "u", bits=8)
        buckets = [0] * 256
        for x in range(10_000):
            buckets[h(x)] += 1
        # Each bucket expects ~39; allow generous slack.
        assert max(buckets) < 120
        assert min(buckets) > 5


class TestVectorHash:
    def test_deterministic(self, coins):
        h1 = VectorHash(coins, "v", arity=4, bits=32)
        h2 = VectorHash(coins, "v", arity=4, bits=32)
        assert h1([1, 2, 3, 4]) == h2([1, 2, 3, 4])

    def test_arity_enforced(self, coins):
        h = VectorHash(coins, "v", arity=3)
        with pytest.raises(ValueError):
            h([1, 2])

    def test_sensitive_to_position(self, coins):
        h = VectorHash(coins, "v", arity=2, bits=61)
        assert h([1, 2]) != h([2, 1])

    def test_hash_matrix(self, coins):
        h = VectorHash(coins, "m", arity=3, bits=40)
        matrix = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.int64)
        assert h.hash_matrix(matrix) == [h([1, 2, 3]), h([4, 5, 6])]

    def test_hash_rows_matches_scalar(self, coins):
        h = VectorHash(coins, "rows", arity=5, bits=50)
        rng = np.random.default_rng(0x0BAD)
        matrix = rng.integers(-(1 << 62), 1 << 62, size=(500, 5), dtype=np.int64)
        assert h.hash_rows(matrix).tolist() == [
            h([int(v) for v in row]) for row in matrix.tolist()
        ]

    def test_hash_matrix_shape_check(self, coins):
        h = VectorHash(coins, "m", arity=3)
        with pytest.raises(ValueError):
            h.hash_matrix(np.zeros((2, 4), dtype=np.int64))


class TestPrefixHasher:
    def test_prefix_consistency(self, coins):
        hasher = PrefixHasher(coins, "p", bits=48)
        values = [7, 100, 3, 9, 12, 55]
        state = hasher.initial_state()
        digests = []
        for value in values:
            state = hasher.extend(state, value)
            digests.append(hasher.digest(state))
        for length in range(1, len(values) + 1):
            assert hasher.hash_prefix(values, length) == digests[length - 1]

    def test_prefix_digests_one_pass(self, coins):
        hasher = PrefixHasher(coins, "p2", bits=48)
        values = list(range(50))
        lengths = [1, 2, 4, 8, 16, 32, 50]
        batch = hasher.prefix_digests(values, lengths)
        single = [hasher.hash_prefix(values, length) for length in lengths]
        assert batch == single

    def test_prefix_digests_rejects_decreasing(self, coins):
        hasher = PrefixHasher(coins, "p3")
        with pytest.raises(ValueError):
            hasher.prefix_digests([1, 2, 3], [2, 1])

    def test_prefix_digests_rejects_too_long(self, coins):
        hasher = PrefixHasher(coins, "p4")
        with pytest.raises(ValueError):
            hasher.prefix_digests([1, 2, 3], [4])

    def test_different_prefixes_differ(self, coins):
        hasher = PrefixHasher(coins, "p5", bits=61)
        a = hasher.hash_prefix([1, 2, 3], 3)
        b = hasher.hash_prefix([1, 2, 4], 3)
        assert a != b

    def test_prefix_digests_many_matches_rows(self, coins):
        hasher = PrefixHasher(coins, "pm", bits=52)
        rng = np.random.default_rng(0xFACE)
        values = rng.integers(-(1 << 61), 1 << 61, size=(200, 24), dtype=np.int64)
        lengths = [1, 3, 3, 10, 24]
        batch = hasher.prefix_digests_many(values, lengths)
        assert batch.shape == (200, len(lengths))
        for row in range(200):
            assert batch[row].tolist() == hasher.prefix_digests(
                [int(v) for v in values[row]], lengths
            )

    def test_prefix_digests_many_rejects_bad_lengths(self, coins):
        hasher = PrefixHasher(coins, "pm2")
        values = np.zeros((4, 6), dtype=np.int64)
        with pytest.raises(ValueError):
            hasher.prefix_digests_many(values, [3, 2])
        with pytest.raises(ValueError):
            hasher.prefix_digests_many(values, [7])

    @given(st.lists(st.integers(min_value=0, max_value=1 << 61), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_extend_many_matches_loop(self, values):
        hasher = PrefixHasher(PublicCoins(1), "hyp", bits=61)
        state = hasher.initial_state()
        for value in values:
            state = hasher.extend(state, value)
        assert hasher.extend_many(hasher.initial_state(), values) == state


class TestChecksum:
    def test_deterministic(self, coins):
        c1 = Checksum(coins, "c")
        c2 = Checksum(coins, "c")
        assert c1(12345) == c2(12345)

    def test_not_linear(self, coins):
        """Sums of checksums must not equal checksums of sums."""
        checksum = Checksum(coins, "lin")
        violations = sum(
            1
            for a, b in [(1, 2), (3, 4), (10, 20), (100, 5)]
            if checksum(a) + checksum(b) != checksum(a + b)
        )
        assert violations == 4

    def test_collision_rare(self, coins):
        checksum = Checksum(coins, "coll", bits=61)
        values = {checksum(x) for x in range(5000)}
        assert len(values) == 5000

    def test_hash_array_matches_scalar(self, coins):
        checksum = Checksum(coins, "carr", bits=61)
        rng = np.random.default_rng(0xC0DE)
        xs = np.concatenate(
            [
                rng.integers(0, 1 << 61, size=2000, dtype=np.int64).astype(np.uint64),
                np.array([0, 1, MERSENNE_P - 1, (1 << 61) - 1], dtype=np.uint64),
            ]
        )
        assert checksum.hash_array(xs).tolist() == [
            checksum(int(x)) for x in xs.tolist()
        ]

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=100, deadline=None)
    def test_hash_array_property(self, key):
        checksum = Checksum(PublicCoins(3), "hyp", bits=61)
        batch = checksum.hash_array(np.array([key], dtype=np.uint64))
        assert int(batch[0]) == checksum(key)
