"""Tests for the strata estimator and auto-sized exact reconciliation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.metric import HammingSpace
from repro.protocol import Channel
from repro.reconcile import (
    StrataEstimator,
    exact_iblt_reconcile_auto,
    read_strata,
    strata_payload,
)


def _estimator(coins, label="s", **kwargs):
    return StrataEstimator(coins, label, key_bits=40, **kwargs)


class TestStrataEstimator:
    def test_identical_sets_estimate_zero(self, coins, rng):
        keys = [int(v) for v in rng.choice(1 << 39, size=300, replace=False)]
        a = _estimator(coins)
        b = _estimator(coins)
        a.insert_all(keys)
        b.insert_all(keys)
        assert a.subtract(b).estimate() == 0

    @pytest.mark.parametrize("true_delta", [4, 16, 64, 256])
    def test_estimate_within_factor(self, true_delta):
        rng = np.random.default_rng(true_delta)
        coins = PublicCoins(true_delta)
        shared = [int(v) for v in rng.choice(1 << 38, size=500, replace=False)]
        a = _estimator(coins)
        b = _estimator(coins)
        a.insert_all(shared)
        b.insert_all(shared)
        for index in range(true_delta):
            a.insert((1 << 39) + 2 * index)
            b.insert((1 << 39) + 2 * index + 1)
        estimate = a.subtract(b).estimate()
        # Estimator returns ~2x the truth by design (safety factor); it
        # must never *under*estimate by more than sampling noise and
        # never overshoot absurdly.
        assert estimate >= true_delta
        assert estimate <= 16 * true_delta + 32

    def test_stratum_distribution_geometric(self, coins, rng):
        estimator = _estimator(coins)
        strata = [
            estimator._stratum_of(int(v))
            for v in rng.integers(0, 1 << 39, size=4000)
        ]
        counts = np.bincount(strata, minlength=4)
        # Stratum 0 holds about half, stratum 1 a quarter, ...
        assert counts[0] == pytest.approx(2000, rel=0.15)
        assert counts[1] == pytest.approx(1000, rel=0.2)

    def test_incompatible_subtraction_rejected(self, coins):
        with pytest.raises(ValueError):
            _estimator(coins).subtract(_estimator(coins, strata=8))

    def test_serialization_roundtrip(self, coins, rng):
        estimator = _estimator(coins)
        estimator.insert_all(int(v) for v in rng.integers(0, 1 << 39, size=50))
        payload, bits = strata_payload(estimator)
        assert bits <= 8 * len(payload)
        shell = _estimator(coins)
        loaded = read_strata(payload, shell)
        for mine, loaded_table in zip(estimator.tables, loaded.tables):
            assert list(mine.counts) == list(loaded_table.counts)
            assert list(mine.key_xor) == list(loaded_table.key_xor)

    def test_rejects_bad_strata(self, coins):
        with pytest.raises(ValueError):
            StrataEstimator(coins, "x", strata=0)


class TestAutoReconcile:
    def test_reconciles_without_bound(self, rng):
        space = HammingSpace(24)
        shared = space.sample(rng, 150)
        alice = shared + space.sample(rng, 6)
        bob = shared + space.sample(rng, 4)
        channel = Channel()
        result = exact_iblt_reconcile_auto(
            space, alice, bob, PublicCoins(3), channel
        )
        assert result.success
        assert set(result.bob_final) == set(alice) | set(bob)
        assert channel.rounds == 3

    def test_identical_sets(self, rng):
        space = HammingSpace(24)
        points = space.sample(rng, 100)
        result = exact_iblt_reconcile_auto(space, points, points, PublicCoins(4))
        assert result.success
        assert result.alice_only == []

    def test_large_difference_still_works(self, rng):
        """Auto-sizing must adapt to big differences without a hint."""
        space = HammingSpace(24)
        alice = space.sample(rng, 120)
        bob = space.sample(rng, 120)
        result = exact_iblt_reconcile_auto(space, alice, bob, PublicCoins(5))
        assert result.success
        assert set(result.bob_final) >= set(alice) | set(bob) - {None}
