"""The resilient reconciliation controller: parity, recovery, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.metric import HammingSpace
from repro.protocol import Channel, FaultSpec, FaultyChannel
from repro.reconcile import (
    ResilienceConfig,
    exact_iblt_reconcile,
    resilient_reconcile,
)

SPACE = HammingSpace(40)


def _workload(seed: int, n: int = 64, delta: int = 8):
    rng = np.random.default_rng(seed)
    shared = SPACE.sample(rng, n)
    alice = shared + SPACE.sample(rng, delta // 2)
    bob = shared + SPACE.sample(rng, delta - delta // 2)
    return alice, bob


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_escalations=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(escalation_factor=1)


class TestNoFaultParity:
    def test_transcript_and_result_match_unwrapped(self, coins):
        """Zero-overhead parity: with faults disabled and a healthy first
        attempt, wrapping changes *nothing* on the wire — the protocol
        transcript is byte-identical to the unwrapped call."""
        alice, bob = _workload(11)
        plain_channel, wrapped_channel = Channel(), Channel()
        plain = exact_iblt_reconcile(
            SPACE, alice, bob, 24, coins, plain_channel
        )
        wrapped = resilient_reconcile(
            SPACE, alice, bob, 24, coins, wrapped_channel
        )
        assert plain.success and wrapped.success
        assert plain_channel.messages == wrapped_channel.messages
        assert wrapped.bob_final == plain.bob_final
        assert wrapped.alice_only == plain.alice_only
        assert wrapped.bob_only == plain.bob_only
        assert wrapped.total_bits == plain.total_bits
        assert wrapped.rounds == plain.rounds

    def test_single_attempt_report(self, coins):
        alice, bob = _workload(11)
        result = resilient_reconcile(SPACE, alice, bob, 24, coins)
        report = result.report
        assert report.success
        assert len(report.attempts) == 1
        (attempt,) = report.attempts
        assert attempt.phase == "primary"
        assert attempt.breaker == "closed"
        assert attempt.outcome == "decoded"
        assert attempt.bits == report.total_bits
        assert report.recovery_bits == 0
        assert not report.breaker_tripped
        assert report.fallback_bound is None
        assert report.faults == {}


class TestEscalation:
    def test_undersized_bound_escalates_to_success(self, coins):
        alice, bob = _workload(5, delta=12)
        result = resilient_reconcile(
            SPACE, alice, bob, 2, coins,
            config=ResilienceConfig(max_attempts=10, max_escalations=3),
        )
        assert result.success
        assert set(result.bob_final) == set(alice) | set(bob)
        report = result.report
        assert report.escalations >= 1
        bounds = [attempt.delta_bound for attempt in report.attempts]
        assert bounds == sorted(bounds)  # geometric escalation only grows
        assert report.attempts[-1].outcome == "decoded"
        assert all(a.outcome == "undecodable" for a in report.attempts[:-1])
        # Recovery cost is measured, not estimated.
        assert report.recovery_bits == report.total_bits - report.attempts[0].bits
        assert sum(a.bits for a in report.attempts) == report.total_bits

    def test_breaker_trips_into_strata_fallback(self, coins):
        alice, bob = _workload(5, delta=12)
        result = resilient_reconcile(
            SPACE, alice, bob, 1, coins,
            config=ResilienceConfig(max_attempts=10, max_escalations=1),
        )
        assert result.success
        report = result.report
        assert report.breaker_tripped
        assert report.fallback_bound is not None
        assert report.fallback_bound >= 12
        phases = [attempt.phase for attempt in report.attempts]
        assert phases[0] == "primary"
        assert "escalated" in phases
        assert phases[-1] == "fallback"
        fallback = report.attempts[-1]
        assert fallback.breaker == "open"
        # The fallback attempt carries the strata half-round's bits.
        assert fallback.rounds >= 3

    def test_resumed_breaker_starts_at_escalated_bound(self, coins):
        """Persisted breaker memory: a run that escalated to bound B hands
        its final state onward, and a resumed run opens *at* B — its
        first attempt is sized for the escalated bound, not the
        configured initial one, and the prior escalation budget stays
        spent."""
        alice, bob = _workload(5, delta=12)
        config = ResilienceConfig(max_attempts=10, max_escalations=3)
        first = resilient_reconcile(SPACE, alice, bob, 2, coins, config=config)
        assert first.success and first.report.escalations >= 1
        saved = first.report.breaker
        assert saved is not None and saved.bound > 2

        # Round-trip through the serialised form, as a store would.
        from repro.reconcile import BreakerState

        restored = BreakerState.from_dict(saved.to_dict())
        assert restored == saved
        second = resilient_reconcile(
            SPACE, alice, bob, 2, coins, config=config, breaker=restored
        )
        assert second.success
        report = second.report
        assert report.attempts[0].delta_bound == saved.bound
        assert report.attempts[0].phase == "resumed"
        assert report.escalations == 0  # the resumed bound already fits
        assert len(report.attempts) == 1

    def test_budget_exhaustion_reports_failure(self, coins):
        alice, bob = _workload(5, delta=12)
        result = resilient_reconcile(
            SPACE, alice, bob, 1, coins,
            config=ResilienceConfig(max_attempts=2, max_escalations=4),
        )
        assert not result.success
        assert result.bob_final == bob
        assert len(result.report.attempts) == 2
        assert all(a.outcome == "undecodable" for a in result.report.attempts)


class TestRecoveryUnderOverload:
    def test_recovers_in_200_seeded_trials(self):
        """Acceptance: at an overload where the first attempt fails with
        probability >= 0.5 (here: load 1.0, essentially always), the
        controller recovers to a *correct* reconciliation in >= 99% of
        200 seeded trials, each report recording the full recovery path."""
        successes = 0
        first_attempt_failures = 0
        config = ResilienceConfig(max_attempts=8, max_escalations=2)
        for trial in range(200):
            alice, bob = _workload(1000 + trial, n=32, delta=24)
            coins = PublicCoins(0xFA17).child("overload", trial)
            result = resilient_reconcile(
                SPACE, alice, bob, 10, coins, config=config
            )
            report = result.report
            if report.attempts[0].outcome != "decoded":
                first_attempt_failures += 1
            if result.success and set(result.bob_final) == set(alice) | set(bob):
                successes += 1
            # The full recovery path is always recorded.
            assert report.total_bits > 0
            assert len(report.attempts) >= 1
            for attempt in report.attempts:
                assert attempt.outcome in ("decoded", "undecodable", "corrupted")
                assert attempt.breaker in ("closed", "open")
                assert attempt.cells > 0
                assert attempt.cumulative_bits <= report.total_bits
        assert first_attempt_failures >= 100  # the overload is real
        assert successes >= 198  # >= 99% of 200


class TestFaultyRuns:
    def test_rerequest_on_corruption(self, coins):
        alice, bob = _workload(21)
        channel = FaultyChannel(
            Channel(),
            FaultSpec(drop_rate=0.2, truncate_rate=0.2),
            PublicCoins(99).child("f"),
        )
        result = resilient_reconcile(
            SPACE, alice, bob, 24, coins, channel,
            ResilienceConfig(max_attempts=12, max_escalations=2),
        )
        assert result.success
        report = result.report
        assert report.rerequests >= 1
        assert any(a.outcome == "corrupted" for a in report.attempts)
        # Corruption re-requests at the same size — never escalates.
        corrupted = [a for a in report.attempts if a.outcome == "corrupted"]
        for record, successor in zip(report.attempts, report.attempts[1:]):
            if record.outcome == "corrupted":
                assert successor.delta_bound == record.delta_bound
        assert corrupted
        assert report.faults["faulted"] >= 1

    def test_same_fault_seed_byte_identical_reports(self, coins):
        """Determinism acceptance: the same fault seed yields
        byte-identical RecoveryReport JSON across runs."""
        alice, bob = _workload(21)
        renders = []
        for _ in range(2):
            channel = FaultyChannel(
                Channel(),
                FaultSpec(drop_rate=0.25, truncate_rate=0.25, flip_rate=0.1,
                          duplicate_rate=0.1),
                PublicCoins(1234).child("fault-seed"),
            )
            result = resilient_reconcile(
                SPACE, alice, bob, 16, coins, channel,
                ResilienceConfig(max_attempts=12, max_escalations=2),
            )
            renders.append(result.report.to_json())
        assert renders[0] == renders[1]
        assert renders[0].endswith("\n")

    def test_different_fault_seed_changes_the_path(self, coins):
        alice, bob = _workload(21)
        renders = []
        for fault_seed in (1, 2):
            channel = FaultyChannel(
                Channel(),
                FaultSpec(drop_rate=0.5, truncate_rate=0.3),
                PublicCoins(fault_seed),
            )
            result = resilient_reconcile(
                SPACE, alice, bob, 16, coins, channel,
                ResilienceConfig(max_attempts=12, max_escalations=2),
            )
            renders.append(result.report.to_json())
        assert renders[0] != renders[1]
