"""The incremental frontier decoder is pinned against two oracles.

The numpy backend's default ``"frontier"`` decode mode must be
*bit-identical* — same output lists in the same order, same residual
cell state — to the pre-change ``"rescan"`` decoder it replaced, and
(up to the documented round-vs-sequential output ordering) to the pure
python reference backend, across adversarial cell patterns: duplicate
insertions, multiset (|count| > 1) cells, and undecodable overloads
whose 2-core both disciplines must leave untouched.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import PublicCoins
from repro.iblt import IBLT, PeelQueue
from repro.iblt.backend import default_decode_mode, resolve_decode_mode

KEY_BITS = 56
KEY_MAX = (1 << KEY_BITS) - 1


def _fresh_tables(coins, cells, q=3, key_bits=KEY_BITS):
    """One table per decode path: frontier, rescan oracle, python oracle."""
    return {
        "frontier": IBLT(coins, "fd", cells=cells, q=q, key_bits=key_bits,
                         backend="numpy", decode_mode="frontier"),
        "rescan": IBLT(coins, "fd", cells=cells, q=q, key_bits=key_bits,
                       backend="numpy", decode_mode="rescan"),
        "python": IBLT(coins, "fd", cells=cells, q=q, key_bits=key_bits,
                       backend="python"),
    }


def _apply_signed(table, signed_keys):
    for key, sign in signed_keys:
        if sign > 0:
            table.insert(key)
        else:
            table.delete(key)


def _decode_all(tables):
    return {mode: table.decode() for mode, table in tables.items()}


def _assert_frontier_matches_rescan(tables, results):
    """The core regression contract: the frontier decoder is a pure
    optimisation of the pre-change rescan decoder — identical output
    lists (including order) and identical residual cell state, on any
    *collision-free* table state (i.e. no cell whose garbage XOR passes
    the checksum purity test — a ~2^-61-per-cell fluke that the
    insert/delete strategies here cannot produce; see
    ``repro.iblt.iblt``'s module docstring for the caveat)."""
    frontier, rescan = results["frontier"], results["rescan"]
    assert frontier.success == rescan.success
    assert frontier.inserted == rescan.inserted
    assert frontier.deleted == rescan.deleted
    ft, rt = tables["frontier"], tables["rescan"]
    assert ft.counts.tolist() == rt.counts.tolist()
    assert ft.key_xor.tolist() == rt.key_xor.tolist()
    assert ft.check_xor.tolist() == rt.check_xor.tolist()


def _assert_frontier_matches_oracles(tables, results):
    """Full three-way parity, for states where peel order cannot change
    the outcome (every stored key has net multiplicity in {-1, 0, +1}).

    With |multiplicity| > 1 the parity against the *python* reference is
    not a property any numpy decoder ever had: a cell shared between a
    count-+2 key and a count--1 key can pass the purity test with the
    wrong sign, and whether it is peeled before the key's honest cells
    depends on peel order (LIFO vs rounds).  Multiset states therefore
    assert only the frontier-vs-rescan contract above.
    """
    _assert_frontier_matches_rescan(tables, results)
    frontier, python = results["frontier"], results["python"]
    # vs the python reference: same key sets (peel order differs).
    assert frontier.success == python.success
    assert sorted(frontier.inserted) == sorted(python.inserted)
    assert sorted(frontier.deleted) == sorted(python.deleted)
    # Residual cell state (the unpeeled 2-core) agrees everywhere.
    ft, pt = tables["frontier"], tables["python"]
    assert ft.counts.tolist() == list(pt.counts)
    assert ft.key_xor.tolist() == list(pt.key_xor)
    assert ft.check_xor.tolist() == list(pt.check_xor)


class TestFrontierParity:
    @given(
        alice=st.lists(st.integers(0, KEY_MAX), min_size=0, max_size=40, unique=True),
        bob=st.lists(st.integers(0, KEY_MAX), min_size=0, max_size=40, unique=True),
        cells=st.sampled_from([12, 24, 48]),
        seed=st.integers(0, 1 << 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_subtracted_sets(self, alice, bob, cells, seed):
        """The standard reconciliation shape: decode of B - A."""
        coins = PublicCoins(seed)
        tables = _fresh_tables(coins, cells)
        diffs = {}
        for mode, table in tables.items():
            other = IBLT(coins, "fd", cells=cells, q=3, key_bits=KEY_BITS,
                         backend=table.backend)
            table.insert_all(bob)
            other.insert_all(alice)
            diffs[mode] = table.subtract(other)
            assert diffs[mode].decode_mode == table.decode_mode
        results = _decode_all(diffs)
        _assert_frontier_matches_oracles(diffs, results)

    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 200), st.sampled_from([1, -1])),
            min_size=0,
            max_size=80,
        ),
        cells=st.sampled_from([9, 24, 45]),
        seed=st.integers(0, 1 << 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_multiset_counts(self, updates, cells, seed):
        """Duplicate insertions and repeated deletes: cells with |count|
        far from 1, partial cancellations, negative multiplicities.
        Peel order is semantically ambiguous in such states (see
        ``_assert_frontier_matches_oracles``), so the assertion is the
        frontier-vs-rescan bit-identity contract."""
        coins = PublicCoins(seed)
        tables = _fresh_tables(coins, cells)
        for table in tables.values():
            _apply_signed(table, updates)
        results = _decode_all(tables)
        _assert_frontier_matches_rescan(tables, results)

    def test_duplicate_insertions_never_peel(self, coins):
        """A key inserted twice is invisible to peeling (count 2 cells,
        XOR-cancelled keys); the odd key out still decodes, and the
        duplicate residue is identical across all three decoders."""
        tables = _fresh_tables(coins, cells=24)
        for table in tables.values():
            table.insert_all([5, 5, 77, 77, 123])
        results = _decode_all(tables)
        _assert_frontier_matches_rescan(tables, results)
        for result in results.values():
            assert not result.success
            assert result.inserted == [123]

    def test_undecodable_overload(self, coins):
        """60 cells, 200 keys: a huge 2-core; both numpy modes and the
        python reference recover the same maximal peelable set."""
        rng = np.random.default_rng(17)
        keys = rng.choice(KEY_MAX, size=200, replace=False).tolist()
        tables = _fresh_tables(coins, cells=60)
        for table in tables.values():
            table.insert_all(keys)
        results = _decode_all(tables)
        _assert_frontier_matches_oracles(tables, results)
        assert not results["frontier"].success

    def test_near_threshold_large_table(self, coins):
        """A larger table near the q=3 threshold exercises many rounds."""
        rng = np.random.default_rng(0xF00D)
        differences = 600
        cells = int(2 * differences / 0.75)
        universe = rng.choice(KEY_MAX, size=4000 + differences, replace=False)
        alice = universe[:4000]
        bob = np.concatenate([universe[differences:4000], universe[4000:]])
        outcomes = {}
        for mode in ("frontier", "rescan"):
            table_a = IBLT(coins, "big", cells=cells, q=3, key_bits=KEY_BITS,
                           backend="numpy", decode_mode=mode)
            table_b = IBLT(coins, "big", cells=cells, q=3, key_bits=KEY_BITS,
                           backend="numpy", decode_mode=mode)
            table_a.insert_batch(alice.astype(np.uint64))
            table_b.insert_batch(bob.astype(np.uint64))
            outcomes[mode] = table_b.subtract(table_a).decode()
        assert outcomes["frontier"].success == outcomes["rescan"].success
        assert outcomes["frontier"].inserted == outcomes["rescan"].inserted
        assert outcomes["frontier"].deleted == outcomes["rescan"].deleted
        assert outcomes["frontier"].difference_count == 2 * differences


class TestAdaptiveThreshold:
    """The adaptive tail is behaviour-neutral: ANY ``tail_threshold`` —
    always-vectorised (0), always-scalar (huge), or boundary values that
    make the decode cross the switch mid-peel — must reproduce the
    rescan oracle bit-for-bit."""

    THRESHOLDS = (0, 1, 2, 7, 33, 1 << 30)

    @given(
        alice=st.lists(st.integers(0, KEY_MAX), min_size=0, max_size=60, unique=True),
        bob=st.lists(st.integers(0, KEY_MAX), min_size=0, max_size=60, unique=True),
        threshold=st.sampled_from(THRESHOLDS),
        cells=st.sampled_from([12, 24, 48, 96]),
        seed=st.integers(0, 1 << 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_threshold_matches_rescan(self, alice, bob, threshold, cells, seed):
        """Reconciliation decodes across the switch boundary: thresholds
        below, inside and above the frontier-size range all peel the
        same rounds."""
        coins = PublicCoins(seed)
        tables = _fresh_tables(coins, cells)
        diffs = {}
        for mode, table in tables.items():
            other = IBLT(coins, "fd", cells=cells, q=3, key_bits=KEY_BITS,
                         backend=table.backend)
            table.insert_all(bob)
            other.insert_all(alice)
            diffs[mode] = table.subtract(other)
        diffs["frontier"].tail_threshold = threshold
        results = _decode_all(diffs)
        _assert_frontier_matches_oracles(diffs, results)

    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 150), st.sampled_from([1, -1])),
            min_size=0,
            max_size=100,
        ),
        threshold=st.sampled_from(THRESHOLDS),
        cells=st.sampled_from([9, 24, 45]),
        seed=st.integers(0, 1 << 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_multiset_counts_any_threshold(self, updates, threshold, cells, seed):
        """Duplicates, repeated deletes and |count| > 1 cells through the
        scalar tail: the sign/checksum bookkeeping of the scalar round
        must pick the same first-occurrence cells the vectorised
        ``np.unique`` pass does."""
        coins = PublicCoins(seed)
        tables = _fresh_tables(coins, cells)
        for table in tables.values():
            _apply_signed(table, updates)
        tables["frontier"].tail_threshold = threshold
        results = _decode_all(tables)
        _assert_frontier_matches_rescan(tables, results)

    @pytest.mark.parametrize("threshold", THRESHOLDS)
    def test_undecodable_overload_any_threshold(self, coins, threshold):
        """The unpeelable 2-core is threshold-invariant, including the
        partial peel output recovered on the way in."""
        rng = np.random.default_rng(23)
        keys = rng.choice(KEY_MAX, size=180, replace=False).tolist()
        tables = _fresh_tables(coins, cells=60)
        for table in tables.values():
            table.insert_all(keys)
        tables["frontier"].tail_threshold = threshold
        results = _decode_all(tables)
        _assert_frontier_matches_oracles(tables, results)
        assert not results["frontier"].success

    def test_straddling_thresholds_cross_the_switch(self, coins):
        """A near-threshold table peels through shrinking rounds; picking
        thresholds inside the observed frontier-size range forces the
        vector->scalar switch to happen mid-decode (and the output to
        stay pinned)."""
        rng = np.random.default_rng(0xBEEF)
        differences = 120
        cells = int(2 * differences / 0.7)
        keys = rng.choice(KEY_MAX, size=differences, replace=False).astype(np.uint64)
        reference = None
        for threshold in (0, 4, 16, 48, 130, 1 << 30):
            table = IBLT(coins, "straddle", cells=cells, q=3, key_bits=KEY_BITS,
                         backend="numpy", decode_mode="frontier")
            table.insert_batch(keys)
            table.tail_threshold = threshold
            result = table.decode()
            outcome = (result.success, result.inserted, result.deleted)
            if reference is None:
                reference = outcome
            assert outcome == reference


class TestDecodeModeSelection:
    def test_default_is_frontier(self, coins, monkeypatch):
        monkeypatch.delenv("REPRO_DECODE", raising=False)
        assert default_decode_mode() == "frontier"
        table = IBLT(coins, "dm", cells=12, q=3)
        assert table.decode_mode == "frontier"

    def test_env_override(self, coins, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE", "rescan")
        assert default_decode_mode() == "rescan"
        table = IBLT(coins, "dm", cells=12, q=3)
        assert table.decode_mode == "rescan"

    def test_invalid_values_raise(self, coins, monkeypatch):
        with pytest.raises(ValueError):
            resolve_decode_mode("bogus")
        with pytest.raises(ValueError):
            IBLT(coins, "dm", cells=12, q=3, decode_mode="bogus")
        monkeypatch.setenv("REPRO_DECODE", "bogus")
        with pytest.raises(ValueError):
            default_decode_mode()

    def test_mode_survives_subtract_and_copy(self, coins):
        table = IBLT(coins, "dm", cells=12, q=3, decode_mode="rescan")
        other = IBLT(coins, "dm", cells=12, q=3, decode_mode="rescan")
        assert table.subtract(other).decode_mode == "rescan"
        assert table.copy().decode_mode == "rescan"


class TestPeelQueue:
    def test_fifo_order_and_dedup(self):
        queue = PeelQueue(8, fifo=True)
        for index in (3, 1, 3, 5, 1):
            queue.push(index)
        assert len(queue) == 3
        assert [queue.pop() for _ in range(3)] == [3, 1, 5]
        assert not queue

    def test_lifo_order(self):
        queue = PeelQueue(8, fifo=False)
        for index in (0, 2, 4):
            queue.push(index)
        assert [queue.pop() for _ in range(3)] == [4, 2, 0]

    def test_reenqueue_after_pop(self):
        queue = PeelQueue(4, fifo=True)
        queue.push(2)
        assert queue.pop() == 2
        queue.push(2)  # popped entries may be enqueued again
        assert queue.pop() == 2
