"""End-to-end tests for Algorithm 1 and its scaled variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EMDProtocol,
    ScaledEMDProtocol,
    default_distance_bounds,
    derive_emd_parameters,
    repair_point_set,
)
from repro.hashing import PublicCoins
from repro.lsh import key_bits_for
from repro.metric import GridSpace, HammingSpace, emd, emd_k
from repro.protocol import BitWriter, Channel, write_riblt_cells
from repro.workloads import noisy_replica_pair


class TestParameterDerivation:
    def test_default_bounds(self):
        space = HammingSpace(32)
        d1, d2, m = default_distance_bounds(space, 100)
        assert d1 == 1.0
        assert d2 == 100 * 32
        assert m == 32

    def test_levels_match_log_ratio(self):
        space = HammingSpace(32)
        params = derive_emd_parameters(space, n=64, k=2, d1=1.0, d2=1024.0)
        assert params.levels == 11  # log2(1024) + 1

    def test_levels_cover_range_for_non_power_of_two_ratio(self):
        """ceil, not floor: the coarsest level's effective scale
        D1 * 2^(t-1) must reach D2 even when D2/D1 is not a power of two
        (Theorem 3.4 promises coverage of all of [D1, D2])."""
        space = HammingSpace(32)
        for d1, d2 in ((1.0, 1000.0), (3.0, 100.0), (1.0, 5.0), (2.0, 2.0)):
            params = derive_emd_parameters(space, n=64, k=2, d1=d1, d2=d2)
            assert d1 * 2 ** (params.levels - 1) >= d2
        params = derive_emd_parameters(space, n=64, k=2, d1=1.0, d2=1000.0)
        assert params.levels == 11  # ceil(log2(1000)) + 1, not floor + 1 = 10

    def test_hash_counts_double(self):
        space = HammingSpace(32)
        params = derive_emd_parameters(space, n=64, k=2)
        counts = params.hash_counts
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        # At the exact p bound the counts are ~3 * 2^{i-1}: ratio ~2 in the tail.
        assert counts[-1] / counts[-2] == pytest.approx(2.0, rel=0.1)

    def test_p_constraint_met(self):
        """Footnote 4: p >= e^{-k/(24 D2)}."""
        for space in (HammingSpace(32), GridSpace(64, 4, 1.0), GridSpace(64, 4, 2.0)):
            params = derive_emd_parameters(space, n=32, k=3)
            assert params.family.p >= np.exp(-params.k / (24 * params.d2)) - 1e-12

    def test_r_constraint_met(self):
        """MLSH family must cover r >= min(M, D2)."""
        for space in (HammingSpace(32), GridSpace(64, 4, 1.0), GridSpace(64, 4, 2.0)):
            params = derive_emd_parameters(space, n=32, k=3)
            assert params.family.r >= min(params.m_bound, params.d2) - 1e-9

    def test_cells_are_4q2k(self):
        params = derive_emd_parameters(HammingSpace(16), n=16, k=5, q=3)
        assert params.cells == 4 * 9 * 5
        assert params.accept_pairs == 20

    def test_riblt_load_in_tree_regime(self):
        params = derive_emd_parameters(HammingSpace(16), n=16, k=5, q=3)
        assert params.accept_pairs / params.cells < 1 / (params.q * (params.q - 1))

    def test_max_total_hashes_cap(self):
        params = derive_emd_parameters(
            HammingSpace(32), n=64, k=2, max_total_hashes=100
        )
        assert params.total_hashes <= 100

    def test_rejects_bad_inputs(self):
        space = HammingSpace(8)
        with pytest.raises(ValueError):
            derive_emd_parameters(space, n=0, k=1)
        with pytest.raises(ValueError):
            derive_emd_parameters(space, n=4, k=0)
        with pytest.raises(ValueError):
            derive_emd_parameters(space, n=4, k=1, d1=10.0, d2=5.0)


class TestRepair:
    def test_replaces_matched_points(self):
        space = GridSpace(side=100, dim=1, p=1.0)
        bob = [(0,), (50,), (99,)]
        decoded_bob = [(51,)]  # approximately Bob's middle point
        decoded_alice = [(70,)]
        result = repair_point_set(space, bob, decoded_alice, decoded_bob)
        assert sorted(result) == sorted([(0,), (99,), (70,)])

    def test_empty_decodes_noop(self):
        space = GridSpace(side=10, dim=1, p=1.0)
        bob = [(1,), (2,)]
        assert repair_point_set(space, bob, [], []) == bob

    def test_greedy_matcher_runs(self):
        space = GridSpace(side=100, dim=1, p=1.0)
        bob = [(0,), (50,)]
        result = repair_point_set(space, bob, [(75,)], [(49,)], matcher="greedy")
        assert sorted(result) == sorted([(0,), (75,)])

    def test_unknown_matcher(self):
        with pytest.raises(ValueError):
            repair_point_set(GridSpace(10, 1, 1.0), [(1,)], [(2,)], [(1,)], matcher="x")

    def test_preserves_size_on_imbalance(self):
        space = GridSpace(side=100, dim=1, p=1.0)
        bob = [(0,), (50,), (99,)]
        result = repair_point_set(space, bob, [(70,), (71,)], [(51,)])
        assert len(result) == 3


def _hamming_workload(seed, n=24, k=2, d=48):
    rng = np.random.default_rng(seed)
    space = HammingSpace(d)
    wl = noisy_replica_pair(space, n=n, k=k, close_radius=1, far_radius=16, rng=rng)
    return space, wl


class TestEMDProtocolEndToEnd:
    def test_identical_sets(self, coins, rng):
        space = HammingSpace(32)
        points = space.sample(rng, 16)
        protocol = EMDProtocol.for_instance(space, n=16, k=1)
        result = protocol.run(points, points, coins)
        assert result.success
        assert sorted(result.bob_final) == sorted(points)
        assert result.rounds == 1

    def test_requires_equal_sizes(self, coins, rng):
        space = HammingSpace(16)
        protocol = EMDProtocol.for_instance(space, n=4, k=1)
        with pytest.raises(ValueError):
            protocol.run(space.sample(rng, 4), space.sample(rng, 5), coins)

    def test_improves_emd_on_noisy_workload(self):
        improvements = 0
        trials = 5
        for seed in range(trials):
            space, wl = _hamming_workload(seed)
            protocol = EMDProtocol.for_instance(space, n=24, k=2)
            result = protocol.run(wl.alice, wl.bob, PublicCoins(seed))
            if not result.success:
                continue
            before = emd(space, wl.alice, wl.bob)
            after = emd(space, wl.alice, result.bob_final)
            if after < before:
                improvements += 1
        assert improvements >= 3

    def test_approximation_ratio_reasonable(self):
        """EMD(S_A, S'_B) <= O(log n) * EMD_k on successful runs."""
        ratios = []
        for seed in range(5):
            space, wl = _hamming_workload(seed, n=20, k=2)
            protocol = EMDProtocol.for_instance(space, n=20, k=2)
            result = protocol.run(wl.alice, wl.bob, PublicCoins(100 + seed))
            if not result.success:
                continue
            reference = max(emd_k(space, wl.alice, wl.bob, 2), 1.0)
            ratios.append(emd(space, wl.alice, result.bob_final) / reference)
        assert ratios, "no successful runs"
        # O(log n) with n=20 and moderate constants.
        assert np.median(ratios) < 20

    def test_preserves_set_size(self, coins):
        space, wl = _hamming_workload(3)
        protocol = EMDProtocol.for_instance(space, n=24, k=2)
        result = protocol.run(wl.alice, wl.bob, coins)
        assert len(result.bob_final) == 24

    def test_channel_accounting(self, coins):
        space, wl = _hamming_workload(4)
        channel = Channel()
        protocol = EMDProtocol.for_instance(space, n=24, k=2)
        result = protocol.run(wl.alice, wl.bob, coins, channel)
        assert result.total_bits == channel.total_bits
        assert channel.rounds == 1

    def test_failure_reported_when_d2_too_small(self, rng):
        """With D2 far below the true EMD_k, every level should be
        overloaded and the protocol must report failure, not fabricate."""
        space = HammingSpace(48)
        alice = space.sample(rng, 24)
        bob = space.sample(rng, 24)  # unrelated sets: EMD_k is huge
        protocol = EMDProtocol.for_instance(space, n=24, k=1, d1=1.0, d2=2.0)
        result = protocol.run(alice, bob, PublicCoins(7))
        assert not result.success
        assert result.bob_final == bob

    def test_l2_grid_end_to_end(self, coins):
        rng = np.random.default_rng(11)
        space = GridSpace(side=128, dim=3, p=2.0)
        wl = noisy_replica_pair(space, n=16, k=2, close_radius=2, far_radius=60, rng=rng)
        protocol = EMDProtocol.for_instance(
            space, n=16, k=2, d1=8.0, d2=16 * space.diameter
        )
        result = protocol.run(wl.alice, wl.bob, coins)
        assert result.success
        before = emd(space, wl.alice, wl.bob)
        after = emd(space, wl.alice, result.bob_final)
        assert after < before

    def test_greedy_matcher_variant(self, coins):
        space, wl = _hamming_workload(5)
        protocol = EMDProtocol.for_instance(space, n=24, k=2)
        result = protocol.run(wl.alice, wl.bob, coins, matcher="greedy")
        assert result.success


class TestScaledEMDProtocol:
    def test_intervals_cover_range(self):
        space = GridSpace(side=128, dim=2, p=2.0)
        protocol = ScaledEMDProtocol(space, n=16, k=2, d1=1.0, d2=1000.0, ratio=10.0)
        bounds = protocol.interval_bounds
        assert bounds[0][0] == 1.0
        assert bounds[-1][1] == 1000.0
        for (low_a, high_a), (low_b, high_b) in zip(bounds, bounds[1:]):
            assert high_a == low_b

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            ScaledEMDProtocol(HammingSpace(8), n=4, k=1, ratio=1.0)

    def test_end_to_end(self, coins):
        rng = np.random.default_rng(21)
        space = GridSpace(side=1024, dim=2, p=2.0)
        wl = noisy_replica_pair(space, n=16, k=2, close_radius=2, far_radius=300, rng=rng)
        protocol = ScaledEMDProtocol(
            space, n=16, k=2, d1=2.0, d2=16 * space.diameter, ratio=8.0
        )
        result = protocol.run(wl.alice, wl.bob, coins)
        assert result.success
        assert result.chosen_interval is not None
        assert result.rounds == 1
        before = emd(space, wl.alice, wl.bob)
        after = emd(space, wl.alice, result.bob_final)
        assert after <= before

    def test_smallest_interval_wins(self, coins, rng):
        """Identical sets should decode in the very first interval."""
        space = GridSpace(side=128, dim=2, p=2.0)
        points = space.sample(rng, 12)
        protocol = ScaledEMDProtocol(space, n=12, k=1, d1=1.0, d2=500.0, ratio=8.0)
        result = protocol.run(points, points, coins)
        assert result.success
        assert result.chosen_interval == 0


class TestUnifiedKeyStream:
    """The single Mersenne-61 PrefixKeyBuilder stream end to end: the
    derived Θ(log n) key width (61 bits for large n) flows from the
    builder into every per-level ``RIBLT(key_bits=...)`` and into the
    measured communication accounting."""

    def test_61_bit_width_reaches_tables_and_accounting(self):
        space = HammingSpace(32)
        # n large enough that key_bits_for saturates at the full 61-bit
        # field width; the run itself uses few points (the protocol only
        # requires |S_A| = |S_B|, not = n).
        params = derive_emd_parameters(
            space, n=1 << 21, k=1, d1=1.0, d2=64.0, max_total_hashes=48
        )
        assert params.key_bits == key_bits_for(1 << 21) == 61
        protocol = EMDProtocol(space, params)
        coins = PublicCoins(3)
        builder = protocol._key_builder(coins)
        assert builder.key_bits == 61
        tables = [protocol._table(coins, level) for level in range(params.levels)]
        assert all(table.key_bits == 61 for table in tables)

        points = space.sample(np.random.default_rng(0), 8)
        channel = Channel()
        result = protocol.run(points, points, coins, channel)
        assert result.success
        assert result.total_bits == channel.total_bits

        # The measured bits are exactly the serialized per-level tables
        # built from the unified 61-bit key stream.
        keys = builder.keys_for(points)
        values = np.asarray(points, dtype=np.int64)
        writer = BitWriter()
        for level, table in enumerate(tables):
            table.insert_batch(keys[:, level], values)
            write_riblt_cells(writer, table)
        assert channel.summary().by_label["emd-riblts"] == writer.bit_length

    def test_key_width_matches_derived_parameters(self, coins):
        space = HammingSpace(24)
        protocol = EMDProtocol.for_instance(space, n=16, k=1)
        p = protocol.parameters
        assert p.key_bits == key_bits_for(16)
        assert protocol._key_builder(coins).key_bits == p.key_bits
        assert protocol._table(coins, 0).key_bits == p.key_bits
        assert not hasattr(protocol, "fast_keys")
