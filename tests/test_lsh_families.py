"""Tests for LSH / MLSH families (Definitions 2.1, 2.2; Lemmas 2.3–2.5)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.lsh import (
    BitSamplingMLSH,
    GridMLSH,
    LSHParams,
    OneSidedGridLSH,
    PStableMLSH,
    batches_for_p2_half,
    fold_cells,
    pstable_collision_probability,
)
from repro.metric import GridSpace, HammingSpace


class TestLSHParams:
    def test_rho(self):
        params = LSHParams(r1=1, r2=4, p1=0.9, p2=0.5)
        assert params.rho == pytest.approx(math.log(0.9) / math.log(0.5))

    def test_rho_one_sided(self):
        assert LSHParams(r1=1, r2=4, p1=0.9, p2=0.0).rho == 0.0

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            LSHParams(r1=4, r2=1, p1=0.9, p2=0.5)
        with pytest.raises(ValueError):
            LSHParams(r1=1, r2=4, p1=0.5, p2=0.9)


class TestBatchesForP2Half:
    def test_half_needs_one(self):
        assert batches_for_p2_half(0.5) == 1

    def test_larger_p2_needs_more(self):
        assert batches_for_p2_half(0.9) == math.ceil(math.log(0.5) / math.log(0.9))

    def test_small_p2_one(self):
        assert batches_for_p2_half(0.1) == 1

    def test_rejects_bounds(self):
        with pytest.raises(ValueError):
            batches_for_p2_half(0.0)
        with pytest.raises(ValueError):
            batches_for_p2_half(1.0)


def _empirical_collision_rate(family, coins, x, y, count=4000):
    batch = family.sample_batch(coins, "emp", count)
    values = batch.evaluate([x, y])
    return float((values[0] == values[1]).mean())


class TestBitSamplingMLSH:
    def test_parameters(self):
        space = HammingSpace(16)
        family = BitSamplingMLSH(space, w=32)
        assert family.r == pytest.approx(0.79 * 32)
        assert family.p == pytest.approx(math.exp(-2 / 32))
        assert family.alpha == 0.5

    def test_requires_w_at_least_d(self):
        with pytest.raises(ValueError):
            BitSamplingMLSH(HammingSpace(16), w=8)

    def test_requires_hamming(self):
        with pytest.raises(TypeError):
            BitSamplingMLSH(GridSpace(4, 4, 1.0), w=8)

    def test_exact_collision_probability(self):
        family = BitSamplingMLSH(HammingSpace(16), w=32)
        assert family.collision_probability(0) == 1.0
        assert family.collision_probability(8) == pytest.approx(1 - 8 / 32)

    def test_collision_within_mlsh_bounds(self, coins):
        space = HammingSpace(24)
        family = BitSamplingMLSH(space, w=48)
        x = tuple([0] * 24)
        for distance in (1, 4, 10):
            y = tuple([1] * distance + [0] * (24 - distance))
            rate = _empirical_collision_rate(family, coins, x, y)
            assert rate <= family.collision_upper_bound(distance) + 0.03
            assert rate >= family.collision_lower_bound(distance) - 0.03

    def test_batch_shared_between_parties(self):
        space = HammingSpace(12)
        family = BitSamplingMLSH(space, w=24)
        rng = np.random.default_rng(0)
        points = space.sample(rng, 5)
        a = family.sample_batch(PublicCoins(9), "x", 30).evaluate(points)
        b = family.sample_batch(PublicCoins(9), "x", 30).evaluate(points)
        assert (a == b).all()

    def test_batch_empty_points(self, coins):
        family = BitSamplingMLSH(HammingSpace(8), w=16)
        assert family.sample_batch(coins, "e", 7).evaluate([]).shape == (0, 7)

    def test_batch_dimension_check(self, coins):
        family = BitSamplingMLSH(HammingSpace(8), w=16)
        batch = family.sample_batch(coins, "d", 3)
        with pytest.raises(ValueError):
            batch.evaluate([(0, 1)])

    def test_derived_lsh_params(self):
        family = BitSamplingMLSH(HammingSpace(16), w=64)
        params = family.derived_lsh_params(r1=2, r2=16)
        assert params.p1 == pytest.approx(family.p**2)
        assert params.p2 == pytest.approx(family.p ** (0.5 * 16))
        assert params.rho == pytest.approx(2 / (0.5 * 16))

    def test_derived_lsh_params_r1_cap(self):
        family = BitSamplingMLSH(HammingSpace(16), w=16)
        with pytest.raises(ValueError):
            family.derived_lsh_params(r1=100, r2=200)


class TestGridMLSH:
    def test_parameters(self):
        space = GridSpace(side=64, dim=3, p=1.0)
        family = GridMLSH(space, w=8.0)
        assert family.r == pytest.approx(0.79 * 8)
        assert family.p == pytest.approx(math.exp(-2 / 8))
        assert family.alpha == 0.5

    def test_requires_l1(self):
        with pytest.raises(TypeError):
            GridMLSH(GridSpace(64, 3, 2.0), w=8.0)
        with pytest.raises(TypeError):
            GridMLSH(HammingSpace(8), w=8.0)

    def test_identical_points_always_collide(self, coins):
        space = GridSpace(side=64, dim=3, p=1.0)
        family = GridMLSH(space, w=8.0)
        batch = family.sample_batch(coins, "i", 50)
        rng = np.random.default_rng(1)
        point = space.sample(rng, 1)[0]
        values = batch.evaluate([point, point])
        assert (values[0] == values[1]).all()

    def test_collision_within_mlsh_bounds(self, coins):
        space = GridSpace(side=256, dim=2, p=1.0)
        family = GridMLSH(space, w=16.0)
        x = (100, 100)
        for offset in (1, 4, 10):
            y = (100 + offset, 100)
            rate = _empirical_collision_rate(family, coins, x, y)
            assert rate <= family.collision_upper_bound(offset) + 0.03
            assert rate >= family.collision_lower_bound(offset) - 0.03

    def test_far_points_rarely_collide(self, coins):
        space = GridSpace(side=256, dim=2, p=1.0)
        family = GridMLSH(space, w=4.0)
        rate = _empirical_collision_rate(family, coins, (0, 0), (200, 200))
        assert rate < 0.02


class TestPStableMLSH:
    def test_parameters(self):
        space = GridSpace(side=64, dim=3, p=2.0)
        family = PStableMLSH(space, w=8.0)
        assert family.r == pytest.approx(0.99 * 8)
        assert family.p == pytest.approx(math.exp(-2 * math.sqrt(2 / math.pi) / 8))
        assert family.alpha == pytest.approx(1 / (4 * math.sqrt(2)))

    def test_requires_l2(self):
        with pytest.raises(TypeError):
            PStableMLSH(GridSpace(64, 3, 1.0), w=8.0)

    def test_exact_formula_limits(self):
        assert pstable_collision_probability(0.0, 4.0) == 1.0
        # Distance >> w: collision probability tends to 0.
        assert pstable_collision_probability(1000.0, 1.0) < 0.01

    def test_empirical_matches_formula(self, coins):
        space = GridSpace(side=256, dim=4, p=2.0)
        family = PStableMLSH(space, w=12.0)
        x = (100, 100, 100, 100)
        y = (104, 100, 100, 103)
        distance = space.distance(x, y)
        rate = _empirical_collision_rate(family, coins, x, y, count=6000)
        assert rate == pytest.approx(family.collision_probability(distance), abs=0.03)

    def test_collision_within_mlsh_bounds(self, coins):
        space = GridSpace(side=256, dim=3, p=2.0)
        family = PStableMLSH(space, w=16.0)
        x = (100, 100, 100)
        for offset in (2, 6):
            y = (100 + offset, 100, 100)
            rate = _empirical_collision_rate(family, coins, x, y, count=6000)
            assert rate <= family.collision_upper_bound(offset) + 0.03
            assert rate >= family.collision_lower_bound(offset) - 0.03


class TestOneSidedGridLSH:
    def test_p2_is_zero(self):
        space = GridSpace(side=1024, dim=2, p=1.0)
        family = OneSidedGridLSH(space, r1=2.0, r2=64.0)
        assert family.params.p2 == 0.0
        assert family.params.rho == 0.0

    def test_p1_formula(self):
        space = GridSpace(side=1024, dim=2, p=1.0)
        family = OneSidedGridLSH(space, r1=2.0, r2=64.0)
        assert family.params.p1 == pytest.approx(1 - 2.0 * 2 / 64)

    def test_far_points_never_collide(self, coins):
        """p2 = 0 is structural: cell diameter is exactly r2."""
        space = GridSpace(side=1024, dim=2, p=2.0)
        r2 = 50.0
        family = OneSidedGridLSH(space, r1=1.0, r2=r2)
        batch = family.sample_batch(coins, "far", 200)
        rng = np.random.default_rng(3)
        for _ in range(30):
            x, y = space.sample(rng, 2)
            if space.distance(x, y) > r2:
                values = batch.evaluate([x, y])
                assert not (values[0] == values[1]).any()

    def test_close_points_collide_often(self, coins):
        space = GridSpace(side=1024, dim=2, p=1.0)
        family = OneSidedGridLSH(space, r1=2.0, r2=64.0)
        rate = _empirical_collision_rate(family, coins, (500, 500), (501, 500))
        assert rate >= family.params.p1 - 0.05

    def test_rejects_high_dimension(self):
        space = GridSpace(side=1024, dim=64, p=1.0)
        with pytest.raises(ValueError):
            OneSidedGridLSH(space, r1=2.0, r2=64.0)

    def test_rejects_bad_radii(self):
        space = GridSpace(side=1024, dim=2, p=1.0)
        with pytest.raises(ValueError):
            OneSidedGridLSH(space, r1=5.0, r2=5.0)


class TestFoldCells:
    def test_deterministic_and_injective_enough(self):
        rng = np.random.default_rng(0)
        cells = rng.integers(0, 1000, size=(4, 50, 3))
        coeffs_1 = rng.integers(1, (1 << 31) - 1, size=(4, 3), dtype=np.int64)
        coeffs_2 = rng.integers(1, (1 << 29) - 3, size=(4, 3), dtype=np.int64)
        a = fold_cells(cells, coeffs_1, coeffs_2)
        b = fold_cells(cells, coeffs_1, coeffs_2)
        assert (a == b).all()

    def test_equal_cells_equal_folds(self):
        rng = np.random.default_rng(1)
        coeffs_1 = rng.integers(1, (1 << 31) - 1, size=(1, 4), dtype=np.int64)
        coeffs_2 = rng.integers(1, (1 << 29) - 3, size=(1, 4), dtype=np.int64)
        cells = np.array([[[5, 6, 7, 8], [5, 6, 7, 8]]])
        folded = fold_cells(cells, coeffs_1, coeffs_2)
        assert folded[0, 0] == folded[1, 0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            fold_cells(
                np.array([[[-1, 0]]]),
                np.ones((1, 2), dtype=np.int64),
                np.ones((1, 2), dtype=np.int64),
            )

    def test_rejects_huge_cells(self):
        with pytest.raises(ValueError):
            fold_cells(
                np.array([[[1 << 30, 0]]]),
                np.ones((1, 2), dtype=np.int64),
                np.ones((1, 2), dtype=np.int64),
            )
