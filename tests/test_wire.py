"""The framed wire format: roundtrips, validation, and seeded fuzzing.

The frame codec sits under every reconciliation-service byte stream, so
its contract is the same as every other deserializer in the repo
(:mod:`tests.test_errors_fuzz`): arbitrary damage — truncation, bit
flips, pure garbage — may only ever surface as a typed
:class:`repro.errors.DecodeError`, never as a raw ``struct.error``,
``UnicodeDecodeError``, ``KeyError``, or unbounded allocation.
"""

from __future__ import annotations

import random
import struct
import zlib

import pytest

from repro.errors import (
    DecodeError,
    MalformedPayloadError,
    TruncatedPayloadError,
)
from repro.protocol.wire import (
    HEADER_LEN,
    MAGIC,
    MAX_LABEL_LEN,
    MAX_PAYLOAD_LEN,
    WIRE_VERSION,
    Frame,
    MessageType,
    decode_frame,
    decode_header,
    encode_frame,
    frame_overhead,
)

TRUNCATION_TRIALS = 64
FLIP_TRIALS = 96
GARBAGE_TRIALS = 64


def _frame(**overrides) -> Frame:
    fields = dict(
        msg_type=MessageType.SKETCH,
        session_id=7,
        seq=3,
        sender="bob",
        label="iblt",
        payload=b"\x01\x02\x03\x04\x05 payload bytes \xff\x00",
        payload_bits=120,
    )
    fields.update(overrides)
    return Frame(**fields)


class TestRoundtrip:
    def test_encode_decode_roundtrip(self):
        frame = _frame()
        wire = encode_frame(frame)
        decoded, consumed = decode_frame(wire)
        assert consumed == len(wire) == frame.wire_length
        assert decoded.verify_payload() is decoded
        assert decoded.msg_type is MessageType.SKETCH
        assert decoded.session_id == 7
        assert decoded.seq == 3
        assert decoded.sender == "bob"
        assert decoded.label == "iblt"
        assert decoded.payload == frame.payload
        assert decoded.payload_bits == 120

    def test_empty_payload_and_label(self):
        frame = _frame(label="", payload=b"", payload_bits=0)
        decoded, consumed = decode_frame(encode_frame(frame))
        assert consumed == frame_overhead("")
        assert decoded.verify_payload().payload == b""

    def test_trailing_bytes_not_consumed(self):
        wire = encode_frame(_frame())
        _, consumed = decode_frame(wire + b"next frame starts here")
        assert consumed == len(wire)

    def test_overhead_is_header_plus_label_plus_trailer(self):
        frame = _frame(label="strata-sketch")
        wire = encode_frame(frame)
        assert frame.overhead_bytes == frame_overhead("strata-sketch")
        assert frame.overhead_bytes == HEADER_LEN + len("strata-sketch") + 4
        assert len(wire) == frame.overhead_bytes + len(frame.payload)

    def test_all_message_types_roundtrip(self):
        for msg_type in MessageType:
            decoded, _ = decode_frame(encode_frame(_frame(msg_type=msg_type)))
            assert decoded.msg_type is msg_type

    def test_uint64_session_id(self):
        big = (1 << 64) - 1
        decoded, _ = decode_frame(encode_frame(_frame(session_id=big)))
        assert decoded.session_id == big


class TestEncodeValidation:
    def test_oversized_label_rejected(self):
        with pytest.raises(ValueError):
            encode_frame(_frame(label="x" * (MAX_LABEL_LEN + 1)))

    def test_bad_sender_rejected(self):
        with pytest.raises(ValueError):
            encode_frame(_frame(sender="mallory"))


class TestHeaderValidation:
    def test_truncated_prelude(self):
        wire = encode_frame(_frame())
        for cut in (0, 1, HEADER_LEN - 1):
            with pytest.raises(TruncatedPayloadError):
                decode_header(wire[:cut])

    def _damaged(self, **field_overrides) -> bytes:
        """A prelude with bad field values but a *valid* header CRC, so
        the field validation itself is what must reject it."""
        fields = dict(
            magic=MAGIC,
            version=WIRE_VERSION,
            type_code=int(MessageType.SKETCH),
            session_id=7,
            seq=3,
            sender_code=2,
            label_len=0,
            payload_bits=0,
            payload_len=0,
        )
        fields.update(field_overrides)
        raw = struct.pack(
            ">2sBBQIBBII",
            fields["magic"],
            fields["version"],
            fields["type_code"],
            fields["session_id"],
            fields["seq"],
            fields["sender_code"],
            fields["label_len"],
            fields["payload_bits"],
            fields["payload_len"],
        )
        return raw + struct.pack(">I", zlib.crc32(raw))

    def test_bad_magic(self):
        with pytest.raises(MalformedPayloadError, match="magic"):
            decode_header(self._damaged(magic=b"XX"))

    def test_bad_version(self):
        with pytest.raises(MalformedPayloadError, match="version"):
            decode_header(self._damaged(version=WIRE_VERSION + 1))

    def test_unknown_type_code(self):
        with pytest.raises(MalformedPayloadError, match="type"):
            decode_header(self._damaged(type_code=200))

    def test_unknown_sender_code(self):
        with pytest.raises(MalformedPayloadError, match="sender"):
            decode_header(self._damaged(sender_code=9))

    def test_payload_length_cap(self):
        """A forged length field must be rejected before any read/alloc."""
        with pytest.raises(MalformedPayloadError, match="cap"):
            decode_header(self._damaged(payload_len=MAX_PAYLOAD_LEN + 1))

    def test_impossible_payload_bits(self):
        with pytest.raises(MalformedPayloadError, match="bits"):
            decode_header(self._damaged(payload_bits=9, payload_len=1))

    def test_header_crc_detects_single_flip(self):
        wire = bytearray(encode_frame(_frame()))
        for bit in range(8 * (HEADER_LEN - 4)):
            damaged = bytearray(wire)
            damaged[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(MalformedPayloadError):
                decode_header(bytes(damaged[:HEADER_LEN]))


class TestPayloadIntegrity:
    def test_decode_defers_payload_crc(self):
        """Damage in the payload must still yield a *routable* frame —
        decode_frame carries the CRC and verify_payload checks it."""
        wire = bytearray(encode_frame(_frame()))
        wire[HEADER_LEN + 6] ^= 0x10  # flip a payload bit
        frame, _ = decode_frame(bytes(wire))
        assert frame.session_id == 7  # still routable by session
        with pytest.raises(MalformedPayloadError, match="checksum"):
            frame.verify_payload()

    def test_label_damage_detected(self):
        wire = bytearray(encode_frame(_frame(label="iblt")))
        wire[HEADER_LEN] ^= 0x01  # 'i' -> 'h': still ASCII, CRC must catch
        frame, _ = decode_frame(bytes(wire))
        with pytest.raises(MalformedPayloadError):
            frame.verify_payload()

    def test_locally_built_frame_verifies_trivially(self):
        frame = _frame()  # payload_crc is None before encoding
        assert frame.verify_payload() is frame

    def test_non_ascii_label_rejected(self):
        frame = _frame(label="ab", payload=b"")
        wire = bytearray(encode_frame(frame))
        wire[HEADER_LEN] = 0xC3  # invalid ASCII in the label region
        with pytest.raises(DecodeError):
            decode_frame(bytes(wire))


class TestWireFuzz:
    """Seeded mutations of a valid frame: only DecodeError may escape."""

    def _payloads(self):
        yield encode_frame(_frame())
        yield encode_frame(_frame(label="", payload=b"", payload_bits=0))
        yield encode_frame(
            _frame(
                msg_type=MessageType.PUSH_POINTS,
                sender="alice",
                label="alice-only-points",
                payload=bytes(range(256)),
                payload_bits=2048,
            )
        )

    def test_truncations(self):
        for wire in self._payloads():
            rng = random.Random(0xA11CE)
            for _ in range(TRUNCATION_TRIALS):
                cut = wire[: rng.randrange(len(wire))]
                with pytest.raises(TruncatedPayloadError):
                    decode_frame(cut)

    def test_bit_flips(self):
        for wire in self._payloads():
            rng = random.Random(0xB0B)
            for _ in range(FLIP_TRIALS):
                damaged = bytearray(wire)
                for _ in range(1 + rng.randrange(4)):
                    position = rng.randrange(8 * len(damaged))
                    damaged[position // 8] ^= 1 << (position % 8)
                try:
                    frame, _ = decode_frame(bytes(damaged))
                    frame.verify_payload()
                except DecodeError:
                    pass  # the typed contract
                except Exception as error:  # pragma: no cover
                    raise AssertionError(
                        f"untyped {type(error).__name__} escaped the frame "
                        f"codec: {error}"
                    ) from error

    def test_pure_garbage(self):
        rng = random.Random(0x6A6B)
        for _ in range(GARBAGE_TRIALS):
            garbage = bytes(
                rng.randrange(256) for _ in range(rng.randrange(200))
            )
            with pytest.raises(DecodeError):
                decode_frame(garbage)
