"""Tests for the command-line driver."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_emd_defaults(self):
        args = build_parser().parse_args(["emd"])
        assert args.space == "hamming"
        assert args.n == 32

    def test_gap_options(self):
        args = build_parser().parse_args(
            ["gap", "--space", "l1", "--r1", "4", "--r2", "512", "--lowdim"]
        )
        assert args.lowdim
        assert args.r2 == 512.0

    def test_exact_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exact", "--method", "bogus"])


class TestCommands:
    def test_emd_runs(self, capsys):
        code = main(["emd", "--dim", "48", "--n", "16", "--k", "1",
                     "--close-radius", "1", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "EMD protocol" in out
        assert "EMD after" in out

    def test_gap_lowdim_runs(self, capsys):
        code = main([
            "gap", "--space", "l1", "--side", "4096", "--dim", "2",
            "--n", "24", "--k", "2", "--r1", "4", "--r2", "512",
            "--close-radius", "4", "--far-radius", "700", "--lowdim",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "gap guarantee holds | yes" in out

    def test_gap_hamming_runs(self, capsys):
        code = main([
            "gap", "--space", "hamming", "--dim", "96", "--n", "16",
            "--k", "1", "--r1", "2", "--r2", "32", "--seed", "5",
        ])
        assert code == 0
        assert "Gap Guarantee" in capsys.readouterr().out

    @pytest.mark.parametrize("method", ["iblt", "auto", "cpi"])
    def test_exact_methods_run(self, capsys, method):
        code = main(["exact", "--method", method, "--n", "60", "--delta", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "union reached    | yes" in out

    def test_lowdim_requires_grid(self, capsys):
        code = main(["gap", "--space", "hamming", "--lowdim", "--n", "8", "--k", "1"])
        assert code == 2


class TestScenariosCommand:
    def test_list_names(self, capsys):
        code = main(["scenarios", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gap-hamming" in out
        assert "multiparty-star" in out

    def test_single_scenario_emits_canonical_json(self, capsys):
        code = main([
            "scenarios", "--only", "exact-iblt-hamming", "--seed", "7",
        ])
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(captured.out)
        assert document["schema"] == "repro.scenarios/v1"
        assert document["failures"] == []
        assert [s["name"] for s in document["scenarios"]] == ["exact-iblt-hamming"]
        assert document["decode_modes"] == [document["scenarios"][0]["decode_mode"]]
        assert document["scenarios"][0]["decode_mode"] in ("frontier", "rescan")
        # Progress/status lines must stay off stdout (byte-determinism).
        assert "ok" in captured.err

    def test_output_file_and_determinism(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        args = ["scenarios", "--only", "strata-estimate", "--seed", "7"]
        assert main(args + ["--output", str(first)]) == 0
        assert main(args + ["--output", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_decode_mode_flag_recorded(self, capsys):
        code = main([
            "scenarios", "--only", "exact-iblt-hamming", "--seed", "7",
            "--decode-mode", "rescan",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["decode_modes"] == ["rescan"]
        assert document["scenarios"][0]["decode_mode"] == "rescan"

    def test_timings_flag_adds_wall_time(self, capsys):
        code = main([
            "scenarios", "--only", "setsofsets-patch", "--seed", "7", "--timings",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert "wall_time_s" in document["scenarios"][0]

    def test_unknown_scenario_name(self, capsys):
        code = main(["scenarios", "--only", "nope"])
        assert code == 2
        assert "unknown scenarios" in capsys.readouterr().err


class TestSweepCommand:
    def test_list_campaigns(self, capsys):
        code = main(["sweep", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "iblt-threshold" in out
        assert "gap-ratio" in out
        assert "emd-levels" in out

    def test_campaign_required(self, capsys):
        code = main(["sweep"])
        assert code == 2
        assert "--campaign" in capsys.readouterr().err

    def test_unknown_campaign_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--campaign", "bogus"])

    def test_run_emits_canonical_json(self, capsys):
        code = main([
            "sweep", "--campaign", "iblt-threshold", "--seed", "7", "--trials", "1",
        ])
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(captured.out)
        assert document["schema"] == "repro.sweeps/v1"
        assert document["campaign"] == "iblt-threshold"
        assert document["trials_per_point"] == 1
        assert document["point_count"] == 8
        # Execution knobs must never leak into the canonical report.
        assert "jobs" not in document
        assert "success" in captured.err

    def test_jobs_do_not_change_report_bytes(self, tmp_path):
        serial, parallel = tmp_path / "j1.json", tmp_path / "j2.json"
        args = ["sweep", "--campaign", "iblt-threshold", "--seed", "7",
                "--trials", "1"]
        assert main(args + ["--jobs", "1", "--output", str(serial)]) == 0
        assert main(args + ["--jobs", "2", "--output", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_multiple_campaigns_share_one_runner(self, tmp_path):
        """Repeatable --campaign writes one report per campaign through a
        single persistent pool; bytes match single-campaign runs."""
        outdir = tmp_path / "sweeps"
        code = main([
            "sweep", "--campaign", "iblt-threshold", "--campaign", "emd-levels",
            "--seed", "7", "--trials", "1", "--jobs", "2",
            "--output-dir", str(outdir),
        ])
        assert code == 0
        multi = {
            "iblt-threshold": (outdir / "sweep-iblt-threshold.json").read_bytes(),
            "emd-levels": (outdir / "sweep-emd-levels.json").read_bytes(),
        }
        for name, payload in multi.items():
            single = tmp_path / f"single-{name}.json"
            assert main([
                "sweep", "--campaign", name, "--seed", "7", "--trials", "1",
                "--output", str(single),
            ]) == 0
            assert payload == single.read_bytes()

    def test_output_rejects_multiple_campaigns(self, tmp_path, capsys):
        code = main([
            "sweep", "--campaign", "iblt-threshold", "--campaign", "emd-levels",
            "--output", str(tmp_path / "one.json"),
        ])
        assert code == 2
        assert "--output-dir" in capsys.readouterr().err

    def test_stdout_rejects_multiple_campaigns(self, capsys):
        code = main([
            "sweep", "--campaign", "iblt-threshold", "--campaign", "emd-levels",
            "--trials", "1",
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "--output-dir" in captured.err
        assert captured.out == ""  # no half-written JSON stream

    def test_output_and_output_dir_mutually_exclusive(self, tmp_path, capsys):
        code = main([
            "sweep", "--campaign", "iblt-threshold", "--campaign", "emd-levels",
            "--output", str(tmp_path / "one.json"),
            "--output-dir", str(tmp_path / "dir"),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err
        assert not (tmp_path / "one.json").exists()
        assert not (tmp_path / "dir").exists()

    def test_new_campaigns_listed(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "emd-branching" in out
        assert "multiparty-parties" in out
        assert "churn-topology" in out
