"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metric import GridSpace, HammingSpace
from repro.workloads import (
    clustered_points,
    noisy_replica_pair,
    perturb_point,
    random_far_point,
)


class TestPerturbPoint:
    def test_hamming_within_radius(self, rng):
        space = HammingSpace(24)
        point = space.sample(rng, 1)[0]
        for _ in range(50):
            moved = perturb_point(space, point, 3, rng)
            assert space.contains(moved)
            assert space.distance(point, moved) <= 3

    def test_hamming_zero_radius(self, rng):
        space = HammingSpace(8)
        point = space.sample(rng, 1)[0]
        assert perturb_point(space, point, 0, rng) == point

    def test_grid_within_radius(self, rng):
        for p in (1.0, 2.0):
            space = GridSpace(side=200, dim=3, p=p)
            point = (100, 100, 100)
            for _ in range(50):
                moved = perturb_point(space, point, 9.0, rng)
                assert space.contains(moved)
                assert space.distance(point, moved) <= 9.0 + 1e-9

    def test_grid_tiny_radius_single_coordinate(self, rng):
        space = GridSpace(side=200, dim=8, p=1.0)
        point = tuple([100] * 8)
        for _ in range(30):
            moved = perturb_point(space, point, 1.0, rng)
            assert space.distance(point, moved) <= 1.0

    def test_rejects_negative_radius(self, rng):
        with pytest.raises(ValueError):
            perturb_point(HammingSpace(4), (0, 0, 0, 0), -1, rng)


class TestRandomFarPoint:
    def test_respects_distance(self, rng):
        space = HammingSpace(64)
        anchors = space.sample(rng, 10)
        point = random_far_point(space, anchors, 20.0, rng)
        distances = space.distance_matrix([point], anchors)
        assert distances.min() >= 20.0

    def test_no_anchors(self, rng):
        space = HammingSpace(8)
        point = random_far_point(space, [], 5.0, rng)
        assert space.contains(point)

    def test_impossible_raises(self, rng):
        space = HammingSpace(4)
        anchors = space.sample(rng, 16)  # every point of {0,1}^4... nearly
        with pytest.raises(RuntimeError):
            random_far_point(space, anchors, 5.0, rng, max_tries=50)


class TestNoisyReplicaPair:
    def test_structure(self, rng):
        space = HammingSpace(64)
        wl = noisy_replica_pair(space, n=20, k=3, close_radius=2, far_radius=24, rng=rng)
        assert wl.n == 20
        assert wl.k == 3
        assert len(wl.bob) == 20
        assert wl.far_indices == (17, 18, 19)

    def test_close_points_close(self, rng):
        space = HammingSpace(64)
        wl = noisy_replica_pair(space, n=20, k=3, close_radius=2, far_radius=24, rng=rng)
        for index in range(20 - 3):
            assert space.distance(wl.alice[index], wl.bob[index]) <= 2

    def test_far_points_far(self, rng):
        space = HammingSpace(64)
        wl = noisy_replica_pair(space, n=20, k=3, close_radius=2, far_radius=24, rng=rng)
        matrix = space.distance_matrix(wl.alice_far_points, wl.bob)
        assert matrix.min() >= 24

    def test_far_points_mutually_far(self, rng):
        space = HammingSpace(64)
        wl = noisy_replica_pair(space, n=20, k=3, close_radius=2, far_radius=24, rng=rng)
        fars = wl.alice_far_points
        for i in range(len(fars)):
            for j in range(i + 1, len(fars)):
                assert space.distance(fars[i], fars[j]) >= 24

    def test_grid_space(self, rng):
        space = GridSpace(side=512, dim=2, p=2.0)
        wl = noisy_replica_pair(space, n=16, k=2, close_radius=3, far_radius=100, rng=rng)
        for index in range(14):
            assert space.distance(wl.alice[index], wl.bob[index]) <= 3

    def test_base_separation(self, rng):
        space = GridSpace(side=1024, dim=2, p=2.0)
        wl = noisy_replica_pair(
            space, n=10, k=1, close_radius=2, far_radius=100, rng=rng,
            base_separation=50.0,
        )
        matrix = space.distance_matrix(wl.bob, wl.bob)
        np.fill_diagonal(matrix, np.inf)
        assert matrix.min() >= 50.0

    def test_k_zero(self, rng):
        space = HammingSpace(32)
        wl = noisy_replica_pair(space, n=10, k=0, close_radius=1, far_radius=10, rng=rng)
        assert wl.far_indices == ()

    def test_invalid_parameters(self, rng):
        space = HammingSpace(32)
        with pytest.raises(ValueError):
            noisy_replica_pair(space, n=5, k=6, close_radius=1, far_radius=10, rng=rng)
        with pytest.raises(ValueError):
            noisy_replica_pair(space, n=5, k=1, close_radius=10, far_radius=5, rng=rng)


class TestClusteredPoints:
    def test_count_and_containment(self, rng):
        space = GridSpace(side=256, dim=3, p=2.0)
        points = clustered_points(space, n=50, clusters=4, spread=5.0, rng=rng)
        assert len(points) == 50
        assert all(space.contains(point) for point in points)

    def test_rejects_zero_clusters(self, rng):
        with pytest.raises(ValueError):
            clustered_points(GridSpace(64, 2, 2.0), n=10, clusters=0, spread=1.0, rng=rng)
