"""Tests for EMD and EMD_k (Definitions 3.2 / 3.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric import (
    GridSpace,
    HammingSpace,
    emd,
    emd_k,
    emd_k_with_exclusions,
    emd_with_matching,
)


class TestEMD:
    def test_identical_sets_zero(self, l2_space, rng):
        points = l2_space.sample(rng, 8)
        assert emd(l2_space, points, points) == 0

    def test_permuted_sets_zero(self, l2_space, rng):
        points = l2_space.sample(rng, 8)
        shuffled = list(points)
        np.random.default_rng(0).shuffle(shuffled)
        assert emd(l2_space, points, shuffled) == 0

    def test_symmetry(self, l1_space, rng):
        xs = l1_space.sample(rng, 6)
        ys = l1_space.sample(rng, 6)
        assert emd(l1_space, xs, ys) == pytest.approx(emd(l1_space, ys, xs))

    def test_requires_equal_sizes(self, l1_space, rng):
        with pytest.raises(ValueError):
            emd(l1_space, l1_space.sample(rng, 3), l1_space.sample(rng, 4))

    def test_empty_sets(self, l1_space):
        assert emd(l1_space, [], []) == 0

    def test_known_value(self):
        space = GridSpace(side=10, dim=1, p=1.0)
        xs = [(0,), (5,)]
        ys = [(1,), (9,)]
        # optimal: 0->1 (1), 5->9 (4) = 5 ; crossed: 0->9 + 5->1 = 13
        assert emd(space, xs, ys) == 5

    def test_matching_is_bijection(self, l2_space, rng):
        xs = l2_space.sample(rng, 7)
        ys = l2_space.sample(rng, 7)
        value, matching = emd_with_matching(l2_space, xs, ys)
        assert sorted(matching) == list(range(7))
        assert value >= 0

    def test_beats_identity_matching(self, l2_space, rng):
        xs = l2_space.sample(rng, 9)
        ys = l2_space.sample(rng, 9)
        identity_cost = sum(l2_space.distance(x, y) for x, y in zip(xs, ys))
        assert emd(l2_space, xs, ys) <= identity_cost + 1e-9

    def test_triangle_inequality(self, l1_space, rng):
        xs = l1_space.sample(rng, 5)
        ys = l1_space.sample(rng, 5)
        zs = l1_space.sample(rng, 5)
        assert emd(l1_space, xs, zs) <= (
            emd(l1_space, xs, ys) + emd(l1_space, ys, zs) + 1e-9
        )


class TestEMDk:
    def test_zero_k_equals_emd(self, l1_space, rng):
        xs = l1_space.sample(rng, 6)
        ys = l1_space.sample(rng, 6)
        assert emd_k(l1_space, xs, ys, 0) == pytest.approx(emd(l1_space, xs, ys))

    def test_monotone_in_k(self, l2_space, rng):
        xs = l2_space.sample(rng, 8)
        ys = l2_space.sample(rng, 8)
        values = [emd_k(l2_space, xs, ys, k) for k in range(5)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_k_equals_n_is_zero(self, l2_space, rng):
        xs = l2_space.sample(rng, 4)
        ys = l2_space.sample(rng, 4)
        assert emd_k(l2_space, xs, ys, 4) == 0
        assert emd_k(l2_space, xs, ys, 10) == 0

    def test_negative_k_rejected(self, l2_space, rng):
        xs = l2_space.sample(rng, 3)
        with pytest.raises(ValueError):
            emd_k(l2_space, xs, xs, -1)

    def test_removes_outlier(self):
        """EMD_1 should exclude the single far pair entirely."""
        space = GridSpace(side=100, dim=1, p=1.0)
        xs = [(0,), (10,), (99,)]
        ys = [(0,), (10,), (1,)]
        assert emd(space, xs, ys) > 50
        assert emd_k(space, xs, ys, 1) == 0

    def test_exclusions_reported(self):
        space = GridSpace(side=100, dim=1, p=1.0)
        xs = [(0,), (10,), (99,)]
        ys = [(0,), (10,), (1,)]
        value, excluded_x, excluded_y = emd_k_with_exclusions(space, xs, ys, 1)
        assert value == 0
        assert excluded_x == [2]
        assert excluded_y == [2]

    def test_exclusion_counts(self, l2_space, rng):
        xs = l2_space.sample(rng, 7)
        ys = l2_space.sample(rng, 7)
        _, excluded_x, excluded_y = emd_k_with_exclusions(l2_space, xs, ys, 3)
        assert len(excluded_x) == 3
        assert len(excluded_y) == 3

    def test_matches_bruteforce_exclusions(self):
        """Exhaustively verify EMD_k on a small instance."""
        from itertools import combinations

        space = GridSpace(side=50, dim=2, p=1.0)
        rng = np.random.default_rng(9)
        xs = space.sample(rng, 5)
        ys = space.sample(rng, 5)
        k = 2
        best = float("inf")
        for keep_x in combinations(range(5), 5 - k):
            for keep_y in combinations(range(5), 5 - k):
                sub_x = [xs[i] for i in keep_x]
                sub_y = [ys[j] for j in keep_y]
                best = min(best, emd(space, sub_x, sub_y))
        assert emd_k(space, xs, ys, k) == pytest.approx(best)

    def test_hamming_emd(self, rng):
        space = HammingSpace(12)
        xs = space.sample(rng, 6)
        assert emd_k(space, xs, xs, 2) == 0


@given(
    seed=st.integers(min_value=0, max_value=5000),
    n=st.integers(min_value=1, max_value=7),
    k=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_emd_k_upper_bounded_by_emd(seed, n, k):
    space = GridSpace(side=32, dim=3, p=1.0)
    rng = np.random.default_rng(seed)
    xs = space.sample(rng, n)
    ys = space.sample(rng, n)
    assert emd_k(space, xs, ys, k) <= emd(space, xs, ys) + 1e-9
