"""Tests for the branching-process analysis (Appendices B and D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.branching import (
    branching_factor,
    error_propagation_trials,
    expected_unconditioned_size,
    poisson_tail,
    propagate_error,
    simulate_survival,
    simulate_tree_size,
    survival_recurrence,
)
from repro.iblt import riblt_sparsity_threshold


class TestPoissonTail:
    def test_zero_mean(self):
        assert poisson_tail(0.0, 1) == 0.0
        assert poisson_tail(0.0, 0) == 1.0

    def test_at_least_one(self):
        assert poisson_tail(1.0, 1) == pytest.approx(1 - np.exp(-1))

    def test_at_least_two(self):
        assert poisson_tail(1.0, 2) == pytest.approx(1 - 2 * np.exp(-1))

    def test_general_matches_scipy(self):
        from scipy.stats import poisson as sp_poisson

        for mean in (0.5, 1.7, 4.0):
            for k in (1, 2, 3, 5):
                assert poisson_tail(mean, k) == pytest.approx(
                    1 - sp_poisson.cdf(k - 1, mean), abs=1e-12
                )

    def test_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            poisson_tail(-1.0, 1)


class TestSurvivalRecurrence:
    def test_monotone_decreasing(self):
        curve = survival_recurrence(c=0.15, q=3, rounds=20)
        assert all(a >= b for a, b in zip(curve.lam, curve.lam[1:]))
        assert all(a >= b for a, b in zip(curve.rho, curve.rho[1:]))

    def test_subcritical_extinction(self):
        """Below 1/(q(q-1)) the survival probability vanishes."""
        c = 0.8 * riblt_sparsity_threshold(3)
        curve = survival_recurrence(c=c, q=3, rounds=60)
        assert curve.lam[-1] < 1e-12
        assert curve.extinct_by() is not None

    def test_supercritical_survival(self):
        """Above the peeling threshold c*_q, survival persists."""
        curve = survival_recurrence(c=0.9, q=3, rounds=200)
        assert curve.lam[-1] > 0.1
        assert curve.extinct_by() is None

    def test_doubly_exponential_decay_below_threshold(self):
        """[15]: below threshold, lambda eventually squares each round
        (up to constants); check the log-log decay accelerates."""
        c = 0.5 * riblt_sparsity_threshold(3)
        curve = survival_recurrence(c=c, q=3, rounds=12)
        lam = [v for v in curve.lam if v > 1e-300]
        # Ratios of consecutive log-values should grow (super-geometric).
        logs = [abs(np.log(v)) for v in lam[2:]]
        ratios = [b / a for a, b in zip(logs, logs[1:])]
        assert ratios[-1] > 1.5

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            survival_recurrence(c=0.0, q=3, rounds=5)
        with pytest.raises(ValueError):
            survival_recurrence(c=0.1, q=2, rounds=5)
        with pytest.raises(ValueError):
            survival_recurrence(c=0.1, q=3, rounds=0)

    def test_simulation_matches_recurrence(self):
        rng = np.random.default_rng(0)
        c, q, rounds = 0.12, 3, 4
        curve = survival_recurrence(c, q, rounds)
        estimate = simulate_survival(c, q, rounds, trials=4000, rng=rng)
        assert estimate == pytest.approx(curve.lam[rounds - 1], abs=0.02)


class TestTreeSize:
    def test_branching_factor(self):
        assert branching_factor(0.1, 3) == pytest.approx(0.6)

    def test_expected_size_formula(self):
        # factor 0.5: 1 + 0.5 + 0.25 = 1.75 at depth 2.
        c = 0.5 / 6
        assert expected_unconditioned_size(c, 3, 2) == pytest.approx(1.75)

    def test_simulation_matches_expectation(self):
        rng = np.random.default_rng(1)
        c, q, depth = 0.1, 3, 6
        expected = expected_unconditioned_size(c, q, depth)
        samples = [simulate_tree_size(c, q, depth, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(expected, rel=0.1)

    def test_truncation(self):
        rng = np.random.default_rng(2)
        assert simulate_tree_size(5.0, 3, 50, rng, max_vertices=100) == 100


class TestErrorPropagation:
    def test_deterministic_small_graph(self):
        # Chain 0-1-2, 2-3-4: vertex 0 seeded; edge (0,1,2) peels first via
        # vertex 0 or 1 (degree 1), error flows along the chain.
        edges = [(0, 1, 2), (2, 3, 4)]
        result = propagate_error(5, edges, seed_vertex=0, order="bfs")
        assert result.fully_peeled
        assert result.total_error >= 1

    def test_error_conserved_when_seed_isolated(self):
        edges = [(1, 2, 3)]
        result = propagate_error(5, edges, seed_vertex=0)
        assert result.total_error == 1
        assert result.touched_vertices == 1

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            propagate_error(5, [(0, 1, 2)], 0, order="random")

    def test_subcritical_error_is_constant(self):
        """Lemma 3.10: below 1/(q(q-1)), total error stays O(1)."""
        rng = np.random.default_rng(3)
        q = 3
        c = 0.8 * riblt_sparsity_threshold(q)
        results = error_propagation_trials(600, c, q, trials=40, rng=rng)
        totals = [result.total_error for result in results]
        assert np.mean(totals) < 4.0
        assert np.median(totals) <= 2.0

    def test_supercritical_error_grows(self):
        """Well above the threshold the propagation is much larger."""
        rng = np.random.default_rng(4)
        q = 3
        below = error_propagation_trials(
            600, 0.5 * riblt_sparsity_threshold(q), q, trials=30, rng=rng
        )
        above = error_propagation_trials(600, 0.75, q, trials=30, rng=rng)
        mean_below = np.mean([r.total_error for r in below])
        mean_above = np.mean([r.total_error for r in above])
        assert mean_above > 3 * mean_below

    def test_trials_count(self, rng):
        results = error_propagation_trials(100, 0.1, 3, trials=7, rng=rng)
        assert len(results) == 7

    def test_rejects_zero_trials(self, rng):
        with pytest.raises(ValueError):
            error_propagation_trials(100, 0.1, 3, trials=0, rng=rng)
