"""Quantitative checks of the EMD protocol's supporting lemmas.

These tests verify the probabilistic machinery *inside* Algorithm 1 at
the level the paper analyses it, not just end-to-end behaviour:

* **Lemma B.1**: a pair at distance ``x`` hashes differently at level
  ``i`` with probability at most ``2^{i-4}·k/D2 · x``.
* **Lemma 3.8's driver**: close pairs keep colliding at coarse levels
  and separate as levels refine; the level at which a pair separates
  grows as its distance shrinks.
* **Equation (1)**: the derived hash counts satisfy the ``>= 3`` floor
  at the decodability level ``i'``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import derive_emd_parameters
from repro.hashing import PublicCoins
from repro.metric import HammingSpace


def _level_mismatch_rates(distance: int, trials: int = 300, n=32, k=2, d=64):
    """Empirical Pr[pair at `distance` differs at each level]."""
    space = HammingSpace(d)
    params = derive_emd_parameters(space, n=n, k=k)
    mismatches = np.zeros(params.levels)
    rng = np.random.default_rng(distance)
    for trial in range(trials):
        coins = PublicCoins(10_000 * distance + trial)
        batch = params.family.sample_batch(coins, "lemma", params.total_hashes)
        x = tuple(int(v) for v in rng.integers(0, 2, size=d))
        y = list(x)
        for index in rng.choice(d, size=distance, replace=False):
            y[int(index)] ^= 1
        values = batch.evaluate([x, tuple(y)])
        equal = values[0] == values[1]
        for level, count in enumerate(params.hash_counts):
            if not equal[:count].all():
                mismatches[level] += 1
    return params, mismatches / trials


class TestLemmaB1:
    @pytest.mark.parametrize("distance", [1, 2, 4])
    def test_mismatch_probability_bounded(self, distance):
        """Pr[differ at level i] <= 2^{i-4}·k/D2 · x (Lemma B.1)."""
        params, rates = _level_mismatch_rates(distance)
        for level_index, rate in enumerate(rates):
            i = level_index + 1  # paper levels are 1-indexed
            bound = (2 ** (i - 4)) * params.k / params.d2 * distance
            # Monte-Carlo slack of ~3 sigma at 300 trials.
            sigma = np.sqrt(max(rate * (1 - rate), 0.01) / 300)
            assert rate <= min(1.0, bound) + 3 * sigma + 0.02, (
                i,
                rate,
                bound,
            )

    def test_mismatch_monotone_in_level(self):
        """Finer levels use more hashes, so mismatch rates increase."""
        _, rates = _level_mismatch_rates(2)
        # Allow small Monte-Carlo wiggle while requiring the trend.
        assert rates[-1] >= rates[0]
        assert rates[-1] > 0.1  # finest level separates distance-2 pairs often

    def test_mismatch_monotone_in_distance(self):
        _, near = _level_mismatch_rates(1, trials=200)
        _, far = _level_mismatch_rates(4, trials=200)
        # At the top (finest) level, farther pairs separate more often.
        assert far[-1] >= near[-1] - 0.05


class TestEquationOne:
    def test_three_hash_floor(self):
        """Eq. (1): c_1 = k/(8·D2·ln(1/p)) >= 3 at the derived p."""
        for n, k in ((16, 1), (32, 2), (64, 4)):
            params = derive_emd_parameters(HammingSpace(64), n=n, k=k)
            assert params.hash_counts[0] >= 3

    def test_counts_double(self):
        params = derive_emd_parameters(HammingSpace(64), n=32, k=2)
        for a, b in zip(params.hash_counts, params.hash_counts[1:]):
            assert b == pytest.approx(2 * a, rel=0.35)


class TestLevelSeparation:
    def test_identical_pairs_never_differ(self):
        """Distance-0 pairs share every key at every level."""
        space = HammingSpace(64)
        params = derive_emd_parameters(space, n=16, k=1)
        coins = PublicCoins(5)
        batch = params.family.sample_batch(coins, "sep", params.total_hashes)
        rng = np.random.default_rng(5)
        point = tuple(int(v) for v in rng.integers(0, 2, size=64))
        values = batch.evaluate([point, point])
        assert (values[0] == values[1]).all()

    def test_diameter_pairs_differ_at_fine_levels(self):
        space = HammingSpace(64)
        params = derive_emd_parameters(space, n=16, k=1)
        coins = PublicCoins(6)
        batch = params.family.sample_batch(coins, "sep2", params.total_hashes)
        zero = tuple([0] * 64)
        ones = tuple([1] * 64)
        values = batch.evaluate([zero, ones])
        equal = values[0] == values[1]
        finest = params.hash_counts[-1]
        # At the finest level, a diameter-apart pair must differ.
        assert not equal[:finest].all()
