"""The sharded sketch store: routing, LRU, warm parity, breaker memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MalformedPayloadError
from repro.hashing import PublicCoins
from repro.iblt import IBLT, RIBLT
from repro.reconcile import BreakerState, ResilienceConfig
from repro.reconcile.strata import StrataEstimator
from repro.store import ShardRouter, SketchStore, StoreConfig


def _keys(seed: int, n: int, bits: int = 55) -> list[int]:
    rng = np.random.default_rng(seed)
    drawn = rng.choice(1 << bits, size=n, replace=False)
    return [int(k) for k in drawn]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StoreConfig(shards=0)
        with pytest.raises(ValueError):
            StoreConfig(capacity=0)
        with pytest.raises(ValueError):
            StoreConfig(sketches_per_entry=0)
        with pytest.raises(ValueError):
            StoreConfig(breaker_capacity=0)


class TestShardRouter:
    def test_routing_is_pinned_across_versions(self):
        """Shard assignments derive from Mersenne-61 pairwise hashing over
        SHA-256-seeded coins — pure arithmetic with no dependence on
        Python's ``hash`` — so these literal expectations must hold on
        every Python version and platform.  A change here silently
        re-homes every persisted entry; that is a breaking change."""
        probe = [0, 1, 2, 12345, 1 << 40, (1 << 61) - 1,
                 987654321987654321 % (1 << 61)]
        router8 = ShardRouter(PublicCoins(2019), 8)
        assert [router8.shard_of(k) for k in probe] == [5, 0, 2, 3, 7, 5, 0]
        router4 = ShardRouter(PublicCoins(7).child("x"), 4)
        assert [router4.shard_of(k) for k in probe] == [3, 1, 0, 2, 1, 3, 0]

    def test_every_key_lands_in_range(self):
        router = ShardRouter(PublicCoins(5), 7)
        rng = np.random.default_rng(1)
        for key in rng.choice(1 << 61, size=200, replace=False):
            assert 0 <= router.shard_of(int(key)) < 7

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(PublicCoins(5), 4).shard_of(-1)


class TestLRU:
    def test_eviction_order_is_deterministic(self):
        """Two stores fed the identical touch sequence evict identically:
        residency depends only on the operation order, never on dict
        iteration quirks or timing."""

        def drive(store: SketchStore) -> list[tuple[int, bool]]:
            keys = list(range(1, 11))
            for key in keys:
                store.put_set(key, _keys(key, 8), key_bits=55)
            # Touch a stable subset so the LRU order is non-trivial.
            for key in (3, 1, 7):
                if store.contains(key):
                    store.keys_of(key)
            for key in range(11, 15):
                store.put_set(key, _keys(key, 8), key_bits=55)
            return [(key, store.contains(key)) for key in range(1, 15)]

        config = StoreConfig(seed=9, shards=2, capacity=3)
        first, second = drive(SketchStore(config)), drive(SketchStore(config))
        assert first == second
        resident = sum(1 for _, present in first if present)
        assert resident <= 2 * 3
        assert resident < 14  # capacity pressure actually evicted

    def test_touched_entries_survive_untouched_evict_first(self):
        store = SketchStore(StoreConfig(seed=0, shards=1, capacity=3))
        for key in (1, 2, 3):
            store.put_set(key, _keys(key, 4), key_bits=55)
        store.keys_of(1)  # 1 becomes most-recently-used
        store.put_set(4, _keys(4, 4), key_bits=55)  # evicts LRU = 2
        assert store.contains(1) and store.contains(3) and store.contains(4)
        assert not store.contains(2)
        assert store.stats.evictions == 1

    def test_contains_does_not_touch(self):
        store = SketchStore(StoreConfig(seed=0, shards=1, capacity=2))
        store.put_set(1, _keys(1, 4), key_bits=55)
        store.put_set(2, _keys(2, 4), key_bits=55)
        store.contains(1)  # a peek, not a touch: 1 stays LRU
        store.put_set(3, _keys(3, 4), key_bits=55)
        assert not store.contains(1)
        assert store.contains(2) and store.contains(3)


class TestWarmServeParity:
    def test_warm_serve_is_byte_identical_and_hash_free(self, coins):
        """Acceptance: a repeat serve returns the identical payload with
        *zero* fresh Mersenne hash passes — the cache accounting proves
        the warm path never re-entered the field arithmetic."""
        store = SketchStore(StoreConfig(seed=1, shards=2, capacity=4))
        keys = _keys(42, 300)
        store.put_set(77, keys, key_bits=55)

        cold_table = IBLT(coins, "parity", cells=24, q=3, key_bits=55)
        cold_table.insert_batch(np.asarray(sorted(keys), dtype=np.uint64))
        cold_payload = cold_table.to_payload()

        first = store.serve_iblt(77, coins, "parity", cells=24, q=3)
        assert first == cold_payload
        assert store.stats.misses == 1 and store.stats.hits == 0

        hashed = store.stats.keys_hashed
        again = store.serve_iblt(77, coins, "parity", cells=24, q=3)
        assert again == cold_payload
        assert store.stats.hits == 1
        assert store.stats.rebuilds_avoided == 1
        assert store.stats.keys_hashed == hashed  # zero fresh hashing

    def test_strata_serve_warm_and_read_only_contract(self, coins):
        store = SketchStore(StoreConfig(seed=1, shards=2, capacity=4))
        keys = _keys(43, 200)
        store.put_set(5, keys, key_bits=55)
        served = store.serve_strata(5, coins, "strata")
        reference = StrataEstimator(coins, "strata", key_bits=55)
        reference.insert_batch(np.asarray(sorted(keys), dtype=np.uint64))
        assert served.to_payload() == reference.to_payload()
        assert store.serve_strata(5, coins, "strata") is served
        assert store.stats.hits == 1


class TestApplyMutations:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_snapshot_pinned_to_cold_rebuild(self, coins, backend):
        """Acceptance: after a mutation delta, every cached sketch equals a
        cold rebuild of the mutated set bit for bit — the commuting
        count/XOR cell updates make insert/delete order irrelevant."""
        keys = _keys(7, 120)
        live = IBLT(coins, "mut", cells=30, q=3, key_bits=55, backend=backend)
        for key in keys:
            live.insert(key)
        dels, ins = keys[:10], _keys(8, 10)
        live.apply_mutations(inserts=ins, deletes=dels)

        rebuilt = IBLT(coins, "mut", cells=30, q=3, key_bits=55, backend=backend)
        for key in keys[10:] + ins:
            rebuilt.insert(key)
        assert live.to_payload() == rebuilt.to_payload()

    def test_store_mutation_refreshes_all_warm_state(self, coins):
        store = SketchStore(StoreConfig(seed=2, shards=1, capacity=4))
        keys = _keys(11, 150)
        store.put_set(9, keys, key_bits=55)
        store.serve_iblt(9, coins, "a", cells=24, q=3)
        store.serve_iblt(9, coins, "a", cells=48, q=3)
        store.serve_strata(9, coins, "s")
        dels, ins = keys[:6], _keys(12, 6)
        store.apply_mutations(9, inserts=ins, deletes=dels)
        assert store.stats.incremental_refreshes == 3

        mutated = sorted(set(keys[6:]) | set(ins))
        for cells in (24, 48):
            cold = IBLT(coins, "a", cells=cells, q=3, key_bits=55)
            cold.insert_batch(np.asarray(mutated, dtype=np.uint64))
            hits = store.stats.hits
            assert store.serve_iblt(9, coins, "a", cells=cells, q=3) == cold.to_payload()
            assert store.stats.hits == hits + 1  # refreshed in place, no rebuild
        cold_strata = StrataEstimator(coins, "s", key_bits=55)
        cold_strata.insert_batch(np.asarray(mutated, dtype=np.uint64))
        assert store.serve_strata(9, coins, "s").to_payload() == cold_strata.to_payload()

    def test_set_discipline_validates_before_mutating(self, coins):
        store = SketchStore(StoreConfig(seed=2, shards=1, capacity=4))
        keys = _keys(13, 50)
        store.put_set(1, keys, key_bits=55)
        baseline = store.serve_iblt(1, coins, "d", cells=12, q=3)
        fresh = _keys(14, 2)
        with pytest.raises(ValueError):
            store.apply_mutations(1, inserts=[keys[0]])  # resident insert
        with pytest.raises(ValueError):
            store.apply_mutations(1, deletes=[fresh[0]])  # absent delete
        with pytest.raises(ValueError):
            store.apply_mutations(1, inserts=[fresh[0], fresh[0]])  # duplicate
        with pytest.raises(ValueError):
            store.apply_mutations(1, inserts=[1 << 55])  # out of range
        # A rejected delta must leave warm state untouched.
        assert store.keys_of(1) == set(keys)
        assert store.serve_iblt(1, coins, "d", cells=12, q=3) == baseline

    def test_riblt_snapshots_drop_on_mutation(self, coins):
        store = SketchStore(StoreConfig(seed=3, shards=1, capacity=4))
        keys = _keys(15, 40)
        store.put_set(2, keys, key_bits=55)
        source = RIBLT(coins, "r", cells=16, q=3, key_bits=55, dim=8, side=64)
        for key in keys:
            source.insert(key, tuple((key >> (3 * j)) % 64 for j in range(8)))
        shell = RIBLT(coins, "r", cells=16, q=3, key_bits=55, dim=8, side=64)
        store.load_riblt_snapshot(2, shell, *source.to_arrays())
        assert store.serve_riblt(2, "r", cells=16, q=3, dim=8) == source.to_payload()
        store.apply_mutations(2, deletes=[keys[0]])
        assert store.stats.riblt_snapshots_dropped == 1
        with pytest.raises(KeyError):
            store.serve_riblt(2, "r", cells=16, q=3, dim=8)


class TestUntrustedSnapshots:
    def test_valid_snapshot_round_trips(self, coins):
        store = SketchStore(StoreConfig(seed=4, shards=1, capacity=4))
        keys = _keys(21, 80)
        store.put_set(3, keys, key_bits=55)
        counts, key_xor, check_xor = store.export_iblt_arrays(
            3, coins, "snap", cells=20, q=3
        )
        other = SketchStore(StoreConfig(seed=4, shards=1, capacity=4))
        other.put_set(3, keys, key_bits=55)
        other.load_iblt_snapshot(3, coins, "snap", 20, 3, counts, key_xor, check_xor)
        assert other.stats.snapshot_loads == 1
        assert other.serve_iblt(3, coins, "snap", cells=20, q=3) == store.serve_iblt(
            3, coins, "snap", cells=20, q=3
        )

    def test_damaged_snapshot_raises_typed_error(self, coins):
        store = SketchStore(StoreConfig(seed=4, shards=1, capacity=4))
        keys = _keys(21, 80)
        store.put_set(3, keys, key_bits=55)
        counts, key_xor, check_xor = store.export_iblt_arrays(
            3, coins, "snap", cells=20, q=3
        )
        bad_key = key_xor.copy()
        bad_key[0] = np.uint64(1 << 60)  # above the 55-bit key range
        with pytest.raises(MalformedPayloadError):
            store.load_iblt_snapshot(3, coins, "snap", 20, 3, counts, bad_key, check_xor)
        with pytest.raises(MalformedPayloadError):
            store.load_iblt_snapshot(3, coins, "snap", 20, 3, counts[:-1], key_xor, check_xor)
        # Failed loads never replace the existing warm slot.
        fresh = IBLT(coins, "snap", cells=20, q=3, key_bits=55)
        fresh.insert_batch(np.asarray(sorted(keys), dtype=np.uint64))
        assert store.serve_iblt(3, coins, "snap", cells=20, q=3) == fresh.to_payload()


class TestBreakerMemory:
    def test_round_trip_preserves_escalation_sequence(self):
        """Serialise → restore → the restored state walks the *identical*
        escalation sequence under the same policy."""
        policy = ResilienceConfig(max_attempts=8, max_escalations=3)
        state = BreakerState(bound=2)
        trace = []
        for _ in range(5):
            state = state.after_undecodable(policy)
            trace.append((state.bound, state.escalations, state.breaker_open))
        restored = BreakerState.from_dict(BreakerState(bound=2).to_dict())
        replay = []
        for _ in range(5):
            restored = restored.after_undecodable(policy)
            replay.append((restored.bound, restored.escalations, restored.breaker_open))
        assert replay == trace

    def test_from_dict_rejects_malformed_payloads(self):
        good = BreakerState(bound=4, escalations=1).to_dict()
        assert BreakerState.from_dict(good) == BreakerState(bound=4, escalations=1)
        for payload in (
            {},
            {**good, "extra": 1},
            {**good, "bound": "4"},
            {**good, "breaker_open": 1},
            {**good, "bound": 0},
        ):
            with pytest.raises(MalformedPayloadError):
                BreakerState.from_dict(payload)

    def test_store_persists_per_peer(self):
        store = SketchStore(StoreConfig(seed=5, shards=2, capacity=4))
        assert store.load_breaker("peer-a") is None
        escalated = BreakerState(bound=2).after_undecodable(ResilienceConfig())
        store.save_breaker("peer-a", escalated)
        store.save_breaker("peer-b", BreakerState(bound=16))
        assert store.load_breaker("peer-a") == escalated
        assert store.load_breaker("peer-b") == BreakerState(bound=16)
        with pytest.raises(TypeError):
            store.save_breaker("peer-c", {"bound": 2})

    def test_returning_peer_starts_at_escalated_bound(self, coins):
        """Acceptance: a flaky peer whose run escalated to bound B comes
        back, and its first sketch is sized for B — not the configured
        initial bound."""
        store = SketchStore(StoreConfig(seed=6, shards=2, capacity=4))
        policy = ResilienceConfig(max_attempts=8, max_escalations=3)

        # Session 1: two undecodable attempts escalate 2 -> 4 -> 8.
        state = BreakerState(bound=2)
        state = state.after_undecodable(policy).after_undecodable(policy)
        assert state.bound == 8
        store.save_breaker("flaky", state)

        # Session 2 (a fresh client of the same store): resumes at 8.
        resumed = store.load_breaker("flaky")
        assert resumed is not None and resumed.bound == 8
        assert resumed.escalations == 2
        # And its remaining escalation budget is already spent down.
        third = resumed.after_undecodable(policy)
        assert third.bound == 16 and third.escalations == 3
        assert third.after_undecodable(policy).breaker_open
