"""Tests for characteristic-polynomial set reconciliation ([21])."""

from __future__ import annotations

import pytest

from repro.hashing import MERSENNE_P, PublicCoins
from repro.metric import GridSpace, HammingSpace
from repro.protocol import Channel
from repro.reconcile import cpi_reconcile, evaluate_characteristic, exact_iblt_reconcile


class TestCharacteristicPolynomial:
    def test_root_evaluates_to_zero(self):
        elements = [5, 17, 99]
        values = evaluate_characteristic(elements, [17])
        assert values == [0]

    def test_nonroot_nonzero(self):
        elements = [5, 17, 99]
        values = evaluate_characteristic(elements, [4])
        assert values[0] != 0

    def test_empty_set_is_one(self):
        assert evaluate_characteristic([], [123]) == [1]

    def test_multiplicative(self):
        a = evaluate_characteristic([3, 4], [100])[0]
        b = evaluate_characteristic([5], [100])[0]
        combined = evaluate_characteristic([3, 4, 5], [100])[0]
        assert a * b % MERSENNE_P == combined


class TestCPIReconcile:
    def _sets(self, rng, n_shared=80, a_extra=3, b_extra=4):
        space = HammingSpace(40)
        shared = space.sample(rng, n_shared)
        alice = shared + space.sample(rng, a_extra)
        bob = shared + space.sample(rng, b_extra)
        return space, alice, bob

    def test_basic_reconciliation(self, rng):
        space, alice, bob = self._sets(rng)
        result = cpi_reconcile(space, alice, bob, delta_bound=8, coins=PublicCoins(1))
        assert result.success
        assert set(result.bob_final) == set(alice) | set(bob)
        assert len(result.alice_only) == 3
        assert len(result.bob_only) == 4
        assert result.rounds == 2

    def test_exact_bound(self, rng):
        """delta_bound exactly max one-sided difference still works."""
        space, alice, bob = self._sets(rng, a_extra=2, b_extra=5)
        result = cpi_reconcile(space, alice, bob, delta_bound=5, coins=PublicCoins(2))
        assert result.success
        assert len(result.bob_only) == 5

    def test_identical_sets(self, rng):
        space = HammingSpace(40)
        points = space.sample(rng, 60)
        result = cpi_reconcile(space, points, points, delta_bound=4, coins=PublicCoins(3))
        assert result.success
        assert result.alice_only == []
        assert result.bob_only == []

    def test_unbalanced_sizes(self, rng):
        space = HammingSpace(40)
        shared = space.sample(rng, 50)
        alice = shared + space.sample(rng, 6)
        bob = list(shared)
        result = cpi_reconcile(space, alice, bob, delta_bound=8, coins=PublicCoins(4))
        assert result.success
        assert len(result.alice_only) == 6
        assert result.bob_only == []

    def test_undersized_bound_fails_gracefully(self, rng):
        space = HammingSpace(40)
        alice = space.sample(rng, 40)
        bob = space.sample(rng, 40)
        result = cpi_reconcile(space, alice, bob, delta_bound=3, coins=PublicCoins(5))
        assert not result.success
        assert result.bob_final == bob

    def test_communication_beats_iblt(self, rng):
        """[21]'s selling point: near-optimal constant factor."""
        space, alice, bob = self._sets(rng)
        cpi = cpi_reconcile(space, alice, bob, delta_bound=8, coins=PublicCoins(6))
        iblt = exact_iblt_reconcile(space, alice, bob, delta_bound=8, coins=PublicCoins(6))
        assert cpi.success and iblt.success
        assert cpi.total_bits < iblt.total_bits

    def test_rejects_huge_universe(self, rng):
        space = HammingSpace(100)  # 100 bits > field size
        points = space.sample(rng, 5)
        with pytest.raises(ValueError):
            cpi_reconcile(space, points, points, delta_bound=2, coins=PublicCoins(7))

    def test_rejects_zero_bound(self, rng):
        space = HammingSpace(40)
        points = space.sample(rng, 5)
        with pytest.raises(ValueError):
            cpi_reconcile(space, points, points, delta_bound=0, coins=PublicCoins(8))

    def test_grid_space(self, rng):
        space = GridSpace(side=256, dim=5, p=2.0)  # 40-bit universe
        shared = space.sample(rng, 40)
        alice = shared + space.sample(rng, 2)
        bob = shared + space.sample(rng, 1)
        result = cpi_reconcile(space, alice, bob, delta_bound=4, coins=PublicCoins(9))
        assert result.success
        assert set(result.bob_final) == set(alice) | set(bob)

    def test_channel_accounting(self, rng):
        space, alice, bob = self._sets(rng)
        channel = Channel()
        result = cpi_reconcile(
            space, alice, bob, delta_bound=8, coins=PublicCoins(10), channel=channel
        )
        assert result.total_bits == channel.total_bits
        assert channel.rounds == 2
