"""Seeded fuzzing of every deserializer: only DecodeError may escape.

Each wire format gets random truncations and random bit-flips of a valid
payload.  Decoding may succeed (a flip can land in dead padding) or fail,
but the *only* exception allowed out of a deserializer is the typed
:class:`repro.errors.DecodeError` family — never a raw ``IndexError``,
``struct.error``, numpy ``OverflowError``, or untyped ``ValueError`` from
deep inside the stack.  The resilient controller relies on this contract
to classify failures as "payload corrupted" and re-request.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import (
    DecodeError,
    MalformedPayloadError,
    SketchUndecodableError,
    TruncatedPayloadError,
)
from repro.hashing import PublicCoins
from repro.iblt import IBLT, RIBLT, MultisetIBLT
from repro.metric import GridSpace, HammingSpace
from repro.protocol import (
    BitReader,
    BitWriter,
    iblt_payload,
    multiset_payload,
    read_iblt_cells,
    read_multiset_cells,
    read_points,
    read_riblt_cells,
    riblt_payload,
    write_points,
)
from repro.reconcile import StrataEstimator, read_strata, strata_payload

COINS = PublicCoins(0xF022)

TRUNCATION_TRIALS = 48
FLIP_TRIALS = 48


def _mutations(payload: bytes, seed: int):
    """Yield seeded truncations and bit-flipped copies of ``payload``."""
    rng = random.Random(seed)
    for _ in range(TRUNCATION_TRIALS):
        yield payload[: rng.randrange(len(payload))]
    for _ in range(FLIP_TRIALS):
        corrupted = bytearray(payload)
        for _ in range(1 + rng.randrange(4)):
            position = rng.randrange(8 * len(payload))
            corrupted[position // 8] ^= 1 << (position % 8)
        yield bytes(corrupted)


def _assert_only_decode_error(decode, payload: bytes, seed: int) -> None:
    for mutated in _mutations(payload, seed):
        try:
            decode(mutated)
        except DecodeError:
            pass  # the typed contract — exactly what callers handle
        except Exception as error:  # pragma: no cover - the failure branch
            raise AssertionError(
                f"untyped {type(error).__name__} escaped a deserializer: {error}"
            ) from error


class TestErrorHierarchy:
    def test_subclass_contract(self):
        assert issubclass(TruncatedPayloadError, DecodeError)
        assert issubclass(TruncatedPayloadError, EOFError)
        assert issubclass(MalformedPayloadError, DecodeError)
        assert issubclass(MalformedPayloadError, ValueError)
        assert issubclass(SketchUndecodableError, DecodeError)

    def test_truncated_stream_raises_typed_eof(self):
        reader = BitReader(b"")
        with pytest.raises(TruncatedPayloadError):
            reader.read_bit()
        with pytest.raises(DecodeError):
            BitReader(b"").read_varuint()


class TestPointsFuzz:
    @pytest.mark.parametrize(
        "space", [HammingSpace(33), GridSpace(side=64, dim=3, p=1.0)],
        ids=["hamming", "grid"],
    )
    def test_only_decode_error_escapes(self, space, rng):
        writer = BitWriter()
        write_points(writer, space, space.sample(rng, 17))
        payload = writer.getvalue()

        def decode(mutated: bytes) -> None:
            read_points(BitReader(mutated), space)

        _assert_only_decode_error(decode, payload, seed=101)

    def test_huge_count_rejected_before_allocation(self, hamming_space):
        writer = BitWriter()
        writer.write_varuint(1 << 40)  # claims ~10^12 points follow
        with pytest.raises(MalformedPayloadError):
            read_points(BitReader(writer.getvalue()), hamming_space)


class TestIBLTCellsFuzz:
    def _shell(self) -> IBLT:
        return IBLT(COINS, "fuzz-iblt", cells=24, q=3, key_bits=30)

    def test_only_decode_error_escapes(self):
        table = self._shell()
        for key in range(37):
            table.insert(key)
        payload, _ = iblt_payload(table)

        def decode(mutated: bytes) -> None:
            read_iblt_cells(BitReader(mutated), self._shell())

        _assert_only_decode_error(decode, payload, seed=202)

    def test_oversized_count_rejected(self):
        writer = BitWriter()
        writer.write_varint(1 << 64)  # varint-encodable, int64-impossible
        with pytest.raises(MalformedPayloadError):
            read_iblt_cells(BitReader(writer.getvalue()), self._shell())


class TestRIBLTCellsFuzz:
    def _shell(self) -> RIBLT:
        return RIBLT(
            COINS, "fuzz-riblt", cells=12, q=3, key_bits=30, dim=3, side=64
        )

    def test_only_decode_error_escapes(self, rng):
        table = self._shell()
        for key in range(21):
            table.insert(key, tuple(int(v) for v in rng.integers(0, 64, size=3)))
        payload, _ = riblt_payload(table)

        def decode(mutated: bytes) -> None:
            read_riblt_cells(BitReader(mutated), self._shell())

        _assert_only_decode_error(decode, payload, seed=303)


class TestMultisetCellsFuzz:
    def _shell(self) -> MultisetIBLT:
        return MultisetIBLT(COINS, "fuzz-multiset", cells=24, q=3, key_bits=30)

    def test_only_decode_error_escapes(self):
        table = self._shell()
        for key in range(19):
            table.insert(key, multiplicity=1 + key % 3)
        payload, _ = multiset_payload(table)

        def decode(mutated: bytes) -> None:
            read_multiset_cells(BitReader(mutated), self._shell())

        _assert_only_decode_error(decode, payload, seed=404)


class TestStrataFuzz:
    def _shell(self) -> StrataEstimator:
        return StrataEstimator(COINS, "fuzz-strata", strata=6, cells=12,
                               key_bits=30)

    def test_only_decode_error_escapes(self):
        estimator = self._shell()
        for key in range(50):
            estimator.insert(key)
        payload, _ = strata_payload(estimator)

        def decode(mutated: bytes) -> None:
            read_strata(mutated, self._shell())

        _assert_only_decode_error(decode, payload, seed=505)


class TestIBLTLoadArraysValidation:
    def _table(self) -> IBLT:
        return IBLT(COINS, "arrays", cells=48, q=3, key_bits=30)

    def _snapshot(self):
        table = self._table()
        for key in range(9):
            table.insert(key)
        return table.to_arrays()

    def test_roundtrip(self):
        counts, key_xor, check_xor = self._snapshot()
        loaded = self._table().load_arrays(counts, key_xor, check_xor)
        result = loaded.decode()
        assert result.success
        assert sorted(result.inserted) == list(range(9))

    def test_float_dtype_rejected(self):
        counts, key_xor, check_xor = self._snapshot()
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(
                counts.astype(np.float64), key_xor, check_xor
            )

    def test_bool_dtype_rejected(self):
        counts, key_xor, check_xor = self._snapshot()
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(
                counts, key_xor, check_xor.astype(bool)
            )

    def test_wrong_length_rejected(self):
        counts, key_xor, check_xor = self._snapshot()
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(counts[:-1], key_xor[:-1], check_xor[:-1])

    def test_wrong_ndim_rejected(self):
        counts, key_xor, check_xor = self._snapshot()
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(
                counts.reshape(2, 24), key_xor, check_xor
            )

    def test_out_of_range_key_rejected(self):
        counts, key_xor, check_xor = self._snapshot()
        key_xor = key_xor.astype(object)
        key_xor[0] = 1 << 30  # key_bits is 30, so max is 2^30 - 1
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(counts, key_xor, check_xor)

    def test_out_of_range_count_rejected(self):
        counts, key_xor, check_xor = self._snapshot()
        counts = counts.astype(object)
        counts[0] = 1 << 63
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(counts, key_xor, check_xor)

    def test_malformed_is_still_valueerror(self):
        """Backward compatibility: callers catching ValueError keep working."""
        counts, key_xor, check_xor = self._snapshot()
        with pytest.raises(ValueError):
            self._table().load_arrays(counts[:-1], key_xor, check_xor)


class TestRIBLTLoadArraysValidation:
    def _table(self) -> RIBLT:
        return RIBLT(
            COINS, "arrays-r", cells=12, q=3, key_bits=30, dim=3, side=64
        )

    def _snapshot(self):
        table = self._table()
        for key in range(7):
            table.insert(key, (key % 64, (2 * key) % 64, (3 * key) % 64))
        return table.to_arrays()

    def test_roundtrip(self):
        counts, key_sum, check_sum, value_sum = self._snapshot()
        loaded = self._table().load_arrays(counts, key_sum, check_sum, value_sum)
        result = loaded.decode()
        assert result.success
        assert sorted(key for key, _value in result.inserted) == list(range(7))

    def test_float_sums_rejected(self):
        counts, key_sum, check_sum, value_sum = self._snapshot()
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(
                counts, np.array([float(v) for v in key_sum]), check_sum,
                value_sum,
            )

    def test_wrong_value_shape_rejected(self):
        counts, key_sum, check_sum, value_sum = self._snapshot()
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(
                counts, key_sum, check_sum, value_sum[:, :2]
            )

    def test_oversized_sum_rejected(self):
        counts, key_sum, check_sum, value_sum = self._snapshot()
        key_sum = key_sum.copy()
        key_sum[0] = 1 << 140  # beyond what the wire varint can carry
        with pytest.raises(MalformedPayloadError):
            self._table().load_arrays(counts, key_sum, check_sum, value_sum)

    def test_nonempty_shell_rejected(self):
        counts, key_sum, check_sum, value_sum = self._snapshot()
        dirty = self._table()
        dirty.insert(1, (1, 1, 1))
        with pytest.raises(ValueError, match="empty"):
            dirty.load_arrays(counts, key_sum, check_sum, value_sum)
