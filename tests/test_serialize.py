"""Tests for bit-level serialization and the measured channel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric import GridSpace, HammingSpace
from repro.protocol import (
    ALICE,
    BOB,
    VARUINT_MAX_GROUPS,
    BitReader,
    BitWriter,
    Channel,
    coordinate_bits,
    read_point,
    read_points,
    write_point,
    write_points,
)


class TestBitWriterReader:
    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1, 0):
            writer.write_bit(bit)
        assert writer.bit_length == 5
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(5)] == [1, 0, 1, 1, 0]

    def test_uint_roundtrip(self):
        writer = BitWriter()
        writer.write_uint(0b10110, 5)
        writer.write_uint(7, 3)
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(5) == 0b10110
        assert reader.read_uint(3) == 7

    def test_uint_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_uint(8, 3)
        with pytest.raises(ValueError):
            writer.write_uint(-1, 3)

    def test_zero_width_uint(self):
        writer = BitWriter()
        writer.write_uint(0, 0)
        assert writer.bit_length == 0

    def test_varuint_small_values_cheap(self):
        writer = BitWriter()
        writer.write_varuint(0)
        assert writer.bit_length == 8

    def test_varint_zigzag(self):
        writer = BitWriter()
        for value in (0, -1, 1, -2, 2, -1000, 1000):
            writer.write_varint(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_varint() for _ in range(7)] == [0, -1, 1, -2, 2, -1000, 1000]

    def test_bool_roundtrip(self):
        writer = BitWriter()
        writer.write_bool(True)
        writer.write_bool(False)
        reader = BitReader(writer.getvalue())
        assert reader.read_bool() is True
        assert reader.read_bool() is False

    def test_eof(self):
        reader = BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_bits_remaining(self):
        reader = BitReader(b"\xff")
        assert reader.bits_remaining == 8
        reader.read_uint(3)
        assert reader.bits_remaining == 5

    def test_negative_varuint_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_varuint(-5)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 128), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_varuint_roundtrip_property(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_varuint(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_varuint() for _ in values] == values

    @given(st.lists(st.integers(min_value=-(1 << 100), max_value=1 << 100), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_varint_roundtrip_property(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_varint(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_varint() for _ in values] == values

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=(1 << 16) - 1),
                      st.integers(min_value=1, max_value=16)),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_uint_roundtrip_property(self, pairs):
        pairs = [(value & ((1 << bits) - 1), bits) for value, bits in pairs]
        writer = BitWriter()
        for value, bits in pairs:
            writer.write_uint(value, bits)
        reader = BitReader(writer.getvalue())
        assert [reader.read_uint(bits) for _, bits in pairs] == [v for v, _ in pairs]


class TestMalformedStreams:
    """read_uint / read_varuint must mirror the writer's validation and
    fail loudly on malformed or truncated input instead of returning 0
    or spinning through unbounded continuation groups."""

    def test_read_uint_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            BitReader(b"\xff").read_uint(-1)

    def test_read_uint_zero_bits(self):
        assert BitReader(b"").read_uint(0) == 0

    def test_varuint_group_cap_round_trips_at_boundary(self):
        boundary = (1 << (7 * VARUINT_MAX_GROUPS)) - 1
        writer = BitWriter()
        writer.write_varuint(boundary)
        assert BitReader(writer.getvalue()).read_varuint() == boundary

    def test_write_varuint_rejects_over_cap(self):
        with pytest.raises(ValueError):
            BitWriter().write_varuint(1 << (7 * VARUINT_MAX_GROUPS))

    def test_write_varint_rejects_over_cap(self):
        with pytest.raises(ValueError):
            BitWriter().write_varint(1 << (7 * VARUINT_MAX_GROUPS))

    def test_unbounded_continuation_rejected(self):
        """All-ones bytes assert a continuation bit in every group."""
        endless = b"\xff" * (VARUINT_MAX_GROUPS + 2)
        with pytest.raises(ValueError, match="malformed varuint"):
            BitReader(endless).read_varuint()

    def test_truncated_varuint_raises_eof(self):
        writer = BitWriter()
        writer.write_varuint(1 << 40)
        payload = writer.getvalue()
        for cut in range(len(payload)):
            with pytest.raises(EOFError):
                BitReader(payload[:cut]).read_varuint()

    @given(st.integers(min_value=1 << 7, max_value=1 << 128))
    @settings(max_examples=40, deadline=None)
    def test_truncated_varuint_property(self, value):
        """Any multi-byte varuint cut anywhere strictly inside raises."""
        writer = BitWriter()
        writer.write_varuint(value)
        payload = writer.getvalue()
        reader = BitReader(payload[: len(payload) // 2])
        with pytest.raises(EOFError):
            reader.read_varuint()

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 133) - 1), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_varuint_roundtrip_within_cap(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_varuint(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_varuint() for _ in values] == values


class TestPointSerialization:
    def test_coordinate_bits(self):
        assert coordinate_bits(HammingSpace(10)) == 1
        assert coordinate_bits(GridSpace(side=256, dim=2)) == 8
        assert coordinate_bits(GridSpace(side=200, dim=2)) == 8

    def test_hamming_point_costs_d_bits(self):
        space = HammingSpace(13)
        writer = BitWriter()
        write_point(writer, space, tuple([1] * 13))
        assert writer.bit_length == 13

    def test_point_roundtrip(self, rng):
        space = GridSpace(side=100, dim=5, p=2.0)
        point = space.sample(rng, 1)[0]
        writer = BitWriter()
        write_point(writer, space, point)
        assert read_point(BitReader(writer.getvalue()), space) == point

    def test_points_roundtrip(self, rng):
        space = HammingSpace(9)
        points = space.sample(rng, 7)
        writer = BitWriter()
        write_points(writer, space, points)
        assert read_points(BitReader(writer.getvalue()), space) == points

    def test_empty_points(self):
        space = HammingSpace(4)
        writer = BitWriter()
        write_points(writer, space, [])
        assert read_points(BitReader(writer.getvalue()), space) == []

    def test_dimension_check(self):
        space = HammingSpace(4)
        with pytest.raises(ValueError):
            write_point(BitWriter(), space, (1, 0))


class TestChannel:
    def test_accounting(self):
        channel = Channel()
        channel.send(ALICE, "m1", b"\xff\xff", 16)
        channel.send(BOB, "m2", b"\x01", 3)
        assert channel.total_bits == 19
        assert channel.rounds == 2
        summary = channel.summary()
        assert summary.by_sender == {"alice": 16, "bob": 3}
        assert summary.by_label == {"m1": 16, "m2": 3}
        assert summary.total_bytes == pytest.approx(19 / 8)

    def test_default_bits_is_payload_size(self):
        channel = Channel()
        channel.send(ALICE, "m", b"abc")
        assert channel.total_bits == 24

    def test_declared_bits_cannot_exceed_payload(self):
        channel = Channel()
        with pytest.raises(ValueError):
            channel.send(ALICE, "m", b"a", 9)

    def test_unknown_sender_rejected(self):
        with pytest.raises(ValueError):
            Channel().send("carol", "m", b"")

    def test_send_returns_payload(self):
        channel = Channel()
        assert channel.send(ALICE, "m", b"xyz") == b"xyz"
