"""Property-based tests of the sets-of-sets reconciliation layer.

Random multiset instances drive the core invariants:

* the recovered view always covers Bob's keys that differ from Alice's;
* recovered keys with multiplicities are never keys Bob does not hold
  (up to negligible hash-collision probability — hypothesis shrinks
  would expose any systematic violation);
* shared-key inference never claims a key Bob provably lacks when its
  signature survived as Alice-only.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hashing import PublicCoins
from repro.protocol import Channel
from repro.setsofsets import SetsOfSetsReconciler

_H = 6
_BITS = 18

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _instance(seed: int, shared: int, modified: int, bob_extra: int, alice_extra: int):
    rng = np.random.default_rng(seed)

    def random_key():
        return tuple(int(v) for v in rng.integers(0, 1 << _BITS, size=_H))

    base = [random_key() for _ in range(shared)]
    alice = list(base) + [random_key() for _ in range(alice_extra)]
    bob = list(base)
    for index in range(min(modified, len(bob))):
        key = list(bob[index])
        key[index % _H] ^= int(rng.integers(1, 1 << _BITS))
        bob[index] = tuple(key)
    bob += [random_key() for _ in range(bob_extra)]
    return alice, bob


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    shared=st.integers(min_value=0, max_value=15),
    modified=st.integers(min_value=0, max_value=4),
    bob_extra=st.integers(min_value=0, max_value=3),
    alice_extra=st.integers(min_value=0, max_value=3),
)
@_SETTINGS
def test_view_covers_and_never_fabricates(seed, shared, modified, bob_extra, alice_extra):
    alice, bob = _instance(seed, shared, modified, bob_extra, alice_extra)
    reconciler = SetsOfSetsReconciler(
        PublicCoins(seed),
        "hyp",
        entries=_H,
        entry_bits=_BITS,
        expected_differences=4 * (_H + 1) * (modified + bob_extra + alice_extra + 1),
    )
    result = reconciler.run(alice, bob, Channel())
    if not result.success:
        return  # undersized sketch: allowed failure mode, reported honestly
    bob_multiset: dict[tuple, int] = {}
    for key in bob:
        bob_multiset[key] = bob_multiset.get(key, 0) + 1

    # Soundness: recovered keys are real Bob keys with correct counts.
    for key, multiplicity in result.recovered.items():
        assert key in bob_multiset
        assert multiplicity <= bob_multiset[key]

    # Coverage: every Bob key is visible in the view, unless its patch
    # failed (counted in `unresolved`).
    view = set(result.bob_key_view)
    missing = [key for key in bob_multiset if key not in view]
    assert len(missing) <= result.unresolved


@given(seed=st.integers(min_value=0, max_value=100_000))
@_SETTINGS
def test_empty_alice_recovers_everything_verbatim(seed):
    _, bob = _instance(seed, shared=0, modified=0, bob_extra=5, alice_extra=0)
    reconciler = SetsOfSetsReconciler(
        PublicCoins(seed),
        "hyp2",
        entries=_H,
        entry_bits=_BITS,
        expected_differences=8 * (_H + 1),
    )
    result = reconciler.run([], bob, Channel())
    if not result.success:
        return
    assert sum(result.recovered.values()) == len(bob)
    assert result.unresolved == 0


@given(seed=st.integers(min_value=0, max_value=100_000))
@_SETTINGS
def test_symmetry_of_identical_collections(seed):
    alice, _ = _instance(seed, shared=10, modified=0, bob_extra=0, alice_extra=0)
    reconciler = SetsOfSetsReconciler(
        PublicCoins(seed),
        "hyp3",
        entries=_H,
        entry_bits=_BITS,
        expected_differences=16,
    )
    result = reconciler.run(alice, alice, Channel())
    assert result.success
    assert result.recovered == {}
    assert result.pair_difference == 0
    assert set(result.shared_alice_keys) == set(alice)
