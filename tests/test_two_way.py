"""Tests for two-way reconciliation and retry wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EMDProtocol,
    GapProtocol,
    retries_for_confidence,
    run_emd_with_retries,
    run_gap_with_retries,
    two_way_emd,
    two_way_gap,
    verify_gap_guarantee,
)
from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH
from repro.metric import HammingSpace, emd
from repro.protocol import Channel
from repro.workloads import noisy_replica_pair


class TestRetriesForConfidence:
    def test_single_attempt_when_already_good(self):
        assert retries_for_confidence(0.001, 0.01) == 1

    def test_paper_failure_rate(self):
        # 1/8 per-run failure, want 1e-6: (1/8)^t <= 1e-6 -> t = 7.
        assert retries_for_confidence(1 / 8, 1e-6) == 7

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            retries_for_confidence(0.0, 0.1)
        with pytest.raises(ValueError):
            retries_for_confidence(0.5, 1.5)


def _workload(seed, n=20, k=2):
    rng = np.random.default_rng(seed)
    space = HammingSpace(64)
    wl = noisy_replica_pair(space, n=n, k=k, close_radius=1, far_radius=20, rng=rng)
    return space, wl


class TestEMDRetries:
    def test_successful_first_attempt(self):
        space, wl = _workload(0)
        protocol = EMDProtocol.for_instance(space, n=20, k=2)
        channel = Channel()
        result = run_emd_with_retries(
            protocol, wl.alice, wl.bob, PublicCoins(0), attempts=3, channel=channel
        )
        assert result.success
        assert result.total_bits == channel.total_bits

    def test_retry_recovers_from_forced_failure(self, rng):
        """With D2 too small the protocol fails every attempt — the
        wrapper must report that honestly after exhausting attempts."""
        space = HammingSpace(64)
        alice = space.sample(rng, 16)
        bob = space.sample(rng, 16)
        protocol = EMDProtocol.for_instance(space, n=16, k=1, d1=1.0, d2=2.0)
        result = run_emd_with_retries(
            protocol, alice, bob, PublicCoins(1), attempts=2
        )
        assert not result.success
        assert result.bob_final == bob

    def test_rejects_zero_attempts(self):
        space, wl = _workload(1)
        protocol = EMDProtocol.for_instance(space, n=20, k=2)
        with pytest.raises(ValueError):
            run_emd_with_retries(protocol, wl.alice, wl.bob, PublicCoins(2), attempts=0)


class TestTwoWayEMD:
    def test_both_directions_improve(self):
        space, wl = _workload(3)
        protocol = EMDProtocol.for_instance(space, n=20, k=2)
        result = two_way_emd(protocol, wl.alice, wl.bob, PublicCoins(3))
        assert result.success
        assert len(result.alice_final) == 20
        assert len(result.bob_final) == 20
        # Bob's final approximates Alice's set and vice versa.
        assert emd(space, wl.alice, result.bob_final) <= emd(space, wl.alice, wl.bob)
        assert emd(space, wl.bob, result.alice_final) <= emd(space, wl.bob, wl.alice)

    def test_final_sets_may_differ(self):
        """Section 1: two-way robust reconciliation does not converge to
        a common set — document the behaviour."""
        space, wl = _workload(4)
        protocol = EMDProtocol.for_instance(space, n=20, k=2)
        result = two_way_emd(protocol, wl.alice, wl.bob, PublicCoins(4))
        assert result.success
        # (Not asserting inequality strictly — just that both are valid
        # n-point sets; equality would be a coincidence.)
        assert len(set(result.alice_final)) > 0
        assert len(set(result.bob_final)) > 0


class TestTwoWayGap:
    def _protocol(self, n, k):
        space = HammingSpace(96)
        family = BitSamplingMLSH(space, w=96.0)
        params = family.derived_lsh_params(r1=2.0, r2=32.0)
        return space, GapProtocol(space, family, params, n=n, k=k)

    def test_both_guarantees(self):
        rng = np.random.default_rng(5)
        space, protocol = self._protocol(24, 2)
        wl = noisy_replica_pair(
            space, n=24, k=2, close_radius=2, far_radius=40, rng=rng
        )
        result = two_way_gap(protocol, wl.alice, wl.bob, PublicCoins(5))
        assert result.success
        assert verify_gap_guarantee(space, wl.alice, result.bob_final, 32.0)
        assert verify_gap_guarantee(space, wl.bob, result.alice_final, 32.0)

    def test_gap_retry_channel_accumulates(self):
        rng = np.random.default_rng(6)
        space, protocol = self._protocol(16, 1)
        wl = noisy_replica_pair(
            space, n=16, k=1, close_radius=2, far_radius=40, rng=rng
        )
        channel = Channel()
        result = run_gap_with_retries(
            protocol, wl.alice, wl.bob, PublicCoins(6), attempts=2, channel=channel
        )
        assert result.success
        assert result.total_bits == channel.total_bits

    def test_rejects_zero_attempts(self):
        space, protocol = self._protocol(16, 1)
        with pytest.raises(ValueError):
            run_gap_with_retries(protocol, [], [], PublicCoins(7), attempts=0)
